// citedb-demo replays the paper's §4 demonstration scenario end to end and
// prints the final citation.cite of Listing 1: Yinjun Wu's CiteDB demo
// repository, with Chen Li's CoreCover imported via CopyCite and Yanssie's
// GUI branch merged via MergeCite.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/gitcite/gitcite/internal/scenario"
)

func main() {
	res, err := scenario.Listing1()
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the headline consequence: per-subtree credit.
	fmt.Println("\nWho gets credit where:")
	for _, path := range []string{
		"/citation/CiteDB.py",
		"/CoreCover/src/CoreCover.java",
		"/citation/GUI/app.js",
	} {
		cite, from, err := res.Demo.Generate(res.FinalCommit, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s -> %v  (entry at %s)\n", path, cite.AuthorList, from)
	}
}
