// archive-deposit shows the paper's release pipeline (§1 and future work
// §5): release a version, deposit it in a Software-Heritage-style archive,
// mint a Zenodo-style DOI, and hand out a persistent citation that survives
// the origin repository disappearing.
package main

import (
	"fmt"
	"log"
	"time"

	gitcite "github.com/gitcite/gitcite"
)

func main() {
	repo, err := gitcite.NewRepository(gitcite.Meta{
		Owner: "leshang", Name: "gitcite-tool",
		URL: "https://git.example/leshang/gitcite-tool", License: "Apache-2.0",
	})
	if err != nil {
		log.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		log.Fatal(err)
	}
	for p, d := range map[string]string{
		"/cmd/gitcite/main.go": "package main\n",
		"/core/model.go":       "package core\n",
		"/docs/manual.md":      "# manual\n",
	} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			log.Fatal(err)
		}
	}
	release, err := wt.Commit(gitcite.CommitOptions{
		Author:  gitcite.Sig("leshang", "leshang@cis.upenn.edu", time.Date(2019, 8, 1, 9, 0, 0, 0, time.UTC)),
		Message: "release 1.0",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released version %s\n", release.Short())

	// Deposit the release. The archive assigns an intrinsic SWHID (derived
	// from content, so anyone can recompute it) and mints a DOI.
	arch := gitcite.NewArchive("10.5281")
	deposit, err := arch.DepositVersion(repo, release)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deposited %d objects\n  SWHID: %s\n  DOI:   %s\n", deposit.Objects, deposit.SWHID, deposit.DOI)

	// Depositing again is a no-op: intrinsic identifiers deduplicate.
	again, err := arch.DepositVersion(repo, release)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-deposit resolves to the same DOI: %s\n\n", again.DOI)

	// The persistent citation (with DOI) for the whole release and for a
	// single subtree.
	for _, path := range []string{"/", "/core/model.go"} {
		cite, err := arch.CitationFor(repo, deposit, path)
		if err != nil {
			log.Fatal(err)
		}
		text, err := gitcite.Render(cite, gitcite.FormatText)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("persistent citation for %s:\n  %s", path, text)
	}

	// Verify the archived closure — every object re-hashed.
	n, err := arch.Verify(deposit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive verification: %d objects intact\n", n)

	// A CITATION.cff for the released version, ready to commit upstream.
	cite, err := arch.CitationFor(repo, deposit, "/")
	if err != nil {
		log.Fatal(err)
	}
	cff, err := gitcite.Render(cite, gitcite.FormatCFF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCITATION.cff for the release:\n%s", cff)
}
