// Quickstart: create a citation-enabled repository, attach citations, and
// generate them back — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	gitcite "github.com/gitcite/gitcite"
)

func main() {
	// A repository is a DAG of versions; metadata seeds the default root
	// citation ("owner and name of the repository, the http address…").
	repo, err := gitcite.NewRepository(gitcite.Meta{
		Owner: "alice", Name: "fluxsolver",
		URL: "https://git.example/alice/fluxsolver", License: "MIT",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Work happens in a worktree: file edits and citation edits accumulate
	// independently until Commit records both (plus citation.cite).
	wt, err := repo.Checkout("main")
	if err != nil {
		log.Fatal(err)
	}
	files := map[string]string{
		"/solver/core.go":    "package solver // the PDE core\n",
		"/solver/mesh.go":    "package solver // meshing\n",
		"/vendor/fft/fft.go": "package fft // imported FFT kernels\n",
		"/README.md":         "# fluxsolver\n",
	}
	for p, data := range files {
		if err := wt.WriteFile(p, []byte(data)); err != nil {
			log.Fatal(err)
		}
	}

	// AddCite: credit the imported FFT kernels to their real authors.
	err = wt.AddCite("/vendor/fft", gitcite.Citation{
		Owner: "bob", RepoName: "fastfft",
		URL: "https://git.example/bob/fastfft", Version: "2.1",
		AuthorList: []string{"Bob Jones", "Carol Smith"},
	})
	if err != nil {
		log.Fatal(err)
	}

	commit, err := wt.Commit(gitcite.CommitOptions{
		Author:  gitcite.Sig("alice", "alice@example.org", time.Date(2020, 4, 1, 10, 0, 0, 0, time.UTC)),
		Message: "initial version",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed version %s\n\n", commit.Short())

	// Generate citations: the solver resolves to the root default; the FFT
	// files resolve to their closest cited ancestor.
	for _, path := range []string{"/solver/core.go", "/vendor/fft/fft.go"} {
		cite, from, err := repo.Generate(commit, path)
		if err != nil {
			log.Fatal(err)
		}
		text, err := gitcite.Render(cite, gitcite.FormatText)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Cite(%s)   [resolved from %s]\n  %s\n", path, from, text)
	}

	// The same citation in BibTeX for a paper's bibliography.
	cite, _, err := repo.Generate(commit, "/vendor/fft")
	if err != nil {
		log.Fatal(err)
	}
	bib, err := gitcite.Render(cite, gitcite.FormatBibTeX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BibTeX for the imported FFT library:\n%s", bib)
}
