// retro-cite shows citation-enabling a legacy repository (paper §5, future
// work 2): a project with years of history and no citation files gets a
// parallel citation-enabled history, with per-directory credit synthesised
// from who actually touched what.
package main

import (
	"fmt"
	"log"
	"time"

	gitcite "github.com/gitcite/gitcite"
)

func main() {
	repo, err := gitcite.NewRepository(gitcite.Meta{
		Owner: "oldlab", Name: "legacy-sim", URL: "https://git.example/oldlab/legacy-sim",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build a legacy history straight through the VCS (no citation layer):
	// three contributors across three subsystems, five commits.
	type step struct {
		author string
		files  map[string]string
		msg    string
	}
	state := map[string]string{}
	history := []step{
		{"maria", map[string]string{"/physics/field.c": "v1", "/Makefile": "all:"}, "initial physics core"},
		{"maria", map[string]string{"/physics/field.c": "v2", "/physics/solve.c": "v1"}, "implicit solver"},
		{"jun", map[string]string{"/viz/render.c": "v1", "/viz/palette.c": "v1"}, "visualisation"},
		{"priya", map[string]string{"/io/hdf5.c": "v1"}, "HDF5 output"},
		{"jun", map[string]string{"/viz/render.c": "v2"}, "antialiasing"},
	}
	for i, s := range history {
		for p, d := range s.files {
			state[p] = d
		}
		files := map[string]gitcite.FileContent{}
		for p, d := range state {
			files[p] = gitcite.FileContent{Data: []byte(d)}
		}
		_, err := repo.VCS.CommitFiles("main", files, gitcite.CommitOptions{
			Author:  gitcite.Sig(s.author, s.author+"@oldlab.example", time.Date(2015, 1, 1+i*30, 9, 0, 0, 0, time.UTC)),
			Message: s.msg,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The legacy history fails the consistency check.
	issues, err := gitcite.CheckCitationConsistency(repo, "main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legacy history: %d versions without citations\n", len(issues))

	// Retroactively enable it.
	report, err := gitcite.EnableRetroactively(repo, "main", "main-cited", gitcite.RetroOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewrote %d versions, synthesised %d citation entries\n\n", len(report.Rewritten), report.EntriesAdded)

	// The rewritten history is consistent and credits each subsystem to
	// the people who built it.
	issues, err = gitcite.CheckCitationConsistency(repo, "main-cited")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewritten history: %d issues\n", len(issues))
	for _, path := range []string{"/physics/field.c", "/viz/render.c", "/io/hdf5.c", "/Makefile"} {
		cite, from, err := repo.Generate(report.NewTip, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Cite(%-17s) credits %v   [entry at %s]\n", path, cite.AuthorList, from)
	}
}
