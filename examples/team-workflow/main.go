// team-workflow shows citation management across a team's branch-and-merge
// cycle, including a genuine citation conflict: two branches modify the
// same directory's citation and the merge resolves it interactively — the
// behaviour the paper describes for MergeCite ("showing them to the user
// and asking the user to resolve the conflict").
package main

import (
	"fmt"
	"log"
	"time"

	gitcite "github.com/gitcite/gitcite"
)

func commitOpts(author string, day int) gitcite.CommitOptions {
	return gitcite.CommitOptions{
		Author:  gitcite.Sig(author, author+"@lab.example", time.Date(2020, 5, day, 12, 0, 0, 0, time.UTC)),
		Message: "work by " + author,
	}
}

func main() {
	repo, err := gitcite.NewRepository(gitcite.Meta{
		Owner: "lab", Name: "pipeline", URL: "https://git.example/lab/pipeline",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day 1: the lead sets up the project and cites the ingest module.
	wt, err := repo.Checkout("main")
	if err != nil {
		log.Fatal(err)
	}
	for p, d := range map[string]string{
		"/ingest/reader.py":  "# ingest\n",
		"/analysis/stats.py": "# analysis\n",
	} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			log.Fatal(err)
		}
	}
	if err := wt.AddCite("/ingest", gitcite.Citation{
		Owner: "lab", RepoName: "pipeline-ingest", URL: "https://git.example/lab/pipeline/ingest",
		Version: "1", AuthorList: []string{"Dana Lead"},
	}); err != nil {
		log.Fatal(err)
	}
	base, err := wt.Commit(commitOpts("dana", 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := repo.VCS.CreateBranch("student", base); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: base version %s; /ingest cited by Dana\n", base.Short())

	// Day 2 (branch "student"): the student adds a GUI in their own
	// directory and — like Yanssie in the paper — cites it to themselves.
	// They also update the ingest citation (adding themselves).
	wtS, err := repo.Checkout("student")
	if err != nil {
		log.Fatal(err)
	}
	if err := wtS.WriteFile("/gui/app.js", []byte("// gui\n")); err != nil {
		log.Fatal(err)
	}
	if err := wtS.AddCite("/gui", gitcite.Citation{
		Owner: "lab", RepoName: "pipeline-gui", URL: "https://git.example/lab/pipeline/gui",
		Version: "0.1", AuthorList: []string{"Sam Student"},
	}); err != nil {
		log.Fatal(err)
	}
	if err := wtS.ModifyCite("/ingest", gitcite.Citation{
		Owner: "lab", RepoName: "pipeline-ingest", URL: "https://git.example/lab/pipeline/ingest",
		Version: "1.1", AuthorList: []string{"Dana Lead", "Sam Student"},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := wtS.Commit(commitOpts("sam", 2)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("day 2: student branch adds /gui (cited to Sam) and edits /ingest's citation")

	// Day 3 (main): Dana independently bumps the ingest citation version.
	wtM, err := repo.Checkout("main")
	if err != nil {
		log.Fatal(err)
	}
	if err := wtM.ModifyCite("/ingest", gitcite.Citation{
		Owner: "lab", RepoName: "pipeline-ingest", URL: "https://git.example/lab/pipeline/ingest",
		Version: "2", AuthorList: []string{"Dana Lead"},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := wtM.Commit(commitOpts("dana", 3)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("day 3: main independently bumps /ingest's citation to version 2")

	// Day 4: MergeCite. /gui unions in cleanly; /ingest conflicts and the
	// "user" resolves by combining both edits.
	res, err := repo.MergeBranches("main", "student", gitcite.MergeOptions{
		Citations: gitcite.CiteMergeOptions{
			Strategy: gitcite.StrategyAsk,
			Resolver: func(c gitcite.MergeConflict) (gitcite.Citation, error) {
				fmt.Printf("day 4: conflict at %s — ours v%s %v vs theirs v%s %v\n",
					c.Path, c.Ours.Version, c.Ours.AuthorList, c.Theirs.Version, c.Theirs.AuthorList)
				merged := c.Ours.Clone()
				merged.AuthorList = c.Theirs.AuthorList // keep the student's credit
				return merged, nil
			},
		},
		Commit: commitOpts("dana", 4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 4: merged student into main at %s (%d citation conflicts resolved)\n\n",
		res.CommitID.Short(), len(res.CiteConflicts))

	// Result: per-path credit after the merge.
	for _, path := range []string{"/ingest/reader.py", "/gui/app.js", "/analysis/stats.py"} {
		cite, from, err := repo.Generate(res.CommitID, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Cite(%-18s) = v%-3s %v   [from %s]\n", path, cite.Version, cite.AuthorList, from)
	}
}
