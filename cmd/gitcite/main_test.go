package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gitcite/gitcite/internal/hosting"
)

// inTempRepo runs fn inside a fresh temp directory.
func inTempRepo(t *testing.T, fn func(dir string)) {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
	fn(dir)
}

func mustRun(t *testing.T, args ...string) {
	t.Helper()
	if err := run(args); err != nil {
		t.Fatalf("gitcite %s: %v", strings.Join(args, " "), err)
	}
}

func write(t *testing.T, rel, data string) {
	t.Helper()
	if dir := filepath.Dir(rel); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(rel, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCLILifecycle(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo", "-url", "https://x/demo")
		write(t, "main.go", "package main\n")
		write(t, "lib/code.go", "package lib\n")
		mustRun(t, "commit", "-author", "alice", "-m", "initial")
		mustRun(t, "add-cite", "-path", "/lib", "-owner", "bob", "-repo", "blib", "-url", "https://x/blib", "-version", "1")
		mustRun(t, "cite", "-path", "/lib/code.go")
		mustRun(t, "cite", "-path", "/lib", "-format", "bibtex")
		mustRun(t, "chain", "-path", "/lib/code.go")
		mustRun(t, "citefile")
		mustRun(t, "log")
		mustRun(t, "branches")
		mustRun(t, "modify-cite", "-path", "/lib", "-owner", "bob", "-repo", "blib", "-url", "https://x/blib", "-version", "2")
		mustRun(t, "del-cite", "-path", "/lib")
		mustRun(t, "retro-check")

		// citation.cite materialised on disk and managed by the system.
		if _, err := os.Stat("citation.cite"); err != nil {
			t.Errorf("citation.cite not materialised: %v", err)
		}
	})
}

// TestCLIPackStorageLifecycle drives the same lifecycle against a
// pack-initialised repository (init -pack): commits land in pack files,
// reads resolve through the pack's ordered index, and repack consolidates.
func TestCLIPackStorageLifecycle(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "packed", "-pack")
		write(t, "main.go", "package main\n")
		write(t, "lib/code.go", "package lib\n")
		mustRun(t, "commit", "-author", "alice", "-m", "initial")
		mustRun(t, "add-cite", "-path", "/lib", "-owner", "bob", "-repo", "blib", "-url", "https://x/blib", "-version", "1")
		mustRun(t, "commit", "-author", "alice", "-m", "cite lib")
		mustRun(t, "cite", "-path", "/lib/code.go")
		mustRun(t, "citefile")
		mustRun(t, "repack")
		mustRun(t, "cite", "-path", "/lib/code.go")
		// Pack files exist; no loose fanout dirs remain.
		packs, err := filepath.Glob(".gitcite/objects/pack/*.pack")
		if err != nil || len(packs) == 0 {
			t.Fatalf("no pack files after repack (err=%v)", err)
		}
	})
}

// TestCLIRepackMigratesLooseRepo initialises a loose repository, repacks
// it, and checks later commands open it packed and still read history.
func TestCLIRepackMigratesLooseRepo(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "migrate")
		write(t, "a.txt", "one\n")
		mustRun(t, "commit", "-author", "alice", "-m", "first")
		mustRun(t, "repack")
		meta, err := os.ReadFile(".gitcite/meta")
		if err != nil || !strings.Contains(string(meta), "storage=pack") {
			t.Fatalf("meta not migrated to pack storage: %q, %v", meta, err)
		}
		write(t, "b.txt", "two\n")
		mustRun(t, "commit", "-author", "alice", "-m", "second")
		mustRun(t, "cite", "-path", "/b.txt")
		mustRun(t, "log")
	})
}

// TestCLICiteByRev covers -rev resolution: branch, full commit ID, and an
// abbreviated prefix, all resolved through the ordered ID index.
func TestCLICiteByRev(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "revs")
		write(t, "a.txt", "one\n")
		mustRun(t, "commit", "-author", "alice", "-m", "first")
		repo, err := openRepo()
		if err != nil {
			t.Fatal(err)
		}
		first, err := repo.VCS.Head()
		if err != nil {
			t.Fatal(err)
		}
		write(t, "a.txt", "two\n")
		mustRun(t, "commit", "-author", "alice", "-m", "second")

		mustRun(t, "cite", "-path", "/a.txt", "-rev", "main")
		mustRun(t, "cite", "-path", "/a.txt", "-rev", first.String())
		mustRun(t, "cite", "-path", "/a.txt", "-rev", first.String()[:8])
		mustRun(t, "chain", "-path", "/a.txt", "-rev", first.String()[:8])
		mustRun(t, "citefile", "-rev", first.String()[:8])
		if err := run([]string{"cite", "-path", "/a.txt", "-rev", "ffffffff"}); err == nil {
			t.Error("unknown revision prefix did not error")
		}
		if err := run([]string{"cite", "-path", "/a.txt", "-rev", first.String()[:3]}); err == nil {
			t.Error("3-char prefix did not error")
		}
	})
}

func TestCLIBranchAndMerge(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo")
		write(t, "base.txt", "base\n")
		mustRun(t, "commit", "-author", "alice", "-m", "base")
		mustRun(t, "branch", "side")
		mustRun(t, "switch", "side")
		write(t, "side.txt", "side work\n")
		mustRun(t, "commit", "-author", "bob", "-m", "side work")
		mustRun(t, "add-cite", "-path", "/side.txt", "-owner", "bob", "-repo", "sidework", "-url", "https://s", "-version", "1")
		mustRun(t, "switch", "main")
		write(t, "main.txt", "main work\n")
		// side.txt exists on disk from the side checkout; remove so main's
		// tree matches its branch.
		if err := os.Remove("side.txt"); err != nil {
			t.Fatal(err)
		}
		mustRun(t, "commit", "-author", "alice", "-m", "main work")
		mustRun(t, "merge", "-from", "side", "-author", "alice")
		// After the merge both files and the side citation are present.
		if _, err := os.Stat("side.txt"); err != nil {
			t.Errorf("merged file missing: %v", err)
		}
		mustRun(t, "cite", "-path", "/side.txt")
	})
}

func TestCLIMoveAndRemove(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo")
		write(t, "old/file.txt", "content\n")
		mustRun(t, "commit", "-author", "alice", "-m", "initial")
		mustRun(t, "add-cite", "-path", "/old", "-owner", "o", "-repo", "r", "-url", "u", "-version", "1")
		mustRun(t, "mv", "/old", "/renamed")
		if _, err := os.Stat("renamed/file.txt"); err != nil {
			t.Errorf("moved file missing on disk: %v", err)
		}
		mustRun(t, "cite", "-path", "/renamed/file.txt")
		mustRun(t, "rm", "/renamed/file.txt")
		if _, err := os.Stat("renamed/file.txt"); !os.IsNotExist(err) {
			t.Errorf("removed file still on disk: %v", err)
		}
	})
}

func TestCLIPushPull(t *testing.T) {
	platform := hosting.NewPlatform()
	ts := httptest.NewServer(hosting.NewServer(platform))
	defer ts.Close()
	user, err := platform.CreateUser(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := platform.CreateRepo(context.Background(), user.Token, "demo", "https://x/demo", ""); err != nil {
		t.Fatal(err)
	}
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo", "-url", "https://x/demo")
		write(t, "f.txt", "pushed content\n")
		mustRun(t, "commit", "-author", "alice", "-m", "to push")
		mustRun(t, "push", "-server", ts.URL, "-token", user.Token, "-owner", "alice", "-repo", "demo", "-branch", "main")
	})
	// Pull into a second working copy.
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo", "-url", "https://x/demo")
		mustRun(t, "pull", "-server", ts.URL, "-owner", "alice", "-repo", "demo", "-branch", "main")
		data, err := os.ReadFile("f.txt")
		if err != nil || string(data) != "pushed content\n" {
			t.Errorf("pulled file = %q, %v", data, err)
		}
	})
}

func TestCLIRetroEnable(t *testing.T) {
	inTempRepo(t, func(string) {
		mustRun(t, "init", "-owner", "alice", "-name", "demo")
		write(t, "a.txt", "a\n")
		mustRun(t, "commit", "-author", "alice", "-m", "one")
		write(t, "b/c.txt", "c\n")
		mustRun(t, "commit", "-author", "bob", "-m", "two")
		mustRun(t, "retro-enable", "-new-branch", "cited")
		mustRun(t, "switch", "cited")
		mustRun(t, "retro-check")
	})
}

func TestCLIErrors(t *testing.T) {
	inTempRepo(t, func(string) {
		if err := run(nil); err == nil {
			t.Error("no args accepted")
		}
		if err := run([]string{"bogus"}); err == nil {
			t.Error("bogus subcommand accepted")
		}
		if err := run([]string{"commit", "-author", "a", "-m", "x"}); err == nil {
			t.Error("commit outside a repository accepted")
		}
		if err := run([]string{"init", "-owner", "only"}); err == nil {
			t.Error("init without -name accepted")
		}
		mustRun(t, "init", "-owner", "alice", "-name", "demo")
		if err := run([]string{"commit", "-m", "missing author"}); err == nil {
			t.Error("commit without author accepted")
		}
		if err := run([]string{"cite", "-path", "/x"}); err == nil {
			t.Error("cite on empty repo accepted")
		}
		write(t, "f.txt", "x")
		mustRun(t, "commit", "-author", "a", "-m", "c")
		if err := run([]string{"add-cite", "-path", "/ghost", "-owner", "o", "-repo", "r", "-url", "u", "-version", "1"}); err == nil {
			t.Error("add-cite on missing path accepted")
		}
		if err := run([]string{"cite", "-path", "/f.txt", "-format", "endnote-xml"}); err == nil {
			t.Error("unknown format accepted")
		}
		if err := run([]string{"merge", "-from", "nonexistent", "-author", "a"}); err == nil {
			t.Error("merge from missing branch accepted")
		}
	})
}

func TestCLICopyBetweenRepos(t *testing.T) {
	base := t.TempDir()
	srcDir := filepath.Join(base, "src")
	dstDir := filepath.Join(base, "dst")
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, _ := os.Getwd()
	t.Cleanup(func() { _ = os.Chdir(old) })

	// Source repository with a cited library.
	if err := os.Chdir(srcDir); err != nil {
		t.Fatal(err)
	}
	mustRun(t, "init", "-owner", "chenli", "-name", "corecover", "-url", "https://x/corecover")
	write(t, "lib/algo.py", "algorithm\n")
	mustRun(t, "commit", "-author", "chenli", "-m", "algorithm")

	// Destination imports it via CopyCite.
	if err := os.Chdir(dstDir); err != nil {
		t.Fatal(err)
	}
	mustRun(t, "init", "-owner", "yinjun", "-name", "demo", "-url", "https://x/demo")
	write(t, "main.py", "main\n")
	mustRun(t, "commit", "-author", "yinjun", "-m", "initial")
	mustRun(t, "copy", "-src-dir", srcDir, "-src-path", "/lib", "-dst-path", "/CoreCover", "-author", "yinjun")
	if _, err := os.Stat("CoreCover/algo.py"); err != nil {
		t.Errorf("copied file missing on disk: %v", err)
	}
	mustRun(t, "cite", "-path", "/CoreCover/algo.py")
}
