// Command gitcite is the paper's "local executable tool": a citation-aware
// version-control CLI. State lives in a .gitcite directory next to the
// project files; the working directory itself is the worktree.
//
// Usage:
//
//	gitcite init -owner O -name N [-url U] [-license L] [-pack]
//	gitcite commit -author NAME [-email E] -m MSG
//	gitcite log | branches | branch NAME | switch NAME
//	gitcite add-cite -path P -owner O -repo R [-url U] [-version V] [-authors "A,B"]
//	gitcite modify-cite -path P … | del-cite -path P
//	gitcite cite -path P [-rev R] [-format text|bibtex|cff|json]   (GenCite)
//	gitcite chain -path P [-rev R]                         (whole-path semantics)
//	gitcite citefile [-rev R]                              (print citation.cite)
//	gitcite repack                                         (fold loose objects into packs)
//	gitcite merge -from BRANCH -author NAME [-strategy ours|theirs|newest|three-way]
//	gitcite copy -src-dir DIR -src-path P -dst-path Q -author NAME  (CopyCite)
//	gitcite mv OLD NEW | rm PATH                           (then commit)
//	gitcite push|pull -server URL [-token T] -owner O -repo R -branch B
//	gitcite retro-enable -new-branch B | retro-check
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/format"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/report"
	"github.com/gitcite/gitcite/internal/retro"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gitcite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (try: init, commit, cite, add-cite, merge, log)")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "init":
		return cmdInit(rest)
	case "commit":
		return cmdCommit(rest)
	case "log":
		return cmdLog()
	case "branches":
		return cmdBranches()
	case "branch":
		return cmdBranch(rest)
	case "switch":
		return cmdSwitch(rest)
	case "add-cite", "modify-cite":
		return cmdEditCite(cmd, rest)
	case "del-cite":
		return cmdDelCite(rest)
	case "cite":
		return cmdCite(rest)
	case "chain":
		return cmdChain(rest)
	case "citefile":
		return cmdCiteFile(rest)
	case "merge":
		return cmdMerge(rest)
	case "copy":
		return cmdCopy(rest)
	case "mv":
		return cmdMove(rest)
	case "rm":
		return cmdRemove(rest)
	case "push", "pull":
		return cmdSync(cmd, rest)
	case "repack":
		return cmdRepack()
	case "credit":
		return cmdCredit()
	case "retro-enable":
		return cmdRetroEnable(rest)
	case "retro-check":
		return cmdRetroCheck()
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

const stateDir = ".gitcite"

// storagePack marks a repository whose .gitcite/objects uses pack-based
// storage (gitcite init -pack, or a completed gitcite repack migration).
const storagePack = "pack"

func openRepo() (*gitcite.Repo, error) {
	meta, storage, err := loadMeta()
	if err != nil {
		return nil, err
	}
	if storage == storagePack {
		return gitcite.OpenPackedFileRepo(stateDir, meta)
	}
	return gitcite.OpenFileRepo(stateDir, meta)
}

func metaPath() string { return stateDir + "/meta" }

func saveMeta(m gitcite.Meta, storage string) error {
	content := fmt.Sprintf("owner=%s\nname=%s\nurl=%s\nlicense=%s\n", m.Owner, m.Name, m.URL, m.License)
	if storage != "" {
		content += fmt.Sprintf("storage=%s\n", storage)
	}
	return os.WriteFile(metaPath(), []byte(content), 0o644)
}

func loadMeta() (gitcite.Meta, string, error) {
	data, err := os.ReadFile(metaPath())
	if err != nil {
		return gitcite.Meta{}, "", fmt.Errorf("not a gitcite repository (run 'gitcite init'): %w", err)
	}
	m := gitcite.Meta{}
	storage := ""
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		switch key {
		case "owner":
			m.Owner = val
		case "name":
			m.Name = val
		case "url":
			m.URL = val
		case "license":
			m.License = val
		case "storage":
			storage = val
		}
	}
	return m, storage, m.Validate()
}

// resolveRev maps an empty rev to HEAD and otherwise resolves a branch
// name, full commit hex, or unambiguous abbreviated commit-ID prefix (≥ 4
// hex chars) through the object store's ordered ID index.
func resolveRev(repo *gitcite.Repo, rev string) (object.ID, error) {
	if rev == "" {
		return repo.VCS.Head()
	}
	if id, err := object.ParseID(rev); err == nil {
		if _, err := repo.VCS.Commit(id); err != nil {
			return object.ID{}, fmt.Errorf("unknown commit %s", rev)
		}
		return id, nil
	}
	if id, err := repo.VCS.BranchTip(rev); err == nil {
		return id, nil
	}
	if len(rev) >= 4 {
		if id, err := repo.VCS.ResolveCommitPrefix(rev); err == nil {
			return id, nil
		} else if errors.Is(err, vcs.ErrAmbiguousPrefix) {
			return object.ID{}, err
		}
	}
	return object.ID{}, fmt.Errorf("unknown revision %q (want a branch, commit ID, or ≥4-char commit prefix)", rev)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	owner := fs.String("owner", "", "repository owner (required)")
	name := fs.String("name", "", "repository name (required)")
	url := fs.String("url", "", "repository URL")
	license := fs.String("license", "", "license identifier")
	pack := fs.Bool("pack", false, "use pack-based object storage (append-only pack files with a sorted ID index)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := gitcite.Meta{Owner: *owner, Name: *name, URL: *url, License: *license}
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return err
	}
	storage := ""
	if *pack {
		storage = storagePack
	}
	if err := saveMeta(m, storage); err != nil {
		return err
	}
	open := gitcite.OpenFileRepo
	if *pack {
		open = gitcite.OpenPackedFileRepo
	}
	if _, err := open(stateDir, m); err != nil {
		return err
	}
	layout := "loose objects"
	if *pack {
		layout = "pack storage"
	}
	fmt.Printf("initialised citation-enabled repository %s/%s in %s (%s)\n", m.Owner, m.Name, stateDir, layout)
	return nil
}

// cmdRepack migrates a loose-object repository to pack storage (or folds a
// packed repository's strays and consolidates its packs): every loose
// object is absorbed into a single pack and the meta file records the pack
// layout so later commands open the store packed. The fold is the
// two-phase concurrent repack: other processes' readers of the same
// .gitcite keep working for its whole duration, and within this process
// the store is locked only for the final swap. A store already
// consolidated to one pack with nothing loose returns immediately without
// rewriting anything.
func cmdRepack() error {
	meta, _, err := loadMeta()
	if err != nil {
		return err
	}
	repo, err := gitcite.OpenPackedFileRepo(stateDir, meta)
	if err != nil {
		return err
	}
	defer repo.Close()
	// Record the pack layout BEFORE the destructive fold: a packed open
	// still reads loose objects, so either crash order leaves a readable
	// repository — the reverse order would delete the loose files while
	// the meta still told every later command to open loose-only.
	if err := saveMeta(meta, storagePack); err != nil {
		return err
	}
	start := time.Now()
	folded, err := repo.VCS.Repack()
	if err != nil {
		return err
	}
	fmt.Printf("repacked in %s: %d loose objects folded into pack storage\n",
		time.Since(start).Round(time.Millisecond), folded)
	return nil
}

// loadWorktree checks out the current branch and overlays the files found
// in the working directory, so user edits are picked up; files deleted on
// disk disappear from the worktree.
func loadWorktree(repo *gitcite.Repo) (*gitcite.Worktree, string, error) {
	branch, err := repo.VCS.CurrentBranch()
	if err != nil {
		return nil, "", err
	}
	wt, err := repo.Checkout(branch)
	if err != nil {
		return nil, "", err
	}
	seen := map[string]bool{}
	err = walkDir(".", func(rel string, data []byte) error {
		p := "/" + rel
		seen[p] = true
		return wt.WriteFile(p, data)
	})
	if err != nil {
		return nil, "", err
	}
	for _, p := range wt.Paths() {
		if !seen[p] {
			if err := wt.RemoveFile(p); err != nil {
				return nil, "", err
			}
		}
	}
	return wt, branch, nil
}

func walkDir(root string, fn func(rel string, data []byte) error) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == stateDir || strings.HasPrefix(name, ".") || name == "citation.cite" {
			continue
		}
		full := root + "/" + name
		if e.IsDir() {
			if err := walkDir(full, fn); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(full)
		if err != nil {
			return err
		}
		rel := strings.TrimPrefix(full, "./")
		if err := fn(rel, data); err != nil {
			return err
		}
	}
	return nil
}

// materialize writes the committed worktree (files + citation.cite) back to
// the working directory.
func materialize(repo *gitcite.Repo, commit object.ID) error {
	treeID, err := repo.VCS.TreeOf(commit)
	if err != nil {
		return err
	}
	files, err := vcs.TreeToFileMap(repo.VCS.Objects, treeID)
	if err != nil {
		return err
	}
	for p, fc := range files {
		rel := strings.TrimPrefix(p, "/")
		if dir := dirOf(rel); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(rel, fc.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func dirOf(rel string) string {
	if i := strings.LastIndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return ""
}

func cmdCommit(args []string) error {
	fs := flag.NewFlagSet("commit", flag.ContinueOnError)
	author := fs.String("author", "", "author name (required)")
	email := fs.String("email", "", "author email")
	msg := fs.String("m", "", "commit message (required)")
	similarity := fs.Float64("rename-similarity", 0.6, "content-similarity threshold for detecting renames of cited files (0 disables fuzzy matching)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *author == "" || *msg == "" {
		return fmt.Errorf("commit requires -author and -m")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	// Detect moves made directly on disk so their citations follow the
	// files instead of being pruned.
	renames, err := wt.SyncRenames(gitcite.RenameDetection{MinSimilarity: *similarity})
	if err != nil {
		return err
	}
	for _, rn := range renames {
		fmt.Printf("detected rename: %s -> %s (citation rekeyed)\n", rn.OldPath, rn.NewPath)
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(*author, *email, time.Now()),
		Message: *msg,
	})
	if err != nil {
		return err
	}
	if err := materialize(repo, id); err != nil {
		return err
	}
	fmt.Printf("[%s %s] %s\n", branch, id.Short(), *msg)
	return nil
}

func cmdLog() error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := repo.VCS.Head()
	if err != nil {
		return err
	}
	return repo.VCS.Log(head, func(id object.ID, c *object.Commit) error {
		kind := ""
		if c.IsMerge() {
			kind = " (merge)"
		}
		fmt.Printf("%s %s  %s  %s%s\n", id.Short(),
			c.Committer.When.UTC().Format("2006-01-02 15:04"),
			c.Author.Name, c.Summary(), kind)
		return nil
	})
}

func cmdBranches() error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	branches, err := repo.VCS.Branches()
	if err != nil {
		return err
	}
	current, _ := repo.VCS.CurrentBranch()
	for _, b := range branches {
		marker := "  "
		if b == current {
			marker = "* "
		}
		fmt.Println(marker + b)
	}
	return nil
}

func cmdBranch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gitcite branch NAME")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := repo.VCS.Head()
	if err != nil {
		return err
	}
	if err := repo.VCS.CreateBranch(args[0], head); err != nil {
		return err
	}
	fmt.Printf("created branch %s at %s\n", args[0], head.Short())
	return nil
}

func cmdSwitch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gitcite switch BRANCH")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	if err := repo.VCS.Checkout(args[0]); err != nil {
		return err
	}
	if tip, err := repo.VCS.BranchTip(args[0]); err == nil {
		if err := materialize(repo, tip); err != nil {
			return err
		}
	}
	fmt.Printf("switched to branch %s\n", args[0])
	return nil
}

func citationFlags(fs *flag.FlagSet) func() core.Citation {
	owner := fs.String("owner", "", "citation owner")
	repoName := fs.String("repo", "", "cited repository name")
	url := fs.String("url", "", "citation URL")
	doi := fs.String("doi", "", "citation DOI")
	version := fs.String("version", "", "cited version")
	commitID := fs.String("commit", "", "cited commit id")
	license := fs.String("license", "", "license")
	authors := fs.String("authors", "", "comma-separated author list")
	note := fs.String("note", "", "free-form note")
	return func() core.Citation {
		c := core.Citation{
			Owner: *owner, RepoName: *repoName, URL: *url, DOI: *doi,
			Version: *version, CommitID: *commitID, License: *license, Note: *note,
		}
		if *authors != "" {
			for _, a := range strings.Split(*authors, ",") {
				c.AuthorList = append(c.AuthorList, strings.TrimSpace(a))
			}
		}
		return c
	}
}

func cmdEditCite(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	path := fs.String("path", "", "tree path (required)")
	author := fs.String("author", "gitcite", "commit author")
	email := fs.String("email", "", "commit author email")
	getCitation := citationFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("%s requires -path", cmd)
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	cite := getCitation()
	if cmd == "add-cite" {
		err = wt.AddCite(*path, cite)
	} else {
		err = wt.ModifyCite(*path, cite)
	}
	if err != nil {
		return err
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(*author, *email, time.Now()),
		Message: fmt.Sprintf("%s %s (via GitCite)", cmd, *path),
	})
	if err != nil {
		return err
	}
	if err := materialize(repo, id); err != nil {
		return err
	}
	fmt.Printf("[%s %s] %s %s\n", branch, id.Short(), cmd, *path)
	return nil
}

func cmdDelCite(args []string) error {
	fs := flag.NewFlagSet("del-cite", flag.ContinueOnError)
	path := fs.String("path", "", "tree path (required)")
	author := fs.String("author", "gitcite", "commit author")
	email := fs.String("email", "", "commit author email")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("del-cite requires -path")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	if err := wt.DelCite(*path); err != nil {
		return err
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(*author, *email, time.Now()),
		Message: fmt.Sprintf("del-cite %s (via GitCite)", *path),
	})
	if err != nil {
		return err
	}
	if err := materialize(repo, id); err != nil {
		return err
	}
	fmt.Printf("[%s %s] del-cite %s\n", branch, id.Short(), *path)
	return nil
}

func cmdCite(args []string) error {
	fs := flag.NewFlagSet("cite", flag.ContinueOnError)
	path := fs.String("path", "/", "tree path")
	formatName := fs.String("format", "text", "output format: text, bibtex, cff, json")
	rev := fs.String("rev", "", "revision to cite: branch, commit ID, or ≥4-char commit prefix (default HEAD)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := format.Parse(*formatName)
	if err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := resolveRev(repo, *rev)
	if err != nil {
		return err
	}
	cite, from, err := repo.Generate(head, *path)
	if err != nil {
		return err
	}
	rendered, err := format.Render(cite, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "citation for %s (from %s):\n", *path, from)
	fmt.Print(rendered)
	return nil
}

func cmdChain(args []string) error {
	fs := flag.NewFlagSet("chain", flag.ContinueOnError)
	path := fs.String("path", "/", "tree path")
	rev := fs.String("rev", "", "revision: branch, commit ID, or ≥4-char commit prefix (default HEAD)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := resolveRev(repo, *rev)
	if err != nil {
		return err
	}
	chain, err := repo.GenerateChain(head, *path)
	if err != nil {
		return err
	}
	fmt.Print(format.ChainText(chain))
	return nil
}

func cmdCiteFile(args []string) error {
	fs := flag.NewFlagSet("citefile", flag.ContinueOnError)
	rev := fs.String("rev", "", "revision: branch, commit ID, or ≥4-char commit prefix (default HEAD)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := resolveRev(repo, *rev)
	if err != nil {
		return err
	}
	data, err := repo.CiteFileBytes(head)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	from := fs.String("from", "", "branch to merge (required)")
	author := fs.String("author", "gitcite", "merge commit author")
	email := fs.String("email", "", "author email")
	strategy := fs.String("strategy", "ours", "citation conflicts: ours, theirs, newest, three-way")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from == "" {
		return fmt.Errorf("merge requires -from")
	}
	var strat core.Strategy
	switch *strategy {
	case "ours":
		strat = core.StrategyOurs
	case "theirs":
		strat = core.StrategyTheirs
	case "newest":
		strat = core.StrategyNewest
	case "three-way":
		strat = core.StrategyThreeWay
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	branch, err := repo.VCS.CurrentBranch()
	if err != nil {
		return err
	}
	res, err := repo.MergeBranches(branch, *from, gitcite.MergeOptions{
		Citations: core.MergeOptions{
			Strategy: strat,
			Resolver: func(c core.MergeConflict) (core.Citation, error) { return c.Ours, nil },
		},
		Commit: vcs.CommitOptions{
			Author:  vcs.Sig(*author, *email, time.Now()),
			Message: fmt.Sprintf("Merge branch '%s' (MergeCite)", *from),
		},
	})
	if err != nil {
		return err
	}
	if err := materialize(repo, res.CommitID); err != nil {
		return err
	}
	switch {
	case res.FastForward:
		fmt.Printf("fast-forwarded %s to %s\n", branch, res.CommitID.Short())
	default:
		fmt.Printf("merged %s into %s: %s (%d file conflicts, %d citation conflicts, %d citations pruned)\n",
			*from, branch, res.CommitID.Short(), len(res.FileConflicts), len(res.CiteConflicts), len(res.PrunedCitations))
	}
	return nil
}

func cmdCopy(args []string) error {
	fs := flag.NewFlagSet("copy", flag.ContinueOnError)
	srcDir := fs.String("src-dir", "", "source repository directory (required)")
	srcPath := fs.String("src-path", "/", "path within the source version")
	dstPath := fs.String("dst-path", "", "destination path here (required)")
	author := fs.String("author", "gitcite", "commit author")
	email := fs.String("email", "", "author email")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *srcDir == "" || *dstPath == "" {
		return fmt.Errorf("copy requires -src-dir and -dst-path")
	}
	// Open the source repository (its meta lives next to its state dir).
	srcMetaData, err := os.ReadFile(*srcDir + "/" + stateDir + "/meta")
	if err != nil {
		return fmt.Errorf("source is not a gitcite repository: %w", err)
	}
	srcMeta := gitcite.Meta{}
	for _, line := range strings.Split(string(srcMetaData), "\n") {
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		switch key {
		case "owner":
			srcMeta.Owner = val
		case "name":
			srcMeta.Name = val
		case "url":
			srcMeta.URL = val
		case "license":
			srcMeta.License = val
		}
	}
	src, err := gitcite.OpenFileRepo(*srcDir+"/"+stateDir, srcMeta)
	if err != nil {
		return err
	}
	srcTip, err := src.VCS.Head()
	if err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	if err := wt.CopyCite(src, srcTip, *srcPath, *dstPath); err != nil {
		return err
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(*author, *email, time.Now()),
		Message: fmt.Sprintf("CopyCite %s:%s -> %s", srcMeta.Name, *srcPath, *dstPath),
	})
	if err != nil {
		return err
	}
	if err := materialize(repo, id); err != nil {
		return err
	}
	fmt.Printf("[%s %s] CopyCite %s -> %s\n", branch, id.Short(), *srcPath, *dstPath)
	return nil
}

func cmdMove(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: gitcite mv OLD NEW")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	if err := wt.Move(args[0], args[1]); err != nil {
		return err
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig("gitcite", "", time.Now()),
		Message: fmt.Sprintf("mv %s %s (citations rekeyed)", args[0], args[1]),
	})
	if err != nil {
		return err
	}
	// Reflect the move on disk.
	old := strings.TrimPrefix(args[0], "/")
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	if err := materialize(repo, id); err != nil {
		return err
	}
	fmt.Printf("[%s %s] moved %s -> %s\n", branch, id.Short(), args[0], args[1])
	return nil
}

func cmdRemove(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gitcite rm PATH")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	wt, branch, err := loadWorktree(repo)
	if err != nil {
		return err
	}
	if err := wt.RemoveFile(args[0]); err != nil {
		return err
	}
	id, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig("gitcite", "", time.Now()),
		Message: fmt.Sprintf("rm %s", args[0]),
	})
	if err != nil {
		return err
	}
	if err := os.Remove(strings.TrimPrefix(args[0], "/")); err != nil && !os.IsNotExist(err) {
		return err
	}
	fmt.Printf("[%s %s] removed %s\n", branch, id.Short(), args[0])
	return nil
}

func cmdSync(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	server := fs.String("server", "", "hosting server base URL (required)")
	tok := fs.String("token", "", "API token")
	owner := fs.String("owner", "", "remote repository owner (required)")
	repoName := fs.String("repo", "", "remote repository name (required)")
	branch := fs.String("branch", "main", "branch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" || *owner == "" || *repoName == "" {
		return fmt.Errorf("%s requires -server, -owner and -repo", cmd)
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	client := extension.New(*server, *tok)
	if cmd == "push" {
		// Sync negotiates with the remote branch tips first, so only the
		// object delta travels.
		n, err := client.Sync(repo, *owner, *repoName, *branch)
		if err != nil {
			return err
		}
		fmt.Printf("pushed %s (%d new objects)\n", *branch, n)
		return nil
	}
	tip, n, err := client.Fetch(repo, *owner, *repoName, *branch, *branch)
	if err != nil {
		return err
	}
	if err := materialize(repo, tip); err != nil {
		return err
	}
	fmt.Printf("pulled %s at %s (%d new objects)\n", *branch, tip.Short(), n)
	return nil
}

func cmdCredit() error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	head, err := repo.VCS.Head()
	if err != nil {
		return err
	}
	rep, err := report.Build(repo, head)
	if err != nil {
		return err
	}
	rep.Fprint(os.Stdout)
	return nil
}

func cmdRetroEnable(args []string) error {
	fs := flag.NewFlagSet("retro-enable", flag.ContinueOnError)
	newBranch := fs.String("new-branch", "", "branch name for the citation-enabled history (required)")
	maxDepth := fs.Int("max-depth", 0, "bound directory citation depth (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *newBranch == "" {
		return fmt.Errorf("retro-enable requires -new-branch")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	branch, err := repo.VCS.CurrentBranch()
	if err != nil {
		return err
	}
	report, err := retro.Enable(repo, branch, *newBranch, retro.Options{MaxDepth: *maxDepth})
	if err != nil {
		return err
	}
	fmt.Printf("rewrote %d versions onto %s (tip %s), %d citation entries synthesised\n",
		len(report.Rewritten), *newBranch, report.NewTip.Short(), report.EntriesAdded)
	return nil
}

func cmdRetroCheck() error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	branch, err := repo.VCS.CurrentBranch()
	if err != nil {
		return err
	}
	issues, err := retro.Check(repo, branch)
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Println("history is citation-consistent")
		return nil
	}
	for _, i := range issues {
		fmt.Println(i.String())
	}
	return fmt.Errorf("%d issue(s) found", len(issues))
}
