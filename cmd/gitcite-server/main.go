// Command gitcite-server runs the hosting platform (the paper's
// project-hosting side — the role GitHub plays): user accounts, hosted
// citation-enabled repositories, and the REST API the browser-extension
// client talks to.
//
//	gitcite-server -addr :8080 [-seed]
//
// With -seed, the server starts pre-populated with the paper's §4
// demonstration repositories (Data_citation_demo and alu01-corecover) under
// a "demo" account whose API token is printed on startup.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/scenario"
	"net/http/httptest"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Bool("seed", false, "pre-populate with the paper's demonstration repositories")
	flag.Parse()

	platform := hosting.NewPlatform()
	server := hosting.NewServer(platform)

	if *seed {
		if err := seedDemo(platform, server, *addr); err != nil {
			log.Fatalf("gitcite-server: seeding: %v", err)
		}
	}

	log.Printf("gitcite-server listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server); err != nil {
		log.Fatal(err)
	}
}

// seedDemo recreates the Listing 1 repositories on the platform so the
// demo is browsable immediately.
func seedDemo(platform *hosting.Platform, server *hosting.Server, addr string) error {
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	user, err := platform.CreateUser("demo")
	if err != nil {
		return err
	}
	// Register both repositories and push their histories through the same
	// HTTP path a real client would use.
	ts := httptest.NewServer(server)
	defer ts.Close()
	client := extension.New(ts.URL, user.Token)
	if err := client.CreateRepo("Data_citation_demo", res.Demo.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Push(res.Demo, "demo", "Data_citation_demo", "master"); err != nil {
		return err
	}
	if err := client.CreateRepo("alu01-corecover", res.CoreCover.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Push(res.CoreCover, "demo", "alu01-corecover", "master"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seeded demo repositories; API token for user %q: %s\n", user.Name, user.Token)
	fmt.Fprintf(os.Stderr, "try: curl 'http://localhost%s/api/repos/demo/Data_citation_demo/cite/master?path=/CoreCover&format=text'\n", addr)
	return nil
}
