// Command gitcite-server runs the hosting platform (the paper's
// project-hosting side — the role GitHub plays): user accounts, hosted
// citation-enabled repositories, and the versioned REST API (/api/v1) the
// browser-extension client talks to.
//
//	gitcite-server -addr :8080 [-seed] [-pack DIR] [-open-repos N]
//	    [-auto-repack-packs N] [-auto-repack-loose N] [-admin-token TOK]
//	    [-replica-of URL -replica-token TOK] [-replica-poll D] [-replica-id ID]
//	    [-shutdown-timeout D] [-cors-origin ORIGIN]
//	    [-rate-limit RPS -rate-burst N] [-log]
//
// With -seed, the server starts pre-populated with the paper's §4
// demonstration repositories (Data_citation_demo and alu01-corecover) under
// a "demo" account whose API token is printed on startup.
//
// With -pack DIR, the server is a durable, restartable daemon: hosted
// repositories persist under DIR/<owner>/<name> with pack-based object
// storage, and accounts, tokens, memberships and fork intents replay from
// the crash-safe DIR/manifest.log journal. Boot reconciles the journal
// against the directory tree (partial forks aborted, orphan directories
// GC'd), at most -open-repos repository handles stay open at once, and
// pushes trigger background repacks past the -auto-repack-* thresholds.
// SIGINT/SIGTERM drain in-flight requests (bounded by -shutdown-timeout)
// before repositories close and the manifest is flushed.
//
// With -admin-token, the operator endpoints under /api/v1/admin (platform
// status, per-repository storage stats, manual repack and GC) answer to
// that bearer token.
//
// With -replica-of, the server is a read replica: it mirrors the primary at
// that URL (authenticating with the primary's admin token via
// -replica-token), serves the whole read surface locally, and answers every
// write with a 307 redirect at the primary. Combined with -pack, the
// replica's feed cursor is journaled crash-safely next to the manifest, so
// a killed replica resumes catch-up from where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/hosting/replica"
	"github.com/gitcite/gitcite/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Bool("seed", false, "pre-populate with the paper's demonstration repositories")
	packDir := flag.String("pack", "", "persist hosted repositories and the platform manifest under this directory (empty keeps everything in memory)")
	openRepos := flag.Int("open-repos", 64, "max hosted repository handles kept open at once with -pack (0 = unbounded)")
	autoRepackPacks := flag.Int("auto-repack-packs", 8, "repack a repository after a push leaves it with this many packs (0 disables)")
	autoRepackLoose := flag.Int("auto-repack-loose", 512, "repack a repository after a push leaves it with this many loose objects (0 disables)")
	adminToken := flag.String("admin-token", "", "bearer token enabling the /api/v1/admin endpoints (empty disables them)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary at this base URL (writes answer 307 at it)")
	replicaToken := flag.String("replica-token", "", "the primary's admin token, authenticating the replication feed")
	replicaPoll := flag.Duration("replica-poll", 2*time.Second, "replication poll pacing and error-backoff seed")
	replicaID := flag.String("replica-id", "", "stable follower identity on the primary's events feed (default: host name)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests to drain")
	corsOrigin := flag.String("cors-origin", "*", "CORS allowed origin for the browser extension (empty disables CORS)")
	rateLimit := flag.Float64("rate-limit", 0, "per-token request rate limit in req/s (0 disables)")
	rateBurst := flag.Int("rate-burst", 30, "rate-limit burst capacity")
	logReqs := flag.Bool("log", false, "log one line per request")
	flag.Parse()

	var opts []hosting.ServerOption
	opts = append(opts, hosting.WithAllowedOrigin(*corsOrigin))
	if *rateLimit > 0 {
		opts = append(opts, hosting.WithRateLimit(*rateLimit, *rateBurst))
	}
	if *logReqs {
		opts = append(opts, hosting.WithRequestLogger(log.New(os.Stderr, "http: ", log.LstdFlags)))
	}
	if *adminToken != "" {
		opts = append(opts, hosting.WithAdminToken(*adminToken))
	}

	var platform *hosting.Platform
	if *packDir != "" {
		var err error
		platform, err = hosting.OpenPlatform(*packDir,
			hosting.WithOpenRepoLimit(*openRepos),
			hosting.WithAutoRepack(*autoRepackPacks, *autoRepackLoose),
		)
		if err != nil {
			log.Fatalf("gitcite-server: open platform: %v", err)
		}
		st := platform.Status(context.Background())
		log.Printf("gitcite-server storing repositories under %s (pack-based, %d repos, %d users recovered)",
			*packDir, st.Repos, st.Users)
	} else {
		platform = hosting.NewPlatform()
	}
	var rep *replica.Replicator
	if *replicaOf != "" {
		if *seed {
			log.Fatal("gitcite-server: -seed and -replica-of are mutually exclusive (a replica takes no writes)")
		}
		// Boot-time role decision: a journaled promotion supersedes the
		// -replica-of flag. A node promoted mid-flight and then restarted
		// (deliberately or by kill -9 after the journal landed) must come
		// back as a primary — resubscribing to the old primary would
		// re-follow a feed it already took over from.
		if promo, ok := replica.LoadPromotion(*packDir); ok {
			log.Printf("gitcite-server promoted at cursor %d (was replica of %s); booting as primary despite -replica-of",
				promo.Cursor, promo.OldPrimary)
		} else {
			// A stable follower identity survives restarts, so the primary's
			// retention sizing and fleet status see one follower catching up,
			// not a parade of fresh ones.
			id := *replicaID
			if id == "" {
				id, _ = os.Hostname()
			}
			var err error
			rep, err = replica.New(replica.Config{
				Primary:      *replicaOf,
				Token:        *replicaToken,
				Platform:     platform,
				StateDir:     *packDir,
				PollInterval: *replicaPoll,
				ReplicaID:    id,
				Logger:       log.Default(),
			})
			if err != nil {
				log.Fatalf("gitcite-server: %v", err)
			}
			opts = append(opts,
				hosting.WithReplicaMode(*replicaOf, rep.Status),
				hosting.WithPromotion(rep.Promote),
			)
		}
	}
	server := hosting.NewServer(platform, opts...)

	if *seed {
		if err := seedDemo(platform, server, *addr); err != nil {
			log.Fatalf("gitcite-server: seeding: %v", err)
		}
	}

	// Graceful lifecycle: serve until SIGINT/SIGTERM, then drain in-flight
	// requests before closing repositories and flushing the manifest — so a
	// polite stop never tears a response, and an impolite kill -9 is exactly
	// what boot reconciliation recovers from.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	repDone := make(chan struct{})
	if rep != nil {
		go func() {
			defer close(repDone)
			if err := rep.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("gitcite-server: replication: %v", err)
			}
		}()
		log.Printf("gitcite-server replicating from %s", *replicaOf)
	} else {
		close(repDone)
	}
	srv := &http.Server{Addr: *addr, Handler: server}
	// http.Server.Shutdown does not cancel in-flight request contexts, so a
	// parked /api/v1/events long-poller would hold the drain open for its
	// full wait. Waking the waiters turns those polls into immediate empty
	// responses and lets shutdown finish promptly.
	srv.RegisterOnShutdown(platform.InterruptEventWaiters)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gitcite-server listening on %s (API v1 under /api/v1)", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("gitcite-server shutting down (draining up to %s)", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("gitcite-server: shutdown: %v", err)
	}
	// The replication loop exits on the same signal context; wait for it so
	// the platform never closes under an in-flight event application.
	<-repDone
	if err := platform.Close(); err != nil {
		log.Printf("gitcite-server: close platform: %v", err)
	}
	log.Printf("gitcite-server stopped")
}

// seedDemo recreates the Listing 1 repositories on the platform so the
// demo is browsable immediately.
func seedDemo(platform *hosting.Platform, server *hosting.Server, addr string) error {
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	user, err := platform.CreateUser(context.Background(), "demo")
	if errors.Is(err, hosting.ErrConflict) {
		// A persistent platform restarted with -seed: the demo account and
		// its repositories were recovered from the manifest.
		fmt.Fprintln(os.Stderr, "demo repositories already seeded (recovered from manifest)")
		return nil
	}
	if err != nil {
		return err
	}
	// Register both repositories and push their histories through the same
	// HTTP sync path a real client would use.
	ts := httptest.NewServer(server)
	defer ts.Close()
	client := extension.New(ts.URL, user.Token)
	if err := client.CreateRepo("Data_citation_demo", res.Demo.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Sync(res.Demo, "demo", "Data_citation_demo", "master"); err != nil {
		return err
	}
	if err := client.CreateRepo("alu01-corecover", res.CoreCover.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Sync(res.CoreCover, "demo", "alu01-corecover", "master"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seeded demo repositories; API token for user %q: %s\n", user.Name, user.Token)
	host := addr
	if strings.HasPrefix(host, ":") {
		host = "localhost" + host
	}
	fmt.Fprintf(os.Stderr, "try: curl 'http://%s/api/v1/repos/demo/Data_citation_demo/cite/master?path=/CoreCover&format=text'\n", host)
	return nil
}
