// Command gitcite-server runs the hosting platform (the paper's
// project-hosting side — the role GitHub plays): user accounts, hosted
// citation-enabled repositories, and the versioned REST API (/api/v1) the
// browser-extension client talks to.
//
//	gitcite-server -addr :8080 [-seed] [-pack DIR] [-cors-origin ORIGIN] [-rate-limit RPS -rate-burst N] [-log]
//
// With -seed, the server starts pre-populated with the paper's §4
// demonstration repositories (Data_citation_demo and alu01-corecover) under
// a "demo" account whose API token is printed on startup.
//
// With -pack DIR, hosted repositories persist under DIR/<owner>/<name> with
// pack-based object storage (append-only pack files plus a sorted fan-out
// ID index) instead of living only in memory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Bool("seed", false, "pre-populate with the paper's demonstration repositories")
	packDir := flag.String("pack", "", "persist hosted repositories under this directory with pack-based object storage (empty keeps them in memory)")
	corsOrigin := flag.String("cors-origin", "*", "CORS allowed origin for the browser extension (empty disables CORS)")
	rateLimit := flag.Float64("rate-limit", 0, "per-token request rate limit in req/s (0 disables)")
	rateBurst := flag.Int("rate-burst", 30, "rate-limit burst capacity")
	logReqs := flag.Bool("log", false, "log one line per request")
	flag.Parse()

	var opts []hosting.ServerOption
	opts = append(opts, hosting.WithAllowedOrigin(*corsOrigin))
	if *rateLimit > 0 {
		opts = append(opts, hosting.WithRateLimit(*rateLimit, *rateBurst))
	}
	if *logReqs {
		opts = append(opts, hosting.WithRequestLogger(log.New(os.Stderr, "http: ", log.LstdFlags)))
	}

	var popts []hosting.PlatformOption
	if *packDir != "" {
		root := *packDir
		popts = append(popts, hosting.WithRepoFactory(func(meta gitcite.Meta) (*gitcite.Repo, error) {
			return gitcite.OpenPackedFileRepo(filepath.Join(root, meta.Owner, meta.Name), meta)
		}))
		log.Printf("gitcite-server storing repositories under %s (pack-based)", root)
	}

	platform := hosting.NewPlatform(popts...)
	server := hosting.NewServer(platform, opts...)

	if *seed {
		if err := seedDemo(platform, server, *addr); err != nil {
			log.Fatalf("gitcite-server: seeding: %v", err)
		}
	}

	log.Printf("gitcite-server listening on %s (API v1 under /api/v1)", *addr)
	if err := http.ListenAndServe(*addr, server); err != nil {
		log.Fatal(err)
	}
}

// seedDemo recreates the Listing 1 repositories on the platform so the
// demo is browsable immediately.
func seedDemo(platform *hosting.Platform, server *hosting.Server, addr string) error {
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	user, err := platform.CreateUser(context.Background(), "demo")
	if err != nil {
		return err
	}
	// Register both repositories and push their histories through the same
	// HTTP sync path a real client would use.
	ts := httptest.NewServer(server)
	defer ts.Close()
	client := extension.New(ts.URL, user.Token)
	if err := client.CreateRepo("Data_citation_demo", res.Demo.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Sync(res.Demo, "demo", "Data_citation_demo", "master"); err != nil {
		return err
	}
	if err := client.CreateRepo("alu01-corecover", res.CoreCover.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := client.Sync(res.CoreCover, "demo", "alu01-corecover", "master"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seeded demo repositories; API token for user %q: %s\n", user.Name, user.Token)
	fmt.Fprintf(os.Stderr, "try: curl 'http://localhost%s/api/v1/repos/demo/Data_citation_demo/cite/master?path=/CoreCover&format=text'\n", addr)
	return nil
}
