// Command gitcite-load is the open-loop load harness: it drives a real
// gitcite-server over HTTP across a scenario matrix (monorepo, registry,
// classroom, push-storm, replica-read) at a scheduled arrival rate, records
// per-endpoint-class tail latency measured from the *scheduled* arrival
// time (so queueing delay is measured, not hidden), and merges the results
// into the BENCH_<pr>.json artefact that scripts/bench_regression.sh gates
// on. Run with -help for flags; see README.md "Load testing".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gitcite/gitcite/internal/load"
)

func main() {
	var (
		profileName = flag.String("profile", "smoke", "scenario sizing: smoke (CI, deterministic, seconds) or full (population-scale)")
		scenarios   = flag.String("scenarios", "all", "comma-separated scenario subset (monorepo,registry,classroom,push-storm,replica-read) or all")
		listOnly    = flag.Bool("list", false, "list scenarios and exit")

		rate     = flag.Float64("rate", 0, "override offered requests/second per scenario")
		duration = flag.Duration("duration", 0, "override measured window per scenario")
		arrival  = flag.String("arrival", "", "override arrival process: poisson or fixed")
		seed     = flag.Int64("seed", -1, "override RNG seed (arrivals + request mix); -1 keeps the profile's seed")
		inflight = flag.Int("max-inflight", 0, "override max concurrently executing requests")

		outPath = flag.String("out", "", "merge the latency section into this BENCH_<pr>.json (e.g. BENCH_9.json)")
		pr      = flag.Int("pr", 0, "PR number recorded in -out (required with -out)")
		force   = flag.Bool("force", false, "with -out: overwrite a file recorded for a different PR")
		text    = flag.Bool("text", true, "print the flat latency/rate lines the regression gate parses")

		baseURL     = flag.String("base-url", "", "drive an external gitcite-server instead of an in-process one (replica-read is skipped)")
		injectDelay = flag.Duration("inject-delay", 0, "test hook: add a fixed per-request delay in the in-process server (gate-proof runs)")
	)
	flag.Parse()
	if err := run(*profileName, *scenarios, *listOnly, *rate, *duration, *arrival, *seed, *inflight,
		*outPath, *pr, *force, *text, *baseURL, *injectDelay); err != nil {
		fmt.Fprintln(os.Stderr, "gitcite-load:", err)
		os.Exit(1)
	}
}

func run(profileName, scenarioSpec string, listOnly bool, rate float64, duration time.Duration,
	arrival string, seed int64, inflight int, outPath string, pr int, force, text bool,
	baseURL string, injectDelay time.Duration) error {
	if listOnly {
		for _, s := range load.Scenarios() {
			fmt.Printf("%-14s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if outPath != "" && pr < 1 {
		return fmt.Errorf("-out requires -pr <n> (the PR number the file records)")
	}
	prof, err := load.ProfileByName(profileName)
	if err != nil {
		return err
	}
	if rate > 0 {
		prof.Rate = rate
	}
	if duration > 0 {
		prof.Duration = duration
	}
	if arrival != "" {
		prof.Arrival = arrival
	}
	if seed >= 0 {
		prof.Seed = seed
	}
	if inflight > 0 {
		prof.MaxInFlight = inflight
	}
	prof.BaseURL = baseURL
	prof.InjectDelay = injectDelay

	scens, err := load.ScenariosByName(scenarioSpec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	latency := map[string]*load.ScenarioLatency{}
	for _, s := range scens {
		if baseURL != "" && s.Name == "replica-read" {
			fmt.Fprintf(os.Stderr, "## %s: skipped (boots its own primary+replica pair; incompatible with -base-url)\n", s.Name)
			continue
		}
		fmt.Fprintf(os.Stderr, "## %s: setting up (%s profile)\n", s.Name, prof.Name)
		env, err := s.Setup(ctx, prof)
		if err != nil {
			return fmt.Errorf("%s setup: %w", s.Name, err)
		}
		fmt.Fprintf(os.Stderr, "## %s: offering %.0f req/s (%s) for %s\n", s.Name, prof.Rate, prof.Arrival, prof.Duration)
		res, err := load.Run(ctx, s.Name, env.Gen, prof.Options())
		env.Close()
		if err != nil {
			return fmt.Errorf("%s run: %w", s.Name, err)
		}
		if res.Errors > 0 {
			fmt.Fprintf(os.Stderr, "## %s: %d/%d requests errored\n", s.Name, res.Errors, res.Completed)
		}
		fmt.Fprintf(os.Stderr, "## %s: offered %.0f req/s, achieved %.0f req/s over %s\n",
			s.Name, res.OfferedRPS, res.AchievedRPS, res.Elapsed.Round(time.Millisecond))
		latency[s.Name] = res.Latency()
	}
	if len(latency) == 0 {
		return fmt.Errorf("no scenarios ran")
	}

	if text {
		if err := load.LatencyLines(os.Stdout, latency); err != nil {
			return err
		}
	}
	if outPath != "" {
		err := load.UpdateBenchFile(outPath, pr, force, func(f *load.BenchFile) {
			if f.Latency == nil {
				f.Latency = map[string]*load.ScenarioLatency{}
			}
			for scen, sl := range latency {
				f.Latency[scen] = sl
			}
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "## wrote latency section (%d scenarios) to %s\n", len(latency), outPath)
	}
	return nil
}
