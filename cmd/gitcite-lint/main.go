// Command gitcite-lint runs gitcite's custom static analyzers — the
// machine-checked performance and API invariants described in
// CONTRIBUTING.md — against the module. It is a blocking CI gate alongside
// go vet and staticcheck.
//
// Usage:
//
//	gitcite-lint [-only name,name] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 if any diagnostic is reported, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gitcite/gitcite/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gitcite-lint [-only name,name] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "gitcite-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gitcite-lint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPackages(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gitcite-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gitcite-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gitcite-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
