// Command gitcite-bench regenerates the paper's demonstration artefacts —
// every figure and listing of the evaluation/demonstration sections — and
// prints paper-vs-measured reports. See EXPERIMENTS.md for the mapping.
//
//	gitcite-bench -experiment all        (default)
//	gitcite-bench -experiment figure1    Figure 1 (right): running example
//	gitcite-bench -experiment architecture  Figure 1 (left): end-to-end flow
//	gitcite-bench -experiment figure2    Figure 2: extension permission flows
//	gitcite-bench -experiment listing1   Listing 1: final citation.cite
//	gitcite-bench -experiment demo       §4 scenario incl. live add/modify
//	gitcite-bench -experiment concurrent concurrent GenCite load generator
//	                                     (-clients N -requests M)
//	gitcite-bench -experiment commit     incremental vs full-rebuild write
//	                                     path (-files N -commits M)
//	gitcite-bench -experiment sync       v1 negotiated incremental sync +
//	                                     ETag/304 reads (-files N -commits M)
//	gitcite-bench -experiment counters   deterministic efficiency counters
//	                                     (machine-readable; CI regression gate)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/format"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/hosting/replica"
	"github.com/gitcite/gitcite/internal/load"
	"github.com/gitcite/gitcite/internal/scenario"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

var (
	clients  = flag.Int("clients", 16, "concurrent clients for -experiment concurrent")
	requests = flag.Int("requests", 500, "requests per client for -experiment concurrent")
	files    = flag.Int("files", 1000, "repository size for -experiment commit")
	commits  = flag.Int("commits", 200, "measured commits for -experiment commit")

	// BENCH_<pr>.json artefact flags (counters + cpumatrix experiments). The
	// PR number is a flag, not a constant: the file refuses to silently
	// clobber a different PR's record unless -force starts it fresh.
	outPath    = flag.String("out", "", "merge results into this BENCH_<pr>.json artefact (validated on write)")
	prNum      = flag.Int("pr", 0, "PR number recorded in -out (required with -out)")
	forceOut   = flag.Bool("force", false, "with -out: overwrite a file recorded for a different PR")
	benchInput = flag.String("bench-input", "-", "cpumatrix: `go test -bench` output to fold (path, or - for stdin)")
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: all, figure1, architecture, figure2, listing1, demo, concurrent, commit, sync, counters, cpumatrix")
	flag.Parse()
	if *outPath != "" && *prNum < 1 {
		fmt.Fprintln(os.Stderr, "gitcite-bench: -out requires -pr <n> (the PR number the file records)")
		os.Exit(2)
	}

	runners := map[string]func() error{
		"figure1":      runFigure1,
		"architecture": runArchitecture,
		"figure2":      runFigure2,
		"listing1":     runListing1,
		"demo":         runDemo,
		"concurrent":   runConcurrent,
		"commit":       runCommit,
		"sync":         runSync,
		"counters":     runCounters,
		"cpumatrix":    runCPUMatrix,
	}
	// cpumatrix is absent from "all": it folds externally produced
	// `go test -bench` output rather than running an experiment itself.
	order := []string{"figure1", "architecture", "figure2", "listing1", "demo", "concurrent", "commit", "sync", "counters"}

	if *experiment != "all" {
		run, ok := runners[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "gitcite-bench: unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "gitcite-bench: %s: %v\n", *experiment, err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "gitcite-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runFigure1() error {
	res, err := scenario.Figure1()
	if err != nil {
		return err
	}
	return res.Fprint(os.Stdout)
}

func runFigure2() error {
	res, err := scenario.Figure2()
	if err != nil {
		return err
	}
	return res.Fprint(os.Stdout)
}

func runListing1() error {
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	return res.Fprint(os.Stdout)
}

// runArchitecture exercises the left half of Figure 1 end-to-end: a local
// tool working against the hosting platform over HTTP — create, push,
// remote GenCite via the extension, remote AddCite, pull back.
func runArchitecture() error {
	fmt.Println("Figure 1 (left): architecture walk-through")
	fmt.Println("------------------------------------------")
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	platform := hosting.NewPlatform()
	server := hosting.NewServer(platform)
	ts := httptest.NewServer(server)
	defer ts.Close()

	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("yinjun")
	if err != nil {
		return err
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("Data_citation_demo", res.Demo.Meta.URL, ""); err != nil {
		return err
	}
	n, err := owner.Push(res.Demo, "yinjun", "Data_citation_demo", "master")
	if err != nil {
		return err
	}
	fmt.Printf("  local tool pushed the repository (%d objects, citation.cite included)\n", n)

	text, err := anon.GenCiteRendered("yinjun", "Data_citation_demo", "master", "/CoreCover", "text")
	if err != nil {
		return err
	}
	fmt.Printf("  extension GenCite over REST (anonymous):\n    %s", text)

	commit, err := owner.AddCite("yinjun", "Data_citation_demo", "master", "/schema", core.Citation{
		Owner: "Yinjun Wu", RepoName: "citedb-schema",
		URL: res.Demo.Meta.URL + "/schema", Version: "1",
	})
	if err != nil {
		return err
	}
	fmt.Printf("  extension AddCite committed remotely: %.7s\n", commit)

	tip, err := owner.Pull(res.Demo, "yinjun", "Data_citation_demo", "master", "master")
	if err != nil {
		return err
	}
	cite, from, err := res.Demo.Generate(tip, "/schema/citedb.sql")
	if err != nil {
		return err
	}
	fmt.Printf("  local tool pulled %.7s; Cite(/schema/citedb.sql) now from %s: %s\n",
		tip.String(), from, cite.RepoName)
	return nil
}

// runConcurrent drives the hosting platform's public read path — the
// extension's GenCite, chain and credit endpoints — from many concurrent
// clients against one hosted repository, and reports throughput. This is
// the many-readers regime the resolved-citation index and the sharded
// object caches exist for: after the first request warms a version's
// function, every remaining resolution is an O(1) index hit.
func runConcurrent() error {
	fmt.Println("Concurrent read-path load (resolved-citation index)")
	fmt.Println("---------------------------------------------------")
	if *clients < 1 || *requests < 1 {
		return fmt.Errorf("-clients and -requests must be at least 1 (got %d, %d)", *clients, *requests)
	}
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	platform := hosting.NewPlatform()
	server := hosting.NewServer(platform)
	ts := httptest.NewServer(server)
	defer ts.Close()

	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("yinjun")
	if err != nil {
		return err
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("Data_citation_demo", res.Demo.Meta.URL, ""); err != nil {
		return err
	}
	if _, err := owner.Push(res.Demo, "yinjun", "Data_citation_demo", "master"); err != nil {
		return err
	}
	paths := []string{
		"/CoreCover/src/CoreCover.java",
		"/citation/GUI/app.js",
		"/schema/citedb.sql",
		"/",
	}
	// One warm-up request so the measured window is the steady state.
	if _, _, err := anon.GenCite("yinjun", "Data_citation_demo", "master", paths[0]); err != nil {
		return err
	}

	total := *clients * *requests
	errs := make(chan error, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < *requests; i++ {
				p := paths[(c+i)%len(paths)]
				if _, _, err := anon.GenCite("yinjun", "Data_citation_demo", "master", p); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("  %d clients × %d GenCite requests = %d total\n", *clients, *requests, total)
	// Per-request latency: each of the `clients` goroutines experienced
	// elapsed wall time for its share of requests, so the mean is
	// elapsed×clients/total, not elapsed/total (which would divide the
	// parallelism away).
	fmt.Printf("  wall time %v, throughput %.0f req/s, mean latency %v\n",
		elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(),
		(elapsed * time.Duration(*clients) / time.Duration(total)).Round(time.Microsecond))
	return nil
}

// countingStore wraps a Store to count how many objects each write path
// actually hashes and stores.
type countingStore struct {
	store.Store
	puts atomic.Int64
}

func (c *countingStore) Put(o object.Object) (object.ID, error) {
	c.puts.Add(1)
	return c.Store.Put(o)
}

func (c *countingStore) PutMany(objs []object.Object) ([]object.ID, error) {
	c.puts.Add(int64(len(objs)))
	return store.PutMany(c.Store, objs)
}

func (c *countingStore) PutManyEncoded(batch []store.Encoded) error {
	c.puts.Add(int64(len(batch)))
	return store.PutManyEncoded(c.Store, batch)
}

// runCommit contrasts the two write paths on a -files-sized repository:
// the pre-incremental full rebuild (every blob and tree re-hashed and
// re-Put per commit) against the incremental delta commit (only the dirty
// path re-hashes). This is the commit-traffic regime the paper's
// piggybacking design depends on at hosting-platform scale.
func runCommit() error {
	fmt.Println("Incremental write path (commit-one-file)")
	fmt.Println("----------------------------------------")
	if *files < 1 || *commits < 1 {
		return fmt.Errorf("-files and -commits must be at least 1 (got %d, %d)", *files, *commits)
	}
	fileMap := make(map[string]vcs.FileContent, *files)
	for i := 0; i < *files; i++ {
		p := fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i)
		fileMap[p] = vcs.File(fmt.Sprintf("seed content %d", i))
	}
	opts := vcs.CommitOptions{Author: vcs.Sig("bench", "bench@x", time.Unix(1, 0)), Message: "bench"}
	edited := "/d3/s4/f0.txt"
	for p := range fileMap {
		edited = p
		break
	}

	// Full rebuild: the old write path.
	cold := &countingStore{Store: store.NewMemoryStore()}
	coldRepo := &vcs.Repository{Objects: cold, Refs: refs.NewMemoryStore()}
	if _, err := coldRepo.CommitFiles("main", fileMap, opts); err != nil {
		return err
	}
	cold.puts.Store(0)
	start := time.Now()
	for i := 0; i < *commits; i++ {
		fileMap[edited] = vcs.File(fmt.Sprintf("edit %d", i))
		if _, err := coldRepo.CommitFiles("main", fileMap, opts); err != nil {
			return err
		}
	}
	coldTime := time.Since(start)
	coldPuts := cold.puts.Load()

	// Incremental: delta against the parent's tree.
	inc := &countingStore{Store: store.NewMemoryStore()}
	incRepo := &vcs.Repository{Objects: inc, Refs: refs.NewMemoryStore()}
	tip, err := incRepo.CommitFiles("main", fileMap, opts)
	if err != nil {
		return err
	}
	base, err := incRepo.TreeOf(tip)
	if err != nil {
		return err
	}
	inc.puts.Store(0)
	start = time.Now()
	for i := 0; i < *commits; i++ {
		edits := map[string]vcs.TreeEdit{edited: {Data: []byte(fmt.Sprintf("edit %d", i))}}
		tip, err = incRepo.CommitDelta("main", base, edits, nil, opts)
		if err != nil {
			return err
		}
		if base, err = incRepo.TreeOf(tip); err != nil {
			return err
		}
	}
	incTime := time.Since(start)
	incPuts := inc.puts.Load()

	fmt.Printf("  repository: %d files; %d one-file commits per mode\n", *files, *commits)
	fmt.Printf("  full rebuild:  %8s/commit, %6.1f store Puts/commit\n",
		(coldTime / time.Duration(*commits)).Round(time.Microsecond), float64(coldPuts)/float64(*commits))
	fmt.Printf("  incremental:   %8s/commit, %6.1f store Puts/commit (tree depth + blob + commit)\n",
		(incTime / time.Duration(*commits)).Round(time.Microsecond), float64(incPuts)/float64(*commits))
	if incTime > 0 {
		fmt.Printf("  speedup: %.1fx wall clock, %.0fx fewer store writes\n",
			float64(coldTime)/float64(incTime), float64(coldPuts)/float64(incPuts))
	}
	return nil
}

// runSync measures the v1 negotiated sync protocol on a -files-sized
// repository. The pre-v1 wire protocol re-transferred the whole closure as
// one in-memory base64 array on every push and pull; v1 negotiates first
// (the peer declares the tips it has, the server answers with exactly the
// missing object IDs) and then streams only that delta, so per-commit
// transfer cost is O(delta) like the PR 2 write path made commits. The
// conditional-GET section measures the ETag/304 fast path on a
// commit-addressed citation read.
func runSync() error {
	fmt.Println("Negotiated incremental sync (API v1)")
	fmt.Println("------------------------------------")
	if *files < 1 || *commits < 1 {
		return fmt.Errorf("-files and -commits must be at least 1 (got %d, %d)", *files, *commits)
	}
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "bench", Name: "repo", URL: "https://x/repo"})
	if err != nil {
		return err
	}
	wt, err := local.Checkout("main")
	if err != nil {
		return err
	}
	edited := ""
	for i := 0; i < *files; i++ {
		p := fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i)
		if edited == "" {
			edited = p
		}
		if err := wt.WriteFile(p, []byte(fmt.Sprintf("seed content %d", i))); err != nil {
			return err
		}
	}
	opts := vcs.CommitOptions{Author: vcs.Sig("bench", "bench@x", time.Unix(1, 0)), Message: "seed"}
	if _, err := wt.Commit(opts); err != nil {
		return err
	}

	platform := hosting.NewPlatform()
	ts := httptest.NewServer(hosting.NewServer(platform))
	defer ts.Close()
	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("bench")
	if err != nil {
		return err
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("repo", "https://x/repo", ""); err != nil {
		return err
	}

	start := time.Now()
	full, err := owner.Sync(local, "bench", "repo", "main")
	if err != nil {
		return err
	}
	fullTime := time.Since(start)
	fmt.Printf("  initial push: %d objects in %s (full closure — nothing to negotiate away)\n",
		full, fullTime.Round(time.Microsecond))

	puller, err := owner.Clone("bench", "repo", "main")
	if err != nil {
		return err
	}

	var pushObjs, pullObjs int
	var pushTime, pullTime time.Duration
	var tip object.ID
	for i := 0; i < *commits; i++ {
		if err := wt.WriteFile(edited, []byte(fmt.Sprintf("edit %d", i))); err != nil {
			return err
		}
		if tip, err = wt.Commit(opts); err != nil {
			return err
		}
		start = time.Now()
		n, err := owner.Sync(local, "bench", "repo", "main")
		if err != nil {
			return err
		}
		pushTime += time.Since(start)
		pushObjs += n
		start = time.Now()
		_, n, err = owner.Fetch(puller, "bench", "repo", "main", "main")
		if err != nil {
			return err
		}
		pullTime += time.Since(start)
		pullObjs += n
	}
	fmt.Printf("  repository: %d files; %d one-file commits per direction\n", *files, *commits)
	fmt.Printf("  incremental push (Sync):  %8s/commit, %5.1f objects/commit on the wire\n",
		(pushTime / time.Duration(*commits)).Round(time.Microsecond), float64(pushObjs)/float64(*commits))
	fmt.Printf("  incremental pull (Fetch): %8s/commit, %5.1f objects/commit on the wire\n",
		(pullTime / time.Duration(*commits)).Round(time.Microsecond), float64(pullObjs)/float64(*commits))
	fmt.Printf("  (full closure would be ~%d objects per transfer)\n", full)

	// Conditional GET: a commit-addressed citation read revalidated by ETag.
	url := fmt.Sprintf("%s/api/v1/repos/bench/repo/cite/%s?path=%s", ts.URL, tip.String(), edited)
	const reads = 200
	var etag string
	start = time.Now()
	for i := 0; i < reads; i++ {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		etag = resp.Header.Get("ETag")
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cite read: status %d", resp.StatusCode)
		}
	}
	warmTime := time.Since(start)
	start = time.Now()
	for i := 0; i < reads; i++ {
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			return fmt.Errorf("conditional cite read: status %d, want 304", resp.StatusCode)
		}
	}
	condTime := time.Since(start)
	fmt.Printf("  commit-addressed GET /cite: 200 in %s/req, 304 revalidation in %s/req (zero citation work)\n",
		(warmTime / reads).Round(time.Microsecond), (condTime / reads).Round(time.Microsecond))
	return nil
}

// runDemo replays §4's live part: adding and modifying citations within the
// current repository on top of the Listing 1 state.
func runDemo() error {
	fmt.Println("§4 demonstration: add/modify within the current repository")
	fmt.Println("-----------------------------------------------------------")
	res, err := scenario.Listing1()
	if err != nil {
		return err
	}
	wt, err := res.Demo.Checkout("master")
	if err != nil {
		return err
	}
	// Add a citation to the schema directory.
	schemaCite := core.Citation{
		Owner: "Yinjun Wu", RepoName: "citedb-schema",
		URL: "https://github.com/thuwuyinjun/Data_citation_demo/schema", Version: "1",
		AuthorList: []string{"Yinjun Wu", "Wei Hu"},
	}
	if err := wt.AddCite("/schema", schemaCite); err != nil {
		return err
	}
	fmt.Println("  AddCite(/schema) — credits the schema authors")
	// Modify the GUI citation (Yanssie gets a co-author).
	guiCite := scenario.ListingGUICitation.Clone()
	guiCite.AuthorList = append(guiCite.AuthorList, "Yinjun Wu")
	if err := wt.ModifyCite("/citation/GUI", guiCite); err != nil {
		return err
	}
	fmt.Println("  ModifyCite(/citation/GUI) — extends the author list")
	commit, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig("Yinjun Wu", "wuyinjun@seas.upenn.edu", time.Date(2018, 9, 4, 3, 0, 0, 0, time.UTC)),
		Message: "live demo: add/modify citations",
	})
	if err != nil {
		return err
	}
	for _, path := range []string{"/schema/citedb.sql", "/citation/GUI/app.js", "/CoreCover/src/CoreCover.java"} {
		cite, from, err := res.Demo.Generate(commit, path)
		if err != nil {
			return err
		}
		rendered, err := format.Render(cite, format.FormatText)
		if err != nil {
			return err
		}
		fmt.Printf("  Cite(%s)  [from %s]\n    %s", path, from, rendered)
	}
	return nil
}

// scanCountingStore counts full-store IDs() enumerations while forwarding
// ordered prefix lookups, so the counters can prove the abbreviated-rev
// read path never falls back to the O(n) scan.
type scanCountingStore struct {
	store.Store
	scans atomic.Int64
}

func (s *scanCountingStore) IDs() ([]object.ID, error) {
	s.scans.Add(1)
	return s.Store.IDs()
}

func (s *scanCountingStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	return store.IDsByPrefix(s.Store, prefix, limit)
}

// runCounters emits the pinned deterministic efficiency counters CI's
// bench-regression job compares between a PR's base and head: pure object
// counts (store writes per commit, wire objects per sync, negotiate body
// IDs, full-store scans per abbreviated resolve), no wall-clock noise.
// Output lines have the stable form "counter <name> = <integer>".
func runCounters() error {
	fmt.Println("Deterministic efficiency counters (CI regression gate)")
	fmt.Println("------------------------------------------------------")
	counters := map[string]int64{}
	emit := func(name string, value int64) {
		fmt.Printf("counter %s = %d\n", name, value)
		counters[name] = value
	}

	// --- store Puts per one-file commit (1000-file repo, 20 commits) ---
	const cFiles, cCommits = 1000, 20
	fileMap := make(map[string]vcs.FileContent, cFiles)
	for i := 0; i < cFiles; i++ {
		fileMap[fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i)] = vcs.File(fmt.Sprintf("seed %d", i))
	}
	opts := vcs.CommitOptions{Author: vcs.Sig("bench", "bench@x", time.Unix(1, 0)), Message: "bench"}
	counting := &countingStore{Store: store.NewMemoryStore()}
	repo := &vcs.Repository{Objects: counting, Refs: refs.NewMemoryStore()}
	tip, err := repo.CommitFiles("main", fileMap, opts)
	if err != nil {
		return err
	}
	base, err := repo.TreeOf(tip)
	if err != nil {
		return err
	}
	counting.puts.Store(0)
	for i := 0; i < cCommits; i++ {
		edits := map[string]vcs.TreeEdit{"/d3/s4/f430.txt": {Data: []byte(fmt.Sprintf("edit %d", i))}}
		if tip, err = repo.CommitDelta("main", base, edits, nil, opts); err != nil {
			return err
		}
		if base, err = repo.TreeOf(tip); err != nil {
			return err
		}
	}
	totalPuts := counting.puts.Load()
	if totalPuts%cCommits != 0 {
		return fmt.Errorf("puts per commit not integral: %d over %d commits", totalPuts, cCommits)
	}
	emit("store_puts_per_one_file_commit", totalPuts/cCommits)

	// --- wire objects per one-commit sync (HTTP, both directions) ---
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "bench", Name: "repo", URL: "https://x/repo"})
	if err != nil {
		return err
	}
	wt, err := local.Checkout("main")
	if err != nil {
		return err
	}
	const sFiles, sCommits = 500, 10
	for i := 0; i < sFiles; i++ {
		if err := wt.WriteFile(fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i), []byte(fmt.Sprintf("seed %d", i))); err != nil {
			return err
		}
	}
	if _, err := wt.Commit(opts); err != nil {
		return err
	}
	platform := hosting.NewPlatform()
	const benchAdminToken = "bench-admin" // lets the replica counter below subscribe to this platform's feed
	ts := httptest.NewServer(hosting.NewServer(platform, hosting.WithAdminToken(benchAdminToken)))
	defer ts.Close()
	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("bench")
	if err != nil {
		return err
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("repo", "https://x/repo", ""); err != nil {
		return err
	}
	if _, err := owner.Sync(local, "bench", "repo", "main"); err != nil {
		return err
	}
	puller, err := owner.Clone("bench", "repo", "main")
	if err != nil {
		return err
	}
	var pushObjs, fetchObjs int
	for i := 0; i < sCommits; i++ {
		if err := wt.WriteFile("/d3/s4/f430.txt", []byte(fmt.Sprintf("edit %d", i))); err != nil {
			return err
		}
		if _, err := wt.Commit(opts); err != nil {
			return err
		}
		n, err := owner.Sync(local, "bench", "repo", "main")
		if err != nil {
			return err
		}
		pushObjs += n
		if _, n, err = owner.Fetch(puller, "bench", "repo", "main", "main"); err != nil {
			return err
		}
		fetchObjs += n
	}
	if pushObjs%sCommits != 0 || fetchObjs%sCommits != 0 {
		return fmt.Errorf("wire objects per commit not integral: push %d, fetch %d over %d commits", pushObjs, fetchObjs, sCommits)
	}
	emit("wire_objects_per_one_commit_push", int64(pushObjs/sCommits))
	emit("wire_objects_per_one_commit_fetch", int64(fetchObjs/sCommits))

	// --- IDs listed in a cold-clone negotiate response (want-all mode) ---
	negBody, err := json.Marshal(hosting.NegotiateRequest{Want: "main", Mode: hosting.NegotiateModeWantAll})
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+"/api/v1/repos/bench/repo/negotiate", "application/json", bytes.NewReader(negBody))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cold negotiate: status %d, err %v", resp.StatusCode, err)
	}
	var neg hosting.NegotiateResponse
	if err := json.Unmarshal(data, &neg); err != nil {
		return err
	}
	emit("cold_clone_negotiate_missing_ids", int64(len(neg.Missing)))

	// --- full-store scans per abbreviated-revision resolve ---
	hosted, err := platform.Repo(context.Background(), "bench", "repo")
	if err != nil {
		return err
	}
	sc := &scanCountingStore{Store: hosted.VCS.Objects}
	hosted.VCS.Objects = sc
	hostedTip, err := hosted.VCS.BranchTip("main")
	if err != nil {
		return err
	}
	const resolves = 5
	for i := 0; i < resolves; i++ {
		r, err := http.Get(fmt.Sprintf("%s/api/v1/repos/bench/repo/citefile/%s", ts.URL, hostedTip.String()[:8]))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("abbreviated resolve: status %d", r.StatusCode)
		}
	}
	if sc.scans.Load()%resolves != 0 {
		return fmt.Errorf("scan count not integral: %d over %d resolves", sc.scans.Load(), resolves)
	}
	emit("full_store_scans_per_prefix_resolve", sc.scans.Load()/resolves)

	// --- wire objects per replicated push (read-replica catch-up) ---
	// A live follower of the 500-file repository above: after the initial
	// bootstrap converges (excluded from the measured window), each
	// one-file push must replicate in exactly the PR 3 negotiated delta —
	// the same 5 objects the direct fetch counter pins — because the
	// replication loop rides the same negotiate/fetch machinery.
	replicaPlat := hosting.NewPlatform()
	rep, err := replica.New(replica.Config{
		Primary: ts.URL, Token: benchAdminToken, Platform: replicaPlat,
		PollInterval: 2 * time.Millisecond, LongPollWait: time.Second,
	})
	if err != nil {
		return err
	}
	repCtx, repCancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		_ = rep.Run(repCtx)
	}()
	stopReplica := func() {
		repCancel()
		<-repDone
	}
	defer stopReplica()
	replicaCaughtUp := func(want object.ID) error {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if repo, err := replicaPlat.Repo(repCtx, "bench", "repo"); err == nil {
				if tip, err := repo.VCS.BranchTip("main"); err == nil && tip == want {
					return nil
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		return fmt.Errorf("replica did not converge on %s", want.Short())
	}
	if err := replicaCaughtUp(hostedTip); err != nil {
		return err
	}
	baseline := rep.Status().ObjectsFetched
	for i := 0; i < sCommits; i++ {
		if err := wt.WriteFile("/d3/s4/f430.txt", []byte(fmt.Sprintf("replica edit %d", i))); err != nil {
			return err
		}
		pushTip, err := wt.Commit(opts)
		if err != nil {
			return err
		}
		if _, err := owner.Sync(local, "bench", "repo", "main"); err != nil {
			return err
		}
		if err := replicaCaughtUp(pushTip); err != nil {
			return err
		}
	}
	repObjs := rep.Status().ObjectsFetched - baseline
	stopReplica()
	if repObjs%sCommits != 0 {
		return fmt.Errorf("replicated objects per push not integral: %d over %d pushes", repObjs, sCommits)
	}
	emit("replica_wire_objects_per_push", repObjs/sCommits)

	// --- index bytes per 64-object pack append batch ---
	// The incremental index format journals one O(batch) segment per
	// append batch, so this delta must be a constant — measured here at
	// 0, 1k and 8k pre-existing objects, it may not vary with pack size.
	const idxBatch = 64
	idxDelta := int64(-1)
	for _, preload := range []int{0, 1000, 8000} {
		dir, err := os.MkdirTemp("", "gitcite-counters-pack-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ps, err := store.NewPackStore(dir)
		if err != nil {
			return err
		}
		for start := 0; start < preload; start += 500 {
			n := min(500, preload-start)
			batch := make([]store.Encoded, n)
			for j := 0; j < n; j++ {
				enc := object.Encode(object.NewBlobString(fmt.Sprintf("pre %d", start+j)))
				batch[j] = store.Encoded{ID: object.HashBytes(enc), Enc: enc}
			}
			if err := ps.PutManyEncoded(batch); err != nil {
				return err
			}
		}
		before := ps.IdxBytesWritten()
		probe := make([]store.Encoded, idxBatch)
		for j := range probe {
			enc := object.Encode(object.NewBlobString(fmt.Sprintf("probe %d", j)))
			probe[j] = store.Encoded{ID: object.HashBytes(enc), Enc: enc}
		}
		if err := ps.PutManyEncoded(probe); err != nil {
			return err
		}
		delta := ps.IdxBytesWritten() - before
		if err := ps.Close(); err != nil {
			return err
		}
		if idxDelta == -1 {
			idxDelta = delta
		} else if delta != idxDelta {
			return fmt.Errorf("idx bytes per append batch depend on pack size: %d at %d pre-existing objects, %d earlier",
				delta, preload, idxDelta)
		}
	}
	emit("idx_bytes_per_64_object_append_batch", idxDelta)

	// --- open repository handles after a 10k-request workload ---
	// A persistent platform with a 32-repo catalogue and an 8-handle LRU
	// serves 10k requests cycling every repository; the resident handle
	// count afterwards must equal the cap, however many repositories were
	// touched — the counter that keeps the hosted daemon's FD/memory
	// footprint flat as catalogues grow.
	const lruLimit, lruRepos, lruRequests = 8, 32, 10000
	lruDir, err := os.MkdirTemp("", "gitcite-counters-lru-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(lruDir)
	lruPlat, err := hosting.OpenPlatform(lruDir, hosting.WithOpenRepoLimit(lruLimit))
	if err != nil {
		return err
	}
	defer lruPlat.Close()
	lruUser, err := lruPlat.CreateUser(context.Background(), "bench")
	if err != nil {
		return err
	}
	for i := 0; i < lruRepos; i++ {
		hostedRepo, err := lruPlat.CreateRepoAs(context.Background(), lruUser, fmt.Sprintf("r%d", i), "https://x/r", "MIT")
		if err != nil {
			return err
		}
		hwt, err := hostedRepo.Checkout("main")
		if err != nil {
			return err
		}
		if err := hwt.WriteFile("/data.txt", []byte(fmt.Sprintf("repo %d", i))); err != nil {
			return err
		}
		if _, err := hwt.Commit(opts); err != nil {
			return err
		}
	}
	lruSrv := httptest.NewServer(hosting.NewServer(lruPlat))
	defer lruSrv.Close()
	for i := 0; i < lruRequests; i++ {
		r, err := http.Get(fmt.Sprintf("%s/api/v1/repos/bench/r%d", lruSrv.URL, i%lruRepos))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("lru workload: status %d on request %d", r.StatusCode, i)
		}
	}
	emit("open_repos_after_10k_requests", int64(lruPlat.OpenRepoCount()))

	if *outPath != "" {
		err := load.UpdateBenchFile(*outPath, *prNum, *forceOut, func(f *load.BenchFile) {
			f.Counters = counters
		})
		if err != nil {
			return err
		}
		fmt.Printf("  wrote %d counters to %s\n", len(counters), *outPath)
	}
	return nil
}

// runCPUMatrix folds `go test -bench ... -cpu 1,4` output (read from
// -bench-input) into the -out artefact's cpu_matrix section, replacing the
// loose parallel-cpu-matrix.txt CI used to upload.
func runCPUMatrix() error {
	if *outPath == "" {
		return fmt.Errorf("cpumatrix needs -out (the BENCH_<pr>.json to fold into)")
	}
	in := os.Stdin
	if *benchInput != "-" {
		f, err := os.Open(*benchInput)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	matrix, err := load.ParseGoBench(in)
	if err != nil {
		return err
	}
	if len(matrix) == 0 {
		return fmt.Errorf("no Benchmark lines found in %s", *benchInput)
	}
	if err := load.UpdateBenchFile(*outPath, *prNum, *forceOut, func(f *load.BenchFile) {
		f.CPUMatrix = matrix
	}); err != nil {
		return err
	}
	names := make([]string, 0, len(matrix))
	for name := range matrix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		procs := make([]string, 0, len(matrix[name]))
		for p := range matrix[name] {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		for _, p := range procs {
			b := matrix[name][p]
			fmt.Printf("  %s @ GOMAXPROCS=%s: %.0f ns/op (%d runs)\n", name, p, b.NsPerOp, b.Runs)
		}
	}
	fmt.Printf("  folded %d benchmarks into %s\n", len(names), *outPath)
	return nil
}
