package gitcite_test

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	gitcite "github.com/gitcite/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
)

// TestPublicAPIEndToEnd walks the full public surface the way a downstream
// user would: repository → worktree → citations → commit → generate →
// render → fork → archive → retro.
func TestPublicAPIEndToEnd(t *testing.T) {
	repo, err := gitcite.NewRepository(gitcite.Meta{
		Owner: "alice", Name: "proj", URL: "https://git.example/alice/proj", License: "MIT",
	})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/lib/algo.go", []byte("package lib\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/lib", gitcite.Citation{
		Owner: "bob", RepoName: "algolib", URL: "https://git.example/bob/algolib", Version: "3",
		AuthorList: []string{"Bob"},
	}); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(gitcite.CommitOptions{
		Author:  gitcite.Sig("alice", "a@x", time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)),
		Message: "init",
	})
	if err != nil {
		t.Fatal(err)
	}

	cite, from, err := repo.Generate(commit, "/lib/algo.go")
	if err != nil || from != "/lib" || cite.Owner != "bob" {
		t.Fatalf("Generate = %+v from %q, %v", cite, from, err)
	}
	for _, f := range []gitcite.Format{gitcite.FormatText, gitcite.FormatBibTeX, gitcite.FormatCFF, gitcite.FormatJSON} {
		out, err := gitcite.Render(cite, f)
		if err != nil || out == "" {
			t.Errorf("Render(%s) = %q, %v", f, out, err)
		}
	}

	// Citefile codec round trip through the public API.
	fn, err := repo.FunctionAt(commit)
	if err != nil {
		t.Fatal(err)
	}
	data, err := gitcite.EncodeCiteFile(fn, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gitcite.DecodeCiteFile(data)
	if err != nil || !back.Equal(fn) {
		t.Fatalf("citefile round trip failed: %v", err)
	}

	// ForkCite.
	fork, err := gitcite.Fork(repo, gitcite.Meta{Owner: "carol", Name: "proj-fork", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	forkCite, _, err := fork.Generate(commit, "/lib")
	if err != nil || forkCite.Owner != "bob" {
		t.Fatalf("fork citation = %+v, %v", forkCite, err)
	}

	// Archive deposit + persistent citation.
	arch := gitcite.NewArchive("10.5281")
	dep, err := arch.DepositVersion(repo, commit)
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := arch.CitationFor(repo, dep, "/lib")
	if err != nil || persistent.DOI == "" {
		t.Fatalf("persistent citation = %+v, %v", persistent, err)
	}

	// Retro check: the citation-enabled history is clean.
	issues, err := gitcite.CheckCitationConsistency(repo, "main")
	if err != nil || len(issues) != 0 {
		t.Fatalf("consistency = %v, %v", issues, err)
	}
}

// TestPublicAPIHosting drives the hosting platform + extension client from
// the public facade over real HTTP.
func TestPublicAPIHosting(t *testing.T) {
	platform := gitcite.NewPlatform()
	server := gitcite.NewServer(platform)
	ts := httptest.NewServer(server)
	defer ts.Close()

	anon := gitcite.NewClient(ts.URL, "")
	tok, err := anon.CreateUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("proj", "https://git.example/alice/proj", "MIT"); err != nil {
		t.Fatal(err)
	}

	local, err := gitcite.NewRepository(gitcite.Meta{Owner: "alice", Name: "proj", URL: "https://git.example/alice/proj"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := local.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/f.go", []byte("package f\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(gitcite.CommitOptions{
		Author:  gitcite.Sig("alice", "a@x", time.Unix(1_600_000_000, 0)),
		Message: "init",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Push(local, "alice", "proj", "main"); err != nil {
		t.Fatal(err)
	}

	// Anonymous generation; member-only writes.
	cite, _, err := anon.GenCite("alice", "proj", "main", "/f.go")
	if err != nil || cite.Owner != "alice" {
		t.Fatalf("GenCite = %+v, %v", cite, err)
	}
	_, err = anon.AddCite("alice", "proj", "main", "/f.go", cite)
	if !gitcite.IsPermissionDenied(err) {
		t.Errorf("anonymous AddCite = %v", err)
	}

	// Fork through the API and clone it back.
	tok2, err := anon.CreateUser("dave")
	if err != nil {
		t.Fatal(err)
	}
	dave := anon.WithToken(tok2)
	if _, err := dave.Fork("alice", "proj", ""); err != nil {
		t.Fatal(err)
	}
	clone, err := dave.Clone("dave", "proj", "main")
	if err != nil {
		t.Fatal(err)
	}
	head, err := clone.VCS.Head()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := clone.Generate(head, "/f.go")
	if err != nil || got.Owner != "alice" {
		t.Fatalf("cloned fork citation = %+v, %v", got, err)
	}
}

// TestPublicAPIRetro exercises retroactive enablement from the facade.
func TestPublicAPIRetro(t *testing.T) {
	repo, err := gitcite.NewRepository(gitcite.Meta{Owner: "o", Name: "legacy", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	for i, author := range []string{"ana", "ben", "ana"} {
		files := map[string]gitcite.FileContent{
			"/a.txt": {Data: []byte("a")},
		}
		if i > 0 {
			files["/b/c.txt"] = gitcite.FileContent{Data: []byte("c")}
		}
		if _, err := repo.VCS.CommitFiles("main", files, gitcite.CommitOptions{
			Author:  gitcite.Sig(author, author+"@x", time.Unix(int64(i+1)*1000, 0)),
			Message: "legacy",
		}); err != nil {
			t.Fatal(err)
		}
	}
	issues, err := gitcite.CheckCitationConsistency(repo, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 3 {
		t.Fatalf("legacy issues = %d", len(issues))
	}
	report, err := gitcite.EnableRetroactively(repo, "main", "cited", gitcite.RetroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.EntriesAdded == 0 || report.NewTip.IsZero() {
		t.Fatalf("report = %+v", report)
	}
	issues, err = gitcite.CheckCitationConsistency(repo, "cited")
	if err != nil || len(issues) != 0 {
		t.Fatalf("post-enable issues = %v, %v", issues, err)
	}
}

// TestPublicAPIMergeStrategies checks the strategy constants are wired.
func TestPublicAPIMergeStrategies(t *testing.T) {
	for _, s := range []gitcite.Strategy{
		gitcite.StrategyAsk, gitcite.StrategyOurs, gitcite.StrategyTheirs,
		gitcite.StrategyNewest, gitcite.StrategyThreeWay,
	} {
		if s.String() == "unknown" {
			t.Errorf("strategy %d unnamed", s)
		}
	}
}

// TestPublicAPIPersistence round-trips a repository through the on-disk
// format.
func TestPublicAPIPersistence(t *testing.T) {
	dir := t.TempDir() + "/.gitcite"
	meta := gitcite.Meta{Owner: "p", Name: "persist", URL: "u"}
	repo, err := gitcite.OpenRepository(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(gitcite.CommitOptions{
		Author: gitcite.Sig("p", "p@x", time.Unix(7, 0)), Message: "persisted",
	})
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := gitcite.OpenRepository(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	cite, _, err := reopened.Generate(commit, "/x.txt")
	if err != nil || cite.Owner != "p" {
		t.Fatalf("reopened Generate = %+v, %v", cite, err)
	}
}

// TestErrorStringsNamespaced spot-checks that errors crossing the public
// boundary identify their subsystem.
func TestErrorStringsNamespaced(t *testing.T) {
	_, err := gitcite.NewRepository(gitcite.Meta{})
	if err == nil || !strings.Contains(err.Error(), "gitcite:") {
		t.Errorf("meta error = %v", err)
	}
	_, err = gitcite.NewFunction(gitcite.Citation{})
	if err == nil || !strings.Contains(err.Error(), "core:") {
		t.Errorf("function error = %v", err)
	}
	var apiErr *hosting.ErrorResponse
	_ = apiErr // wire shape referenced; the client wraps it as APIError
	if gitcite.IsPermissionDenied(errors.New("random")) {
		t.Error("IsPermissionDenied on arbitrary error")
	}
}
