module github.com/gitcite/gitcite

go 1.22
