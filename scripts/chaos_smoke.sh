#!/usr/bin/env bash
# chaos_smoke.sh — runs the fleet-resilience chaos suite under the race
# detector: the deterministic fault-injection harness itself, the 3-node
# fleet storms (partitions, resets, replays, delays, mid-storm promotion),
# the promotion edge cases (lagging refusal, concurrent promotes, kill -9
# mid-promotion), and the client failover/read-your-writes suite.
#
# Every fault schedule is seeded and count-based, so a failing run replays
# exactly with the same seed — no flaky chaos.
set -euo pipefail

cd "$(dirname "$0")/.."
COUNT="${CHAOS_COUNT:-1}"

echo "=== chaos smoke: fault-injection harness"
go test -race -count="$COUNT" ./internal/faultinject/

echo "=== chaos smoke: fleet storms + promotion edge cases"
go test -race -count="$COUNT" ./internal/hosting/replica/

echo "=== chaos smoke: client failover + retry policy"
go test -race -count="$COUNT" ./internal/extension/

echo "chaos smoke: fleet converged, zero acked writes lost, failover clean"
