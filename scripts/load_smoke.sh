#!/usr/bin/env bash
# load_smoke.sh [--prove-gate] [OUT_JSON PR_NUM [LATENCY_TXT]]
#
# CI entry point for the open-loop load harness.
#
# Default mode runs the deterministic smoke profile (fixed seed, a few
# seconds per scenario) across the whole matrix, merges the latency section
# into OUT_JSON (default BENCH_9.json, PR 9) and writes the flat latency
# lines the regression gate parses to LATENCY_TXT (default
# head-latency.txt).
#
# --prove-gate is the self-test CI runs once per PR: it drives the registry
# scenario clean and again with a 50 ms injected server delay, then asserts
# scripts/bench_regression.sh PASSES on clean-vs-clean and FAILS on
# clean-vs-delayed — proving the p99 gate actually bites before trusting it
# to guard real regressions.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--prove-gate" ]; then
  work=$(mktemp -d)
  trap 'rm -rf "$work"' EXIT
  echo "==> prove-gate: clean registry run"
  go run ./cmd/gitcite-load -scenarios registry -duration 3s -rate 50 >"$work/clean.txt"
  echo "==> prove-gate: registry run with 50ms injected server delay"
  go run ./cmd/gitcite-load -scenarios registry -duration 3s -rate 50 -inject-delay 50ms >"$work/slow.txt"

  echo "==> prove-gate: clean vs clean must pass"
  if ! bash scripts/bench_regression.sh - - "$work/clean.txt" "$work/clean.txt"; then
    echo "FAIL: latency gate rejected identical clean runs"
    exit 1
  fi
  echo "==> prove-gate: clean vs delayed must fail"
  if bash scripts/bench_regression.sh - - "$work/clean.txt" "$work/slow.txt"; then
    echo "FAIL: latency gate did not catch a 50ms injected delay"
    exit 1
  fi
  echo "==> prove-gate: OK (gate passes clean runs, catches the injected delay)"
  exit 0
fi

out_json=${1:-BENCH_9.json}
pr_num=${2:-9}
latency_txt=${3:-head-latency.txt}

echo "==> load smoke: full scenario matrix, smoke profile"
go run ./cmd/gitcite-load -profile smoke -out "$out_json" -pr "$pr_num" | tee "$latency_txt"
echo "==> wrote $out_json and $latency_txt"
