#!/usr/bin/env bash
# e2e_smoke.sh — boots a real gitcite-server and drives a full round trip
# with the real gitcite CLI: init (pack storage) → commit → push → clone
# into a second working copy via pull → generate citations locally and over
# the server's REST API. Run from the repository root; needs only the Go
# toolchain and curl.
set -euo pipefail

PORT=${E2E_PORT:-8471}
RPORT=${E2E_REPLICA_PORT:-8472}
ADMIN_TOK="e2e-admin-tok"
WORK=$(mktemp -d)
BIN="$WORK/bin"
SERVER_PID=""
REPLICA_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$REPLICA_PID" ] && kill "$REPLICA_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> building binaries"
mkdir -p "$BIN"
go build -o "$BIN/gitcite" ./cmd/gitcite
go build -o "$BIN/gitcite-server" ./cmd/gitcite-server

echo "==> starting gitcite-server on :$PORT (pack-backed storage)"
"$BIN/gitcite-server" -addr "127.0.0.1:$PORT" -pack "$WORK/server-data" -admin-token "$ADMIN_TOK" &
SERVER_PID=$!
BASE="http://127.0.0.1:$PORT"

echo "==> waiting for the server, creating user alice"
TOKEN=""
for _ in $(seq 1 50); do
  body=$(curl -sf -X POST "$BASE/api/v1/users" \
    -H 'Content-Type: application/json' -d '{"name":"alice"}' 2>/dev/null) && {
    TOKEN=$(echo "$body" | sed -n 's/.*"token":"\([^"]*\)".*/\1/p')
    break
  }
  sleep 0.2
done
[ -n "$TOKEN" ] || { echo "FAIL: server never came up / no token"; exit 1; }

echo "==> creating hosted repository alice/demo"
curl -sf -X POST "$BASE/api/v1/repos" \
  -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
  -d '{"name":"demo","url":"https://example.org/alice/demo","license":"MIT"}' > /dev/null

echo "==> local repository: init -pack, commit, add-cite, push"
SRC="$WORK/src"
mkdir -p "$SRC" && cd "$SRC"
"$BIN/gitcite" init -owner alice -name demo -url "https://example.org/alice/demo" -license MIT -pack
mkdir -p lib
printf 'hello, citation\n' > hello.txt
printf 'package lib\n' > lib/code.go
"$BIN/gitcite" commit -author alice -m "initial import"
"$BIN/gitcite" add-cite -path /lib -owner bob -repo blib -url https://example.org/bob/blib -version 1
"$BIN/gitcite" commit -author alice -m "cite lib"
"$BIN/gitcite" push -server "$BASE" -token "$TOKEN" -owner alice -repo demo -branch main

echo "==> second working copy: pull (cold clone) and cite"
DST="$WORK/dst"
mkdir -p "$DST" && cd "$DST"
"$BIN/gitcite" init -owner alice -name demo -url "https://example.org/alice/demo" -pack
"$BIN/gitcite" pull -server "$BASE" -token "$TOKEN" -owner alice -repo demo -branch main
[ -f hello.txt ] || { echo "FAIL: pulled worktree missing hello.txt"; exit 1; }
cite_out=$("$BIN/gitcite" cite -path /lib/code.go 2>/dev/null)
echo "$cite_out" | grep -q "blib" || { echo "FAIL: local cite did not resolve to blib: $cite_out"; exit 1; }

echo "==> abbreviated-revision cite through the local pack index"
TIP=$(curl -sf "$BASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
[ -n "$TIP" ] || { echo "FAIL: no main tip in repo metadata"; exit 1; }
"$BIN/gitcite" cite -path /lib/code.go -rev "${TIP:0:8}" > /dev/null

echo "==> server-side GenCite over REST (full ID and abbreviated prefix)"
srv_cite=$(curl -sf "$BASE/api/v1/repos/alice/demo/cite/main?path=/lib/code.go&format=text")
echo "$srv_cite" | grep -q "blib" || { echo "FAIL: server cite did not resolve to blib: $srv_cite"; exit 1; }
curl -sf "$BASE/api/v1/repos/alice/demo/cite/${TIP:0:8}?path=/" > /dev/null

echo "==> repack the source repository and cite again"
cd "$SRC"
"$BIN/gitcite" repack
"$BIN/gitcite" cite -path /lib/code.go > /dev/null
ls .gitcite/objects/pack/*.pack > /dev/null || { echo "FAIL: no pack files after repack"; exit 1; }

echo "==> restart leg: kill -9 the server, reboot from the same data dir"
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
"$BIN/gitcite-server" -addr "127.0.0.1:$PORT" -pack "$WORK/server-data" -admin-token "$ADMIN_TOK" &
SERVER_PID=$!
up=""
for _ in $(seq 1 50); do
  curl -sf "$BASE/api/v1/repos/alice/demo" > /dev/null 2>&1 && { up=1; break; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: server did not come back after kill -9"; exit 1; }

echo "==> recovered server: pull into a third copy, cite, and push with the old token"
DST2="$WORK/dst2"
mkdir -p "$DST2" && cd "$DST2"
"$BIN/gitcite" init -owner alice -name demo -url "https://example.org/alice/demo" -pack
"$BIN/gitcite" pull -server "$BASE" -token "$TOKEN" -owner alice -repo demo -branch main
[ -f hello.txt ] || { echo "FAIL: post-restart pull missing hello.txt"; exit 1; }
cite2=$(curl -sf "$BASE/api/v1/repos/alice/demo/cite/main?path=/lib/code.go&format=text")
echo "$cite2" | grep -q "blib" || { echo "FAIL: post-restart server cite broken: $cite2"; exit 1; }
TIP2=$(curl -sf "$BASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
[ "$TIP2" = "$TIP" ] || { echo "FAIL: branch tip changed across restart: $TIP2 != $TIP"; exit 1; }
printf 'post-restart work\n' > survived.txt
"$BIN/gitcite" commit -author alice -m "after restart"
"$BIN/gitcite" push -server "$BASE" -token "$TOKEN" -owner alice -repo demo -branch main

echo "==> replica leg: boot a read replica mirroring the primary"
RBASE="http://127.0.0.1:$RPORT"
"$BIN/gitcite-server" -addr "127.0.0.1:$RPORT" -pack "$WORK/replica-data" \
  -replica-of "$BASE" -replica-token "$ADMIN_TOK" -replica-poll 200ms -admin-token "$ADMIN_TOK" &
REPLICA_PID=$!

wait_replica_tip() { # $1 = expected main tip
  for _ in $(seq 1 100); do
    rtip=$(curl -sf "$RBASE/api/v1/repos/alice/demo" 2>/dev/null | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
    [ "$rtip" = "$1" ] && return 0
    sleep 0.2
  done
  return 1
}
TIP3=$(curl -sf "$BASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
wait_replica_tip "$TIP3" || { echo "FAIL: replica never caught up to primary tip $TIP3"; exit 1; }

echo "==> cite from the replica; writes answer 307 at the primary"
rcite=$(curl -sf "$RBASE/api/v1/repos/alice/demo/cite/main?path=/lib/code.go&format=text")
echo "$rcite" | grep -q "blib" || { echo "FAIL: replica cite did not resolve to blib: $rcite"; exit 1; }
code=$(curl -s -o /dev/null -w "%{http_code}" -X POST "$RBASE/api/v1/repos/alice/demo/push" \
  -H "Authorization: Bearer $TOKEN" -d '{}')
[ "$code" = "307" ] || { echo "FAIL: push against replica = $code, want 307"; exit 1; }
rstatus=$(curl -sf -H "Authorization: Bearer $ADMIN_TOK" "$RBASE/api/v1/admin/status")
echo "$rstatus" | grep -q '"replica"' || { echo "FAIL: replica admin status missing replica section: $rstatus"; exit 1; }

echo "==> kill -9 the replica mid-flight, push more to the primary, restart and catch up"
kill -9 "$REPLICA_PID" 2>/dev/null || true
wait "$REPLICA_PID" 2>/dev/null || true
cd "$DST2"
printf 'replicated after replica crash\n' > crash.txt
"$BIN/gitcite" commit -author alice -m "while replica was down"
"$BIN/gitcite" push -server "$BASE" -token "$TOKEN" -owner alice -repo demo -branch main
TIP4=$(curl -sf "$BASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
[ "$TIP4" != "$TIP3" ] || { echo "FAIL: primary tip did not advance"; exit 1; }
"$BIN/gitcite-server" -addr "127.0.0.1:$RPORT" -pack "$WORK/replica-data" \
  -replica-of "$BASE" -replica-token "$ADMIN_TOK" -replica-poll 200ms -admin-token "$ADMIN_TOK" &
REPLICA_PID=$!
wait_replica_tip "$TIP4" || { echo "FAIL: restarted replica never caught up to $TIP4"; exit 1; }
curl -sf "$RBASE/api/v1/repos/alice/demo/cite/main?path=/" > /dev/null \
  || { echo "FAIL: cite on restarted replica"; exit 1; }

echo "==> promotion leg: kill -9 the primary, promote the replica over the wire"
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
promo=$(curl -s -X POST "$RBASE/api/v1/admin/promote" -H "Authorization: Bearer $ADMIN_TOK")
echo "$promo" | grep -q '"promoted":true' || { echo "FAIL: promote refused: $promo"; exit 1; }

echo "==> the promoted server acknowledges writes and serves citations"
cd "$DST2"
printf 'written to the promoted primary\n' > promoted.txt
"$BIN/gitcite" commit -author alice -m "after failover"
"$BIN/gitcite" push -server "$RBASE" -token "$TOKEN" -owner alice -repo demo -branch main
pcite=$(curl -sf "$RBASE/api/v1/repos/alice/demo/cite/main?path=/lib/code.go&format=text")
echo "$pcite" | grep -q "blib" || { echo "FAIL: cite on promoted primary: $pcite"; exit 1; }

echo "==> kill -9 the promoted server; it reboots as primary despite -replica-of"
PTIP=$(curl -sf "$RBASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
kill -9 "$REPLICA_PID" 2>/dev/null || true
wait "$REPLICA_PID" 2>/dev/null || true
"$BIN/gitcite-server" -addr "127.0.0.1:$RPORT" -pack "$WORK/replica-data" \
  -replica-of "$BASE" -replica-token "$ADMIN_TOK" -replica-poll 200ms -admin-token "$ADMIN_TOK" &
REPLICA_PID=$!
up=""
for _ in $(seq 1 50); do
  curl -sf "$RBASE/api/v1/repos/alice/demo" > /dev/null 2>&1 && { up=1; break; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: promoted server did not come back after kill -9"; exit 1; }
PTIP2=$(curl -sf "$RBASE/api/v1/repos/alice/demo" | sed -n 's/.*"main":"\([0-9a-f]*\)".*/\1/p')
[ "$PTIP2" = "$PTIP" ] || { echo "FAIL: tip changed across promoted restart: $PTIP2 != $PTIP"; exit 1; }
printf 'post-promotion restart\n' > promoted2.txt
"$BIN/gitcite" commit -author alice -m "promoted primary survives restart"
"$BIN/gitcite" push -server "$RBASE" -token "$TOKEN" -owner alice -repo demo -branch main

echo "==> graceful shutdown drains and exits cleanly"
kill -TERM "$REPLICA_PID" 2>/dev/null || true
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""

echo "PASS: e2e smoke (server boot, push, cold-clone pull, cite, abbreviated rev, repack, kill -9 restart recovery, replica mirror + 307 + crash catch-up, kill -9 promotion + promoted reboot-as-primary, graceful shutdown)"
