#!/usr/bin/env bash
# fuzz_smoke.sh — runs every native Go fuzz target for a bounded
# wall-clock slice, as a CI smoke pass over the crash-recovery and wire
# parsers. The committed seed corpora under each package's testdata/fuzz
# replay on every plain `go test` run already; this script additionally
# lets the mutation engine explore beyond the seeds for FUZZTIME per
# target (default 10s, override via the FUZZTIME env var).
#
# Any crasher the engine finds is written to the package's testdata/fuzz
# directory by `go test` itself; commit it with the fix so it becomes a
# permanent regression input.
set -euo pipefail

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-10s}"

targets=(
	"FuzzDecodeCommit   ./internal/vcs/object"
	"FuzzDecodeTree     ./internal/vcs/object"
	"FuzzPackRecordScan ./internal/vcs/store"
	"FuzzSegmentReplay  ./internal/vcs/store"
	"FuzzWireNDJSON     ./internal/hosting"
	"FuzzManifestReplay ./internal/hosting"
)

for t in "${targets[@]}"; do
	read -r name pkg <<<"$t"
	echo "=== fuzz $name ($pkg, $FUZZTIME)"
	go test -run "^${name}\$" -fuzz "^${name}\$" -fuzztime "$FUZZTIME" "$pkg"
done
echo "fuzz smoke: all targets clean"
