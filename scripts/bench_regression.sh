#!/usr/bin/env bash
# bench_regression.sh BASE_COUNTERS HEAD_COUNTERS [BASE_LATENCY HEAD_LATENCY]
#
# Two independent gates between a PR's base and head:
#
# Counters — the deterministic efficiency counters emitted by
# `gitcite-bench -experiment counters` ("counter <name> = <integer>" lines).
# Any counter that GREW fails the gate — these are pure deterministic counts
# (store writes per commit, wire objects per sync, negotiate IDs, full-store
# scans, index bytes per pack append batch), so growth is a real efficiency
# regression, not runner noise. Counters present only in head are reported
# as new (informational); counters present only in base fail, so a
# regression cannot hide behind a counter rename. Pass "-" for both counter
# files to skip this gate (latency-only invocations).
#
# Latency — the flat lines gitcite-load prints ("latency <scenario>
# <endpoint> p99_us = N" plus "rate <scenario> offered_mrps = N"). Only p99
# is gated, with headroom for runner noise: head p99 may not exceed
# max(2 x base, base + 10000 us). A 50 ms injected server delay blows
# through either bound; CI noise does not. p50/p999 and achieved-rate
# deltas are printed as a benchstat-style table for context. A base with no
# latency lines (predating the load harness) gets the same grace rule as a
# counter-less base.
set -u

usage="usage: bench_regression.sh BASE_COUNTERS HEAD_COUNTERS [BASE_LATENCY HEAD_LATENCY]"
base_file=${1:?$usage}
head_file=${2:?$usage}
base_lat_file=${3:-}
head_lat_file=${4:-}

fail=0

# ---------------------------------------------------------------- counters

get_counters() { # file -> "name value" lines
  grep -E '^counter [a-z0-9_]+ = [0-9]+$' "$1" 2>/dev/null | awk '{print $2, $4}'
}

if [ "$base_file" = "-" ] && [ "$head_file" = "-" ]; then
  echo "NOTE: counter gate skipped (no counter files given)."
else
  base_counters=$(get_counters "$base_file")
  head_counters=$(get_counters "$head_file")

  if [ -z "$head_counters" ]; then
    echo "FAIL: head produced no counters (gitcite-bench -experiment counters broken?)"
    exit 1
  fi
  if [ -z "$base_counters" ]; then
    echo "NOTE: base produced no counters (predates the counters mode); nothing to compare."
    echo "$head_counters" | while read -r name value; do
      echo "  new counter $name = $value"
    done
  else
    while read -r name base_value; do
      head_value=$(echo "$head_counters" | awk -v n="$name" '$1 == n {print $2}')
      if [ -z "$head_value" ]; then
        echo "FAIL: counter $name (base $base_value) missing from head"
        fail=1
      elif [ "$head_value" -gt "$base_value" ]; then
        echo "FAIL: counter $name grew: $base_value -> $head_value"
        fail=1
      elif [ "$head_value" -lt "$base_value" ]; then
        echo "IMPROVED: counter $name: $base_value -> $head_value"
      else
        echo "OK: counter $name = $head_value"
      fi
    done <<<"$base_counters"

    while read -r name value; do
      if ! echo "$base_counters" | awk -v n="$name" '$1 == n {found=1} END {exit !found}'; then
        echo "NEW: counter $name = $value"
      fi
    done <<<"$head_counters"
  fi
fi

# ----------------------------------------------------------------- latency

# "latency <scenario> <endpoint> <metric> = <us>"  -> "scenario/endpoint/metric us"
# "rate <scenario> <metric> = <mrps>"              -> "scenario/-/metric mrps"
get_latency() { # file -> "key value" lines
  grep -E '^(latency [a-z0-9-]+ [a-z0-9_]+|rate [a-z0-9-]+) [a-z0-9_]+ = [0-9]+$' "$1" 2>/dev/null |
    awk '$1 == "latency" {print $2 "/" $3 "/" $4, $6}
         $1 == "rate"    {print $2 "/-/" $3, $5}'
}

if [ -z "$base_lat_file" ] || [ -z "$head_lat_file" ]; then
  echo "NOTE: latency gate skipped (no latency files given)."
  exit $fail
fi

base_lat=$(get_latency "$base_lat_file")
head_lat=$(get_latency "$head_lat_file")

if [ -z "$head_lat" ]; then
  echo "FAIL: head produced no latency lines (gitcite-load broken?)"
  exit 1
fi
if [ -z "$base_lat" ]; then
  echo "NOTE: base produced no latency lines (predates the load harness); nothing to compare."
  exit $fail
fi

echo ""
echo "latency head vs base (us; rates in milli-req/s):"
printf '%-42s %12s %12s %9s\n' "metric" "base" "head" "delta"
while read -r key head_value; do
  base_value=$(echo "$base_lat" | awk -v k="$key" '$1 == k {print $2}')
  [ -z "$base_value" ] && continue
  if [ "$base_value" -gt 0 ]; then
    delta=$(( (head_value - base_value) * 100 / base_value ))
    printf '%-42s %12s %12s %8s%%\n' "$key" "$base_value" "$head_value" "$delta"
  else
    printf '%-42s %12s %12s %9s\n' "$key" "$base_value" "$head_value" "n/a"
  fi
done <<<"$head_lat"
echo ""

# Gate: head p99 <= max(2*base, base + 10000 us) per scenario/endpoint.
while read -r key base_value; do
  case "$key" in */p99_us) ;; *) continue ;; esac
  head_value=$(echo "$head_lat" | awk -v k="$key" '$1 == k {print $2}')
  if [ -z "$head_value" ]; then
    echo "FAIL: p99 metric $key (base ${base_value}us) missing from head"
    fail=1
    continue
  fi
  allowed=$((base_value * 2))
  floor=$((base_value + 10000))
  [ "$floor" -gt "$allowed" ] && allowed=$floor
  if [ "$head_value" -gt "$allowed" ]; then
    echo "FAIL: p99 $key regressed: ${base_value}us -> ${head_value}us (allowed ${allowed}us)"
    fail=1
  else
    echo "OK: p99 $key = ${head_value}us (base ${base_value}us, allowed ${allowed}us)"
  fi
done <<<"$base_lat"

exit $fail
