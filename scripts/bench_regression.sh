#!/usr/bin/env bash
# bench_regression.sh BASE_COUNTERS HEAD_COUNTERS
#
# Compares the deterministic efficiency counters emitted by
# `gitcite-bench -experiment counters` ("counter <name> = <integer>" lines)
# between a PR's base and head. Any counter that GREW fails the gate —
# these are pure deterministic counts (store writes per commit, wire
# objects per sync, negotiate IDs, full-store scans, index bytes per pack
# append batch), so growth is a real efficiency regression, not runner
# noise.
#
# Counters present only in head are reported as new (informational);
# counters present only in base fail, so a regression cannot hide behind a
# counter rename. A base run that produced no counters at all (e.g. the PR
# that introduces the counters mode) skips the comparison.
set -u

base_file=${1:?usage: bench_regression.sh BASE_COUNTERS HEAD_COUNTERS}
head_file=${2:?usage: bench_regression.sh BASE_COUNTERS HEAD_COUNTERS}

get_counters() { # file -> "name value" lines
  grep -E '^counter [a-z0-9_]+ = [0-9]+$' "$1" 2>/dev/null | awk '{print $2, $4}'
}

base_counters=$(get_counters "$base_file")
head_counters=$(get_counters "$head_file")

if [ -z "$head_counters" ]; then
  echo "FAIL: head produced no counters (gitcite-bench -experiment counters broken?)"
  exit 1
fi
if [ -z "$base_counters" ]; then
  echo "NOTE: base produced no counters (predates the counters mode); nothing to compare."
  echo "$head_counters" | while read -r name value; do
    echo "  new counter $name = $value"
  done
  exit 0
fi

fail=0
while read -r name base_value; do
  head_value=$(echo "$head_counters" | awk -v n="$name" '$1 == n {print $2}')
  if [ -z "$head_value" ]; then
    echo "FAIL: counter $name (base $base_value) missing from head"
    fail=1
  elif [ "$head_value" -gt "$base_value" ]; then
    echo "FAIL: counter $name grew: $base_value -> $head_value"
    fail=1
  elif [ "$head_value" -lt "$base_value" ]; then
    echo "IMPROVED: counter $name: $base_value -> $head_value"
  else
    echo "OK: counter $name = $head_value"
  fi
done <<<"$base_counters"

while read -r name value; do
  if ! echo "$base_counters" | awk -v n="$name" '$1 == n {found=1} END {exit !found}'; then
    echo "NEW: counter $name = $value"
  fi
done <<<"$head_counters"

exit $fail
