package citefile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/gitcite/gitcite/internal/core"
)

func rootCitation() core.Citation {
	return core.Citation{
		RepoName:      "Data_citation_demo",
		Owner:         "Yinjun Wu",
		CommittedDate: time.Date(2018, 9, 4, 2, 35, 20, 0, time.UTC),
		CommitID:      "bbd248a",
		URL:           "https://github.com/thuwuyinjun/Data_citation_demo",
		AuthorList:    []string{"Yinjun Wu"},
	}
}

func demoFunction(t *testing.T) (*core.Function, *core.PathSet) {
	t.Helper()
	tree := core.MustPathSet(
		"/CoreCover/rewrite.py",
		"/citation/GUI/app.js",
		"/src/main.py",
	)
	f := core.MustNewFunction(rootCitation())
	coreCover := core.Citation{
		RepoName:      "alu01-corecover",
		Owner:         "Chen Li",
		CommittedDate: time.Date(2018, 3, 24, 0, 29, 45, 0, time.UTC),
		CommitID:      "5cc951e",
		URL:           "https://github.com/chenlica/alu01-corecover",
		AuthorList:    []string{"Chen Li"},
	}
	if err := f.Add(tree, "/CoreCover", coreCover); err != nil {
		t.Fatal(err)
	}
	gui := core.Citation{
		RepoName:      "Data_citation_demo",
		Owner:         "Yinjun Wu",
		CommittedDate: time.Date(2017, 6, 16, 20, 57, 6, 0, time.UTC),
		CommitID:      "2dd6813",
		URL:           "https://github.com/thuwuyinjun/Data_citation_demo",
		AuthorList:    []string{"Yanssie"},
	}
	if err := f.Add(tree, "/citation/GUI", gui); err != nil {
		t.Fatal(err)
	}
	return f, tree
}

func TestEncodeListingOneShape(t *testing.T) {
	f, tree := demoFunction(t)
	data, err := Encode(f, tree.IsDir)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// Directory keys carry trailing slashes like Listing 1.
	for _, want := range []string{`"/"`, `"/CoreCover/"`, `"/citation/GUI/"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded file missing key %s:\n%s", want, s)
		}
	}
	// Field vocabulary of Listing 1.
	for _, want := range []string{`"repoName"`, `"owner"`, `"committedDate"`, `"commitID"`, `"url"`, `"authorList"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded file missing field %s", want)
		}
	}
	for _, want := range []string{"2018-09-04T02:35:20Z", "2018-03-24T00:29:45Z", "2017-06-16T20:57:06Z"} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded file missing timestamp %s", want)
		}
	}
	// Valid JSON.
	var anything map[string]any
	if err := json.Unmarshal(data, &anything); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Field order within an entry: repoName before owner before committedDate.
	iRepo := strings.Index(s, `"repoName"`)
	iOwner := strings.Index(s, `"owner"`)
	iDate := strings.Index(s, `"committedDate"`)
	if !(iRepo < iOwner && iOwner < iDate) {
		t.Error("field order does not match Listing 1")
	}
}

func TestRoundTrip(t *testing.T) {
	f, tree := demoFunction(t)
	data, err := Encode(f, tree.IsDir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(f) {
		t.Errorf("round trip changed function:\noriginal: %+v\ndecoded:  %+v", f.ActiveDomain(), back.ActiveDomain())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f, tree := demoFunction(t)
	a, err := Encode(f, tree.IsDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := Encode(f.Clone(), tree.IsDir)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("iteration %d produced different bytes", i)
		}
	}
}

func TestEncodeNilIsDir(t *testing.T) {
	f, _ := demoFunction(t)
	data, err := Encode(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"/CoreCover/"`) {
		t.Error("nil isDir still emitted trailing slash")
	}
	if !strings.Contains(string(data), `"/CoreCover"`) {
		t.Error("key missing entirely")
	}
	if _, err := Decode(data); err != nil {
		t.Errorf("decode of slashless file: %v", err)
	}
}

func TestDecodeAcceptsBothKeyStyles(t *testing.T) {
	input := `{
	  "/": {"repoName": "r", "owner": "o", "url": "u", "version": "1"},
	  "/dir/": {"owner": "dirOwner"},
	  "/file.txt": {"owner": "fileOwner"}
	}`
	f, err := Decode([]byte(input))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Has("/dir") || !f.Has("/file.txt") {
		t.Errorf("paths = %v", f.Paths())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no root":       `{"/x": {"owner": "o"}}`,
		"invalid root":  `{"/": {"note": "missing required fields"}}`,
		"bad timestamp": `{"/": {"repoName": "r", "owner": "o", "url": "u", "committedDate": "late 2018"}}`,
		"dup key":       `{"/": {"repoName": "r", "owner": "o", "url": "u", "version": "1"}, "/d": {"owner": "a"}, "/d/": {"owner": "b"}}`,
		"escaping key":  `{"/": {"repoName": "r", "owner": "o", "url": "u", "version": "1"}, "/../x": {"owner": "a"}}`,
	}
	for name, input := range cases {
		if _, err := Decode([]byte(input)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestEntryRoundTrip(t *testing.T) {
	c := rootCitation()
	c.DOI = "10.5281/zenodo.1003150"
	c.License = "MIT"
	c.Note = "imported"
	c.Extra = map[string]string{"grant": "NSF-123"}
	data, err := EncodeEntry(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Errorf("entry round trip: %+v vs %+v", back, c)
	}
	if _, err := DecodeEntry([]byte(`{"authorList": "not-a-list"}`)); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestTimestampNormalisedToUTC(t *testing.T) {
	loc := time.FixedZone("EST", -5*3600)
	c := rootCitation()
	c.CommittedDate = time.Date(2018, 9, 3, 21, 35, 20, 0, loc) // same instant as the UTC value
	f := core.MustNewFunction(c)
	data, err := Encode(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "2018-09-04T02:35:20Z") {
		t.Errorf("timestamp not normalised to UTC:\n%s", data)
	}
}

// quick property (I6): encode∘decode is the identity for random functions,
// and encoding is deterministic.
func TestQuickRoundTrip(t *testing.T) {
	f := func(nEntries uint8, seed int64) bool {
		fn := core.MustNewFunction(core.Citation{
			RepoName: "r", Owner: "o", URL: "u", Version: "1",
			CommittedDate: time.Unix(seed%1e9, 0).UTC(),
		})
		n := int(nEntries % 20)
		var paths []string
		for i := 0; i < n; i++ {
			paths = append(paths, "/d/"+string(rune('a'+i%26))+"/f.txt")
		}
		tree := core.AnyTree()
		for i, p := range paths {
			c := core.Citation{Owner: "owner", Note: p, Version: "1"}
			if i%2 == 0 {
				c.AuthorList = []string{"A", "B"}
				c.Extra = map[string]string{"i": p}
			}
			if err := fn.Set(tree, p, c); err != nil {
				return false
			}
		}
		data1, err := Encode(fn, nil)
		if err != nil {
			return false
		}
		back, err := Decode(data1)
		if err != nil {
			return false
		}
		data2, err := Encode(back, nil)
		if err != nil {
			return false
		}
		return back.Equal(fn) && bytes.Equal(data1, data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
