// Package citefile reads and writes "citation.cite" — the special file the
// paper stores at the root of every project version (§3): "a set of
// key-value entries, where the key is the relative path to the file being
// cited, and the value is the citation attached to the file".
//
// The encoding is JSON with the exact field vocabulary of the paper's
// Listing 1 (repoName, owner, committedDate, commitID, url, authorList) plus
// the optional fields the model carries (doi, version, license, note,
// extra). Encoding is byte-deterministic: keys are sorted, fields appear in
// a fixed order and timestamps are RFC 3339 UTC — so the same citation
// function always produces the same blob (and therefore the same vcs object
// ID).
//
// Directory keys are written with a trailing slash, matching Listing 1
// ("/", "/CoreCover/", "/citation/GUI/"); the reader accepts keys with or
// without it.
package citefile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
)

// Filename is the citation file's name at the version root.
const Filename = "citation.cite"

// Path is the citation file's clean rooted path within a version tree.
const Path = "/" + Filename

// entryJSON is the wire form of one citation. Field order here is the
// serialisation order.
type entryJSON struct {
	RepoName      string            `json:"repoName,omitempty"`
	Owner         string            `json:"owner,omitempty"`
	CommittedDate string            `json:"committedDate,omitempty"`
	CommitID      string            `json:"commitID,omitempty"`
	URL           string            `json:"url,omitempty"`
	DOI           string            `json:"doi,omitempty"`
	Version       string            `json:"version,omitempty"`
	License       string            `json:"license,omitempty"`
	AuthorList    []string          `json:"authorList,omitempty"`
	Note          string            `json:"note,omitempty"`
	Extra         map[string]string `json:"extra,omitempty"`
}

func toWire(c core.Citation) entryJSON {
	e := entryJSON{
		RepoName:   c.RepoName,
		Owner:      c.Owner,
		CommitID:   c.CommitID,
		URL:        c.URL,
		DOI:        c.DOI,
		Version:    c.Version,
		License:    c.License,
		AuthorList: c.AuthorList,
		Note:       c.Note,
		Extra:      c.Extra,
	}
	if !c.CommittedDate.IsZero() {
		e.CommittedDate = c.CommittedDate.UTC().Format(time.RFC3339)
	}
	return e
}

func fromWire(e entryJSON) (core.Citation, error) {
	c := core.Citation{
		RepoName:   e.RepoName,
		Owner:      e.Owner,
		CommitID:   e.CommitID,
		URL:        e.URL,
		DOI:        e.DOI,
		Version:    e.Version,
		License:    e.License,
		AuthorList: e.AuthorList,
		Note:       e.Note,
		Extra:      e.Extra,
	}
	if e.CommittedDate != "" {
		when, err := time.Parse(time.RFC3339, e.CommittedDate)
		if err != nil {
			return core.Citation{}, fmt.Errorf("citefile: bad committedDate %q: %w", e.CommittedDate, err)
		}
		c.CommittedDate = when.UTC()
	}
	return c, nil
}

// Encode serialises a citation function deterministically. isDir reports
// whether an active-domain path is a directory in the version tree, which
// controls the trailing slash on keys; nil means "no trailing slashes".
func Encode(f *core.Function, isDir func(path string) bool) ([]byte, error) {
	entries := f.ActiveDomain()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })

	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, pc := range entries {
		key := pc.Path
		if key != "/" && isDir != nil && isDir(pc.Path) {
			key += "/"
		}
		keyJSON, err := json.Marshal(key)
		if err != nil {
			return nil, err
		}
		valJSON, err := json.MarshalIndent(toWire(pc.Citation), "  ", "  ")
		if err != nil {
			return nil, err
		}
		buf.WriteString("  ")
		buf.Write(keyJSON)
		buf.WriteString(": ")
		buf.Write(valJSON)
		if i < len(entries)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

// Decode parses a citation file back into a citation function. Keys are
// canonicalised (trailing slashes stripped); the file must contain a root
// entry with the paper's required basic fields.
func Decode(data []byte) (*core.Function, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var raw map[string]entryJSON
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("citefile: parse: %w", err)
	}
	entries := make(map[string]core.Citation, len(raw))
	for key, e := range raw {
		p := key
		if p != "/" {
			p = strings.TrimSuffix(p, "/")
		}
		clean, err := vcs.CleanPath(p)
		if err != nil {
			return nil, fmt.Errorf("citefile: key %q: %w", key, err)
		}
		if _, dup := entries[clean]; dup {
			return nil, fmt.Errorf("citefile: duplicate key %q after canonicalisation", clean)
		}
		c, err := fromWire(e)
		if err != nil {
			return nil, err
		}
		entries[clean] = c
	}
	return core.FromEntries(entries)
}

// EncodeEntry serialises a single citation (used by the hosting API and the
// CLI's JSON output).
func EncodeEntry(c core.Citation) ([]byte, error) {
	return json.MarshalIndent(toWire(c), "", "  ")
}

// DecodeEntry parses a single citation in the wire format.
func DecodeEntry(data []byte) (core.Citation, error) {
	var e entryJSON
	if err := json.Unmarshal(data, &e); err != nil {
		return core.Citation{}, fmt.Errorf("citefile: parse entry: %w", err)
	}
	return fromWire(e)
}
