// Package report aggregates citation data over one project version into
// credit reports: which contributors are credited for how much of the
// tree, which subtrees carry external citations, and how completely the
// version is citation-covered. This answers the paper's motivating question
// — "the granularity at which citations should appear to give credit to the
// appropriate contributors" — with a concrete accounting of where each
// version's credit actually goes.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

// AuthorCredit totals one contributor's credited files in a version.
type AuthorCredit struct {
	Author string
	// Files is the number of files whose resolved citation lists the
	// author.
	Files int
	// Entries is the number of explicit citation entries naming the
	// author.
	Entries int
}

// EntryCoverage describes one active-domain entry and its reach.
type EntryCoverage struct {
	Path string
	// Files is the number of files this entry is the resolved citation
	// for (its exclusive region: files with no closer cited ancestor).
	Files int
	// External marks entries whose cited repository differs from the
	// version's own (imported code, e.g. a CopyCite region).
	External bool
	Citation core.Citation
}

// Report is the credit accounting of one version.
type Report struct {
	Commit object.ID
	// TotalFiles is the number of files in the version (citation.cite
	// excluded).
	TotalFiles int
	// Entries lists every active-domain entry with its exclusive file
	// count, sorted by path.
	Entries []EntryCoverage
	// Authors lists per-author totals, most-credited first.
	Authors []AuthorCredit
	// ExternalFiles is the number of files credited to external
	// repositories.
	ExternalFiles int
}

// Build computes the credit report for one version of a citation-enabled
// repository.
func Build(repo *gitcite.Repo, commit object.ID) (*Report, error) {
	// Read-only access: share the repository's cached function so repeated
	// credit reports for one version reuse its warm resolution index.
	fn, err := repo.ResolvedFunctionAt(commit)
	if err != nil {
		return nil, err
	}
	treeID, err := repo.VCS.TreeOf(commit)
	if err != nil {
		return nil, err
	}
	files, err := vcs.FlattenTree(repo.VCS.Objects, treeID)
	if err != nil {
		return nil, err
	}

	rep := &Report{Commit: commit}
	perEntryFiles := map[string]int{}
	authorFiles := map[string]int{}

	// Resolve through the repository's interned path table: repeated
	// credit reports (and any other keyed reader of these versions) hit
	// the function's pointer-keyed memo in O(1) per file, however deep the
	// tree nests.
	paths := repo.Paths()
	for _, f := range files {
		if f.Path == citefile.Path {
			continue
		}
		rep.TotalFiles++
		key, err := paths.Intern(f.Path)
		if err != nil {
			return nil, err
		}
		cite, from, err := fn.ResolveKey(key)
		if err != nil {
			return nil, err
		}
		perEntryFiles[from]++
		for _, a := range cite.AuthorList {
			authorFiles[a]++
		}
		if cite.RepoName != "" && cite.RepoName != repo.Meta.Name {
			rep.ExternalFiles++
		}
	}

	authorEntries := map[string]int{}
	for _, pc := range fn.ActiveDomain() {
		for _, a := range pc.Citation.AuthorList {
			authorEntries[a]++
		}
		rep.Entries = append(rep.Entries, EntryCoverage{
			Path:     pc.Path,
			Files:    perEntryFiles[pc.Path],
			External: pc.Citation.RepoName != "" && pc.Citation.RepoName != repo.Meta.Name,
			Citation: pc.Citation,
		})
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].Path < rep.Entries[j].Path })

	names := make([]string, 0, len(authorFiles))
	for a := range authorFiles {
		names = append(names, a)
	}
	for a := range authorEntries {
		if _, ok := authorFiles[a]; !ok {
			names = append(names, a)
		}
	}
	sort.Strings(names)
	for _, a := range names {
		rep.Authors = append(rep.Authors, AuthorCredit{Author: a, Files: authorFiles[a], Entries: authorEntries[a]})
	}
	sort.SliceStable(rep.Authors, func(i, j int) bool { return rep.Authors[i].Files > rep.Authors[j].Files })
	return rep, nil
}

// CoverageFraction is the share of files resolved by a non-root entry —
// how much of the tree carries finer-than-project credit.
func (r *Report) CoverageFraction() float64 {
	if r.TotalFiles == 0 {
		return 0
	}
	root := 0
	for _, e := range r.Entries {
		if e.Path == "/" {
			root = e.Files
		}
	}
	return float64(r.TotalFiles-root) / float64(r.TotalFiles)
}

// Fprint renders the report as a text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "credit report for version %s\n", r.Commit.Short())
	fmt.Fprintf(w, "files: %d total, %d credited to external repositories, %.0f%% under explicit non-root citations\n\n",
		r.TotalFiles, r.ExternalFiles, 100*r.CoverageFraction())
	fmt.Fprintln(w, "citation entries:")
	for _, e := range r.Entries {
		marker := " "
		if e.External {
			marker = "E"
		}
		authors := strings.Join(e.Citation.AuthorList, ", ")
		if authors == "" {
			authors = e.Citation.Owner
		}
		fmt.Fprintf(w, "  %s %-28s %4d file(s)  %s (%s)\n", marker, e.Path, e.Files, authors, e.Citation.RepoName)
	}
	fmt.Fprintln(w, "\nper-author credit:")
	for _, a := range r.Authors {
		fmt.Fprintf(w, "  %-24s %4d file(s) via %d entr%s\n", a.Author, a.Files, a.Entries, plural(a.Entries, "y", "ies"))
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
