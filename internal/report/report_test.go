package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

func fixture(t *testing.T) (*gitcite.Repo, object.ID) {
	t.Helper()
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: "alice", Name: "proj", URL: "https://x/proj",
	})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	for p, d := range map[string]string{
		"/src/a.go":        "a",
		"/src/b.go":        "b",
		"/vendor/ext/x.go": "x",
		"/vendor/ext/y.go": "y",
		"/README.md":       "r",
	} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.AddCite("/vendor/ext", core.Citation{
		Owner: "bob", RepoName: "extlib", URL: "https://x/extlib", Version: "2",
		AuthorList: []string{"Bob", "Carol"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/src/a.go", core.Citation{
		Owner: "alice", RepoName: "proj", URL: "https://x/proj/a", Version: "1",
		AuthorList: []string{"Alice"},
	}); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(vcs.CommitOptions{
		Author: vcs.Sig("alice", "a@x", time.Unix(1_600_000_000, 0)), Message: "init",
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo, commit
}

func TestBuildCounts(t *testing.T) {
	repo, commit := fixture(t)
	rep, err := Build(repo, commit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFiles != 5 {
		t.Errorf("TotalFiles = %d, want 5 (citation.cite excluded)", rep.TotalFiles)
	}
	if rep.ExternalFiles != 2 {
		t.Errorf("ExternalFiles = %d, want 2 (the vendor files)", rep.ExternalFiles)
	}
	byPath := map[string]EntryCoverage{}
	for _, e := range rep.Entries {
		byPath[e.Path] = e
	}
	// Exclusive regions: /src/a.go (1), /vendor/ext (2), root (2: b.go + README).
	if byPath["/src/a.go"].Files != 1 {
		t.Errorf("/src/a.go covers %d", byPath["/src/a.go"].Files)
	}
	if byPath["/vendor/ext"].Files != 2 {
		t.Errorf("/vendor/ext covers %d", byPath["/vendor/ext"].Files)
	}
	if byPath["/"].Files != 2 {
		t.Errorf("/ covers %d", byPath["/"].Files)
	}
	if !byPath["/vendor/ext"].External || byPath["/src/a.go"].External || byPath["/"].External {
		t.Error("External flags wrong")
	}
	// 3 of 5 files under non-root entries.
	if got := rep.CoverageFraction(); got < 0.59 || got > 0.61 {
		t.Errorf("CoverageFraction = %v, want 0.6", got)
	}
}

func TestBuildAuthorTotals(t *testing.T) {
	repo, commit := fixture(t)
	rep, err := Build(repo, commit)
	if err != nil {
		t.Fatal(err)
	}
	byAuthor := map[string]AuthorCredit{}
	for _, a := range rep.Authors {
		byAuthor[a.Author] = a
	}
	// Bob and Carol: 2 files each via 1 entry. Alice: 1 explicit + 2 root
	// files (root default lists the owner "alice" — distinct casing).
	if byAuthor["Bob"].Files != 2 || byAuthor["Carol"].Files != 2 {
		t.Errorf("external authors = %+v", rep.Authors)
	}
	if byAuthor["Alice"].Files != 1 || byAuthor["Alice"].Entries != 1 {
		t.Errorf("Alice = %+v", byAuthor["Alice"])
	}
	if byAuthor["alice"].Files != 2 {
		t.Errorf("root default author = %+v", byAuthor["alice"])
	}
	// Sorted most-credited first.
	for i := 1; i < len(rep.Authors); i++ {
		if rep.Authors[i-1].Files < rep.Authors[i].Files {
			t.Errorf("authors not sorted: %+v", rep.Authors)
		}
	}
}

func TestFprint(t *testing.T) {
	repo, commit := fixture(t)
	rep, err := Build(repo, commit)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"credit report", "E /vendor/ext", "Bob, Carol", "per-author credit", "60% under explicit"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBuildOnCiteDBShape(t *testing.T) {
	// A CiteDB-demo-shaped repository: an imported CoreCover subtree
	// (external) and a GUI subtree credited to a student are the two
	// non-root credit regions.
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: "Yinjun Wu", Name: "Data_citation_demo",
		URL: "https://github.com/thuwuyinjun/Data_citation_demo",
	})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("master")
	if err != nil {
		t.Fatal(err)
	}
	for p, d := range map[string]string{
		"/citation/CiteDB.py":      "citedb",
		"/CoreCover/a.java":        "a",
		"/CoreCover/b.java":        "b",
		"/CoreCover/tests/t.java":  "t",
		"/citation/GUI/index.html": "gui",
		"/citation/GUI/app.js":     "app",
	} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.AddCite("/CoreCover", core.Citation{
		Owner: "Chen Li", RepoName: "alu01-corecover",
		URL:        "https://github.com/chenlica/alu01-corecover",
		AuthorList: []string{"Chen Li"}, CommitID: "5cc951e",
	}); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/citation/GUI", core.Citation{
		Owner: "Yinjun Wu", RepoName: "Data_citation_demo",
		URL:        "https://github.com/thuwuyinjun/Data_citation_demo",
		AuthorList: []string{"Yanssie"}, CommitID: "2dd6813",
	}); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(vcs.CommitOptions{
		Author: vcs.Sig("Yinjun Wu", "w@x", time.Unix(1_536_000_000, 0)), Message: "demo",
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Build(repo, commit)
	if err != nil {
		t.Fatal(err)
	}
	byAuthor := map[string]AuthorCredit{}
	for _, a := range rep.Authors {
		byAuthor[a.Author] = a
	}
	if byAuthor["Chen Li"].Files != 3 {
		t.Errorf("Chen Li = %+v", byAuthor["Chen Li"])
	}
	if byAuthor["Yanssie"].Files != 2 {
		t.Errorf("Yanssie = %+v", byAuthor["Yanssie"])
	}
	if rep.ExternalFiles != 3 {
		t.Errorf("external files = %d, want the CoreCover subtree", rep.ExternalFiles)
	}
}

func TestBuildNonEnabledVersion(t *testing.T) {
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "n", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := repo.VCS.CommitFiles("main", map[string]vcs.FileContent{"/f": vcs.File("x")},
		vcs.CommitOptions{Author: vcs.Sig("a", "a@x", time.Unix(1, 0)), Message: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(repo, c); err == nil {
		t.Error("report on non-enabled version succeeded")
	}
}
