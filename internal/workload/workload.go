// Package workload generates deterministic synthetic project trees, citation
// functions and edit scripts for benchmarks and stress tests. All output is
// a pure function of Config (including its Seed), so benchmark runs are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

// Config parameterises a synthetic project.
type Config struct {
	Seed int64
	// Depth is the directory nesting depth.
	Depth int
	// Fanout is the number of subdirectories per directory.
	Fanout int
	// FilesPerDir is the number of files in each directory.
	FilesPerDir int
	// CiteDensity in [0,1] is the fraction of paths given explicit
	// citations by GenFunction.
	CiteDensity float64
	// FileBytes is the approximate content size of generated files.
	FileBytes int
}

// Default returns a mid-sized configuration (≈ hundreds of files).
func Default() Config {
	return Config{Seed: 42, Depth: 3, Fanout: 3, FilesPerDir: 4, CiteDensity: 0.2, FileBytes: 256}
}

// rng builds the deterministic source for one generation step; the salt
// keeps independent generators decorrelated.
func (c Config) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + salt))
}

// Paths returns the file paths of the synthetic tree in generation order.
func (c Config) Paths() []string {
	var out []string
	var walk func(prefix string, depth int)
	walk = func(prefix string, depth int) {
		for f := 0; f < c.FilesPerDir; f++ {
			out = append(out, fmt.Sprintf("%s/file%02d.go", prefix, f))
		}
		if depth >= c.Depth {
			return
		}
		for d := 0; d < c.Fanout; d++ {
			walk(fmt.Sprintf("%s/dir%02d", prefix, d), depth+1)
		}
	}
	walk("", 1)
	for i, p := range out {
		out[i] = vcs.MustCleanPath(p)
	}
	return out
}

// DeepPath returns a single path at exactly the requested depth (for
// resolution-latency benchmarks).
func DeepPath(depth int) string {
	p := ""
	for i := 0; i < depth; i++ {
		p += fmt.Sprintf("/d%02d", i)
	}
	return p + "/leaf.go"
}

// Files materialises the tree's contents: pseudo-source files of roughly
// FileBytes bytes each.
func (c Config) Files() map[string]vcs.FileContent {
	r := c.rng(1)
	out := map[string]vcs.FileContent{}
	for _, p := range c.Paths() {
		out[p] = vcs.FileContent{Data: sourceLike(r, c.FileBytes)}
	}
	return out
}

// Tree builds the core.Tree (PathSet) for the synthetic project.
func (c Config) Tree() *core.PathSet {
	return core.MustPathSet(c.Paths()...)
}

// RootCitation is the deterministic root citation for generated projects.
func (c Config) RootCitation() core.Citation {
	return core.Citation{
		RepoName:      fmt.Sprintf("synthetic-%d", c.Seed),
		Owner:         "workload",
		URL:           fmt.Sprintf("https://git.example/workload/synthetic-%d", c.Seed),
		Version:       "1.0",
		CommittedDate: time.Unix(1_535_942_120, 0).UTC(),
		AuthorList:    []string{"Workload Generator"},
	}
}

// Citation produces the i-th synthetic citation.
func (c Config) Citation(i int) core.Citation {
	return core.Citation{
		RepoName:      fmt.Sprintf("dep-%d", i),
		Owner:         fmt.Sprintf("owner-%d", i%17),
		URL:           fmt.Sprintf("https://git.example/owner-%d/dep-%d", i%17, i),
		CommitID:      fmt.Sprintf("%07x", i*2654435761),
		CommittedDate: time.Unix(1_500_000_000+int64(i)*3600, 0).UTC(),
		AuthorList:    []string{fmt.Sprintf("Author %d", i%29), fmt.Sprintf("Author %d", (i+7)%29)},
	}
}

// Function builds a citation function over the synthetic tree with
// CiteDensity of all paths (files and directories) explicitly cited.
func (c Config) Function() *core.Function {
	tree := c.Tree()
	fn := core.MustNewFunction(c.RootCitation())
	r := c.rng(2)
	i := 0
	for _, p := range tree.Paths() {
		if p == "/" {
			continue
		}
		if r.Float64() < c.CiteDensity {
			if err := fn.Add(tree, p, c.Citation(i)); err != nil {
				panic(err) // generation bug: paths come from the tree itself
			}
			i++
		}
	}
	return fn
}

// FunctionWithEntries builds a function with exactly n non-root entries
// over a flat tree (for codec and merge benchmarks keyed on entry count).
func FunctionWithEntries(n int) (*core.Function, *core.PathSet) {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/mod%03d/pkg%03d/file.go", i/100, i%100)
	}
	var tree *core.PathSet
	if n == 0 {
		tree = core.MustPathSet("/placeholder.go")
	} else {
		tree = core.MustPathSet(paths...)
	}
	cfg := Default()
	fn := core.MustNewFunction(cfg.RootCitation())
	for i, p := range paths {
		if err := fn.Add(tree, p, cfg.Citation(i)); err != nil {
			panic(err)
		}
	}
	return fn, tree
}

// SplitForMerge derives two divergent functions from a base function for
// merge benchmarks: each side receives half of the base's non-root entries,
// and conflictFraction of the shared paths are modified differently on the
// two sides.
func SplitForMerge(base *core.Function, tree core.Tree, conflictFraction float64, seed int64) (ours, theirs *core.Function) {
	r := rand.New(rand.NewSource(seed))
	ours = core.MustNewFunction(base.Root())
	theirs = core.MustNewFunction(base.Root())
	i := 0
	for _, pc := range base.ActiveDomain() {
		if pc.Path == "/" {
			continue
		}
		switch {
		case r.Float64() < conflictFraction:
			// Both sides carry the path with different citations.
			oursC := pc.Citation.Clone()
			oursC.Note = "ours"
			theirsC := pc.Citation.Clone()
			theirsC.Note = "theirs"
			mustSet(ours, tree, pc.Path, oursC)
			mustSet(theirs, tree, pc.Path, theirsC)
		case i%2 == 0:
			mustSet(ours, tree, pc.Path, pc.Citation)
		default:
			mustSet(theirs, tree, pc.Path, pc.Citation)
		}
		i++
	}
	return ours, theirs
}

func mustSet(fn *core.Function, tree core.Tree, path string, c core.Citation) {
	if err := fn.Set(tree, path, c); err != nil {
		panic(err)
	}
}

// Edit is one step of a synthetic edit script.
type Edit struct {
	// Op is "write", "remove" or "move".
	Op   string
	Path string
	To   string // for moves
	Data []byte // for writes
}

// EditScript generates n edits over the config's tree: 60% writes (half to
// new files), 20% removals, 20% moves.
func (c Config) EditScript(n int) []Edit {
	r := c.rng(3)
	paths := c.Paths()
	live := append([]string(nil), paths...)
	var out []Edit
	for i := 0; i < n; i++ {
		switch x := r.Float64(); {
		case x < 0.3: // overwrite existing
			p := live[r.Intn(len(live))]
			out = append(out, Edit{Op: "write", Path: p, Data: sourceLike(r, c.FileBytes)})
		case x < 0.6: // new file
			p := vcs.MustCleanPath(fmt.Sprintf("/new/dir%02d/f%04d.go", i%10, i))
			live = append(live, p)
			out = append(out, Edit{Op: "write", Path: p, Data: sourceLike(r, c.FileBytes)})
		case x < 0.8 && len(live) > 1: // remove
			j := r.Intn(len(live))
			p := live[j]
			live = append(live[:j], live[j+1:]...)
			out = append(out, Edit{Op: "remove", Path: p})
		default: // move
			j := r.Intn(len(live))
			p := live[j]
			np := vcs.MustCleanPath(fmt.Sprintf("/moved/f%04d.go", i))
			live[j] = np
			out = append(out, Edit{Op: "move", Path: p, To: np})
		}
	}
	return out
}

// BuildHistory materialises the synthetic project as a citation-enabled
// in-memory repository: one seed commit holding the config's whole tree on
// "main", followed by `commits` further commits each applying one step of
// the config's deterministic edit script. It returns the repository and
// every commit ID in order (seed first) — the fixture for sync protocol
// tests and benchmarks that need real multi-version histories.
func BuildHistory(cfg Config, commits int) (*gitcite.Repo, []object.ID, error) {
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: "workload",
		Name:  fmt.Sprintf("synthetic-%d", cfg.Seed),
		URL:   fmt.Sprintf("https://git.example/workload/synthetic-%d", cfg.Seed),
	})
	if err != nil {
		return nil, nil, err
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		return nil, nil, err
	}
	for p, f := range cfg.Files() {
		if err := wt.WriteFile(p, f.Data); err != nil {
			return nil, nil, err
		}
	}
	when := time.Unix(1_535_942_120, 0).UTC()
	commitOpts := func(i int, msg string) vcs.CommitOptions {
		return vcs.CommitOptions{
			Author:  vcs.Sig("Workload Generator", "workload@git.example", when.Add(time.Duration(i)*time.Minute)),
			Message: msg,
		}
	}
	tip, err := wt.Commit(commitOpts(0, "seed"))
	if err != nil {
		return nil, nil, err
	}
	tips := []object.ID{tip}
	for i, e := range cfg.EditScript(commits) {
		switch e.Op {
		case "write":
			err = wt.WriteFile(e.Path, e.Data)
		case "remove":
			err = wt.RemoveFile(e.Path)
		case "move":
			err = wt.Move(e.Path, e.To)
		default:
			err = fmt.Errorf("workload: unknown edit op %q", e.Op)
		}
		if err != nil {
			return nil, nil, err
		}
		tip, err = wt.Commit(commitOpts(i+1, fmt.Sprintf("%s %s", e.Op, e.Path)))
		if err != nil {
			return nil, nil, err
		}
		tips = append(tips, tip)
	}
	return repo, tips, nil
}

// DeepTreePaths lays n files over a nested tree whose spine reaches depth
// directories, cycling file placement through every spine level so both
// shallow and maximally deep resolutions appear in any sample — the shape
// the load harness's monorepo scenario reads against. Deterministic in
// (n, depth).
func DeepTreePaths(n, depth int) []string {
	if depth < 1 {
		depth = 1
	}
	spine := make([]string, depth+1)
	for i := 1; i <= depth; i++ {
		spine[i] = spine[i-1] + fmt.Sprintf("/s%02d", i-1)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lvl := i % (depth + 1)
		out = append(out, vcs.MustCleanPath(fmt.Sprintf("%s/f%05d.go", spine[lvl], i)))
	}
	return out
}

// SpineDirs returns the directories of DeepTreePaths' spine, shallowest
// first ("/s00", "/s00/s01", …) — the paths a scenario cites so deep reads
// resolve through real chains.
func SpineDirs(depth int) []string {
	if depth < 1 {
		depth = 1
	}
	out := make([]string, depth)
	p := ""
	for i := 0; i < depth; i++ {
		p += fmt.Sprintf("/s%02d", i)
		out[i] = p
	}
	return out
}

// FilesFor materialises deterministic pseudo-source contents for a path
// list; the same (paths, seed, approxBytes) always yields the same bytes.
func FilesFor(paths []string, seed int64, approxBytes int) map[string]vcs.FileContent {
	r := rand.New(rand.NewSource(seed))
	out := make(map[string]vcs.FileContent, len(paths))
	// Iterate the slice, not a map, so contents are stable per position.
	for _, p := range paths {
		out[p] = vcs.FileContent{Data: sourceLike(r, approxBytes)}
	}
	return out
}

// TinyRepoPaths is the file set of one registry-scenario repository: a
// README, one source file and a data file — the "millions of small hosted
// projects" shape from the registry-browsing workload class.
func TinyRepoPaths() []string {
	return []string{"/README.md", "/src/main.go", "/data/values.csv"}
}

// sourceLike produces n-ish bytes of line-structured pseudo-code, so rename
// similarity scoring has realistic input.
func sourceLike(r *rand.Rand, n int) []byte {
	words := []string{"func", "return", "if", "err", "nil", "range", "var", "struct", "citation", "version"}
	out := make([]byte, 0, n+16)
	for len(out) < n {
		line := fmt.Sprintf("%s %s%d := %s(%d)\n",
			words[r.Intn(len(words))], words[r.Intn(len(words))], r.Intn(100),
			words[r.Intn(len(words))], r.Intn(1000))
		out = append(out, line...)
	}
	return out
}
