package workload

import (
	"reflect"
	"testing"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
)

func TestPathsDeterministicAndClean(t *testing.T) {
	cfg := Default()
	a := cfg.Paths()
	b := cfg.Paths()
	if !reflect.DeepEqual(a, b) {
		t.Error("Paths not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no paths generated")
	}
	for _, p := range a {
		if vcs.MustCleanPath(p) != p {
			t.Errorf("path %q not clean", p)
		}
	}
	// Size formula: files per dir × number of dirs.
	// dirs(depth d, fanout f) = 1 + f + f² + … + f^(d-1)
	wantDirs := 1 + 3 + 9
	if len(a) != wantDirs*cfg.FilesPerDir {
		t.Errorf("got %d files, want %d", len(a), wantDirs*cfg.FilesPerDir)
	}
}

func TestFilesAndTreeAgree(t *testing.T) {
	cfg := Default()
	files := cfg.Files()
	tree := cfg.Tree()
	if len(files) != len(cfg.Paths()) {
		t.Errorf("files = %d, paths = %d", len(files), len(cfg.Paths()))
	}
	for p, fc := range files {
		if !tree.Exists(p) {
			t.Errorf("tree missing %q", p)
		}
		if len(fc.Data) < cfg.FileBytes {
			t.Errorf("file %q only %d bytes", p, len(fc.Data))
		}
	}
}

func TestFunctionRespectsDensity(t *testing.T) {
	cfg := Default()
	cfg.CiteDensity = 0.5
	fn := cfg.Function()
	total := len(cfg.Tree().Paths()) - 1 // minus root
	got := fn.Len() - 1
	if got < total/4 || got > total*3/4 {
		t.Errorf("density 0.5 produced %d/%d entries", got, total)
	}
	// Determinism.
	if fn2 := cfg.Function(); !fn.Equal(fn2) {
		t.Error("Function not deterministic")
	}
	// Zero density: only the root.
	cfg.CiteDensity = 0
	if cfg.Function().Len() != 1 {
		t.Error("zero density produced entries")
	}
}

func TestFunctionWithEntries(t *testing.T) {
	for _, n := range []int{0, 1, 10, 250} {
		fn, tree := FunctionWithEntries(n)
		if fn.Len() != n+1 {
			t.Errorf("n=%d: len = %d", n, fn.Len())
		}
		if err := fn.Validate(tree); err != nil {
			t.Errorf("n=%d: invalid: %v", n, err)
		}
	}
}

func TestSplitForMerge(t *testing.T) {
	fn, tree := FunctionWithEntries(100)
	ours, theirs := SplitForMerge(fn, tree, 0.2, 7)
	// Merge them back: conflicts roughly 20% of 100.
	res, err := core.Merge(ours, theirs, tree, core.MergeOptions{Strategy: core.StrategyOurs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) < 5 || len(res.Conflicts) > 40 {
		t.Errorf("conflicts = %d, want ≈20", len(res.Conflicts))
	}
	// All 100 paths are present in the union.
	if res.Function.Len() != 101 {
		t.Errorf("union len = %d, want 101", res.Function.Len())
	}
	// Zero conflict fraction merges cleanly.
	ours0, theirs0 := SplitForMerge(fn, tree, 0, 7)
	res0, err := core.Merge(ours0, theirs0, tree, core.MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Conflicts) != 0 {
		t.Errorf("zero fraction produced %d conflicts", len(res0.Conflicts))
	}
}

func TestEditScriptShape(t *testing.T) {
	cfg := Default()
	edits := cfg.EditScript(200)
	if len(edits) != 200 {
		t.Fatalf("len = %d", len(edits))
	}
	counts := map[string]int{}
	for _, e := range edits {
		counts[e.Op]++
		switch e.Op {
		case "write":
			if len(e.Data) == 0 {
				t.Error("write without data")
			}
		case "move":
			if e.To == "" {
				t.Error("move without target")
			}
		case "remove":
		default:
			t.Errorf("unknown op %q", e.Op)
		}
	}
	if counts["write"] == 0 || counts["remove"] == 0 || counts["move"] == 0 {
		t.Errorf("op mix = %v", counts)
	}
	// Deterministic.
	if !reflect.DeepEqual(edits, cfg.EditScript(200)) {
		t.Error("EditScript not deterministic")
	}
}

func TestDeepPath(t *testing.T) {
	p := DeepPath(4)
	if got := len(vcs.SplitPath(p)); got != 5 {
		t.Errorf("DeepPath(4) has %d components: %q", got, p)
	}
	if vcs.MustCleanPath(p) != p {
		t.Errorf("DeepPath not clean: %q", p)
	}
}

func TestCitationDistinct(t *testing.T) {
	cfg := Default()
	a, b := cfg.Citation(1), cfg.Citation(2)
	if a.Equal(b) {
		t.Error("distinct indices produced equal citations")
	}
	if !cfg.Citation(1).Equal(a) {
		t.Error("Citation not deterministic")
	}
}
