package gitcite

import (
	"fmt"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/merge"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// MergeOptions configures MergeBranches.
type MergeOptions struct {
	// Files settles file-level conflicts; see merge.Options.
	Files merge.Options
	// Citations settles citation-key conflicts; see core.MergeOptions. Its
	// Base field is filled automatically from the merge-base version when
	// nil and a base exists.
	Citations core.MergeOptions
	// Author/Message for the merge commit.
	Commit vcs.CommitOptions
}

// MergeResult reports what MergeBranches produced.
type MergeResult struct {
	CommitID object.ID
	// FastForward is set when no merge commit was needed.
	FastForward bool
	// FileConflicts are the file-level conflicts encountered (settled by
	// the file resolver).
	FileConflicts []merge.Conflict
	// CiteConflicts are the citation-key conflicts encountered.
	CiteConflicts []core.MergeConflict
	// PrunedCitations lists citation entries dropped because the file merge
	// deleted their paths.
	PrunedCitations []string
}

// MergeBranches implements MergeCite (paper §3): it merges srcBranch into
// dstBranch. Regular files merge under Git-style three-way rules; the
// citation files are NOT merged textually ("we do not use them on
// citation.cite since it could leave the citation function inconsistent") —
// instead the two citation functions are merged by union, entries for
// merge-deleted files are dropped, and key conflicts go to the configured
// strategy.
func (r *Repo) MergeBranches(dstBranch, srcBranch string, opts MergeOptions) (MergeResult, error) {
	dstTip, err := r.VCS.BranchTip(dstBranch)
	if err != nil {
		return MergeResult{}, fmt.Errorf("gitcite: merge destination: %w", err)
	}
	srcTip, err := r.VCS.BranchTip(srcBranch)
	if err != nil {
		return MergeResult{}, fmt.Errorf("gitcite: merge source: %w", err)
	}

	baseID, err := r.VCS.MergeBase(dstTip, srcTip)
	if err != nil {
		return MergeResult{}, err
	}

	// Fast-forward cases: nothing to merge.
	if baseID == srcTip {
		return MergeResult{CommitID: dstTip, FastForward: true}, nil
	}
	if baseID == dstTip {
		if err := r.VCS.Refs.Set("refs/heads/"+dstBranch, srcTip); err != nil {
			return MergeResult{}, err
		}
		return MergeResult{CommitID: srcTip, FastForward: true}, nil
	}

	dstTree, err := r.VCS.TreeOf(dstTip)
	if err != nil {
		return MergeResult{}, err
	}
	srcTree, err := r.VCS.TreeOf(srcTip)
	if err != nil {
		return MergeResult{}, err
	}
	baseTree := object.ZeroID
	if !baseID.IsZero() {
		baseTree, err = r.VCS.TreeOf(baseID)
		if err != nil {
			return MergeResult{}, err
		}
	}

	// File-level three-way merge, with citation.cite excluded: the paper is
	// explicit that Git's conflict rules must not touch the citation file.
	strippedBase, err := dropCiteFile(r.VCS.Objects, baseTree)
	if err != nil {
		return MergeResult{}, err
	}
	strippedDst, err := dropCiteFile(r.VCS.Objects, dstTree)
	if err != nil {
		return MergeResult{}, err
	}
	strippedSrc, err := dropCiteFile(r.VCS.Objects, srcTree)
	if err != nil {
		return MergeResult{}, err
	}
	fileRes, err := merge.Trees(r.VCS.Objects, strippedBase, strippedDst, strippedSrc, opts.Files)
	if err != nil {
		return MergeResult{}, err
	}

	// Citation-function merge over the merged tree.
	ours, err := r.FunctionAt(dstTip)
	if err != nil {
		return MergeResult{}, err
	}
	theirs, err := r.FunctionAt(srcTip)
	if err != nil {
		return MergeResult{}, err
	}
	// The root citation's date is auto-managed version metadata (stamped on
	// every commit), so two branches always disagree on it; normalise both
	// sides to the merge commit's date before conflict detection. Real root
	// differences (owner, repo name, authors, …) still conflict.
	normalizeRootDate(ours, opts.Commit)
	normalizeRootDate(theirs, opts.Commit)
	citeOpts := opts.Citations
	if citeOpts.Base != nil {
		normalizeRootDate(citeOpts.Base, opts.Commit)
	}
	if citeOpts.Base == nil && !baseID.IsZero() && r.IsCitationEnabled(baseID) {
		baseFn, err := r.FunctionAt(baseID)
		if err != nil {
			return MergeResult{}, err
		}
		normalizeRootDate(baseFn, opts.Commit)
		citeOpts.Base = baseFn
	}
	mergedTree := treeAdapter{objects: r.VCS.Objects, treeID: fileRes.TreeID}
	citeRes, err := core.Merge(ours, theirs, mergedTree, citeOpts)
	if err != nil {
		return MergeResult{}, err
	}

	// Write the merged citation file into the merged tree and commit with
	// both parents.
	data, err := citefile.Encode(citeRes.Function, mergedTree.IsDir)
	if err != nil {
		return MergeResult{}, err
	}
	blobID, err := r.VCS.Objects.Put(objectBlob(data))
	if err != nil {
		return MergeResult{}, err
	}
	finalTree, err := vcs.InsertSubtree(r.VCS.Objects, fileRes.TreeID, citefile.Path, fileEntry(blobID))
	if err != nil {
		return MergeResult{}, err
	}
	commitID, err := r.VCS.CommitTree(finalTree, []object.ID{dstTip, srcTip}, opts.Commit)
	if err != nil {
		return MergeResult{}, err
	}
	if err := r.VCS.Refs.Set("refs/heads/"+dstBranch, commitID); err != nil {
		return MergeResult{}, err
	}
	return MergeResult{
		CommitID:        commitID,
		FileConflicts:   fileRes.Conflicts,
		CiteConflicts:   citeRes.Conflicts,
		PrunedCitations: citeRes.Pruned,
	}, nil
}

// dropCiteFile returns the tree without its /citation.cite entry (zero in,
// zero out).
func dropCiteFile(s store.Store, treeID object.ID) (object.ID, error) {
	if treeID.IsZero() {
		return treeID, nil
	}
	if !vcs.PathExists(s, treeID, citefile.Path) {
		return treeID, nil
	}
	return vcs.RemovePath(s, treeID, citefile.Path)
}

// CopyCite copies the directory (or file) at srcPath in a source repository
// version into this worktree at dstPath, migrating the associated citations
// (paper §3): the source subtree's citation entries are added to the working
// citation function with rebased keys, and the subtree root is sealed with
// its resolved citation so Cite is preserved for every copied node.
func (wt *Worktree) CopyCite(src *Repo, srcCommit object.ID, srcPath, dstPath string) error {
	srcClean, err := vcs.CleanPath(srcPath)
	if err != nil {
		return err
	}
	dstClean, err := vcs.CleanPath(dstPath)
	if err != nil {
		return err
	}
	if srcClean == citefile.Path || dstClean == citefile.Path {
		return fmt.Errorf("gitcite: cannot copy the citation file itself")
	}
	srcTreeID, err := src.VCS.TreeOf(srcCommit)
	if err != nil {
		return err
	}
	entry, err := vcs.LookupPath(src.VCS.Objects, srcTreeID, srcClean)
	if err != nil {
		return fmt.Errorf("gitcite: copy source: %w", err)
	}

	// Copy the files first.
	if entry.IsDir() {
		files, err := vcs.FlattenTree(src.VCS.Objects, entry.ID)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return fmt.Errorf("gitcite: copy source %q is empty", srcClean)
		}
		for _, f := range files {
			if f.Path == citefile.Path {
				continue
			}
			blob, err := store.GetBlob(src.VCS.Objects, f.BlobID)
			if err != nil {
				return err
			}
			np, err := vcs.RebasePath(f.Path, "/", dstClean)
			if err != nil {
				return err
			}
			if err := wt.WriteFile(np, blob.Data()); err != nil {
				return err
			}
		}
	} else {
		blob, err := store.GetBlob(src.VCS.Objects, entry.ID)
		if err != nil {
			return err
		}
		if err := wt.WriteFile(dstClean, blob.Data()); err != nil {
			return err
		}
	}

	// Then migrate the citations.
	srcFn, err := src.FunctionAt(srcCommit)
	if err != nil {
		return err
	}
	_, err = wt.fn.MigrateSubtree(srcFn, srcClean, dstClean, wt.Tree(), core.CopyOptions{Overwrite: true})
	return err
}

// normalizeRootDate rewrites a function's root citation date to the merge
// commit's time; see MergeBranches. A zero commit time leaves the function
// untouched.
func normalizeRootDate(fn *core.Function, opts vcs.CommitOptions) {
	when := opts.Committer.When
	if when.IsZero() {
		when = opts.Author.When
	}
	if when.IsZero() {
		return
	}
	root := fn.Root()
	root.CommittedDate = when.UTC()
	_ = fn.Modify("/", root)
}

// objectBlob and fileEntry are tiny helpers keeping merge readable.
func objectBlob(data []byte) *object.Blob { return object.NewBlob(data) }

func fileEntry(id object.ID) object.TreeEntry {
	return object.TreeEntry{Name: citefile.Filename, Mode: object.ModeFile, ID: id}
}
