package gitcite

import (
	"fmt"

	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

// Release commits the worktree as a released version: the root citation's
// Version field is set to version, the commit is created, and a tag of the
// same name points at it. This is the "released version of a software
// project … treated as open-access data" step of the paper's §1, and the
// natural input to an archive deposit.
func (wt *Worktree) Release(version string, opts vcs.CommitOptions) (object.ID, error) {
	if version == "" {
		return object.ZeroID, fmt.Errorf("gitcite: release requires a version string")
	}
	root := wt.fn.Root()
	root.Version = version
	if err := wt.fn.Modify("/", root); err != nil {
		return object.ZeroID, err
	}
	if opts.Message == "" {
		opts.Message = "Release " + version
	}
	id, err := wt.Commit(opts)
	if err != nil {
		return object.ZeroID, err
	}
	if err := wt.repo.VCS.CreateTag(version, id); err != nil {
		return object.ZeroID, fmt.Errorf("gitcite: release tag: %w", err)
	}
	return id, nil
}

// ReleaseVersions lists the repository's released versions (tags) with
// their commits, sorted by tag name.
func (r *Repo) ReleaseVersions() (map[string]object.ID, error) {
	tags, err := r.VCS.Tags()
	if err != nil {
		return nil, err
	}
	out := make(map[string]object.ID, len(tags))
	for _, t := range tags {
		id, err := r.VCS.TagTarget(t)
		if err != nil {
			return nil, err
		}
		out[t] = id
	}
	return out, nil
}
