package gitcite

import (
	"fmt"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

// TestFunctionCacheLRU pins the per-commit function cache's least-recently-
// used eviction: at capacity the coldest version leaves, and touching an
// entry protects it from the next eviction — behaviour the previous
// arbitrary-entry eviction could not guarantee.
func TestFunctionCacheLRU(t *testing.T) {
	repo, err := NewMemoryRepo(Meta{Owner: "o", Name: "r", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	total := fnCacheCap + 10
	commits := make([]object.ID, 0, total)
	for i := 0; i < total; i++ {
		if err := wt.WriteFile("/f.txt", []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		id, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(int64(i+1), 0)), Message: fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, id)
	}
	cached := func(id object.ID) bool {
		repo.fnMu.Lock()
		defer repo.fnMu.Unlock()
		_, ok := repo.fnCache[id]
		return ok
	}
	// Every commit seeded the cache in order, so the 10 oldest are gone and
	// the cache sits exactly at capacity.
	repo.fnMu.Lock()
	size := len(repo.fnCache)
	repo.fnMu.Unlock()
	if size != fnCacheCap {
		t.Fatalf("cache size = %d, want %d", size, fnCacheCap)
	}
	for i := 0; i < 10; i++ {
		if cached(commits[i]) {
			t.Fatalf("commit %d still cached; LRU should have evicted the oldest", i)
		}
	}
	oldest, next := commits[10], commits[11]
	if !cached(oldest) || !cached(next) {
		t.Fatal("expected commits 10 and 11 resident before the recency check")
	}
	// Touch the coldest entry, then force one eviction: the touched entry
	// must survive and the untouched next-coldest must be the victim.
	if _, err := repo.ResolvedFunctionAt(oldest); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.ResolvedFunctionAt(commits[0]); err != nil {
		t.Fatal(err)
	}
	if !cached(oldest) {
		t.Error("recently touched entry was evicted; cache is not LRU")
	}
	if cached(next) {
		t.Error("least-recently-used entry survived the eviction")
	}
	// Victims reload on demand and re-enter the cache.
	if _, err := repo.ResolvedFunctionAt(next); err != nil {
		t.Fatal(err)
	}
	if !cached(next) {
		t.Error("reloaded entry not cached")
	}
}
