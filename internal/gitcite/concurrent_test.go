package gitcite

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// TestParallelGenerate drives Generate/GenerateChain from many goroutines
// across several committed versions while new commits land — the hosting
// platform's read/write mix — and checks every answer; run with -race.
// All readers of one commit share the cached function, so this also
// exercises concurrent warming of a single resolution index.
func TestParallelGenerate(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/src/main.go", []byte("package main\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/vendor/lib.go", []byte("package lib\n")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("leshang", 1_500_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/vendor", cite("extdev")); err != nil {
		t.Fatal(err)
	}
	c2, err := wt.Commit(opts("leshang", 1_500_000_100))
	if err != nil {
		t.Fatal(err)
	}

	commits := []object.ID{c1, c2}
	wantFrom := []string{"/", "/vendor"} // for /vendor/lib.go per commit

	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				k := (g + i) % len(commits)
				citeOut, from, err := r.Generate(commits[k], "/vendor/lib.go")
				if err != nil {
					t.Errorf("Generate: %v", err)
					return
				}
				if from != wantFrom[k] {
					t.Errorf("commit %d: from=%q want %q", k, from, wantFrom[k])
					return
				}
				// Root-sourced citations get the version's commit stamped in.
				if from == "/" && citeOut.CommitID != commits[k].Short() {
					t.Errorf("root citation commit=%q want %q", citeOut.CommitID, commits[k].Short())
					return
				}
				chain, err := r.GenerateChain(commits[k], "/vendor/lib.go")
				if err != nil {
					t.Errorf("GenerateChain: %v", err)
					return
				}
				if want := k + 1; len(chain) != want {
					t.Errorf("chain length=%d want %d", len(chain), want)
					return
				}
			}
		}(g)
	}

	// A writer keeps committing new versions on a separate branch while the
	// readers resolve the old ones.
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bwt, err := r.Checkout("main")
		if err != nil {
			t.Errorf("writer checkout: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			if err := bwt.WriteFile("/churn.txt", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("writer write: %v", err)
				return
			}
			if _, err := bwt.Commit(opts("writer", 1_500_001_000+int64(i))); err != nil {
				t.Errorf("writer commit: %v", err)
				return
			}
		}
	}()

	readers.Wait()
	writer.Wait()
}

// TestFunctionAtIsolatedFromCache checks that mutating the snapshot
// FunctionAt returns never leaks into the shared cached function other
// readers resolve against.
func TestFunctionAtIsolatedFromCache(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/src/main.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/src", cite("srcdev")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("leshang", 1_500_000_000))
	if err != nil {
		t.Fatal(err)
	}

	fn, err := r.FunctionAt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Modify("/src", cite("hijacked")); err != nil {
		t.Fatal(err)
	}
	// The shared read path must still see the committed citation.
	got, from, err := r.Generate(c1, "/src/main.go")
	if err != nil || from != "/src" || got.Owner != "srcdev" {
		t.Errorf("Generate after snapshot mutation: owner=%q from=%q err=%v", got.Owner, from, err)
	}
	shared, err := r.ResolvedFunctionAt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if sc, _ := shared.Get("/src"); sc.Owner != "srcdev" {
		t.Errorf("cached function mutated: owner=%q", sc.Owner)
	}
}
