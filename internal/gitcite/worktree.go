package gitcite

import (
	"errors"
	"fmt"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
)

// Worktree is a mutable working copy of one branch: the project's files plus
// the version-in-progress citation function. File edits and citation edits
// accumulate independently (paper §2: "Modifications to files/directories
// and to their associated citations are independent") until Commit writes
// both — the files and the regenerated citation.cite — as one new version.
type Worktree struct {
	repo   *Repo
	branch string
	base   object.ID // commit checked out; zero for an unborn branch
	files  map[string]vcs.FileContent
	fn     *core.Function
}

// Checkout loads a worktree for the named branch. An unborn branch yields an
// empty worktree whose citation function has the repository's default root
// citation. Versions without a citation.cite are citation-enabled on the
// fly with the default root (see also the retro package for history-aware
// enabling).
func (r *Repo) Checkout(branch string) (*Worktree, error) {
	wt := &Worktree{
		repo:   r,
		branch: branch,
		files:  map[string]vcs.FileContent{},
	}
	tip, err := r.VCS.BranchTip(branch)
	switch {
	case errors.Is(err, refs.ErrNotFound):
		fn, err := core.NewFunction(r.DefaultRootCitation(nil, time.Time{}))
		if err != nil {
			return nil, err
		}
		wt.fn = fn
		return wt, nil
	case err != nil:
		return nil, err
	}
	wt.base = tip
	treeID, err := r.VCS.TreeOf(tip)
	if err != nil {
		return nil, err
	}
	files, err := vcs.TreeToFileMap(r.VCS.Objects, treeID)
	if err != nil {
		return nil, err
	}
	delete(files, citefile.Path)
	wt.files = files

	fn, err := r.FunctionAt(tip)
	if errors.Is(err, ErrNotCitationEnabled) {
		fn, err = core.NewFunction(r.DefaultRootCitation(nil, time.Time{}))
	}
	if err != nil {
		return nil, err
	}
	wt.fn = fn
	return wt, nil
}

// Branch returns the branch the worktree tracks.
func (wt *Worktree) Branch() string { return wt.branch }

// Base returns the commit the worktree was checked out from (zero for an
// unborn branch).
func (wt *Worktree) Base() object.ID { return wt.base }

// Function returns the working citation function (live reference: citation
// operations mutate it and Commit snapshots it).
func (wt *Worktree) Function() *core.Function { return wt.fn }

// Tree returns a core.Tree view of the working files.
func (wt *Worktree) Tree() core.Tree { return worktreeTree{wt} }

type worktreeTree struct{ wt *Worktree }

func (t worktreeTree) Exists(path string) bool {
	if _, ok := t.wt.files[path]; ok {
		return true
	}
	if path == "/" {
		return true
	}
	for p := range t.wt.files {
		if vcs.IsAncestorPath(path, p) && path != p {
			return true
		}
	}
	return false
}

func (t worktreeTree) IsDir(path string) bool {
	if _, ok := t.wt.files[path]; ok {
		return false
	}
	return t.Exists(path)
}

// Files returns the working files as a path map (citation.cite excluded).
// The returned map is shared; treat it as read-only.
func (wt *Worktree) Files() map[string]vcs.FileContent { return wt.files }

// WriteFile creates or replaces a file in the working copy.
func (wt *Worktree) WriteFile(path string, data []byte) error {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return err
	}
	if clean == citefile.Path {
		return fmt.Errorf("gitcite: %s is system-managed and cannot be edited directly", citefile.Filename)
	}
	wt.files[clean] = vcs.FileContent{Data: append([]byte(nil), data...)}
	return nil
}

// RemoveFile deletes a file; its explicit citation entry (if any) is
// removed at Commit time by pruning, mirroring the paper's side-effect
// semantics.
func (wt *Worktree) RemoveFile(path string) error {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return err
	}
	if _, ok := wt.files[clean]; !ok {
		return fmt.Errorf("gitcite: %q: no such file", clean)
	}
	delete(wt.files, clean)
	return nil
}

// Move renames a file or directory and immediately rekeys the affected
// citation entries (paper §2: a moved/renamed path in the active domain
// forces a citation-function update).
func (wt *Worktree) Move(oldPath, newPath string) error {
	oldClean, err := vcs.CleanPath(oldPath)
	if err != nil {
		return err
	}
	newClean, err := vcs.CleanPath(newPath)
	if err != nil {
		return err
	}
	if oldClean == "/" || newClean == "/" {
		return fmt.Errorf("gitcite: cannot move the root")
	}
	var moved []string
	for p := range wt.files {
		if vcs.IsAncestorPath(oldClean, p) {
			moved = append(moved, p)
		}
	}
	if len(moved) == 0 {
		return fmt.Errorf("gitcite: %q: no such file or directory", oldClean)
	}
	for _, p := range moved {
		np, err := vcs.RebasePath(p, oldClean, newClean)
		if err != nil {
			return err
		}
		if _, clash := wt.files[np]; clash {
			return fmt.Errorf("gitcite: move target %q already exists", np)
		}
		wt.files[np] = wt.files[p]
		delete(wt.files, p)
	}
	return wt.fn.Rename(oldClean, newClean)
}

// ReadFile returns a working file's contents.
func (wt *Worktree) ReadFile(path string) ([]byte, error) {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return nil, err
	}
	fc, ok := wt.files[clean]
	if !ok {
		return nil, fmt.Errorf("gitcite: %q: no such file", clean)
	}
	return fc.Data, nil
}

// AddCite attaches a citation to a working path (paper operator AddCite).
func (wt *Worktree) AddCite(path string, c core.Citation) error {
	return wt.fn.Add(wt.Tree(), path, c)
}

// DelCite removes a path's explicit citation (paper operator DelCite).
func (wt *Worktree) DelCite(path string) error { return wt.fn.Delete(path) }

// ModifyCite replaces a path's explicit citation (paper operator
// ModifyCite).
func (wt *Worktree) ModifyCite(path string, c core.Citation) error {
	return wt.fn.Modify(path, c)
}

// GenCite resolves the citation for a working path (closest-ancestor
// semantics), also reporting which active-domain path supplied it. Like
// core.Function.Resolve, the returned citation's AuthorList and Extra
// share storage with the working function — treat them as read-only, or
// Clone the citation before mutating them.
func (wt *Worktree) GenCite(path string) (core.Citation, string, error) {
	return wt.fn.Resolve(path)
}

// SetRootCitation replaces the version's default root citation.
func (wt *Worktree) SetRootCitation(c core.Citation) error {
	return wt.fn.Modify("/", c)
}

// Commit writes the working files plus the regenerated citation.cite as a
// new version on the worktree's branch and re-bases the worktree onto it.
// Before writing, entries for deleted paths are pruned and the function is
// validated against the new tree, so every committed version satisfies the
// model invariants.
func (wt *Worktree) Commit(opts vcs.CommitOptions) (object.ID, error) {
	wt.fn.Prune(wt.Tree())
	wt.stampRoot(opts)
	if err := wt.fn.Validate(wt.Tree()); err != nil {
		return object.ZeroID, fmt.Errorf("gitcite: pre-commit validation: %w", err)
	}
	data, err := citefile.Encode(wt.fn, wt.Tree().IsDir)
	if err != nil {
		return object.ZeroID, err
	}
	all := make(map[string]vcs.FileContent, len(wt.files)+1)
	for p, fc := range wt.files {
		all[p] = fc
	}
	all[citefile.Path] = vcs.FileContent{Data: data}

	id, err := wt.repo.VCS.CommitFiles(wt.branch, all, opts)
	if err != nil {
		return object.ZeroID, err
	}
	wt.base = id
	// Seed the repository's read cache with a COW snapshot of the function
	// just committed; later worktree edits copy-on-write away from it.
	wt.repo.cacheFunction(id, wt.fn.Clone())
	return id, nil
}

// stampRoot dates the version's root citation with the commit time — the
// paper's requirement that the root citation carry "the version number
// and/or date" of the version it describes.
func (wt *Worktree) stampRoot(opts vcs.CommitOptions) {
	when := opts.Committer.When
	if when.IsZero() {
		when = opts.Author.When
	}
	if when.IsZero() {
		return
	}
	root := wt.fn.Root()
	root.CommittedDate = when.UTC().Truncate(time.Second)
	if root.Version == UnreleasedVersion {
		root.Version = ""
	}
	// Modify cannot fail here: the root exists and stays valid (it now has
	// a date). Ignore the error defensively all the same.
	_ = wt.fn.Modify("/", root)
}
