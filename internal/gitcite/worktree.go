package gitcite

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// workFile is one file of the working copy. Unmodified files checked out
// from the base version stay as a (blobID, mode) reference into the object
// store and are loaded only when read; written files carry their bytes
// directly. Committing a reference costs no blob re-encode or re-hash.
type workFile struct {
	mode   object.Mode
	blobID object.ID // non-zero: content lives in the store (lazy)
	data   []byte    // authoritative when blobID is zero
}

// Worktree is a mutable working copy of one branch: the project's files plus
// the version-in-progress citation function. File edits and citation edits
// accumulate independently (paper §2: "Modifications to files/directories
// and to their associated citations are independent") until Commit writes
// both — the files and the regenerated citation.cite — as one new version.
//
// The worktree is change-tracking: it records which paths were written,
// moved or removed since checkout, and Commit hands only that delta (plus
// the base version's tree) to the incremental tree builder, so commit cost
// is proportional to the change, not the repository.
type Worktree struct {
	repo   *Repo
	branch string
	base   object.ID // commit checked out; zero for an unborn branch
	// baseTree is base's root tree, the diff target for incremental
	// commits; zero for an unborn branch.
	baseTree object.ID
	files    map[string]*workFile
	// dirty marks paths created or modified since checkout; removed marks
	// paths deleted (or moved away) that the base tree may still hold.
	dirty   map[string]bool
	removed map[string]bool
	fn      *core.Function

	// gen counts file-set mutations; dirIndex/dirIndexGen memoise the
	// directory-set index the commit-time tree view queries.
	gen         uint64
	dirIndex    map[string]bool
	dirIndexGen uint64
}

// Checkout loads a worktree for the named branch. An unborn branch yields an
// empty worktree whose citation function has the repository's default root
// citation. Versions without a citation.cite are citation-enabled on the
// fly with the default root (see also the retro package for history-aware
// enabling).
//
// Checkout does not materialise file contents: every file of the base
// version is held as a blob reference and loaded from the object store
// only if read.
func (r *Repo) Checkout(branch string) (*Worktree, error) {
	wt := &Worktree{
		repo:    r,
		branch:  branch,
		files:   map[string]*workFile{},
		dirty:   map[string]bool{},
		removed: map[string]bool{},
	}
	tip, err := r.VCS.BranchTip(branch)
	switch {
	case errors.Is(err, refs.ErrNotFound):
		fn, err := core.NewFunction(r.DefaultRootCitation(nil, time.Time{}))
		if err != nil {
			return nil, err
		}
		wt.fn = fn
		return wt, nil
	case err != nil:
		return nil, err
	}
	wt.base = tip
	treeID, err := r.VCS.TreeOf(tip)
	if err != nil {
		return nil, err
	}
	wt.baseTree = treeID
	listed, err := vcs.FlattenTree(r.VCS.Objects, treeID)
	if err != nil {
		return nil, err
	}
	for _, f := range listed {
		if f.Path == citefile.Path {
			continue
		}
		wt.files[f.Path] = &workFile{mode: f.Mode, blobID: f.BlobID}
	}

	fn, err := r.FunctionAt(tip)
	if errors.Is(err, ErrNotCitationEnabled) {
		fn, err = core.NewFunction(r.DefaultRootCitation(nil, time.Time{}))
	}
	if err != nil {
		return nil, err
	}
	wt.fn = fn
	return wt, nil
}

// Branch returns the branch the worktree tracks.
func (wt *Worktree) Branch() string { return wt.branch }

// Base returns the commit the worktree was checked out from (zero for an
// unborn branch).
func (wt *Worktree) Base() object.ID { return wt.base }

// Function returns the working citation function (live reference: citation
// operations mutate it and Commit snapshots it).
func (wt *Worktree) Function() *core.Function { return wt.fn }

// Tree returns a core.Tree view of the working files.
func (wt *Worktree) Tree() core.Tree { return worktreeTree{wt} }

// dirs returns the set of every directory implied by the working files
// (always including "/"), built once per file-set generation. Pre-commit
// validation and pruning issue one Exists/IsDir query per cited path, so
// the view must answer in O(1) rather than scanning all files per query.
func (wt *Worktree) dirs() map[string]bool {
	if wt.dirIndex != nil && wt.dirIndexGen == wt.gen {
		return wt.dirIndex
	}
	dirs := map[string]bool{"/": true}
	for p := range wt.files {
		for d := vcs.ParentPath(p); !dirs[d]; d = vcs.ParentPath(d) {
			dirs[d] = true
		}
	}
	wt.dirIndex, wt.dirIndexGen = dirs, wt.gen
	return dirs
}

type worktreeTree struct{ wt *Worktree }

func (t worktreeTree) Exists(path string) bool {
	if _, ok := t.wt.files[path]; ok {
		return true
	}
	return t.wt.dirs()[path]
}

func (t worktreeTree) IsDir(path string) bool {
	if _, ok := t.wt.files[path]; ok {
		return false
	}
	return t.wt.dirs()[path]
}

// Paths returns the working file paths in sorted order (citation.cite
// excluded).
func (wt *Worktree) Paths() []string {
	out := make([]string, 0, len(wt.files))
	for p := range wt.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// markWritten records a path as created/modified since checkout.
func (wt *Worktree) markWritten(path string) {
	wt.dirty[path] = true
	delete(wt.removed, path)
	wt.gen++
}

// markRemoved records a path as deleted since checkout.
func (wt *Worktree) markRemoved(path string) {
	delete(wt.dirty, path)
	wt.removed[path] = true
	wt.gen++
}

// WriteFile creates or replaces a file in the working copy.
func (wt *Worktree) WriteFile(path string, data []byte) error {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return err
	}
	if clean == citefile.Path {
		return fmt.Errorf("gitcite: %s is system-managed and cannot be edited directly", citefile.Filename)
	}
	wt.files[clean] = &workFile{data: append([]byte(nil), data...)}
	wt.markWritten(clean)
	return nil
}

// RemoveFile deletes a file; its explicit citation entry (if any) is
// removed at Commit time by pruning, mirroring the paper's side-effect
// semantics.
func (wt *Worktree) RemoveFile(path string) error {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return err
	}
	if _, ok := wt.files[clean]; !ok {
		return fmt.Errorf("gitcite: %q: no such file", clean)
	}
	delete(wt.files, clean)
	wt.markRemoved(clean)
	return nil
}

// Move renames a file or directory and immediately rekeys the affected
// citation entries (paper §2: a moved/renamed path in the active domain
// forces a citation-function update). Unloaded files move as blob
// references: only their paths re-hash at commit, never their contents.
func (wt *Worktree) Move(oldPath, newPath string) error {
	oldClean, err := vcs.CleanPath(oldPath)
	if err != nil {
		return err
	}
	newClean, err := vcs.CleanPath(newPath)
	if err != nil {
		return err
	}
	if oldClean == "/" || newClean == "/" {
		return fmt.Errorf("gitcite: cannot move the root")
	}
	if newClean == citefile.Path {
		return fmt.Errorf("gitcite: %s is system-managed and cannot be a move target", citefile.Filename)
	}
	var moved []string
	for p := range wt.files {
		if vcs.IsAncestorPath(oldClean, p) {
			moved = append(moved, p)
		}
	}
	if len(moved) == 0 {
		return fmt.Errorf("gitcite: %q: no such file or directory", oldClean)
	}
	for _, p := range moved {
		np, err := vcs.RebasePath(p, oldClean, newClean)
		if err != nil {
			return err
		}
		if np == citefile.Path {
			return fmt.Errorf("gitcite: %s is system-managed and cannot be a move target", citefile.Filename)
		}
		if _, clash := wt.files[np]; clash {
			return fmt.Errorf("gitcite: move target %q already exists", np)
		}
		wt.files[np] = wt.files[p]
		delete(wt.files, p)
		wt.markRemoved(p)
		wt.markWritten(np)
	}
	return wt.fn.Rename(oldClean, newClean)
}

// ReadFile returns a working file's contents, loading unmodified files
// from the object store on demand.
func (wt *Worktree) ReadFile(path string) ([]byte, error) {
	clean, err := vcs.CleanPath(path)
	if err != nil {
		return nil, err
	}
	f, ok := wt.files[clean]
	if !ok {
		return nil, fmt.Errorf("gitcite: %q: no such file", clean)
	}
	if f.blobID.IsZero() {
		return append([]byte(nil), f.data...), nil
	}
	blob, err := store.GetBlob(wt.repo.VCS.Objects, f.blobID)
	if err != nil {
		return nil, err
	}
	// Copy out: the blob's backing slice is shared with the repository's
	// object cache, and callers may mutate what we return.
	return append([]byte(nil), blob.Data()...), nil
}

// AddCite attaches a citation to a working path (paper operator AddCite).
func (wt *Worktree) AddCite(path string, c core.Citation) error {
	return wt.fn.Add(wt.Tree(), path, c)
}

// DelCite removes a path's explicit citation (paper operator DelCite).
func (wt *Worktree) DelCite(path string) error { return wt.fn.Delete(path) }

// ModifyCite replaces a path's explicit citation (paper operator
// ModifyCite).
func (wt *Worktree) ModifyCite(path string, c core.Citation) error {
	return wt.fn.Modify(path, c)
}

// GenCite resolves the citation for a working path (closest-ancestor
// semantics), also reporting which active-domain path supplied it. Like
// core.Function.Resolve, the returned citation's AuthorList and Extra
// share storage with the working function — treat them as read-only, or
// Clone the citation before mutating them.
func (wt *Worktree) GenCite(path string) (core.Citation, string, error) {
	return wt.fn.Resolve(path)
}

// SetRootCitation replaces the version's default root citation.
func (wt *Worktree) SetRootCitation(c core.Citation) error {
	return wt.fn.Modify("/", c)
}

// delta returns the accumulated file changes since checkout in the form
// BuildTreeDelta consumes. Dirty files that were never loaded contribute
// their blob reference, so no content re-hashes.
func (wt *Worktree) delta() (edits map[string]vcs.TreeEdit, removed []string) {
	edits = make(map[string]vcs.TreeEdit, len(wt.dirty)+1)
	for p := range wt.dirty {
		f := wt.files[p]
		edits[p] = vcs.TreeEdit{Data: f.data, BlobID: f.blobID, Mode: f.mode}
	}
	removed = make([]string, 0, len(wt.removed))
	for p := range wt.removed {
		removed = append(removed, p)
	}
	return edits, removed
}

// buildFileTree writes the current working files (without citation.cite)
// as a tree, incrementally against the base version's tree.
func (wt *Worktree) buildFileTree() (object.ID, error) {
	edits, removed := wt.delta()
	// The base tree carries the base version's citation.cite; the working
	// file set never does.
	removed = append(removed, citefile.Path)
	return vcs.BuildTreeDelta(wt.repo.VCS.Objects, wt.baseTree, edits, removed)
}

// Commit writes the working files plus the regenerated citation.cite as a
// new version on the worktree's branch and re-bases the worktree onto it.
// Before writing, entries for deleted paths are pruned and the function is
// validated against the new tree, so every committed version satisfies the
// model invariants.
//
// The new tree is built incrementally: only the paths touched since
// checkout (plus the regenerated citation.cite) re-hash, and subtrees the
// delta does not reach reuse the base version's stored trees verbatim.
func (wt *Worktree) Commit(opts vcs.CommitOptions) (object.ID, error) {
	wt.fn.Prune(wt.Tree())
	wt.stampRoot(opts)
	if err := wt.fn.Validate(wt.Tree()); err != nil {
		return object.ZeroID, fmt.Errorf("gitcite: pre-commit validation: %w", err)
	}
	data, err := citefile.Encode(wt.fn, wt.Tree().IsDir)
	if err != nil {
		return object.ZeroID, err
	}
	edits, removed := wt.delta()
	edits[citefile.Path] = vcs.TreeEdit{Data: data}

	id, err := wt.repo.VCS.CommitDelta(wt.branch, wt.baseTree, edits, removed, opts)
	if err != nil {
		return object.ZeroID, err
	}
	newTree, err := wt.repo.VCS.TreeOf(id)
	if err != nil {
		return object.ZeroID, err
	}
	wt.base = id
	wt.baseTree = newTree
	wt.dirty = map[string]bool{}
	wt.removed = map[string]bool{}
	// Seed the repository's read cache by decoding the bytes just written,
	// so the cached view is byte-identical to what a cold loadFunction
	// would produce (the encoding normalises dates; the live wt.fn may
	// hold sub-second precision the file cannot express). A decode failure
	// only skips the seeding — readers fall back to loading on demand.
	if fn, err := citefile.Decode(data); err == nil {
		wt.repo.cacheFunction(id, fn)
	}
	return id, nil
}

// stampRoot dates the version's root citation with the commit time — the
// paper's requirement that the root citation carry "the version number
// and/or date" of the version it describes.
func (wt *Worktree) stampRoot(opts vcs.CommitOptions) {
	when := opts.Committer.When
	if when.IsZero() {
		when = opts.Author.When
	}
	if when.IsZero() {
		return
	}
	root := wt.fn.Root()
	root.CommittedDate = when.UTC().Truncate(time.Second)
	if root.Version == UnreleasedVersion {
		root.Version = ""
	}
	// Modify cannot fail here: the root exists and stays valid (it now has
	// a date). Ignore the error defensively all the same.
	_ = wt.fn.Modify("/", root)
}
