package gitcite

import (
	"strings"
	"testing"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs/merge"
)

// setupDivergent creates main (with /shared, /main-only.txt) and a "gui"
// branch (adding /citation/GUI/app.js), both citation-enabled.
func setupDivergent(t *testing.T) *Repo {
	t.Helper()
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/shared.txt", []byte("base\n")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("leshang", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("gui", base); err != nil {
		t.Fatal(err)
	}

	// main adds a file and cites it.
	wtMain, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wtMain.WriteFile("/main-only.txt", []byte("m\n")); err != nil {
		t.Fatal(err)
	}
	if err := wtMain.AddCite("/main-only.txt", cite("mainOwner")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtMain.Commit(opts("leshang", 200)); err != nil {
		t.Fatal(err)
	}

	// gui adds the GUI directory and cites it (the paper's Yanssie branch).
	wtGui, err := r.Checkout("gui")
	if err != nil {
		t.Fatal(err)
	}
	if err := wtGui.WriteFile("/citation/GUI/app.js", []byte("ui\n")); err != nil {
		t.Fatal(err)
	}
	guiCite := cite("Yanssie")
	if err := wtGui.AddCite("/citation/GUI", guiCite); err != nil {
		t.Fatal(err)
	}
	if _, err := wtGui.Commit(opts("yanssie", 300)); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMergeBranchesUnion(t *testing.T) {
	r := setupDivergent(t)
	res, err := r.MergeBranches("main", "gui", MergeOptions{
		Commit: opts("leshang", 400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FastForward {
		t.Error("divergent merge reported fast-forward")
	}
	if len(res.FileConflicts) != 0 || len(res.CiteConflicts) != 0 {
		t.Errorf("conflicts: files=%+v cites=%+v", res.FileConflicts, res.CiteConflicts)
	}
	// Merge commit has two parents.
	c, err := r.VCS.Commit(res.CommitID)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsMerge() {
		t.Error("merge commit is not a merge")
	}
	// Union of citations: both /main-only.txt and /citation/GUI present.
	fn, err := r.FunctionAt(res.CommitID)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fn.Get("/main-only.txt")
	if err != nil || m.Owner != "mainOwner" {
		t.Errorf("main citation = %+v, %v", m, err)
	}
	g, err := fn.Get("/citation/GUI")
	if err != nil || g.Owner != "Yanssie" {
		t.Errorf("gui citation = %+v, %v", g, err)
	}
	// Both file sets present.
	raw, _ := r.CiteFileBytes(res.CommitID)
	if !strings.Contains(string(raw), "/citation/GUI/") {
		t.Errorf("cite file missing GUI dir key:\n%s", raw)
	}
}

func TestMergeBranchesFastForward(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f", []byte("1")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("feature", base); err != nil {
		t.Fatal(err)
	}
	wtF, _ := r.Checkout("feature")
	if err := wtF.WriteFile("/g", []byte("2")); err != nil {
		t.Fatal(err)
	}
	fTip, err := wtF.Commit(opts("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	// main has not moved: merging feature fast-forwards.
	res, err := r.MergeBranches("main", "feature", MergeOptions{Commit: opts("a", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastForward || res.CommitID != fTip {
		t.Errorf("res = %+v, want fast-forward to %s", res, fTip.Short())
	}
	tip, _ := r.VCS.BranchTip("main")
	if tip != fTip {
		t.Error("main did not advance")
	}
	// Reverse direction: feature already contains main's tip.
	res, err = r.MergeBranches("feature", "main", MergeOptions{Commit: opts("a", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastForward || res.CommitID != fTip {
		t.Errorf("up-to-date merge = %+v", res)
	}
}

func TestMergeBranchesCitationConflict(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/lib/f.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/lib", cite("original")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	// Both sides modify /lib's citation differently.
	wtMain, _ := r.Checkout("main")
	if err := wtMain.ModifyCite("/lib", cite("mainEdit")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtMain.Commit(opts("a", 2)); err != nil {
		t.Fatal(err)
	}
	wtSide, _ := r.Checkout("side")
	if err := wtSide.ModifyCite("/lib", cite("sideEdit")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtSide.Commit(opts("b", 3)); err != nil {
		t.Fatal(err)
	}

	// Ask strategy with a recording resolver (the paper's interactive flow).
	var asked []core.MergeConflict
	res, err := r.MergeBranches("main", "side", MergeOptions{
		Citations: core.MergeOptions{
			Strategy: core.StrategyAsk,
			Resolver: func(c core.MergeConflict) (core.Citation, error) {
				asked = append(asked, c)
				return c.Theirs, nil
			},
		},
		Commit: opts("a", 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The root citations also conflict (the two branches stamped different
	// commit dates), so the resolver is consulted for "/" and "/lib".
	sawLib := false
	for _, c := range asked {
		if c.Path == "/lib" {
			sawLib = true
			if c.Ours.Owner != "mainEdit" || c.Theirs.Owner != "sideEdit" {
				t.Errorf("conflict sides = %+v", c)
			}
		}
	}
	if !sawLib {
		t.Errorf("resolver never asked about /lib: %+v", asked)
	}
	fn, err := r.FunctionAt(res.CommitID)
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := fn.Get("/lib")
	if lib.Owner != "sideEdit" {
		t.Errorf("resolved /lib = %+v", lib)
	}
}

func TestMergeBranchesThreeWayAutoResolves(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/lib/f.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/lib", cite("original")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	// Only side edits /lib's citation; main is untouched.
	wtSide, _ := r.Checkout("side")
	if err := wtSide.ModifyCite("/lib", cite("sideEdit")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtSide.Commit(opts("b", 2)); err != nil {
		t.Fatal(err)
	}
	wtMain, _ := r.Checkout("main")
	if err := wtMain.WriteFile("/other.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtMain.Commit(opts("a", 3)); err != nil {
		t.Fatal(err)
	}

	res, err := r.MergeBranches("main", "side", MergeOptions{
		Citations: core.MergeOptions{
			Strategy: core.StrategyThreeWay,
			Resolver: func(c core.MergeConflict) (core.Citation, error) { return c.Ours, nil },
		},
		Commit: opts("a", 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := r.FunctionAt(res.CommitID)
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := fn.Get("/lib")
	if lib.Owner != "sideEdit" {
		t.Errorf("three-way /lib = %q, want side's edit to win", lib.Owner)
	}
}

func TestMergeBranchesFileConflictDoesNotTouchCiteFile(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f.txt", []byte("base\n")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	wtM, _ := r.Checkout("main")
	if err := wtM.WriteFile("/f.txt", []byte("main edit\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtM.Commit(opts("a", 2)); err != nil {
		t.Fatal(err)
	}
	wtS, _ := r.Checkout("side")
	if err := wtS.WriteFile("/f.txt", []byte("side edit\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtS.Commit(opts("b", 3)); err != nil {
		t.Fatal(err)
	}

	res, err := r.MergeBranches("main", "side", MergeOptions{
		Files:  merge.Options{Resolver: func(merge.Conflict) merge.Resolution { return merge.ResolveConcat }},
		Commit: opts("a", 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FileConflicts) != 1 || res.FileConflicts[0].Path != "/f.txt" {
		t.Errorf("file conflicts = %+v", res.FileConflicts)
	}
	// The conflicted file has markers; the citation file parses cleanly
	// (never merged textually).
	fn, err := r.FunctionAt(res.CommitID)
	if err != nil {
		t.Fatalf("citation file corrupted by merge: %v", err)
	}
	if err := fn.Validate(core.AnyTree()); err != nil {
		t.Errorf("merged function invalid: %v", err)
	}
}

func TestMergePrunesCitationsOfDeletedFiles(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	for p, d := range map[string]string{"/keep.txt": "k", "/drop.txt": "d"} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.AddCite("/drop.txt", cite("dropOwner")); err != nil {
		t.Fatal(err)
	}
	base, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VCS.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	// side deletes drop.txt; main edits keep.txt.
	wtS, _ := r.Checkout("side")
	if err := wtS.RemoveFile("/drop.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := wtS.Commit(opts("b", 2)); err != nil {
		t.Fatal(err)
	}
	wtM, _ := r.Checkout("main")
	if err := wtM.WriteFile("/keep.txt", []byte("edited")); err != nil {
		t.Fatal(err)
	}
	if _, err := wtM.Commit(opts("a", 3)); err != nil {
		t.Fatal(err)
	}

	res, err := r.MergeBranches("main", "side", MergeOptions{Commit: opts("a", 4)})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := r.FunctionAt(res.CommitID)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Has("/drop.txt") {
		t.Error("citation for merge-deleted file survived")
	}
	found := false
	for _, p := range res.PrunedCitations {
		if p == "/drop.txt" {
			found = true
		}
	}
	if !found {
		t.Errorf("pruned = %v", res.PrunedCitations)
	}
}

func TestCopyCiteIntoWorktree(t *testing.T) {
	// Source repo P2 with a cited CoreCover directory.
	src, err := NewMemoryRepo(Meta{Owner: "Chen Li", Name: "alu01-corecover", URL: "https://github.com/chenlica/alu01-corecover"})
	if err != nil {
		t.Fatal(err)
	}
	wtSrc, _ := src.Checkout("main")
	for p, d := range map[string]string{
		"/CoreCover/rewrite.py": "rewrite",
		"/CoreCover/tests/t.py": "test",
		"/unrelated/readme.txt": "other",
	} {
		if err := wtSrc.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	srcTip, err := wtSrc.Commit(opts("chenli", 1_521_851_385))
	if err != nil {
		t.Fatal(err)
	}

	// Destination repo P1.
	dst := newRepo(t)
	wtDst, _ := dst.Checkout("main")
	if err := wtDst.WriteFile("/main.py", []byte("main")); err != nil {
		t.Fatal(err)
	}
	if err := wtDst.CopyCite(src, srcTip, "/CoreCover", "/CoreCover"); err != nil {
		t.Fatal(err)
	}
	// Files copied.
	if _, err := wtDst.ReadFile("/CoreCover/rewrite.py"); err != nil {
		t.Errorf("copied file missing: %v", err)
	}
	if _, err := wtDst.ReadFile("/CoreCover/tests/t.py"); err != nil {
		t.Errorf("copied nested file missing: %v", err)
	}
	// Unrelated source files not copied.
	if _, err := wtDst.ReadFile("/unrelated/readme.txt"); err == nil {
		t.Error("unrelated file copied")
	}
	// The copied subtree root is sealed with the source's resolved citation
	// (the source root default, since /CoreCover had no explicit entry).
	sealed, from, err := wtDst.GenCite("/CoreCover/rewrite.py")
	if err != nil || from != "/CoreCover" {
		t.Fatalf("GenCite = %+v from %q, %v", sealed, from, err)
	}
	if sealed.Owner != "Chen Li" || sealed.RepoName != "alu01-corecover" {
		t.Errorf("sealed = %+v", sealed)
	}
	c1, err := wtDst.Commit(opts("leshang", 1_535_942_120))
	if err != nil {
		t.Fatal(err)
	}
	// Persisted: Cite of the copied file still credits Chen Li.
	got, _, err := dst.Generate(c1, "/CoreCover/tests/t.py")
	if err != nil || got.Owner != "Chen Li" {
		t.Errorf("persisted copy citation = %+v, %v", got, err)
	}
}

func TestCopyCiteSingleFile(t *testing.T) {
	src := newRepo(t)
	wtSrc, _ := src.Checkout("main")
	if err := wtSrc.WriteFile("/algo.py", []byte("algo")); err != nil {
		t.Fatal(err)
	}
	fileCite := cite("fileOwner")
	if err := wtSrc.AddCite("/algo.py", fileCite); err != nil {
		t.Fatal(err)
	}
	srcTip, err := wtSrc.Commit(opts("x", 1))
	if err != nil {
		t.Fatal(err)
	}
	dst := newRepo(t)
	wtDst, _ := dst.Checkout("main")
	if err := wtDst.CopyCite(src, srcTip, "/algo.py", "/vendor/algo.py"); err != nil {
		t.Fatal(err)
	}
	got, from, err := wtDst.GenCite("/vendor/algo.py")
	if err != nil || from != "/vendor/algo.py" || got.Owner != "fileOwner" {
		t.Errorf("single-file copy = %+v from %q, %v", got, from, err)
	}
}

func TestCopyCiteErrors(t *testing.T) {
	src := newRepo(t)
	wtSrc, _ := src.Checkout("main")
	if err := wtSrc.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	srcTip, err := wtSrc.Commit(opts("x", 1))
	if err != nil {
		t.Fatal(err)
	}
	dst := newRepo(t)
	wtDst, _ := dst.Checkout("main")
	if err := wtDst.CopyCite(src, srcTip, "/ghost", "/here"); err == nil {
		t.Error("copy of missing source accepted")
	}
	if err := wtDst.CopyCite(src, srcTip, "/citation.cite", "/here"); err == nil {
		t.Error("copy of citation file accepted")
	}
}

func TestForkPreservesCitations(t *testing.T) {
	src := newRepo(t)
	wt, _ := src.Checkout("main")
	if err := wt.WriteFile("/lib/f.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/lib", cite("libOwner")); err != nil {
		t.Fatal(err)
	}
	tip, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}

	fork, err := Fork(src, Meta{Owner: "Susan", Name: "P2", URL: "https://github.com/susan/P2"})
	if err != nil {
		t.Fatal(err)
	}
	// Same commit IDs, same citations (paper: fork copies history and
	// citation.cite naturally).
	forkTip, err := fork.VCS.BranchTip("main")
	if err != nil || forkTip != tip {
		t.Errorf("fork tip = %v, %v", forkTip, err)
	}
	fn, err := fork.FunctionAt(forkTip)
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := fn.Get("/lib")
	if lib.Owner != "libOwner" {
		t.Errorf("fork citation = %+v", lib)
	}
	// Root of the historical version still credits the origin.
	if fn.Root().Owner != "Leshang" {
		t.Errorf("fork historical root = %+v", fn.Root())
	}
	// New commits in the fork use the fork's meta for fresh roots and do
	// not affect the origin.
	wtFork, err := fork.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wtFork.SetRootCitation(fork.DefaultRootCitation(nil, wtFork.Function().Root().CommittedDate)); err != nil {
		t.Fatal(err)
	}
	forkC, err := wtFork.Commit(opts("susan", 2))
	if err != nil {
		t.Fatal(err)
	}
	forkFn, _ := fork.FunctionAt(forkC)
	if forkFn.Root().Owner != "Susan" {
		t.Errorf("fork new root = %+v", forkFn.Root())
	}
	srcTip, _ := src.VCS.BranchTip("main")
	if srcTip != tip {
		t.Error("fork commit moved origin branch")
	}
	if err := func() error { _, err := Fork(src, Meta{}); return err }(); err == nil {
		t.Error("fork with invalid meta accepted")
	}
}
