package gitcite

import (
	"reflect"
	"testing"
)

func TestSyncRenamesExactMove(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/old/algo.py", []byte("algorithm body\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/keep.txt", []byte("keep\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/old/algo.py", cite("algOwner")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(opts("a", 1)); err != nil {
		t.Fatal(err)
	}

	// Simulate an out-of-band move: a fresh worktree where the file
	// re-appears at a new path with identical content.
	wt2, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt2.RemoveFile("/old/algo.py"); err != nil {
		t.Fatal(err)
	}
	if err := wt2.WriteFile("/new/algo.py", []byte("algorithm body\n")); err != nil {
		t.Fatal(err)
	}

	applied, err := wt2.SyncRenames(RenameDetection{})
	if err != nil {
		t.Fatal(err)
	}
	want := []DetectedRename{{OldPath: "/old/algo.py", NewPath: "/new/algo.py"}}
	if !reflect.DeepEqual(applied, want) {
		t.Fatalf("applied = %+v, want %+v", applied, want)
	}
	got, from, err := wt2.GenCite("/new/algo.py")
	if err != nil || from != "/new/algo.py" || got.Owner != "algOwner" {
		t.Errorf("citation after sync = %+v from %q, %v", got, from, err)
	}
	// Commit keeps the rekeyed entry (nothing pruned).
	c2, err := wt2.Commit(opts("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := r.FunctionAt(c2)
	if !fn.Has("/new/algo.py") || fn.Has("/old/algo.py") {
		t.Errorf("persisted paths = %v", fn.Paths())
	}
}

func TestSyncRenamesSimilarityMove(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	content := "line1\nline2\nline3\nline4\nline5\nline6\nline7\nline8\nline9\nline10\n"
	if err := wt.WriteFile("/src/util.go", []byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/src/util.go", cite("utilOwner")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(opts("a", 1)); err != nil {
		t.Fatal(err)
	}

	wt2, _ := r.Checkout("main")
	if err := wt2.RemoveFile("/src/util.go"); err != nil {
		t.Fatal(err)
	}
	edited := "line1\nline2\nline3\nline4\nline5\nline6\nline7\nline8\nline9\nEDITED\n"
	if err := wt2.WriteFile("/lib/util.go", []byte(edited)); err != nil {
		t.Fatal(err)
	}

	// Exact-only detection misses the edited move.
	applied, err := wt2.SyncRenames(RenameDetection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Fatalf("exact-only applied %+v", applied)
	}
	// Similarity threshold catches it.
	applied, err = wt2.SyncRenames(RenameDetection{MinSimilarity: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].NewPath != "/lib/util.go" {
		t.Fatalf("applied = %+v", applied)
	}
	got, _, _ := wt2.GenCite("/lib/util.go")
	if got.Owner != "utilOwner" {
		t.Errorf("citation lost across fuzzy rename: %+v", got)
	}
}

func TestSyncRenamesIgnoresUncitedMoves(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/plain.txt", []byte("no citation attached\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(opts("a", 1)); err != nil {
		t.Fatal(err)
	}
	wt2, _ := r.Checkout("main")
	if err := wt2.RemoveFile("/plain.txt"); err != nil {
		t.Fatal(err)
	}
	if err := wt2.WriteFile("/moved.txt", []byte("no citation attached\n")); err != nil {
		t.Fatal(err)
	}
	applied, err := wt2.SyncRenames(RenameDetection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Errorf("uncited move recorded: %+v", applied)
	}
}

func TestSyncRenamesUnbornBranch(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	applied, err := wt.SyncRenames(RenameDetection{})
	if err != nil || applied != nil {
		t.Errorf("unborn branch sync = %+v, %v", applied, err)
	}
}

func TestSyncRenamesWithoutSyncCitationIsPruned(t *testing.T) {
	// Control experiment: the same out-of-band move WITHOUT SyncRenames
	// loses the citation at commit (pruned), which is exactly why the
	// detection pass exists.
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/old/f.txt", []byte("data\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/old/f.txt", cite("o")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(opts("a", 1)); err != nil {
		t.Fatal(err)
	}
	wt2, _ := r.Checkout("main")
	if err := wt2.RemoveFile("/old/f.txt"); err != nil {
		t.Fatal(err)
	}
	if err := wt2.WriteFile("/new/f.txt", []byte("data\n")); err != nil {
		t.Fatal(err)
	}
	c2, err := wt2.Commit(opts("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := r.FunctionAt(c2)
	if fn.Has("/old/f.txt") || fn.Has("/new/f.txt") {
		t.Errorf("expected citation to be pruned without sync; paths = %v", fn.Paths())
	}
}
