package gitcite

import (
	"testing"

	"github.com/gitcite/gitcite/internal/vcs"
)

func TestReleaseTagsAndVersionsRoot(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f.go", []byte("v1 code")); err != nil {
		t.Fatal(err)
	}
	relOpts := opts("leshang", 1_600_000_000)
	relOpts.Message = "" // exercise the default release message
	rel, err := wt.Release("1.0.0", relOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The root citation records the version.
	fn, err := r.FunctionAt(rel)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Root().Version != "1.0.0" {
		t.Errorf("root version = %q", fn.Root().Version)
	}
	// The tag points at the release commit.
	target, err := r.VCS.TagTarget("1.0.0")
	if err != nil || target != rel {
		t.Errorf("tag target = %v, %v", target, err)
	}
	tags, err := r.VCS.TagsAt(rel)
	if err != nil || len(tags) != 1 || tags[0] != "1.0.0" {
		t.Errorf("TagsAt = %v, %v", tags, err)
	}
	// Generated citations for the release carry the version.
	cite, _, err := r.Generate(rel, "/f.go")
	if err != nil || cite.Version != "1.0.0" {
		t.Errorf("generated = %+v, %v", cite, err)
	}
	// Default release message.
	c, _ := r.VCS.Commit(rel)
	if c.Summary() != "Release 1.0.0" {
		t.Errorf("message = %q", c.Summary())
	}
}

func TestReleaseRejectsDuplicateVersion(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Release("1.0", opts("a", 1)); err != nil {
		t.Fatal(err)
	}
	wt2, _ := r.Checkout("main")
	if err := wt2.WriteFile("/f.go", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt2.Release("1.0", opts("a", 2)); err == nil {
		t.Error("duplicate release version accepted")
	}
	if _, err := wt2.Release("", opts("a", 3)); err == nil {
		t.Error("empty version accepted")
	}
}

func TestReleaseVersionsListing(t *testing.T) {
	r := newRepo(t)
	var commits []string
	for i, v := range []string{"0.1", "0.2", "1.0"} {
		wt, err := r.Checkout("main")
		if err != nil {
			t.Fatal(err)
		}
		if err := wt.WriteFile("/f.go", []byte(v)); err != nil {
			t.Fatal(err)
		}
		rel, err := wt.Release(v, opts("a", int64(i+1)*1000))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, rel.Short())
	}
	releases, err := r.ReleaseVersions()
	if err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("releases = %v", releases)
	}
	for _, v := range []string{"0.1", "0.2", "1.0"} {
		if _, ok := releases[v]; !ok {
			t.Errorf("missing release %s", v)
		}
	}
	_ = commits
}

func TestTagsRequireExistingCommit(t *testing.T) {
	r := newRepo(t)
	bogus := vcs.NewMemoryRepository() // unrelated store
	wt, _ := bogus.CommitFiles("main", map[string]vcs.FileContent{"/x": vcs.File("x")}, opts("a", 1))
	if err := r.VCS.CreateTag("v1", wt); err == nil {
		t.Error("tag at unknown commit accepted")
	}
}
