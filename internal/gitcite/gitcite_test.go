package gitcite

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
)

func testMeta() Meta {
	return Meta{Owner: "Leshang", Name: "P1", URL: "https://github.com/leshang/P1", License: "MIT"}
}

func opts(name string, unix int64) vcs.CommitOptions {
	return vcs.CommitOptions{
		Author:  vcs.Sig(name, name+"@upenn.edu", time.Unix(unix, 0)),
		Message: "commit by " + name,
	}
}

func cite(owner string) core.Citation {
	return core.Citation{
		Owner: owner, RepoName: "ext-" + owner,
		URL: "https://github.com/" + owner, Version: "1",
		AuthorList: []string{owner},
	}
}

func newRepo(t *testing.T) *Repo {
	t.Helper()
	r, err := NewMemoryRepo(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMetaValidate(t *testing.T) {
	if err := (Meta{}).Validate(); err == nil {
		t.Error("empty meta accepted")
	}
	if err := (Meta{Owner: "o"}).Validate(); err == nil {
		t.Error("meta without name accepted")
	}
	if err := testMeta().Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	if _, err := NewMemoryRepo(Meta{}); err == nil {
		t.Error("NewMemoryRepo with bad meta succeeded")
	}
}

func TestCommitWritesCitationFile(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/src/main.go", []byte("package main\n")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("leshang", 1_500_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsCitationEnabled(c1) {
		t.Fatal("committed version lacks citation.cite")
	}
	fn, err := r.FunctionAt(c1)
	if err != nil {
		t.Fatal(err)
	}
	root := fn.Root()
	if root.Owner != "Leshang" || root.RepoName != "P1" {
		t.Errorf("root = %+v", root)
	}
	if root.CommittedDate.IsZero() {
		t.Error("root citation not stamped with commit date")
	}
	if root.Version == UnreleasedVersion {
		t.Error("committed root still marked unreleased")
	}
	// The raw file parses and contains the root key.
	raw, err := r.CiteFileBytes(c1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"/"`) {
		t.Errorf("cite file:\n%s", raw)
	}
}

func TestWorktreeCitationOps(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/lib/a.go", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/lib/b.go", []byte("b")); err != nil {
		t.Fatal(err)
	}

	// AddCite on a directory and a file.
	if err := wt.AddCite("/lib", cite("libOwner")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/lib/a.go", cite("aOwner")); err != nil {
		t.Fatal(err)
	}
	// GenCite resolves through closest ancestor.
	got, from, err := wt.GenCite("/lib/b.go")
	if err != nil || got.Owner != "libOwner" || from != "/lib" {
		t.Errorf("GenCite = %+v from %q, %v", got, from, err)
	}
	// ModifyCite.
	if err := wt.ModifyCite("/lib", cite("newLibOwner")); err != nil {
		t.Fatal(err)
	}
	// DelCite.
	if err := wt.DelCite("/lib/a.go"); err != nil {
		t.Fatal(err)
	}
	got, _, _ = wt.GenCite("/lib/a.go")
	if got.Owner != "newLibOwner" {
		t.Errorf("after DelCite: %+v", got)
	}
	// AddCite to missing path fails.
	if err := wt.AddCite("/ghost", cite("x")); !errors.Is(err, core.ErrPathNotInTree) {
		t.Errorf("AddCite missing = %v", err)
	}

	// Commit persists all of it.
	c1, err := wt.Commit(opts("leshang", 1_500_000_000))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := r.FunctionAt(c1)
	if err != nil {
		t.Fatal(err)
	}
	libC, err := fn.Get("/lib")
	if err != nil || libC.Owner != "newLibOwner" {
		t.Errorf("persisted /lib = %+v, %v", libC, err)
	}
}

func TestCitationFileIsSystemManaged(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/citation.cite", []byte("{}")); err == nil {
		t.Error("direct citation.cite write accepted")
	}
}

func TestDeleteFilePrunesCitationAtCommit(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/doomed.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/kept.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/doomed.txt", cite("dOwner")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(opts("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := wt.RemoveFile("/doomed.txt"); err != nil {
		t.Fatal(err)
	}
	c2, err := wt.Commit(opts("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := r.FunctionAt(c2)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Has("/doomed.txt") {
		t.Error("citation for deleted file survived the commit")
	}
}

func TestMoveRekeysCitations(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	for p, d := range map[string]string{"/old/f1.go": "1", "/old/sub/f2.go": "2", "/other.txt": "o"} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.AddCite("/old", cite("dirOwner")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/old/sub/f2.go", cite("leafOwner")); err != nil {
		t.Fatal(err)
	}
	if err := wt.Move("/old", "/renamed"); err != nil {
		t.Fatal(err)
	}
	// Files moved.
	if _, err := wt.ReadFile("/renamed/sub/f2.go"); err != nil {
		t.Errorf("moved file unreadable: %v", err)
	}
	if _, err := wt.ReadFile("/old/f1.go"); err == nil {
		t.Error("old file path still readable")
	}
	// Citations rekeyed.
	got, from, err := wt.GenCite("/renamed/f1.go")
	if err != nil || got.Owner != "dirOwner" || from != "/renamed" {
		t.Errorf("GenCite after move = %+v from %q, %v", got, from, err)
	}
	leaf, _, _ := wt.GenCite("/renamed/sub/f2.go")
	if leaf.Owner != "leafOwner" {
		t.Errorf("leaf after move = %+v", leaf)
	}
	// Move errors.
	if err := wt.Move("/ghost", "/x"); err == nil {
		t.Error("move of missing path accepted")
	}
	if err := wt.Move("/other.txt", "/renamed/f1.go"); err == nil {
		t.Error("move onto existing file accepted")
	}
	c1, err := wt.Commit(opts("a", 10))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := r.FunctionAt(c1)
	if !fn.Has("/renamed") || fn.Has("/old") {
		t.Errorf("persisted paths = %v", fn.Paths())
	}
}

func TestGenerateFillsRootVersionInfo(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("leshang", 1_535_942_120))
	if err != nil {
		t.Fatal(err)
	}
	got, from, err := r.Generate(c1, "/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if from != "/" {
		t.Errorf("from = %q", from)
	}
	if got.CommitID != c1.Short() {
		t.Errorf("generated commitID = %q, want %q", got.CommitID, c1.Short())
	}
	if got.CommittedDate.IsZero() {
		t.Error("generated citation lacks a date")
	}
	// Non-root entries keep their stored (source) version info.
	wt2, _ := r.Checkout("main")
	imported := cite("ChenLi")
	imported.CommitID = "5cc951e"
	if err := wt2.AddCite("/f.txt", imported); err != nil {
		t.Fatal(err)
	}
	c2, err := wt2.Commit(opts("leshang", 1_535_942_200))
	if err != nil {
		t.Fatal(err)
	}
	got, from, err = r.Generate(c2, "/f.txt")
	if err != nil || from != "/f.txt" {
		t.Fatal(err)
	}
	if got.CommitID != "5cc951e" {
		t.Errorf("stored commitID overwritten: %q", got.CommitID)
	}
}

func TestGenerateChain(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/a/b/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/a", cite("aOwner")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("x", 5))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := r.GenerateChain(c1, "/a/b/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Path != "/" || chain[1].Path != "/a" {
		t.Errorf("chain = %+v", chain)
	}
}

func TestFunctionAtNonEnabled(t *testing.T) {
	r := newRepo(t)
	// Commit directly through the VCS, bypassing the citation layer.
	c1, err := r.VCS.CommitFiles("legacy", map[string]vcs.FileContent{"/f": vcs.File("x")}, opts("old", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.FunctionAt(c1); !errors.Is(err, ErrNotCitationEnabled) {
		t.Errorf("FunctionAt legacy = %v", err)
	}
	if r.IsCitationEnabled(c1) {
		t.Error("legacy version reported enabled")
	}
	// Checkout enables on the fly with the default root.
	wt, err := r.Checkout("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if wt.Function().Root().Owner != "Leshang" {
		t.Errorf("on-the-fly root = %+v", wt.Function().Root())
	}
	c2, err := wt.Commit(opts("new", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsCitationEnabled(c2) {
		t.Error("commit after checkout not enabled")
	}
}

func TestCheckoutUnbornBranch(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if !wt.Base().IsZero() {
		t.Error("unborn branch has a base")
	}
	if wt.Function().Root().Version != UnreleasedVersion {
		t.Errorf("unborn root = %+v", wt.Function().Root())
	}
}

func TestWorktreeIsolatedFromLaterCommits(t *testing.T) {
	r := newRepo(t)
	wt, _ := r.Checkout("main")
	if err := wt.WriteFile("/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c1, err := wt.Commit(opts("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	// Second worktree advances the branch.
	wt2, _ := r.Checkout("main")
	if err := wt2.WriteFile("/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt2.Commit(opts("b", 2)); err != nil {
		t.Fatal(err)
	}
	// Historical version unchanged (immutability).
	fn, err := r.FunctionAt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Root().CommittedDate.Unix() != 1 {
		t.Errorf("historical root date = %v", fn.Root().CommittedDate)
	}
}
