package gitcite

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs"
)

// seedManyFiles commits a nested tree of n files on the branch and returns
// the commit.
func seedManyFiles(t *testing.T, r *Repo, branch string, n int) {
	t.Helper()
	wt, err := r.Checkout(branch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/dir%d/sub%d/file%d.txt", i%10, (i/10)%10, i)
		if err := wt.WriteFile(p, []byte(fmt.Sprintf("content %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wt.Commit(opts("alice", 1_600_000_000)); err != nil {
		t.Fatal(err)
	}
}

// TestLazyCheckoutReadsAndIncrementalCommit checks the lazy worktree end
// to end: a fresh checkout holds blob references, reads load on demand,
// and an incremental one-file commit produces exactly the tree a full
// rebuild would, with untouched subtrees shared between the versions.
func TestLazyCheckoutReadsAndIncrementalCommit(t *testing.T) {
	r := newRepo(t)
	seedManyFiles(t, r, "main", 200)

	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	got, err := wt.ReadFile("/dir3/sub1/file13.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("content 13")) {
		t.Errorf("lazy ReadFile = %q", got)
	}

	if err := wt.WriteFile("/dir3/sub1/file13.txt", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(opts("alice", 1_600_000_100))
	if err != nil {
		t.Fatal(err)
	}

	// The changed file reads back; an untouched one still reads lazily.
	wt2, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := wt2.ReadFile("/dir3/sub1/file13.txt"); err != nil || !bytes.Equal(got, []byte("changed")) {
		t.Errorf("after commit: ReadFile = %q, %v", got, err)
	}
	if got, err := wt2.ReadFile("/dir7/sub2/file27.txt"); err != nil || !bytes.Equal(got, []byte("content 27")) {
		t.Errorf("untouched file: ReadFile = %q, %v", got, err)
	}

	// Untouched subtrees are shared object-for-object with the parent.
	prev, err := r.VCS.Commit(commit)
	if err != nil {
		t.Fatal(err)
	}
	baseTree, err := r.VCS.TreeOf(prev.Parents[0])
	if err != nil {
		t.Fatal(err)
	}
	newTree, err := r.VCS.TreeOf(commit)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"/dir0", "/dir5", "/dir3/sub0"} {
		oldE, err := vcs.LookupPath(r.VCS.Objects, baseTree, dir)
		if err != nil {
			t.Fatal(err)
		}
		newE, err := vcs.LookupPath(r.VCS.Objects, newTree, dir)
		if err != nil {
			t.Fatal(err)
		}
		if oldE.ID != newE.ID {
			t.Errorf("untouched subtree %s was rebuilt across the commit", dir)
		}
	}

	// The incremental tree must match a from-scratch build of the same
	// file map (with the same citation.cite blob).
	full, err := vcs.TreeToFileMap(r.VCS.Objects, newTree)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := vcs.BuildTree(r.VCS.Objects, full)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != newTree {
		t.Errorf("incremental commit tree %s != from-scratch rebuild %s", newTree.Short(), rebuilt.Short())
	}
}

// TestMoveUnloadedFilesAndRemoveDir exercises move and remove over lazy
// blob references: contents must survive a rename-by-reference commit.
func TestMoveUnloadedFilesAndRemoveDir(t *testing.T) {
	r := newRepo(t)
	seedManyFiles(t, r, "main", 30)

	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/dir2", cite("ext")); err != nil {
		t.Fatal(err)
	}
	if err := wt.Move("/dir2", "/renamed"); err != nil {
		t.Fatal(err)
	}
	commit, err := wt.Commit(opts("alice", 1_600_000_200))
	if err != nil {
		t.Fatal(err)
	}

	tree, err := r.VCS.TreeOf(commit)
	if err != nil {
		t.Fatal(err)
	}
	if vcs.PathExists(r.VCS.Objects, tree, "/dir2") {
		t.Error("/dir2 still exists after move")
	}
	data, err := vcs.ReadFile(r.VCS.Objects, tree, "/renamed/sub0/file2.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("content 2")) {
		t.Errorf("moved file content = %q", data)
	}
	// The citation moved with the files.
	c, from, err := r.Generate(commit, "/renamed/sub0/file2.txt")
	if err != nil {
		t.Fatal(err)
	}
	if from != "/renamed" || c.Owner != "ext" {
		t.Errorf("citation after move: from=%s owner=%s", from, c.Owner)
	}
}

// TestMoveRejectsCiteFileTarget: the system-managed citation.cite can be
// neither a direct nor a rebased move destination — without the guard the
// moved file would be silently overwritten by the regenerated citation
// file at commit.
func TestMoveRejectsCiteFileTarget(t *testing.T) {
	r := newRepo(t)
	wt, err := r.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/notes.txt", []byte("n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/dir/citation.cite", []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := wt.Move("/notes.txt", "/citation.cite"); err == nil {
		t.Error("moving a file onto /citation.cite was accepted")
	}
	if err := wt.Move("/dir", "/"); err == nil {
		t.Error("moving a directory onto the root was accepted")
	}
	// A rebase that would land on /citation.cite is rejected too.
	if err := wt.Move("/dir/citation.cite", "/citation.cite"); err == nil {
		t.Error("rebased move onto /citation.cite was accepted")
	}
}

// TestParallelCommitsThroughBatchStore drives concurrent commits on
// distinct branches of one shared repository — the hosting-platform write
// regime — through the incremental builder and the batch store API.
func TestParallelCommitsThroughBatchStore(t *testing.T) {
	r := newRepo(t)
	seedManyFiles(t, r, "main", 100)

	const writers = 8
	const commitsEach = 5
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			branch := fmt.Sprintf("feature-%d", w)
			tip, err := r.VCS.BranchTip("main")
			if err != nil {
				errs <- err
				return
			}
			if err := r.VCS.CreateBranch(branch, tip); err != nil {
				errs <- err
				return
			}
			wt, err := r.Checkout(branch)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < commitsEach; i++ {
				p := fmt.Sprintf("/dir%d/w%d-%d.txt", w, w, i)
				if err := wt.WriteFile(p, []byte(fmt.Sprintf("writer %d commit %d", w, i))); err != nil {
					errs <- err
					return
				}
				if _, err := wt.Commit(opts(fmt.Sprintf("w%d", w), 1_600_001_000+int64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for w := 0; w < writers; w++ {
		tip, err := r.VCS.BranchTip(fmt.Sprintf("feature-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := r.VCS.TreeOf(tip)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < commitsEach; i++ {
			p := fmt.Sprintf("/dir%d/w%d-%d.txt", w, w, i)
			data, err := vcs.ReadFile(r.VCS.Objects, tree, p)
			if err != nil {
				t.Fatalf("branch feature-%d missing %s: %v", w, p, err)
			}
			if want := fmt.Sprintf("writer %d commit %d", w, i); string(data) != want {
				t.Errorf("%s = %q, want %q", p, data, want)
			}
		}
		// The seeded files must have survived every incremental commit.
		if _, err := vcs.ReadFile(r.VCS.Objects, tree, "/dir1/sub0/file1.txt"); err != nil {
			t.Errorf("branch feature-%d lost a seeded file: %v", w, err)
		}
	}
}
