// Package gitcite is the integration layer of the system — the core of the
// paper's "local executable tool" (§3). It binds the citation model
// (internal/core) to the version-control substrate (internal/vcs) through
// the citation.cite file stored at the root of every version
// (internal/citefile), and implements the citation-extended operations:
// commits that carry citations through file renames and deletions, MergeCite,
// CopyCite and ForkCite.
package gitcite

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// Meta is the repository-level metadata that seeds default root citations —
// "the owner and name of the repository, the http address" (paper §2).
type Meta struct {
	Owner   string
	Name    string
	URL     string
	License string
}

// Validate checks the fields needed to build a root citation.
func (m Meta) Validate() error {
	var missing []string
	if m.Owner == "" {
		missing = append(missing, "owner")
	}
	if m.Name == "" {
		missing = append(missing, "name")
	}
	if len(missing) > 0 {
		return fmt.Errorf("gitcite: repository metadata missing %s", strings.Join(missing, ", "))
	}
	return nil
}

// fnCacheCap bounds the number of per-commit citation functions a Repo
// keeps decoded in memory. Committed versions are immutable, so cached
// functions never go stale; the cap is purely a memory bound.
const fnCacheCap = 512

// fnCacheEntry is one slot of the per-commit function cache. used carries
// the entry's last-touched tick: hits bump it with one atomic store, so
// recency tracking costs readers no exclusive lock.
type fnCacheEntry struct {
	fn   *core.Function
	used atomic.Int64
}

// Repo is a citation-enabled repository: a vcs repository whose versions
// each carry a citation.cite file. It is safe for concurrent use: read
// operations (Generate, GenerateChain, ResolvedFunctionAt, TreeAt) may run
// in parallel with each other and with commits.
type Repo struct {
	VCS  *vcs.Repository
	Meta Meta

	// The per-commit function cache is a true LRU: every reader of the
	// same version shares one Function — and therefore one warm resolution
	// index — and at capacity the least-recently-used version is evicted,
	// so a long-history hosted repository keeps its hot tips resident
	// instead of losing an arbitrary entry. Recency lives in per-entry
	// atomic ticks rather than a linked list, keeping the hit path under
	// the shared read lock (the concurrent-scale property the read-path
	// work established); the O(cap) victim scan runs only on the rare
	// at-capacity insert.
	fnMu    sync.RWMutex
	fnTick  atomic.Int64
	fnCache map[object.ID]*fnCacheEntry

	// paths interns this repository's tree paths (core.PathTable): readers
	// that resolve the same paths across many versions — credit reports,
	// chain renders — intern once and hit every version's pointer-keyed
	// memo in O(1) regardless of path depth. Scoped to the repository so
	// the table's population is bounded by its content.
	paths core.PathTable
}

// Paths returns the repository's interned path table, for read paths that
// resolve via core.Function.ResolveKey.
func (r *Repo) Paths() *core.PathTable { return &r.paths }

// NewMemoryRepo creates an empty citation-enabled repository in memory.
func NewMemoryRepo(meta Meta) (*Repo, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	return &Repo{VCS: vcs.NewMemoryRepository(), Meta: meta}, nil
}

// OpenFileRepo opens (creating if needed) a repository persisted under dir.
func OpenFileRepo(dir string, meta Meta) (*Repo, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	r, err := vcs.OpenFileRepository(dir)
	if err != nil {
		return nil, err
	}
	return &Repo{VCS: r, Meta: meta}, nil
}

// OpenPackedFileRepo opens (creating if needed) a repository persisted
// under dir with pack-based object storage (append-only pack files plus a
// sorted fan-out ID index; see store.PackStore). Loose objects from a
// previous loose-layout open stay readable; VCS.Repack folds them in.
func OpenPackedFileRepo(dir string, meta Meta) (*Repo, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	r, err := vcs.OpenPackedFileRepository(dir)
	if err != nil {
		return nil, err
	}
	return &Repo{VCS: r, Meta: meta}, nil
}

// Close releases the repository's backing storage (vcs.Repository.Close →
// store close chain): pack file handles for pack-backed repositories,
// nothing for memory or loose layouts. The Repo must not be used after
// Close. Hosting platforms close evicted idle repositories through this so
// file descriptors and memory stay bounded however many repositories they
// host; the CLI closes after maintenance commands like repack.
func (r *Repo) Close() error {
	if r == nil || r.VCS == nil {
		return nil
	}
	return r.VCS.Close()
}

// UnreleasedVersion marks the root citation of a working copy that has not
// been committed yet; Commit replaces it with the version's real date.
const UnreleasedVersion = "unreleased"

// DefaultRootCitation builds the default citation attached to every version
// root, from repository metadata plus (optionally) the version's commit
// date. With a zero time the citation is marked UnreleasedVersion so it
// still satisfies the paper's root requirements.
func (r *Repo) DefaultRootCitation(authors []string, when time.Time) core.Citation {
	url := r.Meta.URL
	if url == "" {
		url = "https://git.example/" + r.Meta.Owner + "/" + r.Meta.Name
	}
	if len(authors) == 0 {
		authors = []string{r.Meta.Owner}
	}
	c := core.Citation{
		RepoName:   r.Meta.Name,
		Owner:      r.Meta.Owner,
		URL:        url,
		License:    r.Meta.License,
		AuthorList: append([]string(nil), authors...),
	}
	if when.IsZero() {
		c.Version = UnreleasedVersion
	} else {
		c.CommittedDate = when.UTC().Truncate(time.Second)
	}
	return c
}

// treeAdapter exposes a stored vcs tree as a core.Tree, hiding the
// citation.cite file itself (the citation function never cites it).
type treeAdapter struct {
	objects store.Store
	treeID  object.ID
}

// TreeAt returns a core.Tree view of a commit's file tree (without the
// citation file).
func (r *Repo) TreeAt(commitID object.ID) (core.Tree, error) {
	treeID, err := r.VCS.TreeOf(commitID)
	if err != nil {
		return nil, err
	}
	return treeAdapter{objects: r.VCS.Objects, treeID: treeID}, nil
}

func (t treeAdapter) Exists(path string) bool {
	if path == citefile.Path {
		return false
	}
	return vcs.PathExists(t.objects, t.treeID, path)
}

func (t treeAdapter) IsDir(path string) bool {
	if path == citefile.Path {
		return false
	}
	e, err := vcs.LookupPath(t.objects, t.treeID, path)
	return err == nil && e.IsDir()
}

// ErrNotCitationEnabled reports a version without a citation.cite file.
var ErrNotCitationEnabled = errors.New("gitcite: version has no citation.cite (not citation-enabled)")

// FunctionAt returns the citation function stored with a commit. The
// returned function is a private copy-on-write snapshot the caller may
// freely mutate (worktrees do exactly that).
func (r *Repo) FunctionAt(commitID object.ID) (*core.Function, error) {
	fn, err := r.ResolvedFunctionAt(commitID)
	if err != nil {
		return nil, err
	}
	return fn.Clone(), nil
}

// ResolvedFunctionAt returns the shared, read-only citation function of a
// committed version. All readers of the same commit get the same Function
// instance, so its lazily-built resolution index warms once and serves
// every subsequent Resolve as an O(1) hit. Callers must not mutate it —
// use FunctionAt for a mutable snapshot.
func (r *Repo) ResolvedFunctionAt(commitID object.ID) (*core.Function, error) {
	r.fnMu.RLock()
	e := r.fnCache[commitID]
	r.fnMu.RUnlock()
	if e != nil {
		e.used.Store(r.fnTick.Add(1))
		return e.fn, nil
	}
	fn, err := r.loadFunction(commitID)
	if err != nil {
		return nil, err
	}
	r.fnMu.Lock()
	if cur, ok := r.fnCache[commitID]; ok {
		// A concurrent loader won; share its instance (and its index).
		cur.used.Store(r.fnTick.Add(1))
		fn = cur.fn
	} else {
		r.putFunctionLocked(commitID, fn)
	}
	r.fnMu.Unlock()
	return fn, nil
}

// putFunctionLocked inserts into the per-commit cache, evicting the entry
// with the oldest recency tick at capacity (victims reload on demand).
// Caller holds fnMu exclusively.
func (r *Repo) putFunctionLocked(commitID object.ID, fn *core.Function) {
	if r.fnCache == nil {
		r.fnCache = make(map[object.ID]*fnCacheEntry, fnCacheCap)
	}
	if len(r.fnCache) >= fnCacheCap {
		var victim object.ID
		oldest := int64(1<<63 - 1)
		for id, e := range r.fnCache {
			if u := e.used.Load(); u < oldest {
				oldest, victim = u, id
			}
		}
		delete(r.fnCache, victim)
	}
	e := &fnCacheEntry{fn: fn}
	e.used.Store(r.fnTick.Add(1))
	r.fnCache[commitID] = e
}

// cacheFunction seeds the per-commit cache with the function a worktree
// just committed, so the version's first reader skips the citation.cite
// decode.
func (r *Repo) cacheFunction(commitID object.ID, fn *core.Function) {
	r.fnMu.Lock()
	defer r.fnMu.Unlock()
	if e, ok := r.fnCache[commitID]; ok {
		e.used.Store(r.fnTick.Add(1))
		return
	}
	r.putFunctionLocked(commitID, fn)
}

// loadFunction reads and decodes a commit's citation.cite from the object
// store.
func (r *Repo) loadFunction(commitID object.ID) (*core.Function, error) {
	treeID, err := r.VCS.TreeOf(commitID)
	if err != nil {
		return nil, err
	}
	data, err := vcs.ReadFile(r.VCS.Objects, treeID, citefile.Path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotCitationEnabled, err)
	}
	return citefile.Decode(data)
}

// IsCitationEnabled reports whether the commit carries a citation file.
func (r *Repo) IsCitationEnabled(commitID object.ID) bool {
	treeID, err := r.VCS.TreeOf(commitID)
	if err != nil {
		return false
	}
	return vcs.PathExists(r.VCS.Objects, treeID, citefile.Path)
}

// Generate implements citation generation (the extension's "Generate
// Citation" button and the tool's GenCite): resolve the path through the
// version's citation function, then — when the citation came from the root
// default — fill in the cited version's own commit ID and date, so the
// generated citation names the exact version being extracted.
func (r *Repo) Generate(commitID object.ID, path string) (core.Citation, string, error) {
	fn, err := r.ResolvedFunctionAt(commitID)
	if err != nil {
		return core.Citation{}, "", err
	}
	// Resolve returns a shallow citation off the shared warm index; only
	// scalar fields are filled in below, which is safe on the value copy.
	cite, from, err := fn.Resolve(path)
	if err != nil {
		return core.Citation{}, "", err
	}
	if from == "/" {
		c, err := r.VCS.Commit(commitID)
		if err != nil {
			return core.Citation{}, "", err
		}
		if cite.CommitID == "" {
			cite.CommitID = commitID.Short()
		}
		if cite.CommittedDate.IsZero() {
			cite.CommittedDate = c.Committer.When
		}
	}
	return cite, from, nil
}

// GenerateChain is Generate under the alternative whole-path semantics.
func (r *Repo) GenerateChain(commitID object.ID, path string) ([]core.PathCitation, error) {
	fn, err := r.ResolvedFunctionAt(commitID)
	if err != nil {
		return nil, err
	}
	return fn.ResolveChain(path)
}

// CiteFileBytes returns the stored citation.cite contents of a commit.
func (r *Repo) CiteFileBytes(commitID object.ID) ([]byte, error) {
	treeID, err := r.VCS.TreeOf(commitID)
	if err != nil {
		return nil, err
	}
	return vcs.ReadFile(r.VCS.Objects, treeID, citefile.Path)
}

// Fork implements ForkCite (paper §3): "copies a version of a repository,
// along with its history, and creates a new repository. The citations in
// citation.cite are also copied." Commit IDs are preserved, so provenance
// back to the origin is intact; the fork gets its own Meta for future
// default root citations.
func Fork(src *Repo, newMeta Meta) (*Repo, error) {
	if err := newMeta.Validate(); err != nil {
		return nil, err
	}
	forked, err := vcs.Fork(src.VCS)
	if err != nil {
		return nil, err
	}
	return &Repo{VCS: forked, Meta: newMeta}, nil
}

// ForkInto is Fork with the destination's backing storage chosen by the
// caller: src's refs, HEAD and full object closure are copied into the
// (typically freshly created) dst repository. dst keeps its own Meta.
func ForkInto(dst, src *Repo) error {
	return vcs.ForkInto(dst.VCS, src.VCS)
}
