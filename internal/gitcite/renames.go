package gitcite

import (
	"sort"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/diff"
)

// RenameDetection configures SyncRenames.
type RenameDetection struct {
	// MinSimilarity is the content-similarity threshold in [0,1] for
	// pairing a deleted file with an added one when contents are not
	// identical; 0 pairs exact content matches only.
	MinSimilarity float64
}

// DetectedRename records one rename SyncRenames applied to the citation
// function.
type DetectedRename struct {
	OldPath string
	NewPath string
}

// SyncRenames reconciles the citation function with file moves performed
// outside Move — for example a user renaming files on disk before the CLI
// reloads the worktree. It diffs the base version's tree against the
// current working files with rename detection and rekeys the citation
// entries of every detected rename (paper §2: the citation function must
// be updated when a cited file or directory is moved or renamed). Without
// this step the stale entries would simply be pruned at commit, losing the
// attached citations.
//
// Only renames whose old path (or an ancestor of it) is in the active
// domain have any effect. Returns the renames applied, sorted by old path.
func (wt *Worktree) SyncRenames(opts RenameDetection) ([]DetectedRename, error) {
	if wt.base.IsZero() {
		return nil, nil // unborn branch: nothing to compare against
	}
	baseTree, err := wt.repo.VCS.TreeOf(wt.base)
	if err != nil {
		return nil, err
	}
	baseTree, err = dropCiteFile(wt.repo.VCS.Objects, baseTree)
	if err != nil {
		return nil, err
	}
	workTree, err := wt.buildFileTree()
	if err != nil {
		return nil, err
	}
	changes, err := diff.Trees(wt.repo.VCS.Objects, baseTree, workTree, diff.Options{
		DetectRenames:    true,
		RenameSimilarity: opts.MinSimilarity,
	})
	if err != nil {
		return nil, err
	}
	var applied []DetectedRename
	for _, ch := range changes {
		if ch.Op != diff.OpRename || ch.OldPath == citefile.Path || ch.Path == citefile.Path {
			continue
		}
		// Rekey only when the move would actually rekey an entry: Rename is
		// a no-op otherwise, and recording it would be noise.
		touches := false
		for _, p := range wt.fn.Paths() {
			if p != "/" && vcs.IsAncestorPath(ch.OldPath, p) {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		if err := wt.fn.Rename(ch.OldPath, ch.Path); err != nil {
			return nil, err
		}
		applied = append(applied, DetectedRename{OldPath: ch.OldPath, NewPath: ch.Path})
	}
	sort.Slice(applied, func(i, j int) bool { return applied[i].OldPath < applied[j].OldPath })
	return applied, nil
}
