// Tests for the client's multi-endpoint read mode: replica-first routing,
// failover on connection errors and 5xx, the read-your-writes pin, the
// lag-ceiling skip, the replica-404 fallthrough, and the manual
// re-authenticated 307 follow for writes.
package extension

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs"
)

// repoBody is the valid GetRepo payload fakes answer with.
const repoBody = `{"owner":"a","name":"b"}`

// fakeNode serves repoBody with the given replica headers, counting hits.
func fakeNode(t *testing.T, hits *atomic.Int64, epoch string, cursor, lag int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set(hosting.HeaderReplicaEpoch, epoch)
		w.Header().Set(hosting.HeaderReplicaCursor, strconv.FormatInt(cursor, 10))
		w.Header().Set(hosting.HeaderReplicaLag, strconv.FormatInt(lag, 10))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, repoBody)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestReadsPreferReplica pins the routing default: with a healthy replica
// configured, reads go there and the primary is never touched.
func TestReadsPreferReplica(t *testing.T) {
	var primaryHits, replicaHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	repl := fakeNode(t, &replicaHits, "e1", 10, 0)
	c := New(primary.URL, "").WithReadEndpoints(repl.URL)
	for i := 0; i < 3; i++ {
		if _, err := c.GetRepo("a", "b"); err != nil {
			t.Fatal(err)
		}
	}
	if p, r := primaryHits.Load(), replicaHits.Load(); p != 0 || r != 3 {
		t.Fatalf("primary served %d, replica %d; want 0 and 3", p, r)
	}
}

// TestFailoverOnReplicaConnectionError pins the outage path: the only
// replica is a dead endpoint, and every read still completes against the
// primary with zero user-visible errors. After the first failure the dead
// replica is cooled out of the rotation entirely.
func TestFailoverOnReplicaConnectionError(t *testing.T) {
	var primaryHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	// A port that was just listening and no longer is: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	c := New(primary.URL, "").WithReadEndpoints(dead)
	for i := 0; i < 3; i++ {
		if _, err := c.GetRepo("a", "b"); err != nil {
			t.Fatalf("read %d with dead replica: %v", i, err)
		}
	}
	if p := primaryHits.Load(); p != 3 {
		t.Fatalf("primary served %d reads, want 3", p)
	}
}

// TestFailoverOn5xxCoolsReplica pins the server-error path: a replica
// answering 500 is failed over AND cooled down — only the first read pays
// the probe; subsequent reads inside the cooldown go straight to primary.
func TestFailoverOn5xxCoolsReplica(t *testing.T) {
	var primaryHits, replicaHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	repl := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicaHits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer repl.Close()

	c := New(primary.URL, "").WithReadEndpoints(repl.URL)
	for i := 0; i < 3; i++ {
		if _, err := c.GetRepo("a", "b"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if p, r := primaryHits.Load(), replicaHits.Load(); p != 3 || r != 1 {
		t.Fatalf("primary %d / replica %d hits; want 3 / 1 (cooldown after the 500)", p, r)
	}
}

// TestReadYourWritesPinSkipsBehindReplica pins the consistency contract: a
// pinned client skips a replica whose acknowledged cursor is behind its
// last push — without cooling it — and returns to it once it catches up.
func TestReadYourWritesPinSkipsBehindReplica(t *testing.T) {
	var primaryHits, replicaHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	var cursor atomic.Int64
	cursor.Store(3)
	repl := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicaHits.Add(1)
		w.Header().Set(hosting.HeaderReplicaEpoch, "e1")
		w.Header().Set(hosting.HeaderReplicaCursor, strconv.FormatInt(cursor.Load(), 10))
		w.Header().Set(hosting.HeaderReplicaLag, "0")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, repoBody)
	}))
	defer repl.Close()

	c := New(primary.URL, "").WithReadEndpoints(repl.URL)
	c.eps.notePush(5, "e1") // the client's last push landed at seq 5

	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatal(err)
	}
	if p, r := primaryHits.Load(), replicaHits.Load(); p != 1 || r != 1 {
		t.Fatalf("pinned read: primary %d / replica %d, want 1 / 1 (replica probed, answer discarded)", p, r)
	}

	// The replica catches up past the pin: reads return to it.
	cursor.Store(5)
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatal(err)
	}
	if p, r := primaryHits.Load(), replicaHits.Load(); p != 1 || r != 2 {
		t.Fatalf("caught-up read: primary %d / replica %d, want 1 / 2", p, r)
	}

	// An epoch change (the replica resynced under a new primary) re-pins
	// until the new feed's cursor passes the new pin.
	c.eps.notePush(2, "e2")
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 2 {
		t.Fatalf("epoch-mismatched replica served a pinned read (primary hits %d)", p)
	}
}

// TestMaxReadLagSkipsStaleReplica pins the lag ceiling: a replica
// reporting lag over WithMaxReadLag is skipped for reads but not cooled.
func TestMaxReadLagSkipsStaleReplica(t *testing.T) {
	var primaryHits, replicaHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	repl := fakeNode(t, &replicaHits, "e1", 100, 50)
	c := New(primary.URL, "").WithReadEndpoints(repl.URL).WithMaxReadLag(10)
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatal(err)
	}
	if p, r := primaryHits.Load(), replicaHits.Load(); p != 1 || r != 1 {
		t.Fatalf("high-lag read: primary %d / replica %d, want 1 / 1", p, r)
	}
}

// TestReplica404FallsThroughToPrimary pins the lag-shaped 404: a repo the
// replica has not replicated yet answers 404 there, and the read falls
// through to the primary's authoritative answer instead of erroring.
func TestReplica404FallsThroughToPrimary(t *testing.T) {
	var primaryHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	repl := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code":"not_found","error":"no such repo"}`)
	}))
	defer repl.Close()
	c := New(primary.URL, "").WithReadEndpoints(repl.URL)
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatalf("read with lagging-404 replica: %v", err)
	}
	if p := primaryHits.Load(); p != 1 {
		t.Fatalf("primary hits = %d, want 1", p)
	}
}

// TestAuthoritative4xxEndsTheRead pins the non-lag 4xx: a 403 from a
// replica is the same answer the primary would give — returned
// immediately, the primary never probed.
func TestAuthoritative4xxEndsTheRead(t *testing.T) {
	var primaryHits atomic.Int64
	primary := fakeNode(t, &primaryHits, "", 0, 0)
	repl := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusForbidden)
		fmt.Fprint(w, `{"code":"forbidden","error":"members only"}`)
	}))
	defer repl.Close()
	c := New(primary.URL, "").WithReadEndpoints(repl.URL)
	if _, err := c.GetRepo("a", "b"); err == nil {
		t.Fatal("403 from replica did not surface")
	}
	if p := primaryHits.Load(); p != 0 {
		t.Fatalf("authoritative 4xx still probed the primary %d times", p)
	}
}

// TestSyncPinsReadYourWrites drives a real push through a real primary and
// asserts the acknowledging feed position lands in the shared pin — the
// handshake that makes every later read wait out replication lag.
func TestSyncPinsReadYourWrites(t *testing.T) {
	p := hosting.NewPlatform()
	ts := httptest.NewServer(hosting.NewServer(p))
	defer ts.Close()
	anon := New(ts.URL, "")
	tok, err := anon.CreateUser("o")
	if err != nil {
		t.Fatal(err)
	}
	// WithReadEndpoints first, WithToken after: the pin must survive With*
	// copies because eps travels by pointer.
	c := anon.WithReadEndpoints(ts.URL + "/nowhere").WithToken(tok)
	if err := c.CreateRepo("r", "https://x/r", ""); err != nil {
		t.Fatal(err)
	}
	local := newTestRepo(t)
	if _, err := c.Sync(local, "o", "r", "main"); err != nil {
		t.Fatal(err)
	}
	c.eps.mu.Lock()
	pinSeq, pinEpoch := c.eps.pinSeq, c.eps.pinEpoch
	c.eps.mu.Unlock()
	if pinSeq == 0 || pinEpoch == "" {
		t.Fatalf("pin after Sync = (%d, %q), want the acknowledging feed position", pinSeq, pinEpoch)
	}
}

// TestManual307FollowReattachesAuth pins the write path through a replica:
// the 307 at the primary is followed exactly once with the Authorization
// header re-attached, so the write lands instead of dying unauthenticated.
func TestManual307FollowReattachesAuth(t *testing.T) {
	p := hosting.NewPlatform()
	primary := httptest.NewServer(hosting.NewServer(p))
	defer primary.Close()
	anon := New(primary.URL, "")
	tok, err := anon.CreateUser("o")
	if err != nil {
		t.Fatal(err)
	}

	var redirects atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		redirects.Add(1)
		http.Redirect(w, r, primary.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	// The client talks to the "replica" front; its authenticated write must
	// land on the primary.
	c := New(front.URL, tok)
	if err := c.CreateRepo("via307", "https://x/r", ""); err != nil {
		t.Fatalf("write through 307: %v", err)
	}
	if redirects.Load() == 0 {
		t.Fatal("front never redirected; test wired wrong")
	}
	if _, err := anon.GetRepo("o", "via307"); err != nil {
		t.Fatalf("redirected write did not land on the primary: %v", err)
	}
}

// newTestRepo builds a one-commit local repo for push tests.
func newTestRepo(t *testing.T) *gitcite.Repo {
	t.Helper()
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "r", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(1, 0)), Message: "seed"}); err != nil {
		t.Fatal(err)
	}
	return repo
}
