// Package extension is the behavioural equivalent of GitCite's Chrome
// browser extension (paper §3, Figure 2): a client for the hosting
// platform's REST API. Anyone can generate citations for any node of a
// remote repository; project members can additionally add, modify and
// delete citations, which the platform records as new commits touching
// citation.cite. The package also implements the local tool's push/pull
// against the platform.
package extension

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// Client talks to a hosting server. The zero value is not usable; call New.
type Client struct {
	baseURL string
	token   string
	http    *http.Client
}

// New creates a client. token may be empty for anonymous (read-only) use —
// the paper's non-member case. The client is safe for concurrent use; its
// transport keeps enough idle connections per host that parallel callers
// reuse connections instead of churning through new ones (the default
// transport caps idle connections per host at 2).
func New(baseURL, token string) *Client {
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 256
	transport.MaxIdleConnsPerHost = 256
	return &Client{baseURL: baseURL, token: token, http: &http.Client{Transport: transport}}
}

// WithToken returns a copy of the client authenticated with token.
func (c *Client) WithToken(token string) *Client {
	return &Client{baseURL: c.baseURL, token: token, http: c.http}
}

// APIError is a non-2xx platform response.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("extension: server returned %d: %s", e.Status, e.Message)
}

// IsPermissionDenied reports whether err is the platform refusing a
// non-member write (HTTP 401/403) — the greyed-out buttons of Figure 2.
func IsPermissionDenied(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusUnauthorized || apiErr.Status == http.StatusForbidden
	}
	return false
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eresp hosting.ErrorResponse
		msg := string(data)
		if json.Unmarshal(data, &eresp) == nil && eresp.Error != "" {
			msg = eresp.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("extension: bad response body: %w", err)
		}
	}
	return nil
}

// CreateUser registers an account and returns its token.
func (c *Client) CreateUser(name string) (string, error) {
	var resp hosting.UserResponse
	err := c.do("POST", "/api/users", hosting.UserRequest{Name: name}, &resp)
	return resp.Token, err
}

// CreateRepo creates a repository owned by the authenticated user.
func (c *Client) CreateRepo(name, url, license string) error {
	return c.do("POST", "/api/repos", hosting.RepoRequest{Name: name, URL: url, License: license}, nil)
}

// AddMember grants a user write access (owner only).
func (c *Client) AddMember(owner, repo, member string) error {
	return c.do("POST", fmt.Sprintf("/api/repos/%s/%s/members", owner, repo),
		hosting.MemberRequest{Member: member}, nil)
}

// GetRepo fetches repository metadata and branches.
func (c *Client) GetRepo(owner, repo string) (hosting.RepoResponse, error) {
	var resp hosting.RepoResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s", owner, repo), nil, &resp)
	return resp, err
}

// Tree lists the paths of a revision, flagging the explicitly cited ones
// (the popup's solid-blue nodes).
func (c *Client) Tree(owner, repo, rev string) ([]hosting.TreeEntryResponse, error) {
	var resp []hosting.TreeEntryResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/tree/%s", owner, repo, rev), nil, &resp)
	return resp, err
}

// GenCite generates the citation for a node — available to everyone,
// exactly like the popup's "Generate Citation" button.
func (c *Client) GenCite(owner, repo, rev, path string) (core.Citation, string, error) {
	var resp hosting.CiteResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/cite/%s?path=%s", owner, repo, rev, url.QueryEscape(path)), nil, &resp)
	if err != nil {
		return core.Citation{}, "", err
	}
	cite, err := citefile.DecodeEntry(resp.Citation)
	return cite, resp.From, err
}

// Chain generates the whole-path citation chain for a node (the paper's
// alternative semantics) — available to everyone, like GenCite.
func (c *Client) Chain(owner, repo, rev, path string) ([]core.PathCitation, error) {
	var resp hosting.ChainResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/chain/%s?path=%s", owner, repo, rev, url.QueryEscape(path)), nil, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]core.PathCitation, 0, len(resp.Chain))
	for _, link := range resp.Chain {
		cite, err := citefile.DecodeEntry(link.Citation)
		if err != nil {
			return nil, err
		}
		out = append(out, core.PathCitation{Path: link.Path, Citation: cite})
	}
	return out, nil
}

// GenCiteRendered generates and renders a citation in one round trip.
func (c *Client) GenCiteRendered(owner, repo, rev, path, formatName string) (string, error) {
	var resp hosting.CiteResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/cite/%s?path=%s&format=%s", owner, repo, rev, url.QueryEscape(path), url.QueryEscape(formatName)), nil, &resp)
	return resp.Rendered, err
}

// AddCite attaches a citation remotely (member only).
func (c *Client) AddCite(owner, repo, branch, path string, cite core.Citation) (string, error) {
	return c.editCite("POST", owner, repo, branch, path, &cite)
}

// ModifyCite replaces a citation remotely (member only).
func (c *Client) ModifyCite(owner, repo, branch, path string, cite core.Citation) (string, error) {
	return c.editCite("PUT", owner, repo, branch, path, &cite)
}

// DelCite removes a citation remotely (member only).
func (c *Client) DelCite(owner, repo, branch, path string) (string, error) {
	return c.editCite("DELETE", owner, repo, branch, path, nil)
}

func (c *Client) editCite(method, owner, repo, branch, path string, cite *core.Citation) (string, error) {
	req := hosting.EditCiteRequest{Branch: branch, Path: path}
	if cite != nil {
		raw, err := citefile.EncodeEntry(*cite)
		if err != nil {
			return "", err
		}
		req.Citation = raw
	}
	var resp hosting.EditCiteResponse
	if err := c.do(method, fmt.Sprintf("/api/repos/%s/%s/cite", owner, repo), req, &resp); err != nil {
		return "", err
	}
	return resp.Commit, nil
}

// Credit fetches the credit report for a revision: per-author file counts
// and per-entry coverage.
func (c *Client) Credit(owner, repo, rev string) (hosting.CreditResponse, error) {
	var resp hosting.CreditResponse
	err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/credit/%s", owner, repo, rev), nil, &resp)
	return resp, err
}

// CiteFile downloads a revision's raw citation.cite.
func (c *Client) CiteFile(owner, repo, rev string) ([]byte, error) {
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/api/repos/%s/%s/citefile/%s", c.baseURL, owner, repo, rev), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Message: string(data)}
	}
	return data, nil
}

// Fork forks owner/repo under the authenticated user's account.
func (c *Client) Fork(owner, repo, newName string) (hosting.RepoResponse, error) {
	var resp hosting.RepoResponse
	err := c.do("POST", fmt.Sprintf("/api/repos/%s/%s/fork", owner, repo), hosting.ForkRequest{NewName: newName}, &resp)
	return resp, err
}

// Push uploads a local branch (its tip's full reachable closure) to the
// remote repository and advances the remote branch — the local tool's
// "push the local copy (which contains citation.cite) to the remote
// repository" step.
func (c *Client) Push(local *gitcite.Repo, owner, repo, branch string) (int, error) {
	tip, err := local.VCS.BranchTip(branch)
	if err != nil {
		return 0, err
	}
	scratch := store.NewMemoryStore()
	if _, err := store.CopyClosure(scratch, local.VCS.Objects, tip); err != nil {
		return 0, err
	}
	ids, err := scratch.IDs()
	if err != nil {
		return 0, err
	}
	req := hosting.PushRequest{Branch: branch, Tip: tip.String()}
	for _, id := range ids {
		o, err := scratch.Get(id)
		if err != nil {
			return 0, err
		}
		req.Objects = append(req.Objects, hosting.WireObject{Data: base64.StdEncoding.EncodeToString(object.Encode(o))})
	}
	var resp hosting.PushResponse
	if err := c.do("POST", fmt.Sprintf("/api/repos/%s/%s/push", owner, repo), req, &resp); err != nil {
		return 0, err
	}
	return resp.Stored, nil
}

// Pull downloads a remote revision's objects into the local repository and
// points localBranch at it.
func (c *Client) Pull(local *gitcite.Repo, owner, repo, rev, localBranch string) (object.ID, error) {
	var resp hosting.PullResponse
	if err := c.do("GET", fmt.Sprintf("/api/repos/%s/%s/pull/%s", owner, repo, rev), nil, &resp); err != nil {
		return object.ZeroID, err
	}
	tip, err := object.ParseID(resp.Tip)
	if err != nil {
		return object.ZeroID, err
	}
	for _, wo := range resp.Objects {
		enc, err := base64.StdEncoding.DecodeString(wo.Data)
		if err != nil {
			return object.ZeroID, err
		}
		o, err := object.Decode(enc)
		if err != nil {
			return object.ZeroID, err
		}
		if _, err := local.VCS.Objects.Put(o); err != nil {
			return object.ZeroID, err
		}
	}
	if err := local.VCS.Refs.Set(refs.BranchRef(localBranch), tip); err != nil {
		return object.ZeroID, err
	}
	return tip, nil
}

// Clone creates a fresh local citation-enabled repository tracking a remote
// branch.
func (c *Client) Clone(owner, repo, rev string) (*gitcite.Repo, error) {
	meta, err := c.GetRepo(owner, repo)
	if err != nil {
		return nil, err
	}
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: meta.Owner, Name: meta.Name, URL: meta.URL, License: meta.License,
	})
	if err != nil {
		return nil, err
	}
	if _, err := c.Pull(local, owner, repo, rev, rev); err != nil {
		return nil, err
	}
	if err := local.VCS.Checkout(rev); err != nil {
		return nil, err
	}
	return local, nil
}
