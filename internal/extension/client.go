// Package extension is the behavioural equivalent of GitCite's Chrome
// browser extension (paper §3, Figure 2): a client for the hosting
// platform's versioned REST API (/api/v1). Anyone can generate citations
// for any node of a remote repository; project members can additionally
// add, modify and delete citations, which the platform records as new
// commits touching citation.cite. The package also implements the local
// tool's transfer against the platform: Sync (negotiated incremental push)
// and Fetch (negotiated incremental pull) move only the object delta,
// streamed one object per NDJSON line.
package extension

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// apiPrefix is the versioned API root every request goes to.
const apiPrefix = hosting.APIv1Prefix

// fetchBatchSize bounds how many streamed objects accumulate before being
// flushed to the local store in one raw batch write.
const fetchBatchSize = 512

// fetchChunkSize bounds how many object IDs one fetch request names. Large
// negotiated deltas are split into several /objects requests, so no single
// request body carries an entire closure's ID list.
const fetchChunkSize = 2048

// retryAttempts is how many times a request is retried past its first
// attempt when the failure is transient (network error or 5xx).
const retryAttempts = 3

// retryBaseDelay seeds the exponential backoff between attempts; attempt n
// waits a jittered duration in [base·2ⁿ/2, base·2ⁿ].
const retryBaseDelay = 200 * time.Millisecond

// maxRetryAfter caps how long the client honors a server's Retry-After
// advice on 429 — a clock-skewed or hostile value cannot park a caller
// for minutes.
const maxRetryAfter = 30 * time.Second

// Client talks to a hosting server. The zero value is not usable; call New.
type Client struct {
	baseURL string
	token   string
	http    *http.Client
	// ctx, when set (WithContext), scopes every request: cancellation
	// aborts in-flight transfers and backoff sleeps alike. Nil means
	// requests are unscoped, as before.
	ctx context.Context
	// retries/retryBase tune the transient-failure retry policy; New
	// seeds the package defaults, WithRetryPolicy overrides them.
	retries   int
	retryBase time.Duration
	// eps, when set (WithReadEndpoints), routes read calls across replica
	// endpoints with failover back to the primary; shared by pointer across
	// With* copies so the read-your-writes pin survives them (failover.go).
	eps *readEndpoints
}

// New creates a client. token may be empty for anonymous (read-only) use —
// the paper's non-member case. The client is safe for concurrent use; its
// transport keeps enough idle connections per host that parallel callers
// reuse connections instead of churning through new ones (the default
// transport caps idle connections per host at 2). Transient failures —
// network errors and 5xx responses — are retried with bounded exponential
// backoff and jitter; a 429 carrying Retry-After waits the advised
// interval (capped at maxRetryAfter) before retrying; other 4xx responses
// are never retried.
//
// Redirects are not auto-followed: a replica's 307 onto the primary is
// handled explicitly (with the Authorization header re-attached — the
// Location names a trusted topology member, and Go's automatic follow
// would strip credentials across hosts and silently drop the write).
func New(baseURL, token string) *Client {
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 256
	transport.MaxIdleConnsPerHost = 256
	return &Client{
		baseURL: baseURL, token: token,
		http: &http.Client{
			Transport: transport,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		retries: retryAttempts, retryBase: retryBaseDelay,
	}
}

// WithToken returns a copy of the client authenticated with token.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}

// WithContext returns a copy of the client whose requests (and retry
// backoff sleeps) are scoped to ctx — the replication loop's kill switch.
func (c *Client) WithContext(ctx context.Context) *Client {
	cp := *c
	cp.ctx = ctx
	return &cp
}

// WithRetryPolicy returns a copy of the client retrying transient failures
// up to retries extra attempts with the given backoff base. retries 0
// disables retrying; base <= 0 keeps the default.
func (c *Client) WithRetryPolicy(retries int, base time.Duration) *Client {
	cp := *c
	cp.retries = retries
	if base > 0 {
		cp.retryBase = base
	} else {
		cp.retryBase = retryBaseDelay
	}
	return &cp
}

// WithTransport returns a copy of the client whose HTTP requests go
// through rt — the fault-injection and test-instrumentation hook. The
// redirect policy and any configured timeouts are preserved.
func (c *Client) WithTransport(rt http.RoundTripper) *Client {
	cp := *c
	hc := *cp.http
	hc.Transport = rt
	cp.http = &hc
	return &cp
}

// APIError is a non-2xx platform response. Code carries the platform's
// stable machine-readable error code ("not_found", "conflict",
// "ambiguous_ref", "rate_limited", …) when the server sent one.
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("extension: server returned %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("extension: server returned %d: %s", e.Status, e.Message)
}

// IsPermissionDenied reports whether err is the platform refusing a
// non-member write (HTTP 401/403) — the greyed-out buttons of Figure 2.
func IsPermissionDenied(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusUnauthorized || apiErr.Status == http.StatusForbidden
	}
	return false
}

// isBadRequest reports whether err is the platform rejecting the request
// body (HTTP 400) — how an older server reacts to wire fields it predates.
func isBadRequest(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusBadRequest
}

// newRequest builds an authenticated request against the client's base
// server, scoped to the client's context when one was set.
func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, error) {
	return c.newRequestAbs(method, c.baseURL+path, body)
}

// newRequestAbs is newRequest against a full URL — the manual 307 follow
// and the failover read path address other servers than baseURL.
func (c *Client) newRequestAbs(method, absURL string, body io.Reader) (*http.Request, error) {
	var req *http.Request
	var err error
	if c.ctx != nil {
		req, err = http.NewRequestWithContext(c.ctx, method, absURL, body)
	} else {
		req, err = http.NewRequest(method, absURL, body)
	}
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// send issues the request produced by build, retrying transient failures —
// network errors and 5xx responses — up to the client's retry budget with
// exponential backoff and full-range jitter. build runs once per attempt so
// each retry gets a fresh body (Sync's streamed push rebuilds its pipe).
// Non-transient outcomes (2xx–4xx) return immediately; the final attempt's
// outcome, transient or not, is returned untouched for the caller's normal
// error handling. Context cancellation stops the retry loop at once.
func (c *Client) send(build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err == nil && resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries {
			// Rate-limited with advice: wait exactly what the server asked
			// (capped) instead of the blind backoff schedule.
			if d, ok := retryAfter(resp); ok {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if serr := c.sleepFor(d); serr != nil {
					return nil, serr
				}
				continue
			}
		}
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		if attempt >= c.retries || (c.ctx != nil && c.ctx.Err() != nil) || errors.Is(err, context.Canceled) {
			return resp, err
		}
		if resp != nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if serr := c.sleepBackoff(attempt); serr != nil {
			if err != nil {
				return nil, err
			}
			return nil, serr
		}
	}
}

// retryAfter extracts a usable Retry-After interval from a 429: the
// delta-seconds form (what the platform emits), capped at maxRetryAfter.
// Absent or unparseable advice reports ok=false — the caller falls back
// to its normal no-retry-on-4xx handling.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// sleepBackoff parks between retry attempts: exponential in the attempt
// number, jittered across the upper half of the window so a fleet of
// clients recovering from one outage does not re-synchronise its retries.
func (c *Client) sleepBackoff(attempt int) error {
	d := c.retryBase << uint(attempt)
	d = d/2 + rand.N(d/2+1)
	return c.sleepFor(d)
}

// sleepFor parks for d, honoring the client's context when one was set.
func (c *Client) sleepFor(d time.Duration) error {
	if c.ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// apiErrorFrom turns a non-2xx response body into an APIError.
func apiErrorFrom(status int, data []byte) *APIError {
	var eresp hosting.ErrorResponse
	msg := string(data)
	code := ""
	if json.Unmarshal(data, &eresp) == nil && eresp.Error != "" {
		msg = eresp.Error
		code = eresp.Code
	}
	return &APIError{Status: status, Code: code, Message: msg}
}

// buildJSON returns a request factory for a JSON-bodied call — safe to run
// once per retry attempt, since the payload is a byte slice re-wrapped in a
// fresh reader each time.
func (c *Client) buildJSON(method, path string, body any) (func() (*http.Request, error), error) {
	return c.buildJSONAbs(method, c.baseURL+path, body)
}

// buildJSONAbs is buildJSON against a full URL.
func (c *Client) buildJSONAbs(method, absURL string, body any) (func() (*http.Request, error), error) {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return nil, err
		}
	}
	return func() (*http.Request, error) {
		var rd io.Reader
		if data != nil {
			rd = bytes.NewReader(data)
		}
		req, err := c.newRequestAbs(method, absURL, rd)
		if err != nil {
			return nil, err
		}
		if data != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	}, nil
}

func (c *Client) do(method, path string, body, out any) error {
	status, data, _, err := c.call(c.baseURL, method, path, body)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return apiErrorFrom(status, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("extension: bad response body: %w", err)
		}
	}
	return nil
}

// call issues one JSON call against base and returns the final status,
// body and headers. A 307 (a replica redirecting a write at its primary)
// is followed exactly once, re-authenticated — the Location names a
// trusted topology member by construction.
func (c *Client) call(base, method, path string, body any) (int, []byte, http.Header, error) {
	build, err := c.buildJSONAbs(method, base+path, body)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.send(build)
	if err != nil {
		return 0, nil, nil, err
	}
	if resp.StatusCode == http.StatusTemporaryRedirect {
		loc := resp.Header.Get("Location")
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if loc == "" {
			return 0, nil, nil, errors.New("extension: 307 without Location")
		}
		if build, err = c.buildJSONAbs(method, loc, body); err != nil {
			return 0, nil, nil, err
		}
		if resp, err = c.send(build); err != nil {
			return 0, nil, nil, err
		}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// doStream issues a request whose response is an NDJSON object stream. The
// caller owns the returned body and must close it.
func (c *Client) doStream(method, path string, body any) (io.ReadCloser, error) {
	build, err := c.buildJSON(method, path, body)
	if err != nil {
		return nil, err
	}
	resp, err := c.send(build)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, apiErrorFrom(resp.StatusCode, data)
	}
	return resp.Body, nil
}

// ---- accounts and repositories ----

// CreateUser registers an account and returns its token.
func (c *Client) CreateUser(name string) (string, error) {
	var resp hosting.UserResponse
	err := c.do("POST", apiPrefix+"/users", hosting.UserRequest{Name: name}, &resp)
	return resp.Token, err
}

// CreateRepo creates a repository owned by the authenticated user.
func (c *Client) CreateRepo(name, url, license string) error {
	return c.do("POST", apiPrefix+"/repos", hosting.RepoRequest{Name: name, URL: url, License: license}, nil)
}

// AddMember grants a user write access (owner only).
func (c *Client) AddMember(owner, repo, member string) error {
	return c.do("POST", fmt.Sprintf("%s/repos/%s/%s/members", apiPrefix, owner, repo),
		hosting.MemberRequest{Member: member}, nil)
}

// GetRepo fetches repository metadata, branches and branch tips.
func (c *Client) GetRepo(owner, repo string) (hosting.RepoResponse, error) {
	var resp hosting.RepoResponse
	err := c.doRead("GET", fmt.Sprintf("%s/repos/%s/%s", apiPrefix, owner, repo), nil, &resp)
	return resp, err
}

// ---- tree listings ----

// TreePage fetches one page of a revision's tree listing. cursor is empty
// for the first page and the previous page's NextCursor afterwards; limit 0
// asks for everything in one page.
func (c *Client) TreePage(owner, repo, rev, cursor string, limit int) (hosting.TreePage, error) {
	path := fmt.Sprintf("%s/repos/%s/%s/tree/%s", apiPrefix, owner, repo, rev)
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page hosting.TreePage
	err := c.doRead("GET", path, nil, &page)
	return page, err
}

// Tree lists all paths of a revision, flagging the explicitly cited ones
// (the popup's solid-blue nodes), following pagination to the end.
func (c *Client) Tree(owner, repo, rev string) ([]hosting.TreeEntryResponse, error) {
	var out []hosting.TreeEntryResponse
	cursor := ""
	for {
		page, err := c.TreePage(owner, repo, rev, cursor, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Entries...)
		if page.NextCursor == "" {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// ---- citation reads ----

// GenCite generates the citation for a node — available to everyone,
// exactly like the popup's "Generate Citation" button.
func (c *Client) GenCite(owner, repo, rev, path string) (core.Citation, string, error) {
	var resp hosting.CiteResponse
	err := c.doRead("GET", fmt.Sprintf("%s/repos/%s/%s/cite/%s?path=%s", apiPrefix, owner, repo, rev, url.QueryEscape(path)), nil, &resp)
	if err != nil {
		return core.Citation{}, "", err
	}
	cite, err := citefile.DecodeEntry(resp.Citation)
	return cite, resp.From, err
}

// Chain generates the whole-path citation chain for a node (the paper's
// alternative semantics) — available to everyone, like GenCite.
func (c *Client) Chain(owner, repo, rev, path string) ([]core.PathCitation, error) {
	var resp hosting.ChainResponse
	err := c.doRead("GET", fmt.Sprintf("%s/repos/%s/%s/chain/%s?path=%s", apiPrefix, owner, repo, rev, url.QueryEscape(path)), nil, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]core.PathCitation, 0, len(resp.Chain))
	for _, link := range resp.Chain {
		cite, err := citefile.DecodeEntry(link.Citation)
		if err != nil {
			return nil, err
		}
		out = append(out, core.PathCitation{Path: link.Path, Citation: cite})
	}
	return out, nil
}

// GenCiteRendered generates and renders a citation in one round trip.
func (c *Client) GenCiteRendered(owner, repo, rev, path, formatName string) (string, error) {
	var resp hosting.CiteResponse
	err := c.doRead("GET", fmt.Sprintf("%s/repos/%s/%s/cite/%s?path=%s&format=%s", apiPrefix, owner, repo, rev, url.QueryEscape(path), url.QueryEscape(formatName)), nil, &resp)
	return resp.Rendered, err
}

// ---- citation edits ----

// AddCite attaches a citation remotely (member only).
func (c *Client) AddCite(owner, repo, branch, path string, cite core.Citation) (string, error) {
	return c.editCite("POST", owner, repo, branch, path, &cite)
}

// ModifyCite replaces a citation remotely (member only).
func (c *Client) ModifyCite(owner, repo, branch, path string, cite core.Citation) (string, error) {
	return c.editCite("PUT", owner, repo, branch, path, &cite)
}

// DelCite removes a citation remotely (member only).
func (c *Client) DelCite(owner, repo, branch, path string) (string, error) {
	return c.editCite("DELETE", owner, repo, branch, path, nil)
}

func (c *Client) editCite(method, owner, repo, branch, path string, cite *core.Citation) (string, error) {
	req := hosting.EditCiteRequest{Branch: branch, Path: path}
	if cite != nil {
		raw, err := citefile.EncodeEntry(*cite)
		if err != nil {
			return "", err
		}
		req.Citation = raw
	}
	var resp hosting.EditCiteResponse
	if err := c.do(method, fmt.Sprintf("%s/repos/%s/%s/cite", apiPrefix, owner, repo), req, &resp); err != nil {
		return "", err
	}
	return resp.Commit, nil
}

// Credit fetches the credit report for a revision: per-author file counts
// and per-entry coverage.
func (c *Client) Credit(owner, repo, rev string) (hosting.CreditResponse, error) {
	var resp hosting.CreditResponse
	err := c.doRead("GET", fmt.Sprintf("%s/repos/%s/%s/credit/%s", apiPrefix, owner, repo, rev), nil, &resp)
	return resp, err
}

// CiteFile downloads a revision's raw citation.cite.
func (c *Client) CiteFile(owner, repo, rev string) ([]byte, error) {
	data, _, _, err := c.CiteFileIfChanged(owner, repo, rev, "")
	return data, err
}

// CiteFileIfChanged is CiteFile with conditional-GET support: pass the ETag
// of a previous download and the server answers 304 (notModified=true, nil
// data) when the revision still resolves to the same immutable commit —
// zero citation work server-side, near-zero bytes on the wire.
func (c *Client) CiteFileIfChanged(owner, repo, rev, etag string) (data []byte, newETag string, notModified bool, err error) {
	resp, err := c.send(func() (*http.Request, error) {
		req, err := c.newRequest("GET", fmt.Sprintf("%s/repos/%s/%s/citefile/%s", apiPrefix, owner, repo, rev), nil)
		if err != nil {
			return nil, err
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		return req, nil
	})
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return nil, resp.Header.Get("ETag"), true, nil
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", false, apiErrorFrom(resp.StatusCode, data)
	}
	return data, resp.Header.Get("ETag"), false, nil
}

// Fork forks owner/repo under the authenticated user's account.
func (c *Client) Fork(owner, repo, newName string) (hosting.RepoResponse, error) {
	var resp hosting.RepoResponse
	err := c.do("POST", fmt.Sprintf("%s/repos/%s/%s/fork", apiPrefix, owner, repo), hosting.ForkRequest{NewName: newName}, &resp)
	return resp, err
}

// ---- replication feed (admin-token gated server-side) ----

// Events polls the primary's replication feed for everything after the
// since cursor, parking server-side up to waitSeconds when the follower is
// current (0 = return immediately). A Reset response means the cursor
// cannot be served — full-resync from ReplicaSnapshot instead.
func (c *Client) Events(since int64, waitSeconds int) (hosting.EventsResponse, error) {
	return c.EventsAs("", since, waitSeconds)
}

// EventsAs is Events with a follower identity: the primary records the
// poll as followerID's acknowledged cursor, sizing ring retention to the
// slowest live follower and feeding the admin fleet status.
func (c *Client) EventsAs(followerID string, since int64, waitSeconds int) (hosting.EventsResponse, error) {
	path := fmt.Sprintf("%s/events?since=%d&wait=%d", apiPrefix, since, waitSeconds)
	if followerID != "" {
		path += "&id=" + url.QueryEscape(followerID)
	}
	var resp hosting.EventsResponse
	err := c.do("GET", path, nil, &resp)
	return resp, err
}

// ReplicaSnapshot downloads the primary's replication bootstrap: every
// account (with token), repository, membership and branch tip, plus the
// event cursor to resume polling from.
func (c *Client) ReplicaSnapshot() (hosting.SnapshotResponse, error) {
	var resp hosting.SnapshotResponse
	err := c.do("GET", apiPrefix+"/replica/snapshot", nil, &resp)
	return resp, err
}

// ---- negotiated incremental transfer ----

// localTips collects the commit IDs of every local branch, in hex — the
// have-set a negotiate declares.
func localTips(local *gitcite.Repo) ([]string, error) {
	branches, err := local.VCS.Branches()
	if err != nil {
		return nil, err
	}
	hexes := make([]string, 0, len(branches))
	for _, b := range branches {
		tip, err := local.VCS.BranchTip(b)
		if err != nil {
			return nil, err
		}
		hexes = append(hexes, tip.String())
	}
	return hexes, nil
}

// Sync uploads a local branch incrementally: the remote branch tips (from
// repository metadata) seed the same frontier walk the server uses for
// pulls, so only objects the server is missing travel — one NDJSON line
// each, never a whole-closure buffer. It returns the number of objects
// uploaded (0 when the server is already up to date; the ref still
// advances). This is the local tool's "push the local copy (which contains
// citation.cite) to the remote repository" step.
func (c *Client) Sync(local *gitcite.Repo, owner, repo, branch string) (int, error) {
	tip, err := local.VCS.BranchTip(branch)
	if err != nil {
		return 0, err
	}
	// The have-set must come from where the push will land: a replica's
	// (possibly stale) tips would only inflate the delta, but asking the
	// primary keeps the negotiate and the push against one history.
	meta, err := c.forPrimary().GetRepo(owner, repo)
	if err != nil {
		return 0, err
	}
	have := make([]object.ID, 0, len(meta.Tips))
	for _, h := range meta.Tips {
		if id, err := object.ParseID(h); err == nil {
			have = append(have, id)
		}
	}
	missing, err := hosting.MissingObjects(local.VCS.Objects, tip, have)
	if err != nil {
		return 0, err
	}

	// The push body is a live pipe out of the local store, so a retry
	// cannot replay it — each attempt builds a fresh pipe and re-streams
	// the (immutable) objects. A replayed push that already landed is
	// absorbed server-side: the tip matches, fast-forward passes, the
	// batch write is idempotent.
	buildAt := func(pushURL string) func() (*http.Request, error) {
		return func() (*http.Request, error) {
			pr, pw := io.Pipe()
			go func() {
				sw := hosting.NewObjectStreamWriter(pw)
				err := sw.WriteValue(hosting.PushHeader{Branch: branch, Tip: tip.String()})
				for _, id := range missing {
					if err != nil {
						break
					}
					var o object.Object
					if o, err = local.VCS.Objects.Get(id); err == nil {
						err = sw.WriteObject(o)
					}
				}
				if err == nil {
					err = sw.Flush()
				}
				pw.CloseWithError(err)
			}()
			req, err := c.newRequestAbs("POST", pushURL, pr)
			if err != nil {
				pr.CloseWithError(err)
				return nil, err
			}
			req.Header.Set("Content-Type", hosting.MediaTypeNDJSON)
			return req, nil
		}
	}
	resp, err := c.send(buildAt(c.baseURL + fmt.Sprintf("%s/repos/%s/%s/push", apiPrefix, owner, repo)))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode == http.StatusTemporaryRedirect {
		// Pushed at a replica: follow its 307 onto the primary once, with
		// a fresh pipe (the redirected request needs a whole new body).
		loc := resp.Header.Get("Location")
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if loc == "" {
			return 0, errors.New("extension: push redirected without Location")
		}
		if resp, err = c.send(buildAt(loc)); err != nil {
			return 0, err
		}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return 0, apiErrorFrom(resp.StatusCode, data)
	}
	var pushResp hosting.PushResponse
	if err := json.Unmarshal(data, &pushResp); err != nil {
		return 0, fmt.Errorf("extension: bad push response: %w", err)
	}
	// Read-your-writes: pin reads to the primary until some replica's
	// acknowledged cursor passes this push's feed position.
	if c.eps != nil {
		c.eps.notePush(pushResp.Seq, pushResp.Epoch)
	}
	return pushResp.Stored, nil
}

// storeStreamedObjects drains an NDJSON object stream into the local
// store in raw batches and returns how many objects arrived. The ID of
// every object is recomputed locally from the received bytes, so the
// raw-batch trust contract holds regardless of what the server claims to
// have sent.
func storeStreamedObjects(local *gitcite.Repo, sr *hosting.ObjectStreamReader) (int, error) {
	n := 0
	batch := make([]store.Encoded, 0, fetchBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := store.PutManyEncoded(local.VCS.Objects, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for {
		_, enc, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		batch = append(batch, store.Encoded{ID: object.HashBytes(enc), Enc: enc})
		n++
		if len(batch) == fetchBatchSize {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
	return n, flush()
}

// fetchObjectChunk downloads one chunk of negotiated object IDs into the
// local store.
func (c *Client) fetchObjectChunk(local *gitcite.Repo, owner, repo string, ids []string) (int, error) {
	body, err := c.doStream("POST", fmt.Sprintf("%s/repos/%s/%s/objects", apiPrefix, owner, repo),
		hosting.FetchRequest{IDs: ids})
	if err != nil {
		return 0, err
	}
	defer body.Close()
	n, err := storeStreamedObjects(local, hosting.NewObjectStreamReader(body))
	if err != nil {
		return n, err
	}
	if n != len(ids) {
		return n, fmt.Errorf("extension: server sent %d of %d requested objects", n, len(ids))
	}
	return n, nil
}

// fetchAll streams a revision's full closure from the pull endpoint into
// the local store — the transfer half of a want-all negotiate, used when
// the client has nothing: no per-object ID list travels in either
// direction.
func (c *Client) fetchAll(local *gitcite.Repo, owner, repo string, tip object.ID) (int, error) {
	body, err := c.doStream("GET", fmt.Sprintf("%s/repos/%s/%s/pull/%s", apiPrefix, owner, repo, tip.String()), nil)
	if err != nil {
		return 0, err
	}
	defer body.Close()
	sr := hosting.NewObjectStreamReader(body)
	var hdr hosting.PullHeader
	if err := sr.ReadHeader(&hdr); err != nil {
		return 0, err
	}
	if hdr.Tip != tip.String() {
		return 0, fmt.Errorf("extension: pull stream tip %s, want %s", hdr.Tip, tip.Short())
	}
	return storeStreamedObjects(local, sr)
}

// Fetch downloads a remote revision incrementally into the local
// repository: it negotiates with the local branch tips as the have-set,
// streams exactly the missing objects, stores them in raw batches, and
// points localBranch (if non-empty) at the tip. It returns the tip and the
// number of objects transferred — proportional to the delta, not the
// repository.
//
// A client with no local tips (a cold clone) negotiates in want-all mode
// and streams the closure from the pull endpoint, so no per-object ID list
// travels in either direction; incremental deltas larger than
// fetchChunkSize are fetched in several chunked requests.
func (c *Client) Fetch(local *gitcite.Repo, owner, repo, rev, localBranch string) (object.ID, int, error) {
	haveHex, err := localTips(local)
	if err != nil {
		return object.ZeroID, 0, err
	}
	mode := ""
	if len(haveHex) == 0 {
		mode = hosting.NegotiateModeWantAll
	}
	negotiatePath := fmt.Sprintf("%s/repos/%s/%s/negotiate", apiPrefix, owner, repo)
	var neg hosting.NegotiateResponse
	err = c.do("POST", negotiatePath, hosting.NegotiateRequest{Want: rev, Have: haveHex, Mode: mode}, &neg)
	if mode != "" && isBadRequest(err) {
		// A server predating the want-all mode rejects the unknown "mode"
		// field (strict body decoding). Fall back to a plain negotiate so
		// cold clones keep working across the version skew.
		err = c.do("POST", negotiatePath, hosting.NegotiateRequest{Want: rev, Have: haveHex}, &neg)
	}
	if err != nil {
		return object.ZeroID, 0, err
	}
	tip, err := object.ParseID(neg.Tip)
	if err != nil {
		return object.ZeroID, 0, fmt.Errorf("extension: bad negotiate tip: %w", err)
	}
	n := 0
	switch {
	case neg.All && neg.Count > 0:
		if n, err = c.fetchAll(local, owner, repo, tip); err != nil {
			return object.ZeroID, 0, err
		}
		if n < neg.Count {
			return object.ZeroID, 0, fmt.Errorf("extension: server sent %d of %d negotiated objects", n, neg.Count)
		}
	case len(neg.Missing) > 0:
		for start := 0; start < len(neg.Missing); start += fetchChunkSize {
			chunk := neg.Missing[start:min(start+fetchChunkSize, len(neg.Missing))]
			got, err := c.fetchObjectChunk(local, owner, repo, chunk)
			if err != nil {
				return object.ZeroID, 0, err
			}
			n += got
		}
	}
	if localBranch != "" {
		if err := local.VCS.Refs.Set(refs.BranchRef(localBranch), tip); err != nil {
			return object.ZeroID, 0, err
		}
	}
	return tip, n, nil
}

// Push uploads a local branch and advances the remote branch (fast-forward
// only).
//
// Deprecated: Push is Sync under its pre-v1 name; new code should call Sync
// and use the transferred-object count it reports.
func (c *Client) Push(local *gitcite.Repo, owner, repo, branch string) (int, error) {
	return c.Sync(local, owner, repo, branch)
}

// Pull downloads a remote revision's objects into the local repository and
// points localBranch at it.
//
// Deprecated: Pull is Fetch without the transfer count; new code should
// call Fetch.
func (c *Client) Pull(local *gitcite.Repo, owner, repo, rev, localBranch string) (object.ID, error) {
	tip, _, err := c.Fetch(local, owner, repo, rev, localBranch)
	return tip, err
}

// Clone creates a fresh local citation-enabled repository tracking a remote
// branch.
func (c *Client) Clone(owner, repo, rev string) (*gitcite.Repo, error) {
	meta, err := c.GetRepo(owner, repo)
	if err != nil {
		return nil, err
	}
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: meta.Owner, Name: meta.Name, URL: meta.URL, License: meta.License,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := c.Fetch(local, owner, repo, rev, rev); err != nil {
		return nil, err
	}
	if err := local.VCS.Checkout(rev); err != nil {
		return nil, err
	}
	return local, nil
}
