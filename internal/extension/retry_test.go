// Tests for the client's transient-failure retry policy: 5xx and network
// errors retry with bounded backoff, 4xx never retries, and a cancelled
// context stops the loop instead of sleeping through it.
package extension

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first n requests with the given status, then
// answers every request with a valid empty repo body.
func flakyServer(failures *atomic.Int64, n int64, status int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= n {
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"transient"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"owner":"a","name":"b"}`)
	}
}

func TestRetryRecoversFrom5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyServer(&calls, 2, http.StatusServiceUnavailable))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(3, time.Millisecond)
	repo, err := c.GetRepo("a", "b")
	if err != nil {
		t.Fatalf("GetRepo after transient 503s: %v", err)
	}
	if repo.Owner != "a" {
		t.Errorf("repo = %+v", repo)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestRetryExhaustsBudgetOnPersistent5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyServer(&calls, 1<<30, http.StatusBadGateway))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(2, time.Millisecond)
	_, err := c.GetRepo("a", "b")
	if err == nil {
		t.Fatal("persistent 502 did not surface an error")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyServer(&calls, 1<<30, http.StatusTooManyRequests))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(3, time.Millisecond)
	if _, err := c.GetRepo("a", "b"); err == nil {
		t.Fatal("429 did not surface an error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a 429, want exactly 1", got)
	}
}

// TestRetryAfterHonoredOn429 pins the rate-limit contract: a 429 carrying
// Retry-After waits the advised seconds and retries; the next attempt
// succeeds. (A 429 without the header stays terminal — TestNoRetryOn4xx.)
func TestRetryAfterHonoredOn429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"code":"rate_limited","error":"slow down"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"owner":"a","name":"b"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(3, time.Millisecond)
	start := time.Now()
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatalf("GetRepo after advised 429: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2 (429 + success)", got)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Errorf("client waited %v, want at least the advised 1s", waited)
	}
}

// TestUnparseableRetryAfterStaysTerminal pins the guard: a 429 whose
// Retry-After does not parse as delta-seconds is an ordinary 4xx — one
// attempt, no retry, no accidental sleep on hostile input.
func TestUnparseableRetryAfterStaysTerminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"rate limited"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(3, time.Millisecond)
	if _, err := c.GetRepo("a", "b"); err == nil {
		t.Fatal("429 did not surface an error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want exactly 1", got)
	}
}

func TestRetryRecoversFromNetworkError(t *testing.T) {
	// Point the first attempts at a closed port by proxying through a
	// handler that hijacks and drops the connection.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close() // mid-request connection drop → client-side error
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"owner":"a","name":"b"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, "").WithRetryPolicy(3, time.Millisecond)
	if _, err := c.GetRepo("a", "b"); err != nil {
		t.Fatalf("GetRepo after dropped connections: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyServer(&calls, 1<<30, http.StatusServiceUnavailable))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Without cancellation this schedule would sleep ≥ several seconds.
	c := New(ts.URL, "").WithContext(ctx).WithRetryPolicy(10, 500*time.Millisecond)
	start := time.Now()
	_, err := c.GetRepo("a", "b")
	if err == nil {
		t.Fatal("cancelled retry loop returned success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ran %v past cancellation", elapsed)
	}
	if got := calls.Load(); got > 2 {
		t.Errorf("server saw %d attempts after early cancel, want ≤ 2", got)
	}
}
