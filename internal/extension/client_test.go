package extension

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAPIErrorFormatting(t *testing.T) {
	err := &APIError{Status: 403, Message: "not a member"}
	if !strings.Contains(err.Error(), "403") || !strings.Contains(err.Error(), "not a member") {
		t.Errorf("Error() = %q", err.Error())
	}
	coded := &APIError{Status: 409, Code: "ambiguous_ref", Message: "prefix matches 2 commits"}
	if !strings.Contains(coded.Error(), "ambiguous_ref") || !strings.Contains(coded.Error(), "409") {
		t.Errorf("Error() = %q", coded.Error())
	}
}

func TestClientParsesErrorCode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code": "not_found", "error": "hosting: not found: repository a/b"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	_, err := c.GetRepo("a", "b")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.Code != "not_found" || apiErr.Status != 404 {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

func TestIsPermissionDenied(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&APIError{Status: 401, Message: "m"}, true},
		{&APIError{Status: 403, Message: "m"}, true},
		{&APIError{Status: 404, Message: "m"}, false},
		{&APIError{Status: 500, Message: "m"}, false},
		{errors.New("plain"), false},
		{fmt.Errorf("wrapped: %w", &APIError{Status: 403, Message: "m"}), true},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsPermissionDenied(c.err); got != c.want {
			t.Errorf("IsPermissionDenied(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, `{"error": "short and stout"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	_, err := c.GetRepo("a", "b")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.Status != http.StatusTeapot || apiErr.Message != "short and stout" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

func TestClientSurfacesNonJSONErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text error", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	_, err := c.GetRepo("a", "b")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !strings.Contains(apiErr.Message, "plain text error") {
		t.Errorf("err = %v", err)
	}
}

func TestClientRejectsMalformedSuccessBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not json")
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	if _, err := c.GetRepo("a", "b"); err == nil {
		t.Error("malformed body accepted")
	}
}

func TestClientSendsAuthHeader(t *testing.T) {
	var gotAuth string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		fmt.Fprint(w, `{"owner":"o","name":"n","branches":[]}`)
	}))
	defer ts.Close()
	if _, err := New(ts.URL, "tok123").GetRepo("o", "n"); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer tok123" {
		t.Errorf("Authorization = %q", gotAuth)
	}
	// Anonymous clients send no header.
	if _, err := New(ts.URL, "").GetRepo("o", "n"); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "" {
		t.Errorf("anonymous Authorization = %q", gotAuth)
	}
}

func TestWithTokenDerivesIndependentClient(t *testing.T) {
	base := New("http://example", "")
	authed := base.WithToken("t2")
	if base.token != "" {
		t.Error("WithToken mutated the receiver")
	}
	if authed.token != "t2" || authed.baseURL != "http://example" {
		t.Errorf("derived client = %+v", authed)
	}
}
