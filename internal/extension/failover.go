// failover.go is the client's multi-endpoint read mode: WithReadEndpoints
// names replica URLs, and every read call (GetRepo, TreePage, GenCite,
// Chain, GenCiteRendered, Credit) routes to a replica first, falling back
// across the pool and finally to the primary. A replica is skipped when it
// is down (connection error, 5xx, 429 — cooled off for a while), when its
// reported lag exceeds the ceiling, or when the read-your-writes pin says
// it has not yet acknowledged the client's last push. Writes always go to
// the primary (directly, or via the 307 a replica answers).
package extension

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gitcite/gitcite/internal/hosting"
)

// defaultMaxReadLag is the reported replication lag past which a replica's
// answer is treated as too stale to serve; WithMaxReadLag overrides it.
const defaultMaxReadLag = 1024

// replicaCooldown is how long a failed replica sits out of the read
// rotation before being tried again.
const replicaCooldown = 5 * time.Second

// readEndpoints is the shared failover state: the replica pool, per-replica
// cooldowns, and the read-your-writes pin. It travels by pointer across
// With* client copies so a push through any copy pins reads for all.
type readEndpoints struct {
	replicas []string
	maxLag   int64

	mu        sync.Mutex
	downUntil map[string]time.Time
	rr        int // round-robin offset into replicas
	pinSeq    int64
	pinEpoch  string
}

// WithReadEndpoints returns a copy of the client that serves reads from
// the given replica base URLs with failover (see the file comment). An
// empty list returns the client unchanged.
func (c *Client) WithReadEndpoints(replicaURLs ...string) *Client {
	if len(replicaURLs) == 0 {
		return c
	}
	cp := *c
	eps := &readEndpoints{
		maxLag:    defaultMaxReadLag,
		downUntil: make(map[string]time.Time),
	}
	for _, u := range replicaURLs {
		eps.replicas = append(eps.replicas, strings.TrimRight(u, "/"))
	}
	cp.eps = eps
	return &cp
}

// WithMaxReadLag sets the reported-lag ceiling past which a replica is
// skipped for reads; n <= 0 restores the default. Must be called after
// WithReadEndpoints.
func (c *Client) WithMaxReadLag(n int64) *Client {
	if c.eps != nil {
		c.eps.mu.Lock()
		if n <= 0 {
			n = defaultMaxReadLag
		}
		c.eps.maxLag = n
		c.eps.mu.Unlock()
	}
	return c
}

// forPrimary returns a copy of the client bound to the primary only —
// no read routing. Sync uses it so negotiate and push see one history.
func (c *Client) forPrimary() *Client {
	if c.eps == nil {
		return c
	}
	cp := *c
	cp.eps = nil
	return &cp
}

// order returns the bases to try for one read: healthy replicas starting
// from a rotating offset, then "" (the primary), then cooling replicas as
// a last resort — a read should degrade to a possibly-flaky replica only
// when the primary itself is unreachable.
func (e *readEndpoints) order() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	var healthy, cooling []string
	n := len(e.replicas)
	for i := 0; i < n; i++ {
		r := e.replicas[(e.rr+i)%n]
		if t, ok := e.downUntil[r]; ok && now.Before(t) {
			cooling = append(cooling, r)
		} else {
			healthy = append(healthy, r)
		}
	}
	e.rr++
	out := append(healthy, "")
	return append(out, cooling...)
}

// markDown cools a replica out of the rotation after a failure.
func (e *readEndpoints) markDown(base string) {
	e.mu.Lock()
	e.downUntil[base] = time.Now().Add(replicaCooldown)
	e.mu.Unlock()
}

// notePush records a write acknowledged at feed position (seq, epoch) —
// the read-your-writes pin. Reads skip any replica whose acknowledged
// cursor (response headers) has not reached it.
func (e *readEndpoints) notePush(seq int64, epoch string) {
	if seq <= 0 {
		return
	}
	e.mu.Lock()
	if epoch != e.pinEpoch || seq > e.pinSeq {
		e.pinSeq, e.pinEpoch = seq, epoch
	}
	e.mu.Unlock()
}

// stale judges a replica's response headers: lag over the ceiling, or —
// when a pin is set — a missing/mismatched epoch or a cursor short of the
// pin. A stale replica is healthy, just behind: it is skipped for this
// read without being cooled out of the rotation.
func (e *readEndpoints) stale(hdr http.Header) bool {
	lag, _ := strconv.ParseInt(hdr.Get(hosting.HeaderReplicaLag), 10, 64)
	cursor, _ := strconv.ParseInt(hdr.Get(hosting.HeaderReplicaCursor), 10, 64)
	epoch := hdr.Get(hosting.HeaderReplicaEpoch)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.maxLag > 0 && lag > e.maxLag {
		return true
	}
	if e.pinSeq > 0 && (epoch != e.pinEpoch || cursor < e.pinSeq) {
		return true
	}
	return false
}

// doRead is do with endpoint routing. Replica attempts run without the
// retry budget (failing over beats backing off); the primary attempt keeps
// the client's normal retry policy. An authoritative 4xx ends the read —
// except a replica's 404, which may just be replication lag, so the next
// endpoint (ultimately the primary) answers instead.
func (c *Client) doRead(method, path string, body, out any) error {
	if c.eps == nil {
		return c.do(method, path, body, out)
	}
	var lastErr error
	for _, base := range c.eps.order() {
		att, target := c, c.baseURL
		if base != "" {
			cp := *c
			cp.retries = 0
			att, target = &cp, base
		}
		status, data, hdr, err := att.call(target, method, path, body)
		if err != nil {
			if base == "" {
				lastErr = err
				continue
			}
			c.eps.markDown(base)
			lastErr = fmt.Errorf("extension: replica %s: %w", base, err)
			continue
		}
		if base != "" {
			if status >= 500 || status == http.StatusTooManyRequests {
				c.eps.markDown(base)
				lastErr = apiErrorFrom(status, data)
				continue
			}
			if c.eps.stale(hdr) {
				lastErr = fmt.Errorf("extension: replica %s behind (stale read skipped)", base)
				continue
			}
			if status == http.StatusNotFound {
				lastErr = apiErrorFrom(status, data)
				continue
			}
		}
		if status < 200 || status > 299 {
			return apiErrorFrom(status, data)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("extension: bad response body: %w", err)
			}
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("extension: no read endpoint available")
	}
	return lastErr
}
