package hosting

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleState builds a state with every record shape: users, repos,
// members, a resolved fork and a pending one.
func sampleState() *manifestState {
	st := newManifestState()
	for _, rec := range []manifestRecord{
		{Op: opUser, Name: "alice", Token: "gct_a"},
		{Op: opUser, Name: "bob", Token: "gct_b"},
		{Op: opRepo, Owner: "alice", Repo: "proj", URL: "https://git.example/alice/proj", License: "MIT"},
		{Op: opMember, Owner: "alice", Repo: "proj", Member: "bob"},
		{Op: opForkBegin, Owner: "bob", Repo: "proj", URL: "https://git.example/bob/proj", License: "MIT", SrcOwner: "alice", SrcRepo: "proj"},
		{Op: opForkCommit, Owner: "bob", Repo: "proj"},
		{Op: opForkBegin, Owner: "bob", Repo: "stuck", URL: "https://git.example/bob/stuck", SrcOwner: "alice", SrcRepo: "proj"},
	} {
		st.apply(rec)
	}
	return st
}

// statesEqual compares replayed state ignoring the record counter (which
// counts journal lines, not live state).
func statesEqual(a, b *manifestState) bool {
	return reflect.DeepEqual(a.users, b.users) &&
		reflect.DeepEqual(a.repos, b.repos) &&
		reflect.DeepEqual(a.pending, b.pending)
}

func TestManifestEncodeReplayRoundTrip(t *testing.T) {
	st := sampleState()
	data, err := encodeManifest(st)
	if err != nil {
		t.Fatal(err)
	}
	got, covered, err := parseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if covered != int64(len(data)) {
		t.Fatalf("canonical encoding only %d/%d bytes acknowledged", covered, len(data))
	}
	if !statesEqual(st, got) {
		t.Fatalf("replay(encode(state)) != state:\nhave %+v\nwant %+v", got, st)
	}
	data2, err := encodeManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("canonical encoding not a fixed point:\nfirst  %q\nsecond %q", data, data2)
	}
}

func TestManifestReplayStopsAtTornTail(t *testing.T) {
	st := sampleState()
	data, err := encodeManifest(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"truncated-line", []byte("0bad")},
		{"bad-crc", []byte("00000000 {\"op\":\"user\",\"name\":\"evil\",\"token\":\"x\"}\n")},
		{"not-json", []byte("deadbeef garbage\n")},
		{"no-space", []byte("0123456789abcdef\n")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, covered, err := parseManifest(append(append([]byte{}, data...), tc.tail...))
			if err != nil {
				t.Fatal(err)
			}
			if covered != int64(len(data)) {
				t.Fatalf("covered %d bytes, want %d (tail must not be acknowledged)", covered, len(data))
			}
			if !statesEqual(st, got) {
				t.Fatal("torn tail changed replayed state")
			}
			if _, ok := got.users["evil"]; ok {
				t.Fatal("CRC-failing record was applied")
			}
		})
	}
}

func TestManifestUnknownOpEndsReplay(t *testing.T) {
	st := newManifestState()
	st.apply(manifestRecord{Op: opUser, Name: "alice", Token: "t"})
	data, err := encodeManifest(st)
	if err != nil {
		t.Fatal(err)
	}
	future, err := encodeManifestLine(manifestRecord{Op: "quota", Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := encodeManifestLine(manifestRecord{Op: opUser, Name: "bob", Token: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	full := append(append(append([]byte{}, data...), future...), after...)
	got, covered, err := parseManifest(full)
	if err != nil {
		t.Fatal(err)
	}
	if covered != int64(len(data)) {
		t.Fatalf("replay acknowledged %d bytes past the unknown op (covered %d, want %d)",
			covered-int64(len(data)), covered, len(data))
	}
	if _, ok := got.users["bob"]; ok {
		t.Fatal("record after an unknown op was applied")
	}
}

func TestManifestRejectsForeignFile(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("not a manifest\n"),
		[]byte(""),
		[]byte("gitcite-manifest v9\n"),
	} {
		if _, _, err := parseManifest(data); err == nil {
			t.Fatalf("parseManifest(%q) accepted a foreign file", data)
		}
	}
}

// TestOpenManifestTruncatesTornTail exercises the crash shape on disk: a
// journal whose last append was cut mid-line must reopen to the
// acknowledged prefix, and appends after that must replay cleanly.
func TestOpenManifestTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), manifestName)
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.append(manifestRecord{Op: opUser, Name: "alice", Token: "gct_a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("01234567 {\"op\":\"user\",\"na"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, st, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.users["alice"] != "gct_a" {
		t.Fatalf("acknowledged record lost: users=%v", st.users)
	}
	if len(st.users) != 1 {
		t.Fatalf("torn record replayed: users=%v", st.users)
	}
	if err := m2.append(manifestRecord{Op: opUser, Name: "bob", Token: "gct_b"}); err != nil {
		t.Fatal(err)
	}
	if err := m2.close(); err != nil {
		t.Fatal(err)
	}
	_, st3, err := openManifest(filepath.Join(filepath.Dir(path), manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if st3.users["alice"] != "gct_a" || st3.users["bob"] != "gct_b" {
		t.Fatalf("append after torn-tail truncation did not replay: %v", st3.users)
	}
}

func TestManifestCompactResolvesIntents(t *testing.T) {
	path := filepath.Join(t.TempDir(), manifestName)
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []manifestRecord{
		{Op: opUser, Name: "alice", Token: "gct_a"},
		{Op: opRepo, Owner: "alice", Repo: "proj", URL: "u", License: "MIT"},
		{Op: opForkBegin, Owner: "alice", Repo: "dead", URL: "u2", SrcOwner: "alice", SrcRepo: "proj"},
		{Op: opForkAbort, Owner: "alice", Repo: "dead"},
	}
	st := newManifestState()
	for _, rec := range recs {
		if err := m.append(rec); err != nil {
			t.Fatal(err)
		}
		st.apply(rec)
	}
	if err := m.compact(st); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends must land after the snapshot.
	if err := m.append(manifestRecord{Op: opUser, Name: "bob", Token: "gct_b"}); err != nil {
		t.Fatal(err)
	}
	if err := m.close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.pending) != 0 {
		t.Fatalf("compaction kept resolved intents: %v", got.pending)
	}
	if got.records != 3 { // alice + proj + bob: intents resolved away
		t.Fatalf("compacted journal replays %d records, want 3", got.records)
	}
	if got.users["bob"] != "gct_b" {
		t.Fatal("append after compaction lost")
	}
}

func TestValidRepoName(t *testing.T) {
	for _, ok := range []string{"proj", "Data_citation_demo", "a-b.c", "x"} {
		if !validRepoName(ok) {
			t.Errorf("validRepoName(%q) = false, want true", ok)
		}
	}
	bad := []string{"", ".git", "..", "a/b", `a\b`, "a\nb", "a\x00b", string(make([]byte, 256))}
	for _, name := range bad {
		if validRepoName(name) {
			t.Errorf("validRepoName(%q) = true, want false", name)
		}
	}
}

// FuzzManifestReplay is the crash-recovery parser's fuzz target: replay
// never panics on arbitrary bytes, the covered prefix is bounded by the
// input, and for whatever state replay accepts, the canonical re-encoding
// is a fixed point (encode → replay → encode is bit-stable).
func FuzzManifestReplay(f *testing.F) {
	if canon, err := encodeManifest(sampleState()); err == nil {
		f.Add(canon)
		f.Add(canon[:len(canon)-7])                                                                 // torn tail
		f.Add(append(append([]byte{}, canon...), "00000000 {\"op\":\"user\",\"name\":\"x\"}\n"...)) // bad CRC
	}
	f.Add([]byte(manifestHeader))
	f.Add([]byte("not a manifest\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, covered, err := parseManifest(data)
		if err != nil {
			return // foreign file; rejected outright
		}
		if covered < int64(len(manifestHeader)) || covered > int64(len(data)) {
			t.Fatalf("covered %d out of range [%d, %d]", covered, len(manifestHeader), len(data))
		}
		enc, err := encodeManifest(st)
		if err != nil {
			t.Fatalf("accepted state does not encode: %v", err)
		}
		st2, covered2, err := parseManifest(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		if covered2 != int64(len(enc)) {
			t.Fatalf("canonical encoding only partially acknowledged: %d/%d", covered2, len(enc))
		}
		if !statesEqual(st, st2) {
			t.Fatal("replay(encode(state)) != state")
		}
		enc2, err := encodeManifest(st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
