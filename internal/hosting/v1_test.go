// Tests for the v1 API surface: negotiated incremental sync, streaming
// transfer, immutable-read caching (ETag/304), cursor pagination,
// abbreviated revisions, push validation ordering, CORS and rate limiting.
package hosting_test

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
	"github.com/gitcite/gitcite/internal/workload"
)

// ---- negotiate / MissingObjects ----

// buildNFileRepo commits n files in a three-level tree on "main".
func buildNFileRepo(t testing.TB, n int) (*gitcite.Repo, *gitcite.Worktree) {
	t.Helper()
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "r", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i)
		if err := wt.WriteFile(p, []byte(fmt.Sprintf("seed %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(1, 0)), Message: "seed"}); err != nil {
		t.Fatal(err)
	}
	return repo, wt
}

func closureSet(t testing.TB, s store.Store, root object.ID) map[object.ID]bool {
	t.Helper()
	ids, err := store.ClosureIDs(s, root)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[object.ID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// TestMissingObjectsDeltaBound pins the O(delta) guarantee the negotiate
// endpoint is built on: one new commit touching one file at tree depth 3 in
// a 1000-file repository negotiates to exactly depth+2 = 5 objects (3 trees
// + 1 blob + 1 commit), and those objects are precisely the closure
// difference.
func TestMissingObjectsDeltaBound(t *testing.T) {
	repo, wt := buildNFileRepo(t, 1000)
	tip1, err := repo.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/d3/s4/f435.txt", []byte("edited")); err != nil {
		t.Fatal(err)
	}
	tip2, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(2, 0)), Message: "edit"})
	if err != nil {
		t.Fatal(err)
	}
	missing, err := hosting.MissingObjects(repo.VCS.Objects, tip2, []object.ID{tip1})
	if err != nil {
		t.Fatal(err)
	}
	// citation.cite changes too (root stamp), so the delta is the root tree,
	// 2 path trees, 2 blobs (file + citation.cite) and the commit — but
	// never more than depth+2 plus the citation blob.
	const depth = 3
	if len(missing) > depth+2+1 {
		t.Fatalf("missing = %d objects, want ≤ %d", len(missing), depth+2+1)
	}
	// Correctness: closure(tip1) ∪ missing ⊇ closure(tip2) and every missing
	// object is in closure(tip2).
	have := closureSet(t, repo.VCS.Objects, tip1)
	wantSet := closureSet(t, repo.VCS.Objects, tip2)
	for _, id := range missing {
		if !wantSet[id] {
			t.Errorf("missing object %s not in closure(tip2)", id.Short())
		}
		have[id] = true
	}
	for id := range wantSet {
		if !have[id] {
			t.Errorf("closure(tip2) object %s neither in closure(tip1) nor missing", id.Short())
		}
	}
	// An up-to-date peer negotiates to nothing.
	none, err := hosting.MissingObjects(repo.VCS.Objects, tip2, []object.ID{tip2})
	if err != nil || len(none) != 0 {
		t.Errorf("up-to-date negotiate = %d objects, %v", len(none), err)
	}
	// An empty have-set yields the full closure.
	all, err := hosting.MissingObjects(repo.VCS.Objects, tip2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(wantSet) {
		t.Errorf("cold negotiate = %d objects, want %d", len(all), len(wantSet))
	}
}

// TestNegotiateSyncPropertyRoundTrip is the sync property test: for random
// edit histories, a client that cloned at an arbitrary point and then
// fetches incrementally ends bit-identical to the server (IDs are content
// hashes, so ID-set equality is byte equality), and the transfer is smaller
// than a full pull.
func TestNegotiateSyncPropertyRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := workload.Default()
			cfg.Seed = seed
			cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
			local, tips, err := workload.BuildHistory(cfg, 12)
			if err != nil {
				t.Fatal(err)
			}
			fx := newFixture(t)
			if err := fx.owner.CreateRepo("sync", "https://x/sync", ""); err != nil {
				t.Fatal(err)
			}
			// Push the history up to an intermediate tip, clone there.
			mid := tips[5+int(seed)%4]
			if err := local.VCS.Refs.Set(refs.BranchRef("wip"), mid); err != nil {
				t.Fatal(err)
			}
			if _, err := fx.owner.Sync(local, "leshang", "sync", "wip"); err != nil {
				t.Fatal(err)
			}
			clone, err := fx.owner.Clone("leshang", "sync", "wip")
			if err != nil {
				t.Fatal(err)
			}
			// Server advances to the final tip (incremental push).
			final := tips[len(tips)-1]
			if err := local.VCS.Refs.Set(refs.BranchRef("wip"), final); err != nil {
				t.Fatal(err)
			}
			pushed, err := fx.owner.Sync(local, "leshang", "sync", "wip")
			if err != nil {
				t.Fatal(err)
			}
			localFull := closureSet(t, local.VCS.Objects, final)
			if pushed == 0 || pushed >= len(localFull) {
				t.Errorf("incremental push sent %d objects, full closure is %d", pushed, len(localFull))
			}
			// Client catches up incrementally.
			gotTip, fetched, err := fx.owner.Fetch(clone, "leshang", "sync", "wip", "wip")
			if err != nil {
				t.Fatal(err)
			}
			if gotTip != final {
				t.Fatalf("fetched tip %s, want %s", gotTip.Short(), final.Short())
			}
			if fetched == 0 || fetched >= len(localFull) {
				t.Errorf("incremental fetch moved %d objects, full closure is %d", fetched, len(localFull))
			}
			// Post-sync closures are identical on all three stores.
			cloneSet := closureSet(t, clone.VCS.Objects, final)
			serverRepo := mustPlatformRepo(t, fx, "leshang", "sync")
			serverSet := closureSet(t, serverRepo.VCS.Objects, final)
			if !sameIDSet(cloneSet, serverSet) || !sameIDSet(cloneSet, localFull) {
				t.Errorf("closures differ after sync: clone=%d server=%d local=%d",
					len(cloneSet), len(serverSet), len(localFull))
			}
			// And the synced repository still answers citation reads.
			if _, _, err := fx.anon.GenCite("leshang", "sync", "wip", "/"); err != nil {
				t.Errorf("GenCite on synced repo: %v", err)
			}
		})
	}
}

func mustPlatformRepo(t testing.TB, fx *fixture, owner, name string) *gitcite.Repo {
	t.Helper()
	repo, err := fx.platform.Repo(context.Background(), owner, name)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func sameIDSet(a, b map[object.ID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// TestFetchTransfersDelta is the acceptance-criterion check over the full
// HTTP stack: after a one-file commit on a 1000-file hosted repository, an
// up-to-date client's Fetch moves at most depth+2 (+1 for citation.cite)
// wire objects, not the closure.
func TestFetchTransfersDelta(t *testing.T) {
	fx := newFixture(t)
	local, wt := buildNFileRepo(t, 1000)
	if err := fx.owner.CreateRepo("big", "https://x/big", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "big", "main"); err != nil {
		t.Fatal(err)
	}
	clone, err := fx.owner.Clone("leshang", "big", "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/d3/s4/f435.txt", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(3, 0)), Message: "edit"}); err != nil {
		t.Fatal(err)
	}
	pushed, err := fx.owner.Sync(local, "leshang", "big", "main")
	if err != nil {
		t.Fatal(err)
	}
	_, fetched, err := fx.owner.Fetch(clone, "leshang", "big", "main", "main")
	if err != nil {
		t.Fatal(err)
	}
	const bound = 3 + 2 + 1 // depth trees + blob + commit, + citation.cite blob
	if pushed > bound || fetched > bound {
		t.Errorf("one-file commit moved push=%d fetch=%d wire objects, want ≤ %d", pushed, fetched, bound)
	}
}

// ---- immutable-read caching ----

func TestETagConditionalReads(t *testing.T) {
	fx := newFixture(t)
	repo := mustPlatformRepo(t, fx, "leshang", "P1")
	tip, err := repo.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path, etag string) *http.Response {
		req, err := http.NewRequest("GET", fx.server.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Branch-addressed read: 200 with the commit's ETag, must-revalidate.
	resp := get("/api/v1/repos/leshang/P1/cite/main?path=/src/main.py", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+tip.String()+`"` {
		t.Errorf("ETag = %q, want quoted commit ID", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("branch-addressed Cache-Control = %q", cc)
	}
	// Revalidation: 304.
	resp = get("/api/v1/repos/leshang/P1/cite/main?path=/src/main.py", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match status = %d, want 304", resp.StatusCode)
	}
	// Weak-form and list-form validators match too.
	resp = get("/api/v1/repos/leshang/P1/cite/main?path=/src/main.py", `"zzz", W/`+etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("list If-None-Match status = %d, want 304", resp.StatusCode)
	}
	// Commit-addressed read: immutable Cache-Control.
	resp = get("/api/v1/repos/leshang/P1/tree/"+tip.String(), "")
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("commit-addressed Cache-Control = %q, want immutable", cc)
	}
	// A stale validator still gets 200.
	resp = get("/api/v1/repos/leshang/P1/cite/main?path=/src/main.py", `"deadbeef"`)
	if resp.StatusCode != 200 {
		t.Errorf("stale If-None-Match status = %d, want 200", resp.StatusCode)
	}

	// Zero-resolution proof: a commit with no citation.cite 404s on a plain
	// read, but the 304 path answers before citation resolution is ever
	// attempted — matching validators short-circuit all citation work.
	bare, err := repo.VCS.CommitFiles("bare", map[string]vcs.FileContent{"/x.txt": vcs.File("x")},
		vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(9, 0)), Message: "no citefile"})
	if err != nil {
		t.Fatal(err)
	}
	barePath := "/api/v1/repos/leshang/P1/cite/" + bare.String()
	if resp = get(barePath, ""); resp.StatusCode != 404 {
		t.Errorf("citation read of citation-less commit = %d, want 404", resp.StatusCode)
	}
	if resp = get(barePath, `"`+bare.String()+`"`); resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional citation read of citation-less commit = %d, want 304", resp.StatusCode)
	}
}

// ---- pagination ----

func TestTreePagination(t *testing.T) {
	fx := newFixture(t)
	full, err := fx.anon.Tree("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Fatalf("fixture tree too small: %d entries", len(full))
	}
	var paged []hosting.TreeEntryResponse
	cursor := ""
	pages := 0
	for {
		page, err := fx.anon.TreePage("leshang", "P1", "main", cursor, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Entries) > 3 {
			t.Fatalf("page of %d entries exceeds limit 3", len(page.Entries))
		}
		paged = append(paged, page.Entries...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages < 2 {
		t.Errorf("pagination served %d pages, want ≥ 2", pages)
	}
	if len(paged) != len(full) {
		t.Fatalf("paged total %d, full listing %d", len(paged), len(full))
	}
	for i := range full {
		if paged[i] != full[i] {
			t.Errorf("entry %d differs: paged %+v, full %+v", i, paged[i], full[i])
		}
	}
	// Invalid cursor and limit are bad requests with the stable code.
	for _, q := range []string{"cursor=abc", "limit=-1", "cursor=-2"} {
		resp, err := http.Get(fx.server.URL + "/api/v1/repos/leshang/P1/tree/main?" + q)
		if err != nil {
			t.Fatal(err)
		}
		var body hosting.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 400 || body.Code != hosting.CodeBadRequest {
			t.Errorf("%s: status=%d code=%q err=%v", q, resp.StatusCode, body.Code, err)
		}
	}
}

// ---- abbreviated revisions ----

func TestShortRevPrefix(t *testing.T) {
	fx := newFixture(t)
	repo := mustPlatformRepo(t, fx, "leshang", "P1")
	tip, err := repo.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	// An unambiguous 8-char prefix resolves like the full ID.
	short := tip.String()[:8]
	fullTree, err := fx.anon.Tree("leshang", "P1", tip.String())
	if err != nil {
		t.Fatal(err)
	}
	shortTree, err := fx.anon.Tree("leshang", "P1", short)
	if err != nil {
		t.Fatalf("short rev %q: %v", short, err)
	}
	if len(shortTree) != len(fullTree) {
		t.Errorf("short rev listing %d entries, full %d", len(shortTree), len(fullTree))
	}
	// Uppercase prefixes are accepted.
	if _, err := fx.anon.Tree("leshang", "P1", strings.ToUpper(short)); err != nil {
		t.Errorf("uppercase short rev: %v", err)
	}
	// Too-short prefixes are not resolved.
	if _, err := fx.anon.Tree("leshang", "P1", tip.String()[:3]); !isAPIStatus(err, 404) {
		t.Errorf("3-char rev = %v, want 404", err)
	}

	// Manufacture a prefix collision: spam deterministic commits until two
	// commit IDs share their first 4 hex chars (content is fixed, so the
	// number needed is stable), then ask for that prefix.
	ids := []object.ID{tip}
	prefix := ""
	byPrefix := map[string]int{tip.String()[:4]: 1}
	for i := 0; i < 3000 && prefix == ""; i++ {
		id, err := repo.VCS.CommitFiles("spam", map[string]vcs.FileContent{"/s.txt": vcs.File(fmt.Sprint(i))},
			vcs.CommitOptions{Author: vcs.Sig("s", "s@x", time.Unix(int64(i), 0)), Message: fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		p := id.String()[:4]
		if byPrefix[p]++; byPrefix[p] > 1 {
			prefix = p
		}
	}
	if prefix == "" {
		t.Fatal("no 4-char commit prefix collision in 3000 commits")
	}
	_, err = fx.anon.Tree("leshang", "P1", prefix)
	var apiErr *extension.APIError
	if !isAPIErr(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != hosting.CodeAmbiguousRef {
		t.Errorf("ambiguous prefix %q = %v, want 409 %s", prefix, err, hosting.CodeAmbiguousRef)
	}
}

func isAPIErr(err error, target **extension.APIError) bool {
	return errors.As(err, target)
}

func isAPIStatus(err error, status int) bool {
	var e *extension.APIError
	return isAPIErr(err, &e) && e.Status == status
}

// ---- push validation ordering ----

// TestPushGarbageLandsNothing pins the satellite fix: a push whose tip is
// not a commit reachable from the uploaded objects and current refs is
// rejected BEFORE anything is stored, so orphan objects cannot land.
func TestPushGarbageLandsNothing(t *testing.T) {
	fx := newFixture(t)
	repo := mustPlatformRepo(t, fx, "leshang", "P1")
	tipBefore, err := repo.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	lenBefore, err := repo.VCS.Objects.Len()
	if err != nil {
		t.Fatal(err)
	}
	orphan := object.NewBlobString("orphan payload")
	orphanEnc := object.Encode(orphan)
	orphanID := object.HashBytes(orphanEnc)
	fakeTip := strings.Repeat("ab", 32) // valid hex, no such commit

	push := func(path, contentType string, body []byte) *http.Response {
		req, err := http.NewRequest("POST", fx.server.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+fx.ownerTok)
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// v1 streaming push: header + one orphan blob, tip pointing nowhere.
	var v1 bytes.Buffer
	fmt.Fprintf(&v1, `{"branch":"main","tip":"%s"}`+"\n", fakeTip)
	fmt.Fprintf(&v1, `{"d":"%s"}`+"\n", base64.StdEncoding.EncodeToString(orphanEnc))
	if resp := push("/api/v1/repos/leshang/P1/push", hosting.MediaTypeNDJSON, v1.Bytes()); resp.StatusCode != 400 {
		t.Errorf("v1 garbage push status = %d, want 400", resp.StatusCode)
	}

	// Legacy array push with the same garbage.
	legacy, err := json.Marshal(hosting.PushRequest{
		Branch: "main", Tip: fakeTip,
		Objects: []hosting.WireObject{{Data: base64.StdEncoding.EncodeToString(orphanEnc)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := push("/api/repos/leshang/P1/push", "application/json", legacy); resp.StatusCode != 400 {
		t.Errorf("legacy garbage push status = %d, want 400", resp.StatusCode)
	}

	// A push whose tip is a blob is equally rejected.
	var blobTip bytes.Buffer
	fmt.Fprintf(&blobTip, `{"branch":"main","tip":"%s"}`+"\n", orphanID.String())
	fmt.Fprintf(&blobTip, `{"d":"%s"}`+"\n", base64.StdEncoding.EncodeToString(orphanEnc))
	if resp := push("/api/v1/repos/leshang/P1/push", hosting.MediaTypeNDJSON, blobTip.Bytes()); resp.StatusCode != 400 {
		t.Errorf("blob-tip push status = %d, want 400", resp.StatusCode)
	}

	// Nothing landed and the ref did not move.
	if ok, _ := repo.VCS.Objects.Has(orphanID); ok {
		t.Error("orphan object landed in the store")
	}
	lenAfter, err := repo.VCS.Objects.Len()
	if err != nil {
		t.Fatal(err)
	}
	if lenAfter != lenBefore {
		t.Errorf("store grew from %d to %d objects on rejected pushes", lenBefore, lenAfter)
	}
	if tip, _ := repo.VCS.BranchTip("main"); tip != tipBefore {
		t.Error("branch moved on rejected push")
	}
}

// ---- CORS ----

func TestCORS(t *testing.T) {
	fx := newFixture(t) // default allows any origin
	// Preflight.
	req, err := http.NewRequest("OPTIONS", fx.server.URL+"/api/v1/repos/leshang/P1/cite/main", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Origin", "chrome-extension://gitcite")
	req.Header.Set("Access-Control-Request-Method", "GET")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("preflight status = %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get("Access-Control-Allow-Origin"); got != "*" {
		t.Errorf("preflight Allow-Origin = %q, want *", got)
	}
	if got := resp.Header.Get("Access-Control-Allow-Methods"); !strings.Contains(got, "DELETE") {
		t.Errorf("preflight Allow-Methods = %q", got)
	}
	// Simple request carries the headers too.
	req, _ = http.NewRequest("GET", fx.server.URL+"/api/v1/repos/leshang/P1/cite/main?path=/", nil)
	req.Header.Set("Origin", "chrome-extension://gitcite")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Access-Control-Allow-Origin"); got != "*" {
		t.Errorf("GET Allow-Origin = %q, want *", got)
	}
	if got := resp.Header.Get("Access-Control-Expose-Headers"); !strings.Contains(got, "ETag") {
		t.Errorf("Expose-Headers = %q, want ETag", got)
	}

	// A restricted server echoes only the configured origin.
	p := hosting.NewPlatform()
	restricted := hosting.NewServer(p, hosting.WithAllowedOrigin("https://ext.example"))
	rec := func(origin string) string {
		req, _ := http.NewRequest("GET", "/api/v1/repos/a/b", nil)
		req.Header.Set("Origin", origin)
		w := &headerRecorder{header: http.Header{}}
		restricted.ServeHTTP(w, req)
		return w.header.Get("Access-Control-Allow-Origin")
	}
	if got := rec("https://ext.example"); got != "https://ext.example" {
		t.Errorf("allowed origin got %q", got)
	}
	if got := rec("https://evil.example"); got != "" {
		t.Errorf("disallowed origin got %q", got)
	}
}

// headerRecorder is a minimal ResponseWriter for middleware-only assertions.
type headerRecorder struct {
	header http.Header
	status int
}

func (r *headerRecorder) Header() http.Header         { return r.header }
func (r *headerRecorder) Write(b []byte) (int, error) { return len(b), nil }
func (r *headerRecorder) WriteHeader(code int)        { r.status = code }

// ---- rate limiting ----

func TestRateLimit(t *testing.T) {
	p := hosting.NewPlatform()
	srv := hosting.NewServer(p, hosting.WithRateLimit(0.0001, 3)) // burst 3, negligible refill
	u, err := p.CreateUser(context.Background(), "limited")
	if err != nil {
		t.Fatal(err)
	}
	other, err := p.CreateUser(context.Background(), "other")
	if err != nil {
		t.Fatal(err)
	}
	do := func(token string) (int, string) {
		req, _ := http.NewRequest("GET", "/api/v1/repos/nobody/ghost", nil)
		req.RemoteAddr = "10.0.0.1:1234"
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		w := &bodyRecorder{headerRecorder: headerRecorder{header: http.Header{}}}
		srv.ServeHTTP(w, req)
		var body hosting.ErrorResponse
		_ = json.Unmarshal(w.body.Bytes(), &body)
		return w.status, body.Code
	}
	for i := 0; i < 3; i++ {
		if status, _ := do(u.Token); status != 404 {
			t.Fatalf("request %d status = %d, want 404 (within burst)", i, status)
		}
	}
	status, code := do(u.Token)
	if status != http.StatusTooManyRequests || code != hosting.CodeRateLimited {
		t.Errorf("over-burst request = %d %q, want 429 %s", status, code, hosting.CodeRateLimited)
	}
	// Another token has its own bucket.
	if status, _ := do(other.Token); status != 404 {
		t.Errorf("other token status = %d, want 404", status)
	}
}

type bodyRecorder struct {
	headerRecorder
	body bytes.Buffer
}

func (r *bodyRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }

// ---- error codes ----

func TestErrorCodesAreStable(t *testing.T) {
	fx := newFixture(t)
	var apiErr *extension.APIError
	if _, err := fx.anon.GetRepo("nobody", "ghost"); !isAPIErr(err, &apiErr) || apiErr.Code != hosting.CodeNotFound {
		t.Errorf("missing repo = %v, want code %s", err, hosting.CodeNotFound)
	}
	if _, err := fx.anon.CreateUser("leshang"); !isAPIErr(err, &apiErr) || apiErr.Code != hosting.CodeConflict {
		t.Errorf("duplicate user = %v, want code %s", err, hosting.CodeConflict)
	}
	cite := core.Citation{Owner: "x", RepoName: "y", URL: "u", Version: "1"}
	if _, err := fx.anon.AddCite("leshang", "P1", "main", "/src", cite); !isAPIErr(err, &apiErr) || apiErr.Code != hosting.CodeUnauthorized {
		t.Errorf("anonymous edit = %v, want code %s", err, hosting.CodeUnauthorized)
	}
	// An invalid bearer token is rejected by the auth middleware.
	bogus := fx.anon.WithToken("gct_bogus")
	if _, err := bogus.GetRepo("leshang", "P1"); !isAPIErr(err, &apiErr) || apiErr.Status != 401 {
		t.Errorf("bogus token = %v, want 401", err)
	}
}

// ---- deprecated routes ----

// TestLegacyRoutesStillServe keeps the pre-v1 wire protocol working: the
// unversioned tree returns a plain array, pull returns the whole-closure
// JSON body, and the array-form push still lands commits (now with the v1
// validation order underneath).
func TestLegacyRoutesStillServe(t *testing.T) {
	fx := newFixture(t)
	// Legacy tree: a JSON array, not a page envelope.
	resp, err := http.Get(fx.server.URL + "/api/repos/leshang/P1/tree/main")
	if err != nil {
		t.Fatal(err)
	}
	var entries []hosting.TreeEntryResponse
	err = json.NewDecoder(resp.Body).Decode(&entries)
	resp.Body.Close()
	if err != nil || len(entries) == 0 {
		t.Fatalf("legacy tree: %v (%d entries)", err, len(entries))
	}

	// Legacy pull: tip + full object array.
	resp, err = http.Get(fx.server.URL + "/api/repos/leshang/P1/pull/main")
	if err != nil {
		t.Fatal(err)
	}
	var pull hosting.PullResponse
	err = json.NewDecoder(resp.Body).Decode(&pull)
	resp.Body.Close()
	if err != nil || len(pull.Objects) == 0 {
		t.Fatalf("legacy pull: %v (%d objects)", err, len(pull.Objects))
	}
	tip, err := object.ParseID(pull.Tip)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild a local repo from the legacy payload and push a new commit
	// back through the legacy array route.
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "leshang", Name: "P1", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	for _, wo := range pull.Objects {
		enc, err := base64.StdEncoding.DecodeString(wo.Data)
		if err != nil {
			t.Fatal(err)
		}
		o, err := object.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := local.VCS.Objects.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
		t.Fatal(err)
	}
	wt, err := local.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/legacy.txt", []byte("from the old protocol")); err != nil {
		t.Fatal(err)
	}
	newTip, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("l", "l@x", time.Unix(7, 0)), Message: "legacy push"})
	if err != nil {
		t.Fatal(err)
	}
	var req hosting.PushRequest
	req.Branch, req.Tip = "main", newTip.String()
	if err := store.WalkClosure(local.VCS.Objects, func(_ object.ID, o object.Object) error {
		req.Objects = append(req.Objects, hosting.WireObject{Data: base64.StdEncoding.EncodeToString(object.Encode(o))})
		return nil
	}, newTip); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", fx.server.URL+"/api/repos/leshang/P1/push", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Authorization", "Bearer "+fx.ownerTok)
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var pushResp hosting.PushResponse
	err = json.NewDecoder(hresp.Body).Decode(&pushResp)
	hresp.Body.Close()
	if err != nil || hresp.StatusCode != 200 {
		t.Fatalf("legacy push: status %d, %v", hresp.StatusCode, err)
	}
	if _, _, err := fx.anon.GenCite("leshang", "P1", "main", "/legacy.txt"); err != nil {
		t.Errorf("read after legacy push: %v", err)
	}
}

// ---- concurrency ----

// TestConcurrentPullsDuringPushes runs incremental pushes, incremental
// fetches, streaming pulls and citation reads against one repository at
// once (run under -race in CI): readers must never block on or be broken by
// in-flight pushes.
func TestConcurrentPullsDuringPushes(t *testing.T) {
	fx := newFixture(t)
	local, err := fx.owner.Clone("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	wt, err := local.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	done := make(chan struct{})

	// Pusher: one-file commits synced incrementally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 15; i++ {
			if err := wt.WriteFile("/churn.txt", []byte(fmt.Sprint(i))); err != nil {
				errCh <- err
				return
			}
			if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("l", "l@x", time.Unix(int64(100+i), 0)), Message: "churn"}); err != nil {
				errCh <- err
				return
			}
			if _, err := fx.owner.Sync(local, "leshang", "P1", "main"); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Fetchers: each keeps a private clone in sync while pushes land.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine, err := fx.anon.Clone("leshang", "P1", "main")
			if err != nil {
				errCh <- err
				return
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := fx.anon.Fetch(mine, "leshang", "P1", "main", "main"); err != nil {
					errCh <- err
					return
				}
				if _, _, err := fx.anon.GenCite("leshang", "P1", "main", "/CoreCover/rewrite.py"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent sync: %v", err)
	}

	// Everyone converges on the same tip afterwards.
	repo := mustPlatformRepo(t, fx, "leshang", "P1")
	tip, err := repo.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := fx.anon.Clone("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != tip {
		t.Errorf("post-churn clone tip %s, server tip %s", got.Short(), tip.Short())
	}
	ids := closureSet(t, fresh.VCS.Objects, got)
	serverIDs := closureSet(t, repo.VCS.Objects, tip)
	if !sameIDSet(ids, serverIDs) {
		t.Error("post-churn closures differ")
	}
}
