package hosting

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

func testSig(n int) object.Signature {
	return vcs.Sig("alice", "alice@x", time.Unix(1536028520+int64(n), 0))
}

// commitFile adds one file to a repository's main branch and returns the
// commit.
func commitFile(t *testing.T, repo *gitcite.Repo, path, content string) object.ID {
	t.Helper()
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile(path, []byte(content)); err != nil {
		t.Fatal(err)
	}
	id, err := wt.Commit(vcs.CommitOptions{Author: testSig(len(content)), Message: "add " + path})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// closureDigest maps every object in tip's reachable closure to the SHA-256
// of its canonical encoding — the bit-identity witness for restart tests.
func closureDigest(t *testing.T, repo *gitcite.Repo, tip object.ID) map[object.ID][32]byte {
	t.Helper()
	digest := map[object.ID][32]byte{}
	err := store.WalkClosure(repo.VCS.Objects, func(id object.ID, o object.Object) error {
		digest[id] = sha256.Sum256(object.Encode(o))
		return nil
	}, tip)
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

// TestRestartRecoversPlatform is the headline restart property: build a
// platform with users, repositories, a member grant and a fork; close it;
// reopen from the same directory. Every account authenticates, every
// repository's closure is bit-identical, and membership survived.
func TestRestartRecoversPlatform(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := p.CreateUser(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}

	tips := map[string]object.ID{}
	digests := map[string]map[object.ID][32]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("proj%d", i)
		repo, err := p.CreateRepoAs(ctx, alice, name, "https://git.example/alice/"+name, "MIT")
		if err != nil {
			t.Fatal(err)
		}
		tip := commitFile(t, repo, fmt.Sprintf("/f%d.txt", i), strings.Repeat("x", i+1))
		key := repoKey("alice", name)
		tips[key] = tip
		digests[key] = closureDigest(t, repo, tip)
	}
	if err := p.AddMemberAs(ctx, alice, "alice", "proj0", "bob"); err != nil {
		t.Fatal(err)
	}
	fork, err := p.ForkRepoAs(ctx, bob, "alice", "proj1", "fork1")
	if err != nil {
		t.Fatal(err)
	}
	fkey := repoKey("bob", "fork1")
	tips[fkey] = tips[repoKey("alice", "proj1")]
	digests[fkey] = closureDigest(t, fork, tips[fkey])
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, u := range []*User{alice, bob} {
		got, err := p2.Authenticate(ctx, u.Token)
		if err != nil || got.Name != u.Name {
			t.Fatalf("token for %s did not survive restart: %v", u.Name, err)
		}
	}
	want := []string{"alice/proj0", "alice/proj1", "alice/proj2", "alice/proj3", "bob/fork1"}
	if got := p2.ListRepos(ctx); !reflect.DeepEqual(got, want) {
		t.Fatalf("repos after restart = %v, want %v", got, want)
	}
	for key, tip := range tips {
		owner, name, _ := strings.Cut(key, "/")
		repo, release, err := p2.AcquireRepo(ctx, owner, name)
		if err != nil {
			t.Fatalf("reopen %s: %v", key, err)
		}
		got, err := repo.VCS.BranchTip("main")
		if err != nil || got != tip {
			t.Fatalf("%s tip after restart = %v (%v), want %v", key, got, err, tip)
		}
		if d := closureDigest(t, repo, tip); !reflect.DeepEqual(d, digests[key]) {
			t.Fatalf("%s closure not bit-identical after restart", key)
		}
		release()
	}
	if !p2.IsMember(ctx, "bob", "alice", "proj0") {
		t.Fatal("membership grant did not survive restart")
	}
	if p2.IsMember(ctx, "bob", "alice", "proj1") {
		t.Fatal("restart invented a membership")
	}
	// The fork belongs to bob alone.
	if _, _, err := p2.AcquireForWrite(ctx, bob, "bob", "fork1"); err != nil {
		t.Fatalf("fork owner lost write access after restart: %v", err)
	}
}

// TestForkCrashRecoveryAtEveryPhase kills the fork protocol at each stage
// — intent journaled, destination created, copy complete (commit record
// never written) — then boots a fresh platform from the directory and
// checks the invariants: the half-fork is gone from disk and listing, the
// source is untouched, and the same fork can then succeed.
func TestForkCrashRecoveryAtEveryPhase(t *testing.T) {
	for _, stage := range []string{"begun", "created", "copied"} {
		t.Run(stage, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			p, err := OpenPlatform(dir)
			if err != nil {
				t.Fatal(err)
			}
			alice, err := p.CreateUser(ctx, "alice")
			if err != nil {
				t.Fatal(err)
			}
			bob, err := p.CreateUser(ctx, "bob")
			if err != nil {
				t.Fatal(err)
			}
			repo, err := p.CreateRepoAs(ctx, alice, "proj", "https://git.example/alice/proj", "MIT")
			if err != nil {
				t.Fatal(err)
			}
			tip := commitFile(t, repo, "/main.go", "package main\n")
			srcDigest := closureDigest(t, repo, tip)

			forkCrashPoint = func(s string) bool { return s == stage }
			defer func() { forkCrashPoint = nil }()
			if _, err := p.ForkRepoAs(ctx, bob, "alice", "proj", "proj"); err != errSimulatedCrash {
				t.Fatalf("crash point %q did not fire: %v", stage, err)
			}
			forkCrashPoint = nil
			// The platform is NOT closed: every acknowledged record is
			// already fsync'd, so abandoning the instance is the kill -9.

			p2, err := OpenPlatform(dir)
			if err != nil {
				t.Fatalf("boot after crash at %q: %v", stage, err)
			}
			defer p2.Close()
			if got := p2.ListRepos(ctx); !reflect.DeepEqual(got, []string{"alice/proj"}) {
				t.Fatalf("repos after crash at %q = %v, want [alice/proj]", stage, got)
			}
			if _, err := os.Stat(filepath.Join(dir, "bob", "proj")); !os.IsNotExist(err) {
				t.Fatalf("orphan fork directory survived crash at %q (stat err %v)", stage, err)
			}
			src, release, err := p2.AcquireRepo(ctx, "alice", "proj")
			if err != nil {
				t.Fatal(err)
			}
			if d := closureDigest(t, src, tip); !reflect.DeepEqual(d, srcDigest) {
				t.Fatalf("source closure damaged by crash at %q", stage)
			}
			release()
			// Recovery must leave the name free: the fork now succeeds.
			bob2, err := p2.Authenticate(ctx, bob.Token)
			if err != nil {
				t.Fatal(err)
			}
			fork, err := p2.ForkRepoAs(ctx, bob2, "alice", "proj", "proj")
			if err != nil {
				t.Fatalf("fork retry after crash at %q: %v", stage, err)
			}
			if d := closureDigest(t, fork, tip); !reflect.DeepEqual(d, srcDigest) {
				t.Fatalf("retried fork closure differs at %q", stage)
			}
		})
	}
}

// TestBootGCRemovesOrphanDirs plants directories no manifest record owns —
// the debris of a crash between mkdir and journal append — and checks boot
// removes exactly them.
func TestBootGCRemovesOrphanDirs(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateRepoAs(ctx, alice, "proj", "u", "MIT"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Orphans: a half-created repo under a live owner, and a whole orphan
	// owner tree.
	for _, d := range []string{"alice/zombie", "ghost/junk"} {
		if err := os.MkdirAll(filepath.Join(dir, d, "objects"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.ListRepos(ctx); !reflect.DeepEqual(got, []string{"alice/proj"}) {
		t.Fatalf("repos = %v, want [alice/proj]", got)
	}
	for _, d := range []string{"alice/zombie", "ghost"} {
		if _, err := os.Stat(filepath.Join(dir, d)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived boot GC (stat err %v)", d, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "alice", "proj")); err != nil {
		t.Fatalf("boot GC removed a live repository: %v", err)
	}
}

// TestFirstBootAdoptsExistingDirs covers upgrading a pre-manifest -pack
// deployment: OWNER/NAME directories already on disk are adopted as hosted
// repositories on the very first boot (and only then).
func TestFirstBootAdoptsExistingDirs(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	legacy, err := gitcite.OpenPackedFileRepo(filepath.Join(dir, "alice", "legacy"),
		gitcite.Meta{Owner: "alice", Name: "legacy", URL: "https://git.example/alice/legacy"})
	if err != nil {
		t.Fatal(err)
	}
	tip := commitFile(t, legacy, "/old.txt", "pre-manifest data\n")
	digest := closureDigest(t, legacy, tip)
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ListRepos(ctx); !reflect.DeepEqual(got, []string{"alice/legacy"}) {
		t.Fatalf("adopted repos = %v, want [alice/legacy]", got)
	}
	repo, release, err := p.AcquireRepo(ctx, "alice", "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if d := closureDigest(t, repo, tip); !reflect.DeepEqual(d, digest) {
		t.Fatal("adopted repository closure differs")
	}
	release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Second boot: adoption must not re-run (the manifest now owns truth).
	p2, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.ListRepos(ctx); !reflect.DeepEqual(got, []string{"alice/legacy"}) {
		t.Fatalf("repos after second boot = %v", got)
	}
}

// TestOpenRepoLRUBoundsHandles hammers a limited platform from many
// goroutines and checks the two LRU invariants: no request ever observes a
// closed repository, and once traffic stops the open-handle count is back
// at (or under) the cap with every repository still serving correct data.
func TestOpenRepoLRUBoundsHandles(t *testing.T) {
	ctx := context.Background()
	const limit, repos = 4, 12
	p, err := OpenPlatform(t.TempDir(), WithOpenRepoLimit(limit))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	tips := make([]object.ID, repos)
	for i := 0; i < repos; i++ {
		repo, err := p.CreateRepoAs(ctx, alice, fmt.Sprintf("r%d", i), "u", "MIT")
		if err != nil {
			t.Fatal(err)
		}
		tips[i] = commitFile(t, repo, "/data.txt", fmt.Sprintf("repo %d\n", i))
	}
	if got := p.OpenRepoCount(); got > limit {
		t.Fatalf("open repos after creates = %d, want <= %d", got, limit)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := (g*7 + i) % repos
				repo, release, err := p.AcquireRepo(ctx, "alice", fmt.Sprintf("r%d", n))
				if err != nil {
					t.Errorf("acquire r%d: %v", n, err)
					return
				}
				tip, err := repo.VCS.BranchTip("main")
				if err != nil || tip != tips[n] {
					t.Errorf("r%d tip = %v (%v), want %v", n, tip, err, tips[n])
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	if got := p.OpenRepoCount(); got > limit {
		t.Fatalf("open repos after load = %d, want <= %d", got, limit)
	}
	// Evicted repositories must reopen transparently with intact data.
	for i := 0; i < repos; i++ {
		repo, release, err := p.AcquireRepo(ctx, "alice", fmt.Sprintf("r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if tip, err := repo.VCS.BranchTip("main"); err != nil || tip != tips[i] {
			t.Fatalf("r%d after evictions: tip %v (%v), want %v", i, tip, err, tips[i])
		}
		release()
	}
}

// TestPlatformCloseRejectsFurtherMutations pins the ErrClosed contract.
func TestPlatformCloseRejectsFurtherMutations(t *testing.T) {
	ctx := context.Background()
	p, err := OpenPlatform(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	if _, err := p.CreateUser(ctx, "bob"); err != ErrClosed {
		t.Fatalf("CreateUser after Close = %v, want ErrClosed", err)
	}
	if _, err := p.CreateRepoAs(ctx, alice, "r", "u", ""); err != ErrClosed {
		t.Fatalf("CreateRepoAs after Close = %v, want ErrClosed", err)
	}
	if _, _, err := p.AcquireRepo(ctx, "alice", "r"); err != ErrClosed {
		t.Fatalf("AcquireRepo after Close = %v, want ErrClosed", err)
	}
}

// TestAutoRepackPolicy pushes commits one at a time (each push appends a
// pack) with a one-pack threshold and checks the store gets folded back to
// a single pack without losing data.
func TestAutoRepackPolicy(t *testing.T) {
	ctx := context.Background()
	p, err := OpenPlatform(t.TempDir(), WithAutoRepack(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	repo, err := p.CreateRepoAs(ctx, alice, "proj", "u", "MIT")
	if err != nil {
		t.Fatal(err)
	}
	var tip object.ID
	for i := 0; i < 6; i++ {
		tip = commitFile(t, repo, fmt.Sprintf("/f%d.txt", i), "data\n")
		p.maybeAutoRepack("alice", "proj")
	}
	// Repacks are asynchronous; wait for the dedupe flag to clear.
	hr, err := p.lookup("alice", "proj")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hr.repacking.Load() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	got, release, err := p.AcquireRepo(ctx, "alice", "proj")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ps := packStoreOf(got)
	if ps == nil {
		t.Fatal("persistent repo is not pack-backed")
	}
	st := ps.Stats()
	if st.Packs > 2 {
		t.Fatalf("auto-repack never consolidated: %d packs", st.Packs)
	}
	if cur, err := got.VCS.BranchTip("main"); err != nil || cur != tip {
		t.Fatalf("tip after auto-repack = %v (%v), want %v", cur, err, tip)
	}
}

// TestAdminAPI exercises the operator surface end to end: gating (403
// disabled, 401 wrong token), status counters, per-repo stats, manual
// repack and GC.
func TestAdminAPI(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p, err := OpenPlatform(dir, WithOpenRepoLimit(8))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	repo, err := p.CreateRepoAs(ctx, alice, "proj", "u", "MIT")
	if err != nil {
		t.Fatal(err)
	}
	commitFile(t, repo, "/a.txt", "x\n")

	admin := func(srv *Server, method, path, token string) (*http.Response, []byte) {
		t.Helper()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	// Disabled group: 403 for anonymous callers and valid user tokens
	// alike (an unknown bearer token is already a 401 at the auth layer).
	noAdmin := NewServer(p)
	if resp, _ := admin(noAdmin, "GET", "/api/v1/admin/status", ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled admin status (anon) = %d, want 403", resp.StatusCode)
	}
	if resp, _ := admin(noAdmin, "GET", "/api/v1/admin/status", alice.Token); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled admin status (user token) = %d, want 403", resp.StatusCode)
	}

	srv := NewServer(p, WithAdminToken("sekrit"))
	if resp, _ := admin(srv, "GET", "/api/v1/admin/status", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing admin token = %d, want 401", resp.StatusCode)
	}
	if resp, _ := admin(srv, "GET", "/api/v1/admin/status", alice.Token); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("user token on admin route = %d, want 401", resp.StatusCode)
	}

	resp, body := admin(srv, "GET", "/api/v1/admin/status", "sekrit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin status = %d: %s", resp.StatusCode, body)
	}
	var st PlatformStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Users != 1 || st.Repos != 1 || !st.Persistent || st.Manifest == nil || st.OpenRepoLimit != 8 {
		t.Fatalf("admin status = %+v", st)
	}

	resp, body = admin(srv, "GET", "/api/v1/admin/repos/alice/proj/stats", "sekrit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repo stats = %d: %s", resp.StatusCode, body)
	}
	var rs RepoStats
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Owner != "alice" || rs.Name != "proj" || rs.PackedObjects+rs.LooseObjects == 0 {
		t.Fatalf("repo stats = %+v", rs)
	}
	if !reflect.DeepEqual(rs.Members, []string{"alice"}) {
		t.Fatalf("repo stats members = %v", rs.Members)
	}

	if resp, body = admin(srv, "POST", "/api/v1/admin/repos/alice/proj/repack", "sekrit"); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin repack = %d: %s", resp.StatusCode, body)
	}

	// Plant an orphan, GC it through the API.
	if err := os.MkdirAll(filepath.Join(dir, "ghost", "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	resp, body = admin(srv, "POST", "/api/v1/admin/gc", "sekrit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin gc = %d: %s", resp.StatusCode, body)
	}
	var gc AdminGCResponse
	if err := json.Unmarshal(body, &gc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gc.Removed, []string{"ghost/junk"}) {
		t.Fatalf("gc removed %v, want [ghost/junk]", gc.Removed)
	}

	// Admin endpoints are not reachable with a 404 repo either.
	if resp, _ := admin(srv, "GET", "/api/v1/admin/repos/alice/nope/stats", "sekrit"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats for missing repo = %d, want 404", resp.StatusCode)
	}
}

// TestWriteAheadUserAndRepoRecords verifies the ordering contract directly:
// every acknowledged CreateUser/CreateRepoAs/AddMemberAs is on disk before
// the call returns — an un-Closed (crashed) platform loses nothing.
func TestWriteAheadUserAndRepoRecords(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := p.CreateUser(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := p.CreateUser(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	repo, err := p.CreateRepoAs(ctx, alice, "proj", "u", "MIT")
	if err != nil {
		t.Fatal(err)
	}
	tip := commitFile(t, repo, "/a.txt", "x\n")
	if err := p.AddMemberAs(ctx, alice, "alice", "proj", "bob"); err != nil {
		t.Fatal(err)
	}
	// No Close: the platform "crashes" here.
	p2, err := OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.Authenticate(ctx, alice.Token); err != nil {
		t.Fatal("alice's token lost without Close")
	}
	if !p2.IsMember(ctx, "bob", "alice", "proj") {
		t.Fatal("membership lost without Close")
	}
	got, release, err := p2.AcquireRepo(ctx, "alice", "proj")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if cur, err := got.VCS.BranchTip("main"); err != nil || cur != tip {
		t.Fatalf("commit lost without Close: %v (%v)", cur, err)
	}
	_ = bob
}
