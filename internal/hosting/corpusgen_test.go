package hosting

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

func writeFuzzSeed(t *testing.T, fuzzName, name string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateFuzzCorpus regenerates the committed seed corpus for the
// NDJSON stream fuzzer. Env-gated; see the store package's generator for
// usage.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set GEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}

	var stream bytes.Buffer
	w := NewObjectStreamWriter(&stream)
	if err := w.WriteValue(PushHeader{Branch: "main"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteObject(object.NewBlobString("seed blob")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteObject(object.NewBlobString("second")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzWireNDJSON", "header-and-blobs", stream.Bytes())
	writeFuzzSeed(t, "FuzzWireNDJSON", "bad-base64", []byte(`{"d":"!!! not base64 !!!"}`+"\n"))
	writeFuzzSeed(t, "FuzzWireNDJSON", "base64-not-object", []byte(`{"d":"aGVsbG8="}`+"\n"))
	writeFuzzSeed(t, "FuzzWireNDJSON", "truncated-json", []byte(`{"d":`))
	writeFuzzSeed(t, "FuzzWireNDJSON", "blank-lines", []byte("\n\n\n"))

	canon, err := encodeManifest(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzManifestReplay", "canonical", canon)
	writeFuzzSeed(t, "FuzzManifestReplay", "torn-tail", canon[:len(canon)-7])
	writeFuzzSeed(t, "FuzzManifestReplay", "bad-crc",
		append(append([]byte{}, canon...), "00000000 {\"op\":\"user\",\"name\":\"x\",\"token\":\"t\"}\n"...))
	unknown, err := encodeManifestLine(manifestRecord{Op: "quota", Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzManifestReplay", "unknown-op", append(append([]byte{}, canon...), unknown...))
	writeFuzzSeed(t, "FuzzManifestReplay", "header-only", []byte(manifestHeader))
	writeFuzzSeed(t, "FuzzManifestReplay", "foreign-file", []byte("not a manifest\n"))
}
