// admin.go is the operator surface of the hosted platform: a /api/v1/admin
// route group (platform status, per-repository storage stats, manual
// repack and orphan-GC triggers) gated by a dedicated admin token that is
// configured at server start and never stored in the platform manifest.
package hosting

import (
	"crypto/subtle"
	"fmt"
	"net/http"
)

// WithAdminToken enables the /api/v1/admin endpoints for callers bearing
// this token. The admin group is disabled (every request 403s) when no
// token is configured — there is no default credential.
func WithAdminToken(token string) ServerOption {
	return func(s *Server) { s.adminToken = token }
}

// registerAdminRoutes mounts the admin group. Routes exist regardless of
// configuration so their status codes are stable; requireAdmin gates them.
func (s *Server) registerAdminRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/admin/status", s.adminOnly(s.handleAdminStatus))
	mux.HandleFunc("GET /api/v1/admin/repos/{owner}/{name}/stats", s.adminOnly(s.handleAdminRepoStats))
	mux.HandleFunc("POST /api/v1/admin/repos/{owner}/{name}/repack", s.adminOnly(s.handleAdminRepack))
	mux.HandleFunc("POST /api/v1/admin/gc", s.adminOnly(s.handleAdminGC))
	mux.HandleFunc("POST /api/v1/admin/promote", s.adminOnly(s.handleAdminPromote))
}

// adminOnly wraps an admin handler with the token gate: disabled group →
// 403, missing or wrong token → 401. The comparison is constant-time.
func (s *Server) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adminToken == "" {
			writeErr(w, fmt.Errorf("%w: admin API disabled (no admin token configured)", ErrForbidden))
			return
		}
		tok := bearerToken(r)
		if subtle.ConstantTimeCompare([]byte(tok), []byte(s.adminToken)) != 1 {
			writeErr(w, fmt.Errorf("%w: admin token required", ErrUnauthorized))
			return
		}
		h(w, r)
	}
}

// AdminStatusResponse is the admin status body: the platform counters,
// plus — on a read replica — the replication progress, and — on a primary
// with followers — the fleet's acknowledged cursors.
type AdminStatusResponse struct {
	PlatformStatus
	Replica *ReplicaStatus `json:"replica,omitempty"`
	Fleet   *FleetStatus   `json:"fleet,omitempty"`
}

// handleAdminStatus reports platform-wide counters: users, repositories,
// open repository handles against their limit, the manifest journal and,
// on a replica, per-repo replication lag and the last journaled cursor;
// on a primary, the true fleet lag derived from follower polls.
func (s *Server) handleAdminStatus(w http.ResponseWriter, r *http.Request) {
	resp := AdminStatusResponse{PlatformStatus: s.platform.Status(r.Context())}
	if repl := s.replica.Load(); repl != nil && repl.status != nil {
		rs := repl.status()
		resp.Replica = &rs
	}
	if fleet := s.platform.FleetStatus(); len(fleet.Followers) > 0 {
		resp.Fleet = &fleet
	}
	writeJSON(w, http.StatusOK, resp)
}

// PromoteResponse answers a successful POST /api/v1/admin/promote with the
// fresh epoch the new primary minted — the fence that forces every
// follower of the old feed (including a returning old primary) to resync.
type PromoteResponse struct {
	Promoted bool   `json:"promoted"`
	Epoch    string `json:"epoch"`
}

// handleAdminPromote serves POST /api/v1/admin/promote: flip this caught-up
// replica into a primary. Refusals are stable wire codes — "conflict" when
// the server is already a primary or a concurrent promote won,
// "replica_lagging" when the replica has not applied through the
// primary's head. On success the replica gate drops atomically: the very
// next write request dispatches locally instead of 307ing.
func (s *Server) handleAdminPromote(w http.ResponseWriter, r *http.Request) {
	if s.replica.Load() == nil {
		writeErr(w, fmt.Errorf("%w: already a primary", ErrConflict))
		return
	}
	if s.promote == nil {
		writeErr(w, fmt.Errorf("%w: promotion not configured on this server", ErrBadRequest))
		return
	}
	epoch, err := s.promote(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	s.replica.Store(nil)
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, Epoch: epoch})
}

// handleAdminRepoStats reports one repository's membership and storage
// shape (pack count, packed and loose objects).
func (s *Server) handleAdminRepoStats(w http.ResponseWriter, r *http.Request) {
	rs, err := s.platform.RepoStats(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rs)
}

// AdminRepackResponse reports a manual repack: how many loose objects the
// fold absorbed.
type AdminRepackResponse struct {
	Folded int `json:"folded"`
}

// handleAdminRepack synchronously folds and consolidates one repository's
// object store — the manual counterpart of the push-piggybacked policy.
func (s *Server) handleAdminRepack(w http.ResponseWriter, r *http.Request) {
	folded, err := s.platform.RepackRepo(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AdminRepackResponse{Folded: folded})
}

// AdminGCResponse lists the orphan directories a manual GC removed.
type AdminGCResponse struct {
	Removed []string `json:"removed"`
}

// handleAdminGC removes orphan repository directories under the data
// directory (normally boot reconciliation's job; this is the on-demand
// trigger). A no-op on in-memory platforms.
func (s *Server) handleAdminGC(w http.ResponseWriter, r *http.Request) {
	if err := r.Context().Err(); err != nil {
		writeErr(w, err)
		return
	}
	removed, err := s.platform.GCOrphans()
	if err != nil {
		writeErr(w, err)
		return
	}
	if removed == nil {
		removed = []string{}
	}
	writeJSON(w, http.StatusOK, AdminGCResponse{Removed: removed})
}
