// Tests for the replication surface on the primary side — the events feed
// (ordering, cursors, long-poll wake-up, reset signalling), the snapshot
// bootstrap, the admin gating of both, and the read-only replica serving
// mode (307 + replica_read_only on every write route).
package hosting_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/hosting"
)

// eventsFixture is a platform with an admin token, one user, one pushed
// repository — the smallest state that exercises every event type.
type eventsFixture struct {
	platform *hosting.Platform
	server   *httptest.Server
	admin    *extension.Client
	ownerTok string
}

func newEventsFixture(t *testing.T) *eventsFixture {
	t.Helper()
	p := hosting.NewPlatform()
	srv := hosting.NewServer(p, hosting.WithAdminToken("adm-tok"))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("r1", "https://x/r1", "MIT"); err != nil {
		t.Fatal(err)
	}
	local, _ := buildNFileRepo(t, 20)
	if _, err := owner.Sync(local, "alice", "r1", "main"); err != nil {
		t.Fatal(err)
	}
	return &eventsFixture{platform: p, server: ts, admin: anon.WithToken("adm-tok"), ownerTok: tok}
}

func TestEventsFeedOrderAndCursor(t *testing.T) {
	fx := newEventsFixture(t)
	resp, err := fx.admin.Events(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Reset {
		t.Fatal("cursor 0 came back Reset")
	}
	if resp.Epoch == "" {
		t.Error("empty epoch")
	}
	var types []string
	last := int64(0)
	for _, ev := range resp.Events {
		if ev.Seq <= last {
			t.Errorf("seq %d after %d: not strictly increasing", ev.Seq, last)
		}
		last = ev.Seq
		types = append(types, ev.Type)
	}
	joined := strings.Join(types, ",")
	// user created, repo created, branch pushed — in mutation order.
	if want := "user,repo,ref"; joined != want {
		t.Errorf("event types = %q, want %q", joined, want)
	}
	if resp.Head != last {
		t.Errorf("head %d, last seq %d", resp.Head, last)
	}
	u := resp.Events[0]
	if u.Name != "alice" || u.Token != fx.ownerTok {
		t.Errorf("user event = %+v, want alice with the issued token", u)
	}
	ref := resp.Events[2]
	if ref.Owner != "alice" || ref.Repo != "r1" || ref.Branch != "main" || len(ref.Tip) != 64 {
		t.Errorf("ref event = %+v", ref)
	}

	// Polling from the head is empty, not Reset.
	caught, err := fx.admin.Events(resp.Head, 0)
	if err != nil {
		t.Fatal(err)
	}
	if caught.Reset || len(caught.Events) != 0 {
		t.Errorf("at-head poll = %+v", caught)
	}
	// A cursor past the head (journal reset / foreign history) is Reset —
	// the full-resync signal, never an error.
	ahead, err := fx.admin.Events(resp.Head+100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ahead.Reset {
		t.Error("cursor past head did not signal Reset")
	}
}

func TestEventsLongPollWakesOnPublish(t *testing.T) {
	fx := newEventsFixture(t)
	head, err := fx.admin.Events(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp hosting.EventsResponse
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := fx.admin.Events(head.Head, 30)
		got <- result{resp, err}
	}()
	// Publish after the poller has (very likely) parked.
	time.Sleep(50 * time.Millisecond)
	anon := extension.New(fx.server.URL, fx.ownerTok)
	local, _ := buildNFileRepo(t, 5)
	if err := anon.CreateRepo("r2", "https://x/r2", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Sync(local, "alice", "r2", "main"); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.resp.Events) == 0 {
			t.Error("long poll returned empty after publish")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll did not wake on publish")
	}
}

func TestEventsAndSnapshotAreAdminGated(t *testing.T) {
	fx := newEventsFixture(t)
	for _, path := range []string{"/api/v1/events", "/api/v1/replica/snapshot"} {
		resp, err := http.Get(fx.server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s without admin token = %d, want 401", path, resp.StatusCode)
		}
	}
	// A platform with no admin token configured disables the group entirely.
	bare := httptest.NewServer(hosting.NewServer(hosting.NewPlatform()))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/api/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("events with admin group disabled = %d, want 403", resp.StatusCode)
	}
}

func TestSnapshotCoversUsersReposAndTips(t *testing.T) {
	fx := newEventsFixture(t)
	snap, err := fx.admin.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch == "" || snap.Cursor <= 0 {
		t.Errorf("snapshot epoch=%q cursor=%d", snap.Epoch, snap.Cursor)
	}
	foundUser := false
	for _, u := range snap.Users {
		if u.Name == "alice" && u.Token == fx.ownerTok {
			foundUser = true
		}
	}
	if !foundUser {
		t.Error("snapshot missing user alice (with token)")
	}
	if len(snap.Repos) != 1 {
		t.Fatalf("snapshot has %d repos, want 1", len(snap.Repos))
	}
	sr := snap.Repos[0]
	if sr.Owner != "alice" || sr.Name != "r1" || sr.URL != "https://x/r1" || sr.License != "MIT" {
		t.Errorf("snapshot repo = %+v", sr)
	}
	if len(sr.Members) == 0 {
		t.Error("snapshot repo has no members (owner should be one)")
	}
	tip, ok := sr.Tips["main"]
	if !ok || len(tip) != 64 {
		t.Errorf("snapshot tips = %v, want main → full commit hex", sr.Tips)
	}
}

func TestReplicaModeRedirectsWrites(t *testing.T) {
	// Populate a platform normally, then serve the same platform read-only.
	fx := newFixture(t)
	replicaSrv := httptest.NewServer(hosting.NewServer(fx.platform,
		hosting.WithReplicaMode("http://primary.example:8080/", nil)))
	defer replicaSrv.Close()

	writes := []struct{ method, path string }{
		{"POST", "/api/v1/users"},
		{"POST", "/api/v1/repos"},
		{"POST", "/api/v1/repos/leshang/P1/members"},
		{"POST", "/api/v1/repos/leshang/P1/cite"},
		{"PUT", "/api/v1/repos/leshang/P1/cite"},
		{"DELETE", "/api/v1/repos/leshang/P1/cite"},
		{"POST", "/api/v1/repos/leshang/P1/fork"},
		{"POST", "/api/v1/repos/leshang/P1/push"},
		{"POST", "/api/repos/leshang/P1/push"}, // legacy routes redirect too
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, wr := range writes {
		req, err := http.NewRequest(wr.method, replicaSrv.URL+wr.path+"?q=1", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body hosting.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Errorf("%s %s = %d, want 307", wr.method, wr.path, resp.StatusCode)
			continue
		}
		if err != nil || body.Code != hosting.CodeReplicaReadOnly {
			t.Errorf("%s %s code = %q (%v), want %s", wr.method, wr.path, body.Code, err, hosting.CodeReplicaReadOnly)
		}
		want := "http://primary.example:8080" + wr.path + "?q=1"
		if loc := resp.Header.Get("Location"); loc != want {
			t.Errorf("%s %s Location = %q, want %q", wr.method, wr.path, loc, want)
		}
	}

	// The read surface still answers locally.
	anon := extension.New(replicaSrv.URL, "")
	if _, _, err := anon.GenCite("leshang", "P1", "main", "/src/main.py"); err != nil {
		t.Errorf("GenCite on replica: %v", err)
	}
	if _, err := anon.Tree("leshang", "P1", "main"); err != nil {
		t.Errorf("Tree on replica: %v", err)
	}
	if _, err := anon.Clone("leshang", "P1", "main"); err != nil {
		t.Errorf("Clone (negotiate+pull) on replica: %v", err)
	}
}

func TestAdminStatusReportsReplica(t *testing.T) {
	p := hosting.NewPlatform()
	statusFn := func() hosting.ReplicaStatus {
		return hosting.ReplicaStatus{
			Primary: "http://primary.example", Epoch: "abc", Cursor: 41, Head: 44, Lag: 3,
			Repos: map[string]hosting.ReplicaRepoStatus{
				"alice/r1": {AppliedSeq: 41, PendingSeq: 44, Branch: "main"},
			},
		}
	}
	srv := httptest.NewServer(hosting.NewServer(p,
		hosting.WithAdminToken("adm"),
		hosting.WithReplicaMode("http://primary.example", statusFn)))
	defer srv.Close()
	req, err := http.NewRequest("GET", srv.URL+"/api/v1/admin/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer adm")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var status hosting.AdminStatusResponse
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("admin status: %d, %v", resp.StatusCode, err)
	}
	if status.Replica == nil {
		t.Fatal("admin status missing replica section")
	}
	if status.Replica.Primary != "http://primary.example" || status.Replica.Lag != 3 {
		t.Errorf("replica status = %+v", status.Replica)
	}
	rs, ok := status.Replica.Repos["alice/r1"]
	if !ok || rs.PendingSeq-rs.AppliedSeq != 3 {
		t.Errorf("per-repo replica status = %+v", status.Replica.Repos)
	}

	// A primary (no replica mode) omits the section.
	plain := httptest.NewServer(hosting.NewServer(hosting.NewPlatform(), hosting.WithAdminToken("adm")))
	defer plain.Close()
	req, _ = http.NewRequest("GET", plain.URL+"/api/v1/admin/status", nil)
	req.Header.Set("Authorization", "Bearer adm")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&raw)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := raw["replica"]; present {
		t.Error("primary admin status carries a replica section")
	}
}
