package hosting

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/format"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/report"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// Server exposes a Platform over HTTP — the REST API the paper's browser
// extension uses ("The extension communicates with the GitHub servers using
// its REST API").
type Server struct {
	platform *Platform
	mux      *http.ServeMux
	// Now supplies commit timestamps for server-side citation edits;
	// overridable for deterministic tests and experiments.
	Now func() time.Time
}

// NewServer wraps a platform with the REST API.
func NewServer(p *Platform) *Server {
	s := &Server{platform: p, Now: time.Now}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/users", s.handleCreateUser)
	mux.HandleFunc("POST /api/repos", s.handleCreateRepo)
	mux.HandleFunc("GET /api/repos/{owner}/{name}", s.handleGetRepo)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/members", s.handleAddMember)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/tree/{rev}", s.handleTree)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/cite/{rev}", s.handleGenCite)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/chain/{rev}", s.handleChain)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/citefile/{rev}", s.handleCiteFile)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/credit/{rev}", s.handleCredit)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/cite", s.handleEditCite)
	mux.HandleFunc("PUT /api/repos/{owner}/{name}/cite", s.handleEditCite)
	mux.HandleFunc("DELETE /api/repos/{owner}/{name}/cite", s.handleEditCite)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/fork", s.handleFork)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/push", s.handlePush)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/pull/{rev}", s.handlePull)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- wire types ----

// UserRequest / UserResponse: account creation.
type UserRequest struct {
	Name string `json:"name"`
}

// UserResponse returns the new account's token.
type UserResponse struct {
	Name  string `json:"name"`
	Token string `json:"token"`
}

// RepoRequest creates a repository for the authenticated user.
type RepoRequest struct {
	Name    string `json:"name"`
	URL     string `json:"url,omitempty"`
	License string `json:"license,omitempty"`
}

// RepoResponse describes a repository.
type RepoResponse struct {
	Owner    string   `json:"owner"`
	Name     string   `json:"name"`
	URL      string   `json:"url,omitempty"`
	License  string   `json:"license,omitempty"`
	Branches []string `json:"branches"`
}

// MemberRequest grants write access.
type MemberRequest struct {
	Member string `json:"member"`
}

// TreeEntryResponse is one row of a tree listing.
type TreeEntryResponse struct {
	Path  string `json:"path"`
	IsDir bool   `json:"isDir"`
	Cited bool   `json:"cited"` // has an explicit citation (solid blue circle)
}

// CiteResponse is a generated citation.
type CiteResponse struct {
	Path     string          `json:"path"`
	From     string          `json:"from"` // active-domain path that supplied it
	Citation json.RawMessage `json:"citation"`
	Rendered string          `json:"rendered,omitempty"`
}

// ChainResponse is the whole-path alternative semantics.
type ChainResponse struct {
	Path  string         `json:"path"`
	Chain []CiteResponse `json:"chain"`
}

// EditCiteRequest adds/modifies/deletes a citation entry on a branch; the
// platform commits the updated citation.cite server-side.
type EditCiteRequest struct {
	Branch   string          `json:"branch"`
	Path     string          `json:"path"`
	Citation json.RawMessage `json:"citation,omitempty"` // absent for DELETE
	Message  string          `json:"message,omitempty"`
}

// EditCiteResponse reports the commit recording the edit.
type EditCiteResponse struct {
	Commit string `json:"commit"`
}

// ForkRequest forks a repository under the authenticated user.
type ForkRequest struct {
	NewName string `json:"newName,omitempty"`
}

// WireObject is one canonical object encoding in a push/pull payload.
type WireObject struct {
	Data string `json:"data"` // base64 of the canonical encoding
}

// PushRequest uploads objects and advances a branch (fast-forward only).
type PushRequest struct {
	Branch  string       `json:"branch"`
	Tip     string       `json:"tip"` // full hex commit ID
	Objects []WireObject `json:"objects"`
}

// PushResponse reports how many objects the server stored.
type PushResponse struct {
	Stored int    `json:"stored"`
	Tip    string `json:"tip"`
}

// PullResponse downloads a branch tip and its reachable objects.
type PullResponse struct {
	Tip     string       `json:"tip"`
	Objects []WireObject `json:"objects"`
}

// ErrorResponse is the JSON error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnauthorized):
		status = http.StatusUnauthorized
	case errors.Is(err, ErrForbidden):
		status = http.StatusForbidden
	case errors.Is(err, ErrNotFound), errors.Is(err, vcs.ErrNoCommits), errors.Is(err, refs.ErrNotFound), errors.Is(err, core.ErrNoEntry):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict), errors.Is(err, core.ErrEntryExists):
		status = http.StatusConflict
	case errors.Is(err, vcs.ErrBadPath), errors.Is(err, core.ErrPathNotInTree),
		errors.Is(err, core.ErrEmptyCitation), errors.Is(err, core.ErrIncompleteCitation),
		errors.Is(err, core.ErrRootRequired), errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func token(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if t, ok := strings.CutPrefix(h, "Bearer "); ok {
		return t
	}
	return ""
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %v", ErrBadRequest, err)
	}
	return nil
}

// resolveRev maps a branch name or full commit hex to a commit ID.
func resolveRev(repo *gitcite.Repo, rev string) (object.ID, error) {
	if id, err := object.ParseID(rev); err == nil {
		if _, err := repo.VCS.Commit(id); err != nil {
			return object.ZeroID, fmt.Errorf("%w: commit %s", ErrNotFound, rev)
		}
		return id, nil
	}
	id, err := repo.VCS.BranchTip(rev)
	if err != nil {
		return object.ZeroID, fmt.Errorf("%w: branch %q", ErrNotFound, rev)
	}
	return id, nil
}

// ---- handlers ----

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req UserRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	u, err := s.platform.CreateUser(req.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, UserResponse{Name: u.Name, Token: u.Token})
}

func (s *Server) handleCreateRepo(w http.ResponseWriter, r *http.Request) {
	var req RepoRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	repo, err := s.platform.CreateRepo(token(r), req.Name, req.URL, req.License)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, RepoResponse{
		Owner: repo.Meta.Owner, Name: repo.Meta.Name, URL: repo.Meta.URL, License: repo.Meta.License,
		Branches: []string{},
	})
}

func (s *Server) handleGetRepo(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	branches, err := repo.VCS.Branches()
	if err != nil {
		writeErr(w, err)
		return
	}
	if branches == nil {
		branches = []string{}
	}
	writeJSON(w, http.StatusOK, RepoResponse{
		Owner: repo.Meta.Owner, Name: repo.Meta.Name, URL: repo.Meta.URL,
		License: repo.Meta.License, Branches: branches,
	})
}

func (s *Server) handleAddMember(w http.ResponseWriter, r *http.Request) {
	var req MemberRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.platform.AddMember(token(r), r.PathValue("owner"), r.PathValue("name"), req.Member); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	treeID, err := repo.VCS.TreeOf(commit)
	if err != nil {
		writeErr(w, err)
		return
	}
	fn, err := repo.ResolvedFunctionAt(commit)
	if err != nil && !errors.Is(err, gitcite.ErrNotCitationEnabled) {
		writeErr(w, err)
		return
	}
	var out []TreeEntryResponse
	err = vcs.WalkTree(repo.VCS.Objects, treeID, func(p string, e object.TreeEntry) error {
		if p == citefile.Path {
			return nil
		}
		cited := fn != nil && fn.Has(p)
		out = append(out, TreeEntryResponse{Path: p, IsDir: e.IsDir(), Cited: cited})
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if out == nil {
		out = []TreeEntryResponse{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGenCite(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "/"
	}
	cite, from, err := repo.Generate(commit, path)
	if err != nil {
		writeErr(w, err)
		return
	}
	raw, err := citefile.EncodeEntry(cite)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := CiteResponse{Path: path, From: from, Citation: raw}
	if name := r.URL.Query().Get("format"); name != "" {
		f, err := format.Parse(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		rendered, err := format.Render(cite, f)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp.Rendered = rendered
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleChain(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "/"
	}
	chain, err := repo.GenerateChain(commit, path)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := ChainResponse{Path: path}
	for _, pc := range chain {
		raw, err := citefile.EncodeEntry(pc.Citation)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp.Chain = append(resp.Chain, CiteResponse{Path: pc.Path, From: pc.Path, Citation: raw})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCiteFile(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	data, err := repo.CiteFileBytes(commit)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: citation.cite", ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// CreditResponse is the wire form of a credit report.
type CreditResponse struct {
	Commit        string         `json:"commit"`
	TotalFiles    int            `json:"totalFiles"`
	ExternalFiles int            `json:"externalFiles"`
	Authors       []CreditAuthor `json:"authors"`
	Entries       []CreditEntry  `json:"entries"`
}

// CreditAuthor is one per-author row.
type CreditAuthor struct {
	Author  string `json:"author"`
	Files   int    `json:"files"`
	Entries int    `json:"entries"`
}

// CreditEntry is one active-domain entry with its exclusive coverage.
type CreditEntry struct {
	Path     string `json:"path"`
	Files    int    `json:"files"`
	External bool   `json:"external"`
}

// handleCredit serves the credit report for a revision (public read, like
// citation generation).
func (s *Server) handleCredit(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	rep, err := report.Build(repo, commit)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := CreditResponse{
		Commit:        rep.Commit.String(),
		TotalFiles:    rep.TotalFiles,
		ExternalFiles: rep.ExternalFiles,
	}
	for _, a := range rep.Authors {
		resp.Authors = append(resp.Authors, CreditAuthor{Author: a.Author, Files: a.Files, Entries: a.Entries})
	}
	for _, e := range rep.Entries {
		resp.Entries = append(resp.Entries, CreditEntry{Path: e.Path, Files: e.Files, External: e.External})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEditCite implements the member-only Add/Modify/Delete buttons of the
// extension popup: the platform applies the operation and commits the
// updated citation.cite to the branch.
func (s *Server) handleEditCite(w http.ResponseWriter, r *http.Request) {
	var req EditCiteRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	owner, name := r.PathValue("owner"), r.PathValue("name")
	repo, user, err := s.platform.AuthorizeWrite(token(r), owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	unlock, err := s.platform.LockForEdit(owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer unlock()
	if req.Branch == "" {
		req.Branch = "main"
	}
	wt, err := repo.Checkout(req.Branch)
	if err != nil {
		writeErr(w, err)
		return
	}

	var op string
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		var cite core.Citation
		if len(req.Citation) == 0 {
			writeErr(w, fmt.Errorf("%w: missing citation", ErrBadRequest))
			return
		}
		cite, err = citefile.DecodeEntry(req.Citation)
		if err != nil {
			writeErr(w, err)
			return
		}
		if r.Method == http.MethodPost {
			op = "AddCite"
			err = wt.AddCite(req.Path, cite)
		} else {
			op = "ModifyCite"
			err = wt.ModifyCite(req.Path, cite)
		}
	case http.MethodDelete:
		op = "DelCite"
		err = wt.DelCite(req.Path)
	}
	if err != nil {
		writeErr(w, err)
		return
	}

	msg := req.Message
	if msg == "" {
		msg = fmt.Sprintf("%s %s (via GitCite)", op, req.Path)
	}
	commit, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(user.Name, user.Name+"@users.git.example", s.Now()),
		Message: msg,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EditCiteResponse{Commit: commit.String()})
}

func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	var req ForkRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	forked, err := s.platform.ForkRepo(token(r), r.PathValue("owner"), r.PathValue("name"), req.NewName)
	if err != nil {
		writeErr(w, err)
		return
	}
	branches, err := forked.VCS.Branches()
	if err != nil {
		writeErr(w, err)
		return
	}
	if branches == nil {
		branches = []string{}
	}
	writeJSON(w, http.StatusCreated, RepoResponse{
		Owner: forked.Meta.Owner, Name: forked.Meta.Name, URL: forked.Meta.URL,
		License: forked.Meta.License, Branches: branches,
	})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var req PushRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	repo, _, err := s.platform.AuthorizeWrite(token(r), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	tip, err := object.ParseID(req.Tip)
	if err != nil {
		writeErr(w, fmt.Errorf("hosting: bad tip: %w", err))
		return
	}
	// Decode the whole payload first, then store it as one batch: the
	// store-side locks are taken once per shard/fanout dir instead of once
	// per pushed object.
	objs := make([]object.Object, 0, len(req.Objects))
	for _, wo := range req.Objects {
		enc, err := base64.StdEncoding.DecodeString(wo.Data)
		if err != nil {
			writeErr(w, fmt.Errorf("hosting: bad object payload: %w", err))
			return
		}
		o, err := object.Decode(enc)
		if err != nil {
			writeErr(w, fmt.Errorf("hosting: bad object: %w", err))
			return
		}
		objs = append(objs, o)
	}
	if _, err := store.PutMany(repo.VCS.Objects, objs); err != nil {
		writeErr(w, err)
		return
	}
	stored := len(objs)
	if _, err := repo.VCS.Commit(tip); err != nil {
		writeErr(w, fmt.Errorf("hosting: push tip %s not among uploaded objects: %w", tip.Short(), err))
		return
	}
	// Fast-forward check.
	ref := refs.BranchRef(req.Branch)
	if cur, err := repo.VCS.Refs.Get(ref); err == nil {
		ok, err := repo.VCS.IsAncestor(cur, tip)
		if err != nil {
			writeErr(w, err)
			return
		}
		if !ok {
			writeErr(w, fmt.Errorf("%w: non-fast-forward push to %s", ErrConflict, req.Branch))
			return
		}
	}
	if err := repo.VCS.Refs.Set(ref, tip); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PushResponse{Stored: stored, Tip: tip.String()})
}

func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	repo, err := s.platform.Repo(r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	commit, err := resolveRev(repo, r.PathValue("rev"))
	if err != nil {
		writeErr(w, err)
		return
	}
	// Serialise the reachable closure straight out of the live store —
	// objects are immutable and the store is concurrency-safe, so no
	// platform-level lock is held (or needed) across the transfer, no
	// scratch copy of the closure is staged, and each object is fetched
	// exactly once.
	resp := PullResponse{Tip: commit.String()}
	err = store.WalkClosure(repo.VCS.Objects, func(_ object.ID, o object.Object) error {
		resp.Objects = append(resp.Objects, WireObject{Data: base64.StdEncoding.EncodeToString(object.Encode(o))})
		return nil
	}, commit)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
