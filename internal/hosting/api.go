package hosting

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/format"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/report"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// Server exposes a Platform over HTTP — the REST API the paper's browser
// extension uses ("The extension communicates with the GitHub servers using
// its REST API"). The surface is versioned under /api/v1; the unversioned
// /api routes are deprecated aliases for pre-v1 clients. Requests flow
// through the middleware chain (logging → CORS → rate limit → auth) before
// reaching the router.
type Server struct {
	platform *Platform
	mux      *http.ServeMux
	handler  http.Handler
	// Now supplies commit timestamps for server-side citation edits;
	// overridable for deterministic tests and experiments.
	Now func() time.Time

	corsOrigin string
	limiter    *rateLimiter
	logger     interface{ Printf(string, ...any) }
	adminToken string

	// Replica serving mode (readonly.go): a non-nil replica pointer makes
	// every write route answer 307 → primary and stamps replica headers on
	// responses. It is atomic because promotion flips it to nil while
	// requests are in flight — each request loads it exactly once.
	replica atomic.Pointer[replicaState]
	// promote, when set (WithPromotion), backs POST /api/v1/admin/promote.
	promote PromoteFunc
	// readyMaxLag is the replication lag ceiling for GET /readyz.
	readyMaxLag int64
}

// NewServer wraps a platform with the REST API. Options configure the
// middleware chain (CORS origin, rate limiting, request logging).
func NewServer(p *Platform, opts ...ServerOption) *Server {
	s := &Server{platform: p, Now: time.Now, corsOrigin: "*"}
	for _, o := range opts {
		o(s)
	}
	mux := http.NewServeMux()
	// ---- v1 ----
	// Write routes go through s.mutating: on a replica (WithReplicaMode)
	// they answer 307 → primary instead of dispatching. Negotiate and
	// objects are POST but read-only — they stay served locally.
	mux.HandleFunc("POST /api/v1/users", s.mutating(s.handleCreateUser))
	mux.HandleFunc("POST /api/v1/repos", s.mutating(s.handleCreateRepo))
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}", s.handleGetRepo)
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/members", s.mutating(s.handleAddMember))
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/tree/{rev}", s.handleTreeV1)
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/cite/{rev}", s.handleGenCite)
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/chain/{rev}", s.handleChain)
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/citefile/{rev}", s.handleCiteFile)
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/credit/{rev}", s.handleCredit)
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("PUT /api/v1/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("DELETE /api/v1/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/fork", s.mutating(s.handleFork))
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/negotiate", s.handleNegotiate)
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/objects", s.handleFetchObjects)
	mux.HandleFunc("POST /api/v1/repos/{owner}/{name}/push", s.mutating(s.handlePushV1))
	mux.HandleFunc("GET /api/v1/repos/{owner}/{name}/pull/{rev}", s.handlePullV1)
	// ---- replication feed (admin-token gated: user tokens travel) ----
	mux.HandleFunc("GET /api/v1/events", s.adminOnly(s.handleEvents))
	mux.HandleFunc("GET /api/v1/replica/snapshot", s.adminOnly(s.handleSnapshot))
	// ---- admin (token-gated; see admin.go) ----
	s.registerAdminRoutes(mux)
	// ---- health probes (no token; see health.go) ----
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// ---- deprecated unversioned aliases (pre-v1 wire protocol) ----
	mux.HandleFunc("POST /api/users", s.mutating(s.handleCreateUser))
	mux.HandleFunc("POST /api/repos", s.mutating(s.handleCreateRepo))
	mux.HandleFunc("GET /api/repos/{owner}/{name}", s.handleGetRepo)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/members", s.mutating(s.handleAddMember))
	mux.HandleFunc("GET /api/repos/{owner}/{name}/tree/{rev}", s.handleTreeLegacy)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/cite/{rev}", s.handleGenCite)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/chain/{rev}", s.handleChain)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/citefile/{rev}", s.handleCiteFile)
	mux.HandleFunc("GET /api/repos/{owner}/{name}/credit/{rev}", s.handleCredit)
	mux.HandleFunc("POST /api/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("PUT /api/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("DELETE /api/repos/{owner}/{name}/cite", s.mutating(s.handleEditCite))
	mux.HandleFunc("POST /api/repos/{owner}/{name}/fork", s.mutating(s.handleFork))
	mux.HandleFunc("POST /api/repos/{owner}/{name}/push", s.mutating(s.handlePushLegacy))
	mux.HandleFunc("GET /api/repos/{owner}/{name}/pull/{rev}", s.handlePullLegacy)
	s.mux = mux
	var h http.Handler = mux
	h = s.withReplicaHeaders(h)
	h = s.withAuth(h)
	h = s.withRateLimit(h)
	h = s.withCORS(h)
	h = s.withLogging(h)
	s.handler = h
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// ---- wire types ----

// UserRequest / UserResponse: account creation.
type UserRequest struct {
	Name string `json:"name"`
}

// UserResponse returns the new account's token.
type UserResponse struct {
	Name  string `json:"name"`
	Token string `json:"token"`
}

// RepoRequest creates a repository for the authenticated user.
type RepoRequest struct {
	Name    string `json:"name"`
	URL     string `json:"url,omitempty"`
	License string `json:"license,omitempty"`
}

// RepoResponse describes a repository. Tips maps each branch to its current
// commit ID — the have-set seed for negotiated pushes.
type RepoResponse struct {
	Owner    string            `json:"owner"`
	Name     string            `json:"name"`
	URL      string            `json:"url,omitempty"`
	License  string            `json:"license,omitempty"`
	Branches []string          `json:"branches"`
	Tips     map[string]string `json:"tips,omitempty"`
}

// MemberRequest grants write access.
type MemberRequest struct {
	Member string `json:"member"`
}

// TreeEntryResponse is one row of a tree listing.
type TreeEntryResponse struct {
	Path  string `json:"path"`
	IsDir bool   `json:"isDir"`
	Cited bool   `json:"cited"` // has an explicit citation (solid blue circle)
}

// TreePage is one page of a v1 tree listing. NextCursor is empty on the
// last page; otherwise pass it back verbatim to continue. Cursors are
// stable because the listed tree is addressed by an immutable commit.
type TreePage struct {
	Entries    []TreeEntryResponse `json:"entries"`
	NextCursor string              `json:"nextCursor,omitempty"`
}

// CiteResponse is a generated citation.
type CiteResponse struct {
	Path     string          `json:"path"`
	From     string          `json:"from"` // active-domain path that supplied it
	Citation json.RawMessage `json:"citation"`
	Rendered string          `json:"rendered,omitempty"`
}

// ChainResponse is the whole-path alternative semantics.
type ChainResponse struct {
	Path  string         `json:"path"`
	Chain []CiteResponse `json:"chain"`
}

// EditCiteRequest adds/modifies/deletes a citation entry on a branch; the
// platform commits the updated citation.cite server-side.
type EditCiteRequest struct {
	Branch   string          `json:"branch"`
	Path     string          `json:"path"`
	Citation json.RawMessage `json:"citation,omitempty"` // absent for DELETE
	Message  string          `json:"message,omitempty"`
}

// EditCiteResponse reports the commit recording the edit.
type EditCiteResponse struct {
	Commit string `json:"commit"`
}

// ForkRequest forks a repository under the authenticated user.
type ForkRequest struct {
	NewName string `json:"newName,omitempty"`
}

// WireObject is one canonical object encoding in a deprecated push/pull
// payload (v1 streams objectLine values instead).
type WireObject struct {
	Data string `json:"data"` // base64 of the canonical encoding
}

// PushRequest is the deprecated whole-closure upload body.
type PushRequest struct {
	Branch  string       `json:"branch"`
	Tip     string       `json:"tip"` // full hex commit ID
	Objects []WireObject `json:"objects"`
}

// PushResponse reports how many objects the server stored. Seq and Epoch
// locate the acknowledging ref event on the replication feed, so a
// failover-aware client can hold reads to the primary until a replica's
// acknowledged cursor passes Seq (read-your-writes).
type PushResponse struct {
	Stored int    `json:"stored"`
	Tip    string `json:"tip"`
	Seq    int64  `json:"seq,omitempty"`
	Epoch  string `json:"epoch,omitempty"`
}

// PullResponse is the deprecated whole-closure download body.
type PullResponse struct {
	Tip     string       `json:"tip"`
	Objects []WireObject `json:"objects"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus maps an error to its HTTP status and stable wire code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrUnauthorized):
		return http.StatusUnauthorized, CodeUnauthorized
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden, CodeForbidden
	case errors.Is(err, ErrAmbiguousRev):
		return http.StatusConflict, CodeAmbiguousRef
	case errors.Is(err, ErrNotFound), errors.Is(err, vcs.ErrNoCommits), errors.Is(err, refs.ErrNotFound),
		errors.Is(err, core.ErrNoEntry), errors.Is(err, store.ErrNotFound),
		errors.Is(err, gitcite.ErrNotCitationEnabled):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrNotCaughtUp):
		return http.StatusConflict, CodeNotCaughtUp
	case errors.Is(err, ErrConflict), errors.Is(err, core.ErrEntryExists):
		return http.StatusConflict, CodeConflict
	case errors.Is(err, vcs.ErrBadPath), errors.Is(err, core.ErrPathNotInTree),
		errors.Is(err, core.ErrEmptyCitation), errors.Is(err, core.ErrIncompleteCitation),
		errors.Is(err, core.ErrRootRequired), errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	}
	return http.StatusInternalServerError, CodeInternal
}

func writeErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %v", ErrBadRequest, err)
	}
	return nil
}

// isHexPrefix reports whether rev could abbreviate a commit ID.
func isHexPrefix(rev string) bool {
	if len(rev) < 4 || len(rev) >= object.IDSize*2 {
		return false
	}
	for _, c := range rev {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// resolveRev maps a branch name, full commit hex, or unambiguous commit-ID
// prefix (≥ 4 hex chars) to a commit ID. Branches shadow prefixes; an
// ambiguous prefix reports ErrAmbiguousRev. Prefixes resolve through the
// store's ordered ID index (vcs.ResolveCommitPrefix) — O(log n) per
// lookup, never a full IDs() enumeration.
func resolveRev(repo *gitcite.Repo, rev string) (object.ID, error) {
	if id, err := object.ParseID(rev); err == nil {
		if _, err := repo.VCS.Commit(id); err != nil {
			return object.ZeroID, fmt.Errorf("%w: commit %s", ErrNotFound, rev)
		}
		return id, nil
	}
	if id, err := repo.VCS.BranchTip(rev); err == nil {
		return id, nil
	}
	if isHexPrefix(rev) {
		id, err := repo.VCS.ResolveCommitPrefix(rev)
		if err == nil {
			return id, nil
		}
		if errors.Is(err, vcs.ErrAmbiguousPrefix) {
			return object.ZeroID, fmt.Errorf("%w: %v", ErrAmbiguousRev, err)
		}
		if !errors.Is(err, store.ErrNotFound) {
			return object.ZeroID, err
		}
	}
	return object.ZeroID, fmt.Errorf("%w: revision %q", ErrNotFound, rev)
}

// ---- immutable-read caching ----

func etagFor(id object.ID) string { return `"` + id.String() + `"` }

// etagMatch implements If-None-Match against a strong ETag (weak
// comparison: a W/ prefix on the candidate still matches).
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// revAddressesCommit reports whether the request named the commit by (a
// prefix of) its content hash — an immutable address, cacheable forever —
// rather than by a movable branch name.
func revAddressesCommit(rev string, commit object.ID) bool {
	return len(rev) >= 4 && strings.HasPrefix(commit.String(), strings.ToLower(rev))
}

// beginCommitRead resolves {owner}/{name}/{rev}, stamps the caching headers
// (ETag = the commit's content hash; immutable Cache-Control when the rev
// itself was commit-addressed) and short-circuits If-None-Match
// revalidations with a 304 before any citation-resolution work happens.
// The repository comes back pinned open: the handler must defer release so
// LRU eviction cannot close it mid-response. When it returns ok=false the
// response has already been written and there is nothing to release.
func (s *Server) beginCommitRead(w http.ResponseWriter, r *http.Request) (*gitcite.Repo, object.ID, func(), bool) {
	repo, release, err := s.platform.AcquireRepo(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return nil, object.ZeroID, nil, false
	}
	rev := r.PathValue("rev")
	commit, err := resolveRev(repo, rev)
	if err != nil {
		release()
		writeErr(w, err)
		return nil, object.ZeroID, nil, false
	}
	et := etagFor(commit)
	h := w.Header()
	h.Set("ETag", et)
	if revAddressesCommit(rev, commit) {
		// Commit IDs are content hashes: the representation can never
		// change, so clients and shared caches may keep it forever.
		h.Set("Cache-Control", "public, max-age=31536000, immutable")
	} else {
		// Branch-addressed: revalidate each time (the 304 below is cheap).
		h.Set("Cache-Control", "no-cache")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, et) {
		release()
		w.WriteHeader(http.StatusNotModified)
		return nil, object.ZeroID, nil, false
	}
	return repo, commit, release, true
}

// ---- account / repository handlers ----

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req UserRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	u, err := s.platform.CreateUser(r.Context(), req.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, UserResponse{Name: u.Name, Token: u.Token})
}

func (s *Server) handleCreateRepo(w http.ResponseWriter, r *http.Request) {
	var req RepoRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	repo, err := s.platform.CreateRepoAs(r.Context(), userFrom(r.Context()), req.Name, req.URL, req.License)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, RepoResponse{
		Owner: repo.Meta.Owner, Name: repo.Meta.Name, URL: repo.Meta.URL, License: repo.Meta.License,
		Branches: []string{},
	})
}

// repoResponse assembles repository metadata with branch tips.
func repoResponse(repo *gitcite.Repo) (RepoResponse, error) {
	branches, err := repo.VCS.Branches()
	if err != nil {
		return RepoResponse{}, err
	}
	if branches == nil {
		branches = []string{}
	}
	tips := make(map[string]string, len(branches))
	for _, b := range branches {
		tip, err := repo.VCS.BranchTip(b)
		if err != nil {
			return RepoResponse{}, err
		}
		tips[b] = tip.String()
	}
	return RepoResponse{
		Owner: repo.Meta.Owner, Name: repo.Meta.Name, URL: repo.Meta.URL,
		License: repo.Meta.License, Branches: branches, Tips: tips,
	}, nil
}

func (s *Server) handleGetRepo(w http.ResponseWriter, r *http.Request) {
	repo, release, err := s.platform.AcquireRepo(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	resp, err := repoResponse(repo)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAddMember(w http.ResponseWriter, r *http.Request) {
	var req MemberRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	err := s.platform.AddMemberAs(r.Context(), userFrom(r.Context()), r.PathValue("owner"), r.PathValue("name"), req.Member)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// ---- tree listing ----

// treeEntries lists the commit's paths with citation flags, skipping offset
// rows and stopping after limit (limit <= 0 lists everything). The walk
// terminates as soon as the page is full, so deep pages do not pay for the
// tail of the tree.
func treeEntries(repo *gitcite.Repo, commit object.ID, offset, limit int) (entries []TreeEntryResponse, more bool, err error) {
	treeID, err := repo.VCS.TreeOf(commit)
	if err != nil {
		return nil, false, err
	}
	fn, err := repo.ResolvedFunctionAt(commit)
	if err != nil && !errors.Is(err, gitcite.ErrNotCitationEnabled) {
		return nil, false, err
	}
	errStop := errors.New("page full")
	idx := 0
	err = vcs.WalkTree(repo.VCS.Objects, treeID, func(p string, e object.TreeEntry) error {
		if p == citefile.Path {
			return nil
		}
		pos := idx
		idx++
		if pos < offset {
			return nil
		}
		if limit > 0 && len(entries) == limit {
			more = true
			return errStop
		}
		cited := fn != nil && fn.Has(p)
		entries = append(entries, TreeEntryResponse{Path: p, IsDir: e.IsDir(), Cited: cited})
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		return nil, false, err
	}
	if entries == nil {
		entries = []TreeEntryResponse{}
	}
	return entries, more, nil
}

func (s *Server) handleTreeV1(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: limit %q", ErrBadRequest, v))
			return
		}
		limit = n
	}
	offset := 0
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: cursor %q", ErrBadRequest, v))
			return
		}
		offset = n
	}
	entries, more, err := treeEntries(repo, commit, offset, limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	page := TreePage{Entries: entries}
	if more {
		page.NextCursor = strconv.Itoa(offset + len(entries))
	}
	writeJSON(w, http.StatusOK, page)
}

// handleTreeLegacy serves the deprecated unpaginated array form.
func (s *Server) handleTreeLegacy(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	entries, _, err := treeEntries(repo, commit, 0, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entries)
}

// ---- citation reads ----

func (s *Server) handleGenCite(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "/"
	}
	cite, from, err := repo.Generate(commit, path)
	if err != nil {
		writeErr(w, err)
		return
	}
	raw, err := citefile.EncodeEntry(cite)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := CiteResponse{Path: path, From: from, Citation: raw}
	if name := r.URL.Query().Get("format"); name != "" {
		f, err := format.Parse(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		rendered, err := format.Render(cite, f)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp.Rendered = rendered
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleChain(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "/"
	}
	chain, err := repo.GenerateChain(commit, path)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := ChainResponse{Path: path}
	for _, pc := range chain {
		raw, err := citefile.EncodeEntry(pc.Citation)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp.Chain = append(resp.Chain, CiteResponse{Path: pc.Path, From: pc.Path, Citation: raw})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCiteFile(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	data, err := repo.CiteFileBytes(commit)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: citation.cite", ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// CreditResponse is the wire form of a credit report.
type CreditResponse struct {
	Commit        string         `json:"commit"`
	TotalFiles    int            `json:"totalFiles"`
	ExternalFiles int            `json:"externalFiles"`
	Authors       []CreditAuthor `json:"authors"`
	Entries       []CreditEntry  `json:"entries"`
}

// CreditAuthor is one per-author row.
type CreditAuthor struct {
	Author  string `json:"author"`
	Files   int    `json:"files"`
	Entries int    `json:"entries"`
}

// CreditEntry is one active-domain entry with its exclusive coverage.
type CreditEntry struct {
	Path     string `json:"path"`
	Files    int    `json:"files"`
	External bool   `json:"external"`
}

// handleCredit serves the credit report for a revision (public read, like
// citation generation).
func (s *Server) handleCredit(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	rep, err := report.Build(repo, commit)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := CreditResponse{
		Commit:        rep.Commit.String(),
		TotalFiles:    rep.TotalFiles,
		ExternalFiles: rep.ExternalFiles,
	}
	for _, a := range rep.Authors {
		resp.Authors = append(resp.Authors, CreditAuthor{Author: a.Author, Files: a.Files, Entries: a.Entries})
	}
	for _, e := range rep.Entries {
		resp.Entries = append(resp.Entries, CreditEntry{Path: e.Path, Files: e.Files, External: e.External})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- citation edits ----

// handleEditCite implements the member-only Add/Modify/Delete buttons of the
// extension popup: the platform applies the operation and commits the
// updated citation.cite to the branch.
func (s *Server) handleEditCite(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req EditCiteRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	owner, name := r.PathValue("owner"), r.PathValue("name")
	user := userFrom(ctx)
	repo, release, err := s.platform.AcquireForWrite(ctx, user, owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	unlock, err := s.platform.LockForEdit(ctx, owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer unlock()
	if req.Branch == "" {
		req.Branch = "main"
	}
	wt, err := repo.Checkout(req.Branch)
	if err != nil {
		writeErr(w, err)
		return
	}

	var op string
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		var cite core.Citation
		if len(req.Citation) == 0 {
			writeErr(w, fmt.Errorf("%w: missing citation", ErrBadRequest))
			return
		}
		cite, err = citefile.DecodeEntry(req.Citation)
		if err != nil {
			writeErr(w, err)
			return
		}
		if r.Method == http.MethodPost {
			op = "AddCite"
			err = wt.AddCite(req.Path, cite)
		} else {
			op = "ModifyCite"
			err = wt.ModifyCite(req.Path, cite)
		}
	case http.MethodDelete:
		op = "DelCite"
		err = wt.DelCite(req.Path)
	}
	if err != nil {
		writeErr(w, err)
		return
	}

	msg := req.Message
	if msg == "" {
		msg = fmt.Sprintf("%s %s (via GitCite)", op, req.Path)
	}
	commit, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig(user.Name, user.Name+"@users.git.example", s.Now()),
		Message: msg,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	// The deferred unlock has not run yet, so this publish is ordered with
	// the commit's ref update like applyPush's.
	s.platform.publishRef(owner, name, req.Branch, commit.String())
	writeJSON(w, http.StatusOK, EditCiteResponse{Commit: commit.String()})
}

func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	var req ForkRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	forked, err := s.platform.ForkRepoAs(r.Context(), userFrom(r.Context()), r.PathValue("owner"), r.PathValue("name"), req.NewName)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := repoResponse(forked)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// ---- negotiated sync ----

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	repo, release, err := s.platform.AcquireRepo(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	var req NegotiateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	tip, err := resolveRev(repo, req.Want)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Mode != "" && req.Mode != NegotiateModeWantAll {
		writeErr(w, fmt.Errorf("%w: negotiate mode %q", ErrBadRequest, req.Mode))
		return
	}
	have := make([]object.ID, 0, len(req.Have))
	for _, h := range req.Have {
		if id, err := object.ParseID(h); err == nil {
			have = append(have, id) // malformed haves are ignored, like unknown ones
		}
	}
	if req.Mode == NegotiateModeWantAll {
		// The client will stream the closure from the pull endpoint; the
		// response body stays O(1) instead of one ID per missing object,
		// and the count-only walk never materialises the ID list either.
		count, err := CountMissingObjects(repo.VCS.Objects, tip, have)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, NegotiateResponse{Tip: tip.String(), All: true, Count: count})
		return
	}
	missing, err := MissingObjects(repo.VCS.Objects, tip, have)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := NegotiateResponse{Tip: tip.String(), Missing: make([]string, len(missing))}
	for i, id := range missing {
		resp.Missing[i] = id.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFetchObjects streams the requested objects back as NDJSON, one per
// line — the transfer half of a negotiate round trip. Presence is checked
// up front so a missing object is still reportable as a clean 404.
func (s *Server) handleFetchObjects(w http.ResponseWriter, r *http.Request) {
	repo, release, err := s.platform.AcquireRepo(r.Context(), r.PathValue("owner"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	var req FetchRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ids := make([]object.ID, len(req.IDs))
	for i, h := range req.IDs {
		id, err := object.ParseID(h)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: object ID %q", ErrBadRequest, h))
			return
		}
		ids[i] = id
	}
	have, err := store.HasMany(repo.VCS.Objects, ids)
	if err != nil {
		writeErr(w, err)
		return
	}
	for i, ok := range have {
		if !ok {
			writeErr(w, fmt.Errorf("%w: object %s", ErrNotFound, ids[i].Short()))
			return
		}
	}
	w.Header().Set("Content-Type", MediaTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	sw := NewObjectStreamWriter(w)
	flusher, _ := w.(http.Flusher)
	for i, id := range ids {
		o, err := repo.VCS.Objects.Get(id)
		if err != nil {
			return // headers are gone; abort the stream mid-flight
		}
		if err := sw.WriteObject(o); err != nil {
			return
		}
		if flusher != nil && i%512 == 511 {
			_ = sw.Flush()
			flusher.Flush()
		}
	}
	_ = sw.Flush()
}

// ---- push ----

// applyPush validates and applies one push: the tip must decode to a commit
// whose whole closure is covered by the uploaded objects plus the current
// store, and the branch update must fast-forward — both checked BEFORE the
// batch is stored, so a garbage or rejected push cannot land orphan objects.
// The repository edit lock serialises the check-then-update with concurrent
// pushes and server-side citation edits; readers are never blocked.
func (s *Server) applyPush(ctx context.Context, repo *gitcite.Repo, owner, name, branch string, tip object.ID, batch []store.Encoded, objs map[object.ID]object.Object) (PushResponse, error) {
	if branch == "" {
		return PushResponse{}, fmt.Errorf("%w: missing branch", ErrBadRequest)
	}
	if err := VerifyConnectedClosure(repo.VCS.Objects, objs, tip); err != nil {
		return PushResponse{}, err
	}
	unlock, err := s.platform.LockForEdit(ctx, owner, name)
	if err != nil {
		return PushResponse{}, err
	}
	defer unlock()
	ref := refs.BranchRef(branch)
	if cur, err := repo.VCS.Refs.Get(ref); err == nil && cur != tip {
		ok, err := isAncestorOver(repo.VCS.Objects, objs, cur, tip)
		if err != nil {
			return PushResponse{}, err
		}
		if !ok {
			return PushResponse{}, fmt.Errorf("%w: non-fast-forward push to %s", ErrConflict, branch)
		}
	}
	// Only now do uploaded objects touch the store: one raw batch write.
	if err := store.PutManyEncoded(repo.VCS.Objects, batch); err != nil {
		return PushResponse{}, err
	}
	if err := repo.VCS.Refs.Set(ref, tip); err != nil {
		return PushResponse{}, err
	}
	// Publish while the edit lock is still held: ref events for one branch
	// hit the replication feed in ref-update order, so followers never
	// observe B-then-A for two pushes that landed A-then-B. The event's
	// feed position acknowledges the push to read-your-writes clients.
	epoch, seq := s.platform.publishRef(owner, name, branch, tip.String())
	return PushResponse{Stored: len(batch), Tip: tip.String(), Seq: seq, Epoch: epoch}, nil
}

// handlePushV1 ingests a streaming push: a PushHeader line followed by one
// object per line. Objects are decoded as they arrive (memory stays
// proportional to the negotiated delta, not the repository).
func (s *Server) handlePushV1(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	owner, name := r.PathValue("owner"), r.PathValue("name")
	repo, release, err := s.platform.AcquireForWrite(ctx, userFrom(ctx), owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	sr := NewObjectStreamReader(r.Body)
	var hdr PushHeader
	if err := sr.ReadHeader(&hdr); err != nil {
		writeErr(w, fmt.Errorf("%w: push header: %v", ErrBadRequest, err))
		return
	}
	tip, err := object.ParseID(hdr.Tip)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad tip: %v", ErrBadRequest, err))
		return
	}
	var batch []store.Encoded
	objs := make(map[object.ID]object.Object)
	for {
		o, enc, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		id := object.HashBytes(enc)
		if _, dup := objs[id]; dup {
			continue
		}
		objs[id] = o
		batch = append(batch, store.Encoded{ID: id, Enc: enc})
	}
	resp, err := s.applyPush(ctx, repo, owner, name, hdr.Branch, tip, batch, objs)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.platform.maybeAutoRepack(owner, name)
	writeJSON(w, http.StatusOK, resp)
}

// handlePushLegacy adapts the deprecated whole-array JSON body onto the same
// validated push core as v1.
func (s *Server) handlePushLegacy(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req PushRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	owner, name := r.PathValue("owner"), r.PathValue("name")
	repo, release, err := s.platform.AcquireForWrite(ctx, userFrom(ctx), owner, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	tip, err := object.ParseID(req.Tip)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad tip: %v", ErrBadRequest, err))
		return
	}
	batch := make([]store.Encoded, 0, len(req.Objects))
	objs := make(map[object.ID]object.Object, len(req.Objects))
	for _, wo := range req.Objects {
		enc, err := base64.StdEncoding.DecodeString(wo.Data)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad object payload: %v", ErrBadRequest, err))
			return
		}
		o, err := object.Decode(enc)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad object: %v", ErrBadRequest, err))
			return
		}
		id := object.HashBytes(enc)
		if _, dup := objs[id]; dup {
			continue
		}
		objs[id] = o
		batch = append(batch, store.Encoded{ID: id, Enc: enc})
	}
	resp, err := s.applyPush(ctx, repo, owner, name, req.Branch, tip, batch, objs)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.platform.maybeAutoRepack(owner, name)
	writeJSON(w, http.StatusOK, resp)
}

// ---- pull ----

// handlePullV1 streams a revision's full reachable closure: a PullHeader
// line, then one object per line, serialised straight out of the live store
// (objects are immutable and the store concurrency-safe — no lock is held
// across the transfer and no closure copy is staged). Commit-addressed
// requests get the same ETag/304 treatment as the citation reads; clients
// with prior state should negotiate instead.
func (s *Server) handlePullV1(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	w.Header().Set("Content-Type", MediaTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	sw := NewObjectStreamWriter(w)
	if err := sw.WriteValue(PullHeader{Tip: commit.String()}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	n := 0
	err := store.WalkClosure(repo.VCS.Objects, func(_ object.ID, o object.Object) error {
		if err := sw.WriteObject(o); err != nil {
			return err
		}
		if n++; flusher != nil && n%512 == 0 {
			if err := sw.Flush(); err != nil {
				return err
			}
			flusher.Flush()
		}
		return nil
	}, commit)
	if err != nil {
		return // mid-stream failure: abort the connection, client's decode fails
	}
	_ = sw.Flush()
}

// handlePullLegacy serves the deprecated whole-array JSON closure download.
func (s *Server) handlePullLegacy(w http.ResponseWriter, r *http.Request) {
	repo, commit, release, ok := s.beginCommitRead(w, r)
	if !ok {
		return
	}
	defer release()
	resp := PullResponse{Tip: commit.String()}
	err := store.WalkClosure(repo.VCS.Objects, func(_ object.ID, o object.Object) error {
		resp.Objects = append(resp.Objects, WireObject{Data: base64.StdEncoding.EncodeToString(object.Encode(o))})
		return nil
	}, commit)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
