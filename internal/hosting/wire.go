// wire.go defines the v1 wire protocol: the stable machine-readable error
// body, the negotiate/sync message types, and the NDJSON object-stream codec
// shared by the server handlers and the browser-extension client. One object
// travels per line, so neither side ever buffers a whole closure the way the
// pre-v1 base64-array payloads did.
package hosting

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// APIv1Prefix is the path prefix of the versioned API. The unversioned
// /api/... routes are deprecated aliases kept for pre-v1 clients.
const APIv1Prefix = "/api/v1"

// MediaTypeNDJSON is the content type of streamed object transfers.
const MediaTypeNDJSON = "application/x-ndjson"

// Stable machine-readable error codes carried in ErrorResponse.Code.
// Clients switch on these instead of parsing free-text messages.
const (
	CodeUnauthorized = "unauthorized"  // 401: missing or invalid token
	CodeForbidden    = "forbidden"     // 403: authenticated but not a member
	CodeNotFound     = "not_found"     // 404: repo/branch/commit/object absent
	CodeConflict     = "conflict"      // 409: duplicate name or non-fast-forward
	CodeAmbiguousRef = "ambiguous_ref" // 409: abbreviated commit ID matches several commits
	CodeBadRequest   = "bad_request"   // 400: malformed body, path or cursor
	CodeRateLimited  = "rate_limited"  // 429: per-token rate limit exceeded
	CodeInternal     = "internal"      // 500: anything else
	// CodeReplicaReadOnly is 307: this server is a read replica; the
	// Location header points the write at the primary.
	CodeReplicaReadOnly = "replica_read_only"
	// CodeNotCaughtUp is 409: promotion refused because the replica's
	// applied cursor is behind the primary's head.
	CodeNotCaughtUp = "replica_lagging"
)

// ErrorResponse is the JSON error body. Code is one of the Code* constants;
// Error is the human-readable message (not stable, do not match on it).
type ErrorResponse struct {
	Code  string `json:"code,omitempty"`
	Error string `json:"error"`
}

// NegotiateModeWantAll asks the server to skip the per-object Missing list
// and answer with just the resolved tip and an object count. A client with
// no prior state (a cold clone) sets it and then streams the closure from
// the pull endpoint, so neither negotiate body scales with repository size
// — without it, a cold clone's negotiate response carries one ID per
// object.
const NegotiateModeWantAll = "want-all"

// NegotiateRequest opens an incremental sync: the client names the revision
// it wants and the commit tips it already has (with, by the store closure
// invariant, their full reachable object graphs). Unknown or malformed have
// entries are ignored — claiming too little only costs bandwidth. Mode is
// empty (list the missing IDs) or NegotiateModeWantAll.
type NegotiateRequest struct {
	Want string   `json:"want"`
	Have []string `json:"have,omitempty"`
	Mode string   `json:"mode,omitempty"`
}

// NegotiateResponse answers with the resolved tip and exactly the object IDs
// the client is missing, computed by a frontier walk that stops at known
// commits — O(delta), not O(closure), for an up-to-date client. Under
// NegotiateModeWantAll the ID list is suppressed: All is true, Count
// reports how many objects the client lacks, and the body stays O(1)
// however large the repository is.
type NegotiateResponse struct {
	Tip     string   `json:"tip"`
	Missing []string `json:"missing,omitempty"`
	All     bool     `json:"all,omitempty"`
	Count   int      `json:"count,omitempty"`
}

// FetchRequest asks for the listed objects as an NDJSON stream — one chunk
// of the Missing list of a preceding negotiate. Clients cap the IDs per
// request (extension.Client splits large deltas into several fetches), so
// no single request body has to carry an entire closure's ID list.
type FetchRequest struct {
	IDs []string `json:"ids"`
}

// PushHeader is the first JSON value of a v1 push stream; the object lines
// follow it in the same body.
type PushHeader struct {
	Branch string `json:"branch"`
	Tip    string `json:"tip"`
}

// PullHeader is the first JSON value of a v1 streaming pull response.
type PullHeader struct {
	Tip string `json:"tip"`
}

// objectLine is one NDJSON transfer line: the base64 of one canonical object
// encoding. The std base64 alphabet needs no JSON escaping, so lines are
// written by concatenation, not json.Marshal.
type objectLine struct {
	D string `json:"d"`
}

// ObjectStreamWriter writes an NDJSON object stream. Not safe for concurrent
// use. Call Flush before returning the underlying writer to its owner.
type ObjectStreamWriter struct {
	bw *bufio.Writer
	n  int
}

// NewObjectStreamWriter wraps w in a buffered NDJSON object encoder.
func NewObjectStreamWriter(w io.Writer) *ObjectStreamWriter {
	return &ObjectStreamWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteValue writes one arbitrary JSON value as its own line — the stream
// header slot (PushHeader, PullHeader).
func (w *ObjectStreamWriter) WriteValue(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(data); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// WriteEncoded writes one canonical object encoding as one line.
func (w *ObjectStreamWriter) WriteEncoded(enc []byte) error {
	if _, err := w.bw.WriteString(`{"d":"`); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(base64.StdEncoding.EncodeToString(enc)); err != nil {
		return err
	}
	if _, err := w.bw.WriteString("\"}\n"); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteObject encodes and writes one object.
func (w *ObjectStreamWriter) WriteObject(o object.Object) error {
	return w.WriteEncoded(object.Encode(o))
}

// Count reports how many objects have been written (headers excluded).
func (w *ObjectStreamWriter) Count() int { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *ObjectStreamWriter) Flush() error { return w.bw.Flush() }

// ObjectStreamReader reads an NDJSON object stream. Not safe for concurrent
// use.
type ObjectStreamReader struct {
	dec *json.Decoder
	n   int
}

// NewObjectStreamReader wraps r in an NDJSON object decoder.
func NewObjectStreamReader(r io.Reader) *ObjectStreamReader {
	return &ObjectStreamReader{dec: json.NewDecoder(bufio.NewReaderSize(r, 32<<10))}
}

// ReadHeader decodes the stream's leading JSON value (PushHeader/PullHeader).
// It must be called before the first Next, if the stream carries a header.
func (r *ObjectStreamReader) ReadHeader(v any) error {
	if err := r.dec.Decode(v); err != nil {
		return fmt.Errorf("hosting: stream header: %w", err)
	}
	return nil
}

// Next returns the next object together with its canonical encoding. It
// returns io.EOF once the stream ends cleanly.
func (r *ObjectStreamReader) Next() (object.Object, []byte, error) {
	var ln objectLine
	if err := r.dec.Decode(&ln); err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("hosting: object stream: %w", err)
	}
	enc, err := base64.StdEncoding.DecodeString(ln.D)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: object line: %v", ErrBadRequest, err)
	}
	o, err := object.Decode(enc)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: object: %v", ErrBadRequest, err)
	}
	r.n++
	return o, enc, nil
}

// Count reports how many objects have been read (headers excluded).
func (r *ObjectStreamReader) Count() int { return r.n }
