// events.go is the primary side of replication: an in-memory, bounded,
// monotonically-sequenced log of platform mutations (accounts, repositories,
// memberships, ref updates) that followers long-poll through
// GET /api/v1/events and bootstrap from via GET /api/v1/replica/snapshot.
//
// The log is deliberately not durable: it is a wake-up channel, not a source
// of truth. Every event is re-derivable from platform state (the manifest
// plus each repository's refs and object closure), so a follower that falls
// off the retained window — or observes a new epoch after a primary restart
// — simply re-negotiates from a fresh snapshot. That keeps the primary's
// write path free of any per-follower bookkeeping: publishing is one
// mutex-guarded append, and a primary with zero followers pays nothing else.
package hosting

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Event types carried in Event.Type. A follower applies each idempotently:
// re-applying any prefix or suffix of the log converges to the same state,
// which is what makes at-least-once delivery (and crash-resume from a
// journaled cursor) correct.
const (
	EventUser   = "user"   // account created or re-tokened: Name, Token
	EventRepo   = "repo"   // repository created (or forked): Owner, Repo, URL, License
	EventMember = "member" // write access granted: Owner, Repo, Member
	EventRef    = "ref"    // branch moved: Owner, Repo, Branch, Tip
)

// Event is one replicated platform mutation. Seq is assigned by the log,
// strictly increasing within an epoch; field usage depends on Type.
type Event struct {
	Seq     int64  `json:"seq"`
	Type    string `json:"type"`
	Name    string `json:"name,omitempty"`
	Token   string `json:"token,omitempty"`
	Owner   string `json:"owner,omitempty"`
	Repo    string `json:"repo,omitempty"`
	URL     string `json:"url,omitempty"`
	License string `json:"license,omitempty"`
	Member  string `json:"member,omitempty"`
	Branch  string `json:"branch,omitempty"`
	Tip     string `json:"tip,omitempty"`
}

// EventsResponse answers one events poll. Reset tells the follower its
// cursor is useless here — wrong epoch (primary restarted), ahead of Head,
// or behind the retained window — and it must full-resync from a snapshot
// rather than keep polling into an error loop.
type EventsResponse struct {
	Epoch  string  `json:"epoch"`
	Head   int64   `json:"head"`
	Reset  bool    `json:"reset,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// SnapshotUser is one account in a replication snapshot. Tokens travel so
// followers can authenticate the same credentials the primary does — which
// is why the snapshot and events endpoints answer only to the admin token.
type SnapshotUser struct {
	Name  string `json:"name"`
	Token string `json:"token"`
}

// SnapshotRepo is one repository in a replication snapshot: identity,
// membership and the branch tips the follower must converge to.
type SnapshotRepo struct {
	Owner   string            `json:"owner"`
	Name    string            `json:"name"`
	URL     string            `json:"url,omitempty"`
	License string            `json:"license,omitempty"`
	Members []string          `json:"members"`
	Tips    map[string]string `json:"tips,omitempty"`
}

// SnapshotResponse is the full-resync bootstrap: apply everything, then
// resume polling events from Cursor. The cursor is captured BEFORE the
// state is read, so any mutation racing the snapshot is either already in
// the state or still ahead of the cursor — replayed events only ever
// re-apply idempotently, never go missing.
type SnapshotResponse struct {
	Epoch  string         `json:"epoch"`
	Cursor int64          `json:"cursor"`
	Users  []SnapshotUser `json:"users"`
	Repos  []SnapshotRepo `json:"repos"`
}

// eventLogCap bounds the retained window when no live follower needs more.
// A follower further behind than the retained window resyncs from a
// snapshot; sizing it is a latency/memory trade, not a correctness one.
const eventLogCap = 4096

// eventLogHardCap bounds retention even when a live follower is far behind:
// past this the primary stops holding events for it and lets the follower
// fall back to a snapshot resync rather than grow the ring without bound.
const eventLogHardCap = 4 * eventLogCap

// followerLiveWindow is how long a follower's acknowledged cursor keeps
// holding the ring after its last poll. A follower silent for longer is
// presumed dead and no longer sizes retention.
const followerLiveWindow = 60 * time.Second

// maxTrackedFollowers bounds the per-follower ack map; past it the stalest
// entry is evicted. Followers identify themselves voluntarily, so this is
// a memory bound against churny or adversarial IDs, not a fleet-size cap.
const maxTrackedFollowers = 64

// maxEventsPerPoll bounds one poll's response body; a follower that is far
// behind drains the window across several polls.
const maxEventsPerPoll = 512

// ackState is one follower's replication progress as observed from its
// polls: a poll with since=N acknowledges that everything through N is
// applied and journaled on that follower.
type ackState struct {
	cursor int64
	seen   time.Time
}

// eventLog is the bounded publish/subscribe ring. The epoch is freshly
// random per process so a follower can tell "primary restarted and the log
// restarted from zero" apart from "log position zero".
type eventLog struct {
	mu     sync.Mutex
	epoch  string
	head   int64   // seq of the newest event; 0 before any publish
	events []Event // seqs [head-len+1 .. head]
	notify chan struct{}
	acks   map[string]*ackState
	now    func() time.Time // injected in tests to age followers

	// drained is closed (once) when the server starts shutting down, so
	// parked long-pollers answer immediately instead of waiting out their
	// deadlines and stalling the HTTP drain.
	drained   chan struct{}
	drainOnce sync.Once
}

func newEventLog() *eventLog {
	return &eventLog{
		epoch:   newEpoch(),
		notify:  make(chan struct{}),
		acks:    make(map[string]*ackState),
		now:     time.Now,
		drained: make(chan struct{}),
	}
}

// newEpoch mints a fresh random epoch identifier. crypto/rand never fails
// on supported platforms; an all-zero epoch would still be a valid (just
// less distinctive) epoch value.
func newEpoch() string {
	var b [16]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// publish assigns the next sequence number, appends, trims the ring and
// wakes every parked poller. It returns the epoch and assigned sequence so
// write paths can report where an acknowledged write sits on the feed.
//
// Retention keeps at least eventLogCap events, extended down to the slowest
// live follower's acknowledged cursor (so a briefly-slow follower does not
// get forced into a full resync), but never past eventLogHardCap.
func (l *eventLog) publish(ev Event) (epoch string, seq int64) {
	l.mu.Lock()
	l.head++
	ev.Seq = l.head
	l.events = append(l.events, ev)
	if len(l.events) > eventLogCap {
		keepAfter := l.head - eventLogCap // retain seqs > keepAfter
		if min, ok := l.minLiveAckLocked(); ok && min < keepAfter {
			keepAfter = min
		}
		if floor := l.head - eventLogHardCap; keepAfter < floor {
			keepAfter = floor
		}
		oldest := l.head - int64(len(l.events)) // seq preceding the oldest retained event
		if drop := keepAfter - oldest; drop > 0 {
			l.events = append(l.events[:0:0], l.events[drop:]...)
		}
	}
	close(l.notify)
	l.notify = make(chan struct{})
	epoch, seq = l.epoch, l.head
	l.mu.Unlock()
	return epoch, seq
}

// minLiveAckLocked returns the smallest acknowledged cursor among followers
// seen within followerLiveWindow. Callers hold l.mu.
func (l *eventLog) minLiveAckLocked() (int64, bool) {
	cutoff := l.now().Add(-followerLiveWindow)
	var min int64
	ok := false
	for _, a := range l.acks {
		if a.seen.Before(cutoff) {
			continue
		}
		if !ok || a.cursor < min {
			min, ok = a.cursor, true
		}
	}
	return min, ok
}

// noteAckLocked records follower id's acknowledged cursor. The map is
// bounded: when full, the stalest follower is evicted to make room.
// Callers hold l.mu.
func (l *eventLog) noteAckLocked(id string, cursor int64) {
	if id == "" {
		return
	}
	if a := l.acks[id]; a != nil {
		if cursor > a.cursor {
			a.cursor = cursor
		}
		a.seen = l.now()
		return
	}
	if len(l.acks) >= maxTrackedFollowers {
		var stalest string
		var when time.Time
		for k, a := range l.acks {
			if stalest == "" || a.seen.Before(when) {
				stalest, when = k, a.seen
			}
		}
		delete(l.acks, stalest)
	}
	l.acks[id] = &ackState{cursor: cursor, seen: l.now()}
}

// rotate mints a fresh epoch and restarts the log from zero — the promotion
// fence. Every follower of the old feed observes the epoch change on its
// next poll and full-resyncs; every cursor journaled under the old epoch is
// invalidated. Parked pollers are woken so none sleeps through the flip.
func (l *eventLog) rotate() string {
	l.mu.Lock()
	l.epoch = newEpoch()
	l.head = 0
	l.events = nil
	l.acks = make(map[string]*ackState)
	close(l.notify)
	l.notify = make(chan struct{})
	epoch := l.epoch
	l.mu.Unlock()
	return epoch
}

// interrupt permanently wakes every parked and future poller; used at
// shutdown so long-polls answer immediately and the HTTP drain completes.
func (l *eventLog) interrupt() {
	l.drainOnce.Do(func() { close(l.drained) })
}

// wait returns the channel closed by the next publish. Callers grab it
// BEFORE checking since() so a publish racing the check is never missed.
func (l *eventLog) wait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// since returns the retained events after cursor, capped at
// maxEventsPerPoll, and records the poll as follower id's acknowledgment
// of everything through cursor. ok is false when the cursor cannot be
// served incrementally: ahead of head (a different history — the primary
// restarted, or the follower journaled against another epoch) or behind
// the retained window (evicted by capacity).
func (l *eventLog) since(cursor int64, id string) (evs []Event, head int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.head - int64(len(l.events)) // seq preceding the oldest retained event
	if cursor > l.head || cursor < oldest {
		return nil, l.head, false
	}
	l.noteAckLocked(id, cursor)
	from := int(cursor - oldest)
	n := len(l.events) - from
	if n > maxEventsPerPoll {
		n = maxEventsPerPoll
	}
	if n > 0 {
		evs = append(evs, l.events[from:from+n]...)
	}
	return evs, l.head, true
}

// state reports the epoch and current head under one lock acquisition —
// the snapshot's cursor capture.
func (l *eventLog) state() (epoch string, head int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.head
}

// publishRef records a branch update on the replication feed and reports
// where it landed (epoch + sequence), so the write path can tell clients
// which feed position acknowledges their push. Callers hold the
// repository's edit lock across ref-set + publish, so events for one
// branch are ordered exactly like the ref updates themselves — a follower
// applying them in sequence can never regress a branch it is current on.
func (p *Platform) publishRef(owner, name, branch, tipHex string) (epoch string, seq int64) {
	return p.events.publish(Event{Type: EventRef, Owner: owner, Repo: name, Branch: branch, Tip: tipHex})
}

// Events answers one anonymous replication poll; see EventsFrom.
func (p *Platform) Events(ctx context.Context, since int64, wait time.Duration) (EventsResponse, error) {
	return p.EventsFrom(ctx, "", since, wait)
}

// EventsFrom answers one replication poll: everything after the since
// cursor, parking up to wait for the first publish when the follower is
// current. A cursor the log cannot serve incrementally comes back Reset —
// the follower's signal to full-resync from a snapshot instead of
// erroring. A non-empty followerID records the poll as that follower's
// acknowledged cursor, which sizes ring retention and feeds fleet status.
func (p *Platform) EventsFrom(ctx context.Context, followerID string, since int64, wait time.Duration) (EventsResponse, error) {
	if err := ctx.Err(); err != nil {
		return EventsResponse{}, err
	}
	epoch, _ := p.events.state()
	var deadline <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		deadline = t.C
	}
	for {
		wake := p.events.wait()
		evs, head, ok := p.events.since(since, followerID)
		if !ok {
			return EventsResponse{Epoch: epoch, Head: head, Reset: true}, nil
		}
		if len(evs) > 0 || wait <= 0 {
			return EventsResponse{Epoch: epoch, Head: head, Events: evs}, nil
		}
		select {
		case <-wake:
		case <-deadline:
			return EventsResponse{Epoch: epoch, Head: head}, nil
		case <-p.events.drained:
			// Shutdown: answer empty now so the HTTP drain completes.
			return EventsResponse{Epoch: epoch, Head: head}, nil
		case <-ctx.Done():
			return EventsResponse{}, ctx.Err()
		}
	}
}

// InterruptEventWaiters wakes every parked events long-poll, permanently:
// polls answer empty immediately from then on. Wire it to
// http.Server.RegisterOnShutdown so graceful drain is not held hostage by
// a follower's wait=N deadline.
func (p *Platform) InterruptEventWaiters() {
	p.events.interrupt()
}

// RotateEventEpoch mints a fresh events epoch and restarts the feed from
// sequence zero, returning the new epoch. This is promotion's fence: a
// just-promoted primary rotates so every cursor journaled under the old
// primary's epoch — including the old primary's own, should it come back
// as a follower — is invalidated into a full resync.
func (p *Platform) RotateEventEpoch() string {
	return p.events.rotate()
}

// FollowerStatus is one follower's replication progress as seen by the
// primary, derived from the follower's own event polls.
type FollowerStatus struct {
	ID       string    `json:"id"`
	Cursor   int64     `json:"cursor"`
	Lag      int64     `json:"lag"`
	LastSeen time.Time `json:"last_seen"`
	Live     bool      `json:"live"`
}

// FleetStatus is the primary's view of its replication feed: epoch, head,
// how much of the ring is retained, and each known follower's acknowledged
// position.
type FleetStatus struct {
	Epoch     string           `json:"epoch"`
	Head      int64            `json:"head"`
	Retained  int              `json:"retained"`
	Followers []FollowerStatus `json:"followers,omitempty"`
}

// FleetStatus reports the feed and every tracked follower, sorted by ID.
func (p *Platform) FleetStatus() FleetStatus {
	l := p.events
	l.mu.Lock()
	defer l.mu.Unlock()
	fs := FleetStatus{Epoch: l.epoch, Head: l.head, Retained: len(l.events)}
	cutoff := l.now().Add(-followerLiveWindow)
	for id, a := range l.acks {
		fs.Followers = append(fs.Followers, FollowerStatus{
			ID:       id,
			Cursor:   a.cursor,
			Lag:      l.head - a.cursor,
			LastSeen: a.seen,
			Live:     !a.seen.Before(cutoff),
		})
	}
	sort.Slice(fs.Followers, func(i, j int) bool { return fs.Followers[i].ID < fs.Followers[j].ID })
	return fs
}

// Snapshot captures the full replication bootstrap. The event cursor is
// read first, then accounts and membership under the platform lock, then
// branch tips per repository outside it (pinned, so the LRU cannot close a
// handle mid-read): a mutation concurrent with the snapshot lands either in
// the captured state or after the cursor, and idempotent application
// absorbs the overlap.
func (p *Platform) Snapshot(ctx context.Context) (SnapshotResponse, error) {
	if err := ctx.Err(); err != nil {
		return SnapshotResponse{}, err
	}
	epoch, cursor := p.events.state()
	resp := SnapshotResponse{Epoch: epoch, Cursor: cursor}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return SnapshotResponse{}, ErrClosed
	}
	resp.Users = make([]SnapshotUser, 0, len(p.users))
	for _, u := range p.users {
		resp.Users = append(resp.Users, SnapshotUser{Name: u.Name, Token: u.Token})
	}
	handles := make([]*hostedRepo, 0, len(p.repos))
	resp.Repos = make([]SnapshotRepo, 0, len(p.repos))
	for _, hr := range p.repos {
		members := make([]string, 0, len(hr.members))
		for m := range hr.members {
			members = append(members, m)
		}
		sort.Strings(members)
		handles = append(handles, hr)
		resp.Repos = append(resp.Repos, SnapshotRepo{
			Owner: hr.owner, Name: hr.meta.Name, URL: hr.meta.URL,
			License: hr.meta.License, Members: members,
		})
	}
	p.mu.RUnlock()

	sort.Slice(resp.Users, func(i, j int) bool { return resp.Users[i].Name < resp.Users[j].Name })
	order := make([]int, len(resp.Repos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := resp.Repos[order[i]], resp.Repos[order[j]]
		return repoKey(a.Owner, a.Name) < repoKey(b.Owner, b.Name)
	})

	sorted := make([]SnapshotRepo, 0, len(order))
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return SnapshotResponse{}, err
		}
		sr := resp.Repos[i]
		repo, release, err := p.pin(handles[i])
		if err != nil {
			return SnapshotResponse{}, err
		}
		branches, err := repo.VCS.Branches()
		if err == nil {
			sr.Tips = make(map[string]string, len(branches))
			for _, b := range branches {
				tip, terr := repo.VCS.BranchTip(b)
				if terr != nil {
					err = terr
					break
				}
				sr.Tips[b] = tip.String()
			}
		}
		release()
		if err != nil {
			return SnapshotResponse{}, err
		}
		sorted = append(sorted, sr)
	}
	resp.Repos = sorted
	return resp, nil
}
