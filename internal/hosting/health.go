// health.go is the load-balancer surface: two unauthenticated probes that
// let external fleet management (LBs, orchestrators, the failover-aware
// client) judge a node without the admin token. /healthz is liveness — the
// process answers HTTP. /readyz is readiness — this node should receive
// traffic: the platform is open and, on a replica, replication lag is
// under the configured ceiling, so a wedged or far-behind follower is
// rotated out of the read pool instead of serving arbitrarily stale data.
package hosting

import "net/http"

// defaultReadyMaxLag is the replication lag (events behind the primary's
// head) past which a replica reports not-ready. Override with
// WithReadinessMaxLag.
const defaultReadyMaxLag = 1024

// WithReadinessMaxLag sets the replication lag ceiling for GET /readyz on
// a replica; n <= 0 restores the default.
func WithReadinessMaxLag(n int64) ServerOption {
	return func(s *Server) { s.readyMaxLag = n }
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
}

// ReadyResponse answers GET /readyz. Role is "primary" or "replica";
// Reason explains a 503 (not a stable wire code — probes key on status).
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Role   string `json:"role"`
	Lag    int64  `json:"lag,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// handleHealthz serves GET /healthz: 200 whenever the process can answer.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleReadyz serves GET /readyz: 200 when this node should receive
// traffic, 503 otherwise (platform closing, replica still bootstrapping,
// or replica lag over the ceiling).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := ReadyResponse{Ready: true, Role: "primary"}
	rs := s.replica.Load()
	if rs != nil {
		resp.Role = "replica"
	}
	if !s.platform.Open() {
		resp.Ready, resp.Reason = false, "platform closed"
	} else if rs != nil {
		if rs.status != nil {
			st := rs.status()
			resp.Lag = st.Lag
			maxLag := s.readyMaxLag
			if maxLag <= 0 {
				maxLag = defaultReadyMaxLag
			}
			switch {
			case st.Epoch == "":
				resp.Ready, resp.Reason = false, "replica bootstrapping (no epoch yet)"
			case st.Lag > maxLag:
				resp.Ready, resp.Reason = false, "replica lag over ceiling"
			}
		}
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
