// lifecycle.go is the durable half of the platform: OpenPlatform boots a
// persistent, restartable service from a data directory (manifest replay,
// fork-intent recovery, orphan GC, compaction), the bounded open-repo LRU
// keeps resident repository handles at a fixed cap, the auto-repack policy
// piggybacks store maintenance on pushes, and Close is the graceful half
// of shutdown after the HTTP server has drained.
package hosting

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// OpenPlatform opens (creating if needed) a persistent platform rooted at
// dir. Hosted repositories live at dir/OWNER/NAME with pack-based object
// storage; accounts, tokens, memberships and fork intents replay from the
// dir/manifest.log journal. Boot reconciles journal against directory
// tree:
//
//   - a fork-begin without its fork-commit (a crash mid-ForkInto) has its
//     partial destination directory removed and the intent aborted;
//   - directories no acknowledged record owns (a crash between directory
//     creation and the create's journal append) are GC'd;
//   - on very first boot (no manifest yet), existing OWNER/NAME directories
//     from a pre-manifest deployment are adopted as hosted repositories —
//     reads work immediately; accounts must be re-created since tokens
//     were never persisted;
//   - the journal is compacted to a canonical snapshot, so replay cost
//     tracks live state rather than platform history.
//
// Repositories are registered closed and opened lazily on first use; with
// WithOpenRepoLimit the least-recently-used idle handles are closed again,
// so a platform hosting thousands of repositories holds a bounded number
// of open pack stores. Call Close on shutdown (after draining HTTP).
func OpenPlatform(dir string, opts ...PlatformOption) (*Platform, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: OpenPlatform requires a data directory", ErrBadRequest)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hosting: open platform: %w", err)
	}
	p := NewPlatform(opts...)
	p.dir = dir
	if !p.factorySet {
		p.newRepo = func(meta gitcite.Meta) (*gitcite.Repo, error) {
			return gitcite.OpenPackedFileRepo(p.repoDir(meta.Owner, meta.Name), meta)
		}
	}
	path := filepath.Join(dir, manifestName)
	_, statErr := os.Stat(path)
	firstBoot := os.IsNotExist(statErr)
	man, st, err := openManifest(path)
	if err != nil {
		return nil, err
	}
	p.man = man
	fail := func(err error) (*Platform, error) {
		man.close()
		return nil, err
	}
	if firstBoot {
		if err := p.adoptExisting(st); err != nil {
			return fail(err)
		}
	}
	// Recover crashed forks: the begin record names the destination
	// directory (in whatever partial state the crash left it) to remove.
	// Remove before journaling the abort — if we crash in between, the
	// next boot just removes an already-absent directory again.
	for key, rec := range st.pending {
		if err := os.RemoveAll(p.repoDir(rec.Owner, rec.Repo)); err != nil {
			return fail(fmt.Errorf("hosting: abort fork %s: %w", key, err))
		}
		if err := man.append(manifestRecord{Op: opForkAbort, Owner: rec.Owner, Repo: rec.Repo}); err != nil {
			return fail(err)
		}
		delete(st.pending, key)
	}
	for key, mr := range st.repos {
		hr := &hostedRepo{
			owner:   mr.owner,
			meta:    gitcite.Meta{Owner: mr.owner, Name: mr.name, URL: mr.url, License: mr.license},
			members: make(map[string]bool, len(mr.members)),
			editSem: make(chan struct{}, 1),
		}
		for m := range mr.members {
			hr.members[m] = true
		}
		p.repos[key] = hr
	}
	for name, tok := range st.users {
		u := &User{Name: name, Token: tok}
		p.users[name] = u
		p.byToken[tok] = u
	}
	if _, err := p.GCOrphans(); err != nil {
		return fail(err)
	}
	if err := man.compact(st); err != nil {
		return fail(err)
	}
	return p, nil
}

// repoDir is where a hosted repository persists under the data directory.
func (p *Platform) repoDir(owner, name string) string {
	return filepath.Join(p.dir, owner, name)
}

// adoptExisting journals a repo record for every OWNER/NAME directory a
// pre-manifest deployment left under the data directory. Runs only on the
// very first boot with a manifest — once a manifest exists, unknown
// directories are orphans and GC'd instead.
func (p *Platform) adoptExisting(st *manifestState) error {
	owners, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if !o.IsDir() || strings.HasPrefix(o.Name(), ".") {
			continue
		}
		repos, err := os.ReadDir(filepath.Join(p.dir, o.Name()))
		if err != nil {
			return err
		}
		for _, r := range repos {
			if !r.IsDir() || strings.HasPrefix(r.Name(), ".") {
				continue
			}
			rec := manifestRecord{
				Op: opRepo, Owner: o.Name(), Repo: r.Name(),
				URL: "https://git.example/" + o.Name() + "/" + r.Name(),
			}
			if err := p.man.append(rec); err != nil {
				return err
			}
			st.apply(rec)
		}
	}
	return nil
}

// GCOrphans removes OWNER/NAME directories under the data directory that
// no live repository or in-flight fork owns — the debris of a process
// killed between creating a directory and journaling it. Returns the
// removed "owner/name" keys, sorted. No-op on in-memory platforms.
func (p *Platform) GCOrphans() ([]string, error) {
	if p.dir == "" {
		return nil, nil
	}
	p.mu.RLock()
	keep := make(map[string]bool, len(p.repos)+len(p.pending))
	for k := range p.repos {
		keep[k] = true
	}
	for k := range p.pending {
		keep[k] = true
	}
	p.mu.RUnlock()
	owners, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, o := range owners {
		if !o.IsDir() {
			continue
		}
		ownerDir := filepath.Join(p.dir, o.Name())
		repos, err := os.ReadDir(ownerDir)
		if err != nil {
			return removed, err
		}
		live := 0
		for _, r := range repos {
			key := repoKey(o.Name(), r.Name())
			if !r.IsDir() || keep[key] {
				live++
				continue
			}
			if err := os.RemoveAll(filepath.Join(ownerDir, r.Name())); err != nil {
				return removed, err
			}
			removed = append(removed, key)
		}
		if live == 0 {
			// Best-effort: an owner directory emptied by GC is itself debris.
			os.Remove(ownerDir)
		}
	}
	sort.Strings(removed)
	return removed, nil
}

// enforceOpenLimit closes least-recently-used idle repository handles until
// the open count is back under the limit. Only pinned (in-flight) handles
// are skipped, so the count can transiently exceed the limit by at most
// the number of concurrently pinned repositories. Persistent platforms
// only — closing an in-memory repository would lose it.
func (p *Platform) enforceOpenLimit() {
	if p.dir == "" || p.openLimit <= 0 {
		return
	}
	// The attempts bound prevents spinning when every candidate gets
	// pinned between the scan and the lock.
	for attempts := 0; p.openCount.Load() > int64(p.openLimit) && attempts < 4*p.openLimit+16; attempts++ {
		victim := p.lruVictim()
		if victim == nil {
			return
		}
		victim.mu.Lock()
		// Re-check under the handle lock: the repository may have been
		// pinned (or already evicted) since the scan.
		if victim.repo != nil && victim.active == 0 {
			victim.repo.Close()
			victim.repo = nil
			p.openCount.Add(-1)
		}
		victim.mu.Unlock()
	}
}

// lruVictim picks the open, unpinned repository with the oldest recency
// tick; nil when every open repository is in flight.
func (p *Platform) lruVictim() *hostedRepo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var victim *hostedRepo
	var oldest int64
	for _, hr := range p.repos {
		hr.mu.Lock()
		idle := hr.repo != nil && hr.active == 0
		hr.mu.Unlock()
		if !idle {
			continue
		}
		if t := hr.used.Load(); victim == nil || t < oldest {
			victim, oldest = hr, t
		}
	}
	return victim
}

// OpenRepoCount reports how many hosted repository handles are currently
// open. With WithOpenRepoLimit on a persistent platform it converges back
// to at most the limit whenever no requests are in flight.
func (p *Platform) OpenRepoCount() int { return int(p.openCount.Load()) }

// PlatformStatus is the admin-API summary of the running platform.
type PlatformStatus struct {
	Users         int             `json:"users"`
	Repos         int             `json:"repos"`
	OpenRepos     int             `json:"openRepos"`
	OpenRepoLimit int             `json:"openRepoLimit,omitempty"`
	Persistent    bool            `json:"persistent"`
	DataDir       string          `json:"dataDir,omitempty"`
	Manifest      *ManifestStatus `json:"manifest,omitempty"`
}

// Status reports platform-wide counters and, on persistent platforms, the
// manifest journal's state.
func (p *Platform) Status(ctx context.Context) PlatformStatus {
	if ctx.Err() != nil {
		return PlatformStatus{}
	}
	p.mu.RLock()
	st := PlatformStatus{
		Users:         len(p.users),
		Repos:         len(p.repos),
		OpenRepoLimit: p.openLimit,
		Persistent:    p.dir != "",
		DataDir:       p.dir,
	}
	p.mu.RUnlock()
	st.OpenRepos = p.OpenRepoCount()
	if p.man != nil {
		ms := p.man.status()
		st.Manifest = &ms
	}
	return st
}

// RepoStats is the admin-API view of one hosted repository's storage.
// Pack figures are zero for repositories without pack-based storage.
type RepoStats struct {
	Owner         string   `json:"owner"`
	Name          string   `json:"name"`
	Open          bool     `json:"open"` // was the handle open before this call?
	Members       []string `json:"members"`
	Packs         int      `json:"packs"`
	PackedObjects int      `json:"packedObjects"`
	LooseObjects  int      `json:"looseObjects"`
}

// RepoStats reports a hosted repository's membership and storage shape.
// Gathering pack figures opens the repository if the LRU had closed it.
func (p *Platform) RepoStats(ctx context.Context, owner, name string) (RepoStats, error) {
	if err := ctx.Err(); err != nil {
		return RepoStats{}, err
	}
	hr, err := p.lookup(owner, name)
	if err != nil {
		return RepoStats{}, err
	}
	hr.mu.Lock()
	wasOpen := hr.repo != nil
	hr.mu.Unlock()
	p.mu.RLock()
	members := make([]string, 0, len(hr.members))
	for m := range hr.members {
		members = append(members, m)
	}
	p.mu.RUnlock()
	sort.Strings(members)
	rs := RepoStats{Owner: owner, Name: name, Open: wasOpen, Members: members}
	repo, release, err := p.pin(hr)
	if err != nil {
		return rs, err
	}
	defer release()
	if ps := packStoreOf(repo); ps != nil {
		s := ps.Stats()
		rs.Packs, rs.PackedObjects, rs.LooseObjects = s.Packs, s.PackedObjects, s.LooseObjects
	}
	return rs, nil
}

// RepackRepo folds a hosted repository's loose objects and consolidates
// its packs (the admin API's manual trigger), returning how many loose
// objects were folded. Errors for repositories without pack storage.
func (p *Platform) RepackRepo(ctx context.Context, owner, name string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	hr, err := p.lookup(owner, name)
	if err != nil {
		return 0, err
	}
	repo, release, err := p.pin(hr)
	if err != nil {
		return 0, err
	}
	defer release()
	return repo.VCS.Repack()
}

// packStoreOf unwraps a repository's object store to its pack store, nil
// when storage is not pack-based (in-memory or loose layouts).
func packStoreOf(repo *gitcite.Repo) *store.PackStore {
	objs := repo.VCS.Objects
	if cs, ok := objs.(*store.CachedStore); ok {
		objs = cs.Backend()
	}
	ps, _ := objs.(*store.PackStore)
	return ps
}

// maybeAutoRepack runs the push-piggybacked maintenance policy: when the
// repository's pack or loose-object count has reached the configured
// threshold, fold it in the background. At most one repack per repository
// runs at a time; the repository is pinned for the duration so LRU
// eviction cannot close the store mid-fold. Handlers call it after a
// successful push — never on the request's critical path.
func (p *Platform) maybeAutoRepack(owner, name string) {
	if p.autoRepackPacks <= 0 && p.autoRepackLoose <= 0 {
		return
	}
	hr, err := p.lookup(owner, name)
	if err != nil {
		return
	}
	if !hr.repacking.CompareAndSwap(false, true) {
		return
	}
	repo, release, err := p.pin(hr)
	if err != nil {
		hr.repacking.Store(false)
		return
	}
	ps := packStoreOf(repo)
	if ps == nil {
		release()
		hr.repacking.Store(false)
		return
	}
	s := ps.Stats()
	if !(p.autoRepackPacks > 0 && s.Packs >= p.autoRepackPacks) &&
		!(p.autoRepackLoose > 0 && s.LooseObjects >= p.autoRepackLoose) {
		release()
		hr.repacking.Store(false)
		return
	}
	go func() {
		defer release()
		defer hr.repacking.Store(false)
		// Failure is non-fatal: the store stays valid, and the next push
		// over threshold retries.
		_, _ = repo.VCS.Repack()
	}()
}

// Open reports whether the platform is still accepting operations (true
// until Close). The readiness probe uses it to fail fast during shutdown.
func (p *Platform) Open() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return !p.closed
}

// Close shuts the platform down: further mutations fail with ErrClosed,
// every open repository handle is closed, and the manifest journal is
// flushed and released. Call it after the HTTP server has drained
// (http.Server.Shutdown), when no request still holds a pin. Idempotent.
func (p *Platform) Close() error {
	// Wake any events long-poll that outlived the HTTP drain so nothing
	// parks against a closing platform.
	p.events.interrupt()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	repos := make([]*hostedRepo, 0, len(p.repos))
	for _, hr := range p.repos {
		repos = append(repos, hr)
	}
	p.mu.Unlock()
	var firstErr error
	for _, hr := range repos {
		hr.mu.Lock()
		if hr.repo != nil {
			if err := hr.repo.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			hr.repo = nil
			p.openCount.Add(-1)
		}
		hr.mu.Unlock()
	}
	if p.man != nil {
		if err := p.man.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
