// cursor.go persists the replica's feed position with the same crash rules
// as the platform manifest (PR 7): a CRC-framed record, written to a tmp
// file, fsync'd, renamed over the old one, directory fsync'd. The cursor
// only ever advances AFTER the events it covers are fully applied, so after
// any crash the journaled cursor is a safe resume point: everything at or
// below it is applied, anything above it gets re-fetched and re-applied
// idempotently. A torn, CRC-failing or foreign (different primary) file is
// treated as no cursor at all — the replica full-resyncs, it never guesses.
package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// cursorHeader is the first line of the cursor file; a file without it is
// not ours and is ignored rather than misread.
const cursorHeader = "gitcite-replica v1\n"

// cursorFileName is the cursor journal's name under the replica state dir.
const cursorFileName = "replica.cursor"

// cursorRecord is the journaled resume point. Primary and Epoch pin it to
// one feed: repointing the replica at a different primary, or a primary
// restart (new epoch), invalidates the cursor and forces a full resync.
type cursorRecord struct {
	Primary string `json:"primary"`
	Epoch   string `json:"epoch"`
	Cursor  int64  `json:"cursor"`
}

// saveCursorFile atomically replaces the cursor journal: tmp + fsync +
// rename + directory fsync, so a crash leaves either the old record or the
// new one, never a torn mixture.
func saveCursorFile(dir string, rec cursorRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeFramedFile(dir, cursorFileName, cursorHeader, payload)
}

// loadCursorFile reads the journaled resume point for the given primary.
// ok is false — never an error — for a missing, torn, CRC-failing or
// foreign-primary file: the caller's recovery in every case is the same
// full resync it performs on first boot.
func loadCursorFile(dir, primary string) (cursorRecord, bool) {
	payload, ok := readFramedFile(dir, cursorFileName, cursorHeader)
	if !ok {
		return cursorRecord{}, false
	}
	var rec cursorRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return cursorRecord{}, false
	}
	if rec.Primary != primary || rec.Epoch == "" || rec.Cursor < 0 {
		return cursorRecord{}, false
	}
	return rec, true
}

// writeFramedFile atomically replaces dir/name with header + one CRC-framed
// payload line (the crash framing shared by the cursor and promotion
// journals): tmp + fsync + rename + directory fsync.
func writeFramedFile(dir, name, header string, payload []byte) error {
	var buf bytes.Buffer
	buf.WriteString(header)
	fmt.Fprintf(&buf, "%08x %s\n", crc32.ChecksumIEEE(payload), payload)

	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("replica: write %s: %w", name, err)
	}
	if _, err = f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: write %s: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: write %s: %w", name, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readFramedFile reads dir/name written by writeFramedFile and returns the
// CRC-verified payload. ok is false — never an error — for a missing,
// torn, foreign-header or CRC-failing file.
func readFramedFile(dir, name, header string) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, false
	}
	if len(data) < len(header) || string(data[:len(header)]) != header {
		return nil, false
	}
	rest := data[len(header):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	line := rest[:nl]
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return payload, true
}
