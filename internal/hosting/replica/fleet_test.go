// Fleet resilience property suite: a 3-node fleet (primary + two promotable
// replicas) under a seeded push storm while a deterministic fault schedule
// torments the replication wire — partitions, delayed and duplicated event
// delivery, connections reset mid-NDJSON. One variant additionally kills
// the primary mid-storm and promotes a replica. The properties asserted
// after convergence are the PR's acceptance criteria: no acknowledged write
// is ever lost, and every surviving node's branch closure is bit-identical.
package replica

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/faultinject"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/workload"
)

// stormSchedule derives a deterministic fault campaign from the seed: the
// same seed always arms the same faults at the same occurrence counts, so a
// failing run replays exactly. Every fault class from the issue is armed —
// partition, delay, duplicated delivery (replay), and mid-stream resets.
func stormSchedule(seed int64) *faultinject.Schedule {
	k := int(seed % 3)
	return faultinject.NewSchedule(
		// r1 partitioned from the primary for a few polls early on.
		faultinject.Rule{Target: "r1", Match: "events", After: 2 + k, Count: 3, Fault: faultinject.FaultPartition},
		// r2's event stream cut mid-NDJSON body, twice.
		faultinject.Rule{Target: "r2", Match: "events", After: 3, Count: 2, Fault: faultinject.FaultResetBody, Arg: 40 + 8*k},
		// r1 re-receives events it already applied (rewound cursor).
		faultinject.Rule{Target: "r1", Match: "events", After: 6 + k, Count: 2, Fault: faultinject.FaultReplay, Arg: 2},
		// r2's polls delayed — lag the fleet without erroring.
		faultinject.Rule{Target: "r2", Match: "events", After: 7, Count: 2, Fault: faultinject.FaultDelay, Arg: 30},
		// A transient transport error on r1's object fetches.
		faultinject.Rule{Target: "r1", Match: "objects", After: 1 + k, Count: 1, Fault: faultinject.FaultErr},
	)
}

// runFleetStorm drives the 3-node fleet through a seeded push storm under
// stormSchedule's faults. With promote set, the primary is killed halfway
// through and r1 is promoted over the wire; the storm's second half then
// pushes to the new primary while r2 is re-pointed at it.
func runFleetStorm(t *testing.T, seed int64, promote bool) {
	t.Helper()
	pp, ts, owner := startPrimary(t)
	if err := owner.CreateRepo("fleet", "https://x/fleet", ""); err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Default()
	wcfg.Seed = seed
	wcfg.Depth, wcfg.Fanout, wcfg.FilesPerDir, wcfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(wcfg, 10)
	if err != nil {
		t.Fatal(err)
	}

	sched := stormSchedule(seed)
	newFollower := func(id string) (*hosting.Platform, *Replicator, func()) {
		rp := hosting.NewPlatform()
		cfg := testConfig(ts.URL, rp)
		cfg.ReplicaID = id
		cfg.Transport = faultinject.WrapTransport(id, sched, nil)
		rep, stop := runReplicator(t, cfg)
		return rp, rep, stop
	}
	rp1, rep1, _ := newFollower("r1")
	rp2, rep2, stop2 := newFollower("r2")
	rts1 := startReplicaServer(t, rp1, ts.URL, rep1)

	// acked holds every tip whose Sync was acknowledged — the set the
	// zero-loss property quantifies over. Pushes retry on transient faults;
	// only a returned nil acks the write.
	var acked []object.ID
	writer := owner
	push := func(tip object.ID) {
		t.Helper()
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		var lastErr error
		for attempt := 0; attempt < 5; attempt++ {
			if _, lastErr = writer.Sync(local, "prime", "fleet", "main"); lastErr == nil {
				acked = append(acked, tip)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("push %s never acknowledged: %v", tip.Short(), lastErr)
	}

	half := len(tips) / 2
	for _, tip := range tips[:half] {
		push(tip)
	}

	finalPrimary, finalPlatform := pp, pp
	_ = finalPrimary
	if promote {
		// r1 must be caught up before the old primary dies, or its
		// promotion would be refused (and acked writes could be lost).
		waitBranch(t, rp1, "prime", "fleet", "main", tips[half-1])
		waitFor(t, "r1 caught up", func() bool {
			st := rep1.Status()
			return st.Cursor > 0 && st.Cursor == st.Head
		})
		// kill -9 the primary: the listener dies with requests in flight.
		ts.Close()
		status, promo, errResp := postPromote(t, rts1.URL)
		if status != 200 || !promo.Promoted {
			t.Fatalf("promote r1 = %d %+v %+v", status, promo, errResp)
		}
		// Re-point the writer and the surviving follower at the new
		// primary. r2 full-resyncs (new primary, fresh epoch) — the epoch
		// fence doing its job.
		writer = extension.New(rts1.URL, mustToken(t, rp1, "prime"))
		stop2()
		cfg2 := testConfig(rts1.URL, rp2)
		cfg2.ReplicaID = "r2"
		cfg2.Transport = faultinject.WrapTransport("r2", sched, nil)
		rep2, _ = runReplicator(t, cfg2)
		finalPlatform = rp1
	}
	for _, tip := range tips[half:] {
		push(tip)
	}

	final := tips[len(tips)-1]
	if promote {
		waitBranch(t, rp2, "prime", "fleet", "main", final)
		assertSameClosure(t, rp1, rp2, "prime", "fleet", "main")
	} else {
		waitBranch(t, rp1, "prime", "fleet", "main", final)
		waitBranch(t, rp2, "prime", "fleet", "main", final)
		assertSameClosure(t, pp, rp1, "prime", "fleet", "main")
		assertSameClosure(t, pp, rp2, "prime", "fleet", "main")
	}

	// Zero acknowledged-write loss: every tip whose push was acknowledged
	// is still present on the surviving primary after convergence.
	repo, err := finalPlatform.Repo(context.Background(), "prime", "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if len(acked) != len(tips) {
		t.Fatalf("only %d of %d pushes acknowledged", len(acked), len(tips))
	}
	for _, tip := range acked {
		ok, err := repo.VCS.Objects.Has(tip)
		if err != nil || !ok {
			t.Errorf("acknowledged write %s lost after convergence (has=%v err=%v)", tip.Short(), ok, err)
		}
	}

	// The campaign must actually have fired faults — a schedule that never
	// triggers would pass every property vacuously.
	fired := 0
	for i := 0; i < 5; i++ {
		n := sched.Fired(i)
		fired += n
		t.Logf("rule %d fired %d times", i, n)
	}
	if fired == 0 {
		t.Error("fault schedule never fired; the storm exercised nothing")
	}

	if st := rep2.Status(); st.Cursor != st.Head {
		t.Errorf("r2 converged with cursor %d != head %d", st.Cursor, st.Head)
	}
}

// TestFleetFaultScheduleConvergence runs the storm across seeds with the
// primary alive throughout: both followers converge to bit-identical
// closures despite partitions, resets, replays and delays.
func TestFleetFaultScheduleConvergence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFleetStorm(t, seed, false)
		})
	}
}

// TestClientFailoverReadsDuringPrimaryOutage is the client-side acceptance
// criterion: a failover-aware client (reads routed to the replica, writes
// pinned read-your-writes) completes every read with zero user-visible
// errors while the primary is hard-down.
func TestClientFailoverReadsDuringPrimaryOutage(t *testing.T) {
	pp, ts, owner := startPrimary(t)
	_ = pp
	if err := owner.CreateRepo("ha", "https://x/ha", ""); err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Default()
	wcfg.Seed = 42
	wcfg.Depth, wcfg.Fanout, wcfg.FilesPerDir, wcfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(wcfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	rp := hosting.NewPlatform()
	rep, _ := runReplicator(t, testConfig(ts.URL, rp))
	rts := startReplicaServer(t, rp, ts.URL, rep)

	// One failover-aware client for both writes and reads: pushes go to the
	// primary, reads to the replica, and the shared pin enforces
	// read-your-writes across the replication lag.
	cl := owner.WithReadEndpoints(rts.URL)
	for _, tip := range tips {
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Sync(local, "prime", "ha", "main"); err != nil {
			t.Fatal(err)
		}
		// Immediately after the acknowledged push, a read through the same
		// client must already see the repo — never a stale-replica miss.
		if _, err := cl.GetRepo("prime", "ha"); err != nil {
			t.Fatalf("read-your-writes read after push %s: %v", tip.Short(), err)
		}
	}
	waitBranch(t, rp, "prime", "ha", "main", tips[len(tips)-1])

	// Primary goes hard-down. Every read must keep completing, served by
	// the replica, with zero user-visible errors.
	ts.Close()
	waitFor(t, "replica to notice primary death", func() bool {
		return rep.Status().LastError != ""
	})
	for i := 0; i < 10; i++ {
		meta, err := cl.GetRepo("prime", "ha")
		if err != nil {
			t.Fatalf("read %d during primary outage: %v", i, err)
		}
		if meta.Name != "ha" {
			t.Fatalf("read %d returned %+v", i, meta)
		}
		if _, _, err := cl.GenCite("prime", "ha", "main", "/"); err != nil {
			t.Fatalf("citation read %d during primary outage: %v", i, err)
		}
	}
}

// TestFleetMidStormPromotion is the headline acceptance scenario: the
// primary is killed halfway through the storm, r1 is promoted over the
// wire, the storm finishes against the new primary, r2 re-points and
// full-resyncs across the epoch fence — and still, zero acknowledged
// writes are lost and the survivors' closures are bit-identical.
func TestFleetMidStormPromotion(t *testing.T) {
	runFleetStorm(t, 7, true)
}
