// Package replica turns a hosting platform into a read-only follower of a
// primary server. The replication loop long-polls the primary's
// /api/v1/events feed from a journaled cursor, applies each event to its
// own platform — accounts and memberships through the idempotent
// Upsert/Ensure manifest paths, branch moves by pulling exactly the missing
// objects through the same negotiate/fetch machinery any client uses — and
// only then advances the cursor, fsync'd, so a crash at any instant resumes
// from a state-consistent position. Anything the feed cannot serve
// incrementally (primary restart → new epoch, cursor evicted from the
// retained window, an event type from a newer primary) degrades to a full
// resync from /api/v1/replica/snapshot, never to an error loop.
package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/hosting"
)

// defaultPollInterval paces periodic polling (and seeds the error backoff)
// when the configuration names none.
const defaultPollInterval = 2 * time.Second

// defaultLongPollWait is how long each events poll parks server-side when
// the configuration names none.
const defaultLongPollWait = 25 * time.Second

// maxErrBackoff caps the exponential backoff between failed loop steps.
const maxErrBackoff = 30 * time.Second

// errResync marks a state the loop cannot reach incrementally from its
// cursor; recovery is a full snapshot resync, not a retry.
var errResync = errors.New("replica: full resync required")

// Config wires a Replicator to its primary and its local platform.
type Config struct {
	// Primary is the primary server's base URL; Token its admin token —
	// the events and snapshot endpoints are admin-gated because account
	// tokens travel over them.
	Primary string
	Token   string
	// Platform is the local (follower) platform events are applied to. The
	// serving side must reject client writes (hosting.WithReplicaMode) so
	// the replication loop stays the platform's only writer.
	Platform *hosting.Platform
	// StateDir, when non-empty, holds the crash-safe cursor journal —
	// normally the same directory as the platform's pack store. Empty
	// means no journal: every restart is a full resync.
	StateDir string
	// PollInterval paces periodic polling and seeds the error backoff.
	// LongPollWait is the server-side park per events poll; negative
	// disables long-polling entirely (pure periodic polling).
	PollInterval time.Duration
	LongPollWait time.Duration
	Logger       *log.Logger
	// ReplicaID identifies this follower on the primary's events feed
	// (retention sizing, fleet status). Empty generates a fresh random ID
	// per process.
	ReplicaID string
	// Transport, when non-nil, replaces the HTTP transport the replication
	// loop's client uses — the fault-injection hook.
	Transport http.RoundTripper
}

// Replicator runs the follower side of replication. Create with New, drive
// with Run, surface with Status (wire it to hosting.WithReplicaMode), and
// retire with Promote (wire it to hosting.WithPromotion).
type Replicator struct {
	cfg      Config
	longPoll time.Duration
	id       string

	mu        sync.Mutex
	st        hosting.ReplicaStatus
	probe     bool // last events poll failed: next poll skips the long park
	cancel    context.CancelFunc
	runDone   chan struct{}
	promoting bool
	promoted  bool

	// crashPoint, when set by tests, is consulted at each promotion stage;
	// a non-nil return abandons Promote there — simulating the process
	// dying with whatever state reached disk.
	crashPoint func(stage string) error
}

// New prepares a replicator and loads any journaled cursor for this
// primary. A cursor journaled against a different primary (or torn, or
// CRC-failing) is ignored — the first Run step full-resyncs instead.
func New(cfg Config) (*Replicator, error) {
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	if cfg.Primary == "" {
		return nil, errors.New("replica: primary URL required")
	}
	if cfg.Platform == nil {
		return nil, errors.New("replica: platform required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = defaultPollInterval
	}
	switch {
	case cfg.LongPollWait < 0:
		cfg.LongPollWait = 0
	case cfg.LongPollWait == 0:
		cfg.LongPollWait = defaultLongPollWait
	}
	r := &Replicator{cfg: cfg, longPoll: cfg.LongPollWait, id: cfg.ReplicaID}
	if r.id == "" {
		var b [8]byte
		_, _ = rand.Read(b[:])
		r.id = hex.EncodeToString(b[:])
	}
	r.st = hosting.ReplicaStatus{Primary: cfg.Primary, Repos: map[string]hosting.ReplicaRepoStatus{}}
	if cfg.StateDir != "" {
		if rec, ok := loadCursorFile(cfg.StateDir, cfg.Primary); ok {
			r.st.Cursor, r.st.Epoch = rec.Cursor, rec.Epoch
		}
	}
	return r, nil
}

// Run drives the replication loop until ctx is cancelled or Promote stops
// it (the only ways it returns). Failed steps back off exponentially from
// the poll interval up to maxErrBackoff; any successful step resets it.
func (r *Replicator) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	r.mu.Lock()
	if r.promoting || r.promoted {
		r.mu.Unlock()
		return fmt.Errorf("%w: replicator promoted", hosting.ErrConflict)
	}
	r.cancel, r.runDone = cancel, done
	r.mu.Unlock()
	defer close(done)
	cl := extension.New(r.cfg.Primary, r.cfg.Token).WithContext(ctx)
	if r.cfg.Transport != nil {
		cl = cl.WithTransport(r.cfg.Transport)
	}
	backoff := r.cfg.PollInterval
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := r.step(ctx, cl); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			r.noteError(err)
			r.logf("replica: %v (retrying in %v)", err, backoff)
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			if backoff *= 2; backoff > maxErrBackoff {
				backoff = maxErrBackoff
			}
			continue
		}
		backoff = r.cfg.PollInterval
	}
}

// step performs one loop iteration: an events poll and the application of
// whatever it returned, or a full resync when there is no usable cursor.
func (r *Replicator) step(ctx context.Context, cl *extension.Client) error {
	cursor, epoch := r.position()
	if epoch == "" {
		return r.fullResync(ctx, cl)
	}
	wait := int(r.longPoll / time.Second)
	if r.inProbe() {
		// The previous poll failed; probe with a plain poll first so a
		// primary behind a park-killing proxy still replicates — the
		// "falling back to periodic polling" degradation.
		wait = 0
	}
	resp, err := cl.EventsAs(r.id, cursor, wait)
	if err != nil {
		r.setProbe(true)
		return err
	}
	r.setProbe(false)
	if resp.Reset || resp.Epoch != epoch {
		// The primary restarted (new epoch) or our cursor fell off the
		// retained window — including the journal-compaction case where a
		// journaled cursor lands past the new head. Re-negotiate from a
		// snapshot instead of erroring.
		r.logf("replica: cursor %d unusable (epoch %.8s→%.8s, reset=%v); full resync",
			cursor, epoch, resp.Epoch, resp.Reset)
		r.invalidate()
		return nil
	}
	if len(resp.Events) == 0 {
		r.noteHead(resp.Head)
		if wait == 0 {
			sleepCtx(ctx, r.cfg.PollInterval)
		}
		return nil
	}
	if err := r.applyEvents(ctx, cl, resp.Events); err != nil {
		if errors.Is(err, errResync) {
			r.invalidate()
			return nil
		}
		return err
	}
	// Apply, then journal: the cursor is only acknowledged once every
	// event it covers is fully applied (invariant 8). A crash between the
	// two re-applies this batch idempotently on resume.
	if err := r.saveCursor(resp.Events[len(resp.Events)-1].Seq, epoch); err != nil {
		return err
	}
	r.noteHead(resp.Head)
	return nil
}

// fullResync bootstraps (or re-bootstraps) from a snapshot: every account,
// repository, membership and branch tip, then the cursor the snapshot was
// captured at. Events racing the snapshot re-apply idempotently afterwards.
func (r *Replicator) fullResync(ctx context.Context, cl *extension.Client) error {
	snap, err := cl.ReplicaSnapshot()
	if err != nil {
		r.setProbe(true)
		return err
	}
	r.setProbe(false)
	for _, u := range snap.Users {
		if err := r.cfg.Platform.UpsertUser(ctx, u.Name, u.Token); err != nil {
			return err
		}
	}
	for _, sr := range snap.Repos {
		if err := r.cfg.Platform.EnsureRepo(ctx, sr.Owner, sr.Name, sr.URL, sr.License); err != nil {
			return err
		}
		for _, m := range sr.Members {
			if err := r.cfg.Platform.EnsureMember(ctx, sr.Owner, sr.Name, m); err != nil {
				return err
			}
		}
		branches := make([]string, 0, len(sr.Tips))
		for b := range sr.Tips {
			branches = append(branches, b)
		}
		sort.Strings(branches)
		for _, b := range branches {
			ev := hosting.Event{Seq: snap.Cursor, Type: hosting.EventRef,
				Owner: sr.Owner, Repo: sr.Name, Branch: b, Tip: sr.Tips[b]}
			if err := r.applyRef(ctx, cl, ev); err != nil {
				return err
			}
		}
	}
	if err := r.saveCursor(snap.Cursor, snap.Epoch); err != nil {
		return err
	}
	r.mu.Lock()
	r.st.FullResyncs++
	if r.st.Head < snap.Cursor {
		r.st.Head = snap.Cursor
	}
	r.mu.Unlock()
	r.logf("replica: full resync complete at cursor %d (%d users, %d repos)",
		snap.Cursor, len(snap.Users), len(snap.Repos))
	return nil
}

// applyEvents applies one poll's batch in feed order. A missing local
// dependency (hosting.ErrNotFound) or an event type from a newer primary
// means the incremental stream is not self-contained from here — resync.
func (r *Replicator) applyEvents(ctx context.Context, cl *extension.Client, evs []hosting.Event) error {
	for _, ev := range evs {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		switch ev.Type {
		case hosting.EventUser:
			err = r.cfg.Platform.UpsertUser(ctx, ev.Name, ev.Token)
		case hosting.EventRepo:
			err = r.cfg.Platform.EnsureRepo(ctx, ev.Owner, ev.Repo, ev.URL, ev.License)
		case hosting.EventMember:
			err = r.cfg.Platform.EnsureMember(ctx, ev.Owner, ev.Repo, ev.Member)
		case hosting.EventRef:
			err = r.applyRef(ctx, cl, ev)
		default:
			return fmt.Errorf("%w: unknown event type %q", errResync, ev.Type)
		}
		if errors.Is(err, hosting.ErrNotFound) {
			return fmt.Errorf("%w: %v", errResync, err)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// applyRef converges one branch onto the event's tip: a no-op when already
// there, otherwise a negotiated fetch of exactly the missing objects (the
// local branch tips are the have-set) that then points the branch at the
// tip. The repository's edit lock is held across the fetch, mirroring the
// primary's push discipline.
func (r *Replicator) applyRef(ctx context.Context, cl *extension.Client, ev hosting.Event) error {
	key := ev.Owner + "/" + ev.Repo
	r.notePending(key, ev.Seq)
	repo, release, err := r.cfg.Platform.AcquireRepo(ctx, ev.Owner, ev.Repo)
	if err != nil {
		return err
	}
	defer release()
	unlock, err := r.cfg.Platform.LockForEdit(ctx, ev.Owner, ev.Repo)
	if err != nil {
		return err
	}
	defer unlock()
	if cur, err := repo.VCS.BranchTip(ev.Branch); err == nil && cur.String() == ev.Tip {
		r.noteApplied(key, ev, 0)
		return nil
	}
	_, n, err := cl.Fetch(repo, ev.Owner, ev.Repo, ev.Tip, ev.Branch)
	if err != nil {
		return err
	}
	r.noteApplied(key, ev, n)
	return nil
}

// Promote turns this caught-up follower into a primary and returns the
// fresh events epoch it minted. The sequence is crash-ordered:
//
//  1. Verify the applied cursor has reached the primary's head — promoting
//     a lagging replica would drop acknowledged writes, so it is refused
//     with hosting.ErrNotCaughtUp (wire code "replica_lagging").
//  2. Stop the replication loop and wait for it to exit, so no event can
//     apply after the role flips.
//  3. Journal the promotion (replica.promoted, atomic rename) — the
//     durable commit point the boot path checks. A crash before it boots
//     as a follower; after it, as a primary. Never both.
//  4. Mint a fresh events epoch. Every follower of the old feed — the old
//     primary included, should it come back demoted — sees the epoch
//     change and full-resyncs, so no two primaries ever acknowledge
//     writes under the same epoch (invariant 9).
//
// Concurrent calls race on one mutex-guarded claim: exactly one proceeds,
// the rest fail with hosting.ErrConflict.
func (r *Replicator) Promote(ctx context.Context) (string, error) {
	r.mu.Lock()
	if r.promoting || r.promoted {
		r.mu.Unlock()
		return "", fmt.Errorf("%w: promotion already in progress or complete", hosting.ErrConflict)
	}
	if r.st.Epoch == "" || r.st.Cursor < r.st.Head {
		cursor, head := r.st.Cursor, r.st.Head
		r.mu.Unlock()
		return "", fmt.Errorf("%w: cursor %d behind head %d", hosting.ErrNotCaughtUp, cursor, head)
	}
	r.promoting = true
	cancel, done := r.cancel, r.runDone
	cursor := r.st.Cursor
	r.mu.Unlock()

	abort := func(err error) (string, error) {
		r.mu.Lock()
		r.promoting = false
		r.mu.Unlock()
		return "", err
	}
	if cancel != nil {
		cancel()
	}
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return abort(ctx.Err())
		}
	}
	if err := r.crash("loop-stopped"); err != nil {
		return abort(err)
	}
	if r.cfg.StateDir != "" {
		rec := PromotionRecord{OldPrimary: r.cfg.Primary, Cursor: cursor, PromotedAt: nowUnix()}
		if err := savePromotionFile(r.cfg.StateDir, rec); err != nil {
			return abort(err)
		}
	}
	if err := r.crash("journaled"); err != nil {
		return abort(err)
	}
	epoch := r.cfg.Platform.RotateEventEpoch()
	r.mu.Lock()
	r.promoting, r.promoted = false, true
	r.mu.Unlock()
	r.logf("replica: promoted to primary at cursor %d (epoch %.8s)", cursor, epoch)
	return epoch, nil
}

// crash consults the test-only crash hook at a promotion stage.
func (r *Replicator) crash(stage string) error {
	if r.crashPoint == nil {
		return nil
	}
	return r.crashPoint(stage)
}

// Status reports replication progress for the admin endpoint.
func (r *Replicator) Status() hosting.ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st
	if st.Lag = st.Head - st.Cursor; st.Lag < 0 {
		st.Lag = 0
	}
	st.Repos = make(map[string]hosting.ReplicaRepoStatus, len(r.st.Repos))
	for k, v := range r.st.Repos {
		st.Repos[k] = v
	}
	return st
}

// saveCursor journals the new resume point (when a state dir is
// configured) and only then acknowledges it in memory.
func (r *Replicator) saveCursor(cursor int64, epoch string) error {
	if r.cfg.StateDir != "" {
		rec := cursorRecord{Primary: r.cfg.Primary, Epoch: epoch, Cursor: cursor}
		if err := saveCursorFile(r.cfg.StateDir, rec); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.st.Cursor, r.st.Epoch = cursor, epoch
	r.st.LastError = ""
	r.mu.Unlock()
	return nil
}

func (r *Replicator) position() (cursor int64, epoch string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.Cursor, r.st.Epoch
}

// invalidate forgets the current epoch so the next step full-resyncs.
func (r *Replicator) invalidate() {
	r.mu.Lock()
	r.st.Epoch = ""
	r.mu.Unlock()
}

func (r *Replicator) noteHead(head int64) {
	r.mu.Lock()
	r.st.Head = head
	r.mu.Unlock()
}

func (r *Replicator) noteError(err error) {
	r.mu.Lock()
	r.st.LastError = err.Error()
	r.mu.Unlock()
}

func (r *Replicator) notePending(key string, seq int64) {
	r.mu.Lock()
	rs := r.st.Repos[key]
	if rs.PendingSeq < seq {
		rs.PendingSeq = seq
	}
	r.st.Repos[key] = rs
	r.mu.Unlock()
}

func (r *Replicator) noteApplied(key string, ev hosting.Event, fetched int) {
	now := time.Now().Unix()
	r.mu.Lock()
	rs := r.st.Repos[key]
	if rs.AppliedSeq < ev.Seq {
		rs.AppliedSeq = ev.Seq
	}
	rs.Branch, rs.Tip, rs.AppliedAt = ev.Branch, ev.Tip, now
	r.st.Repos[key] = rs
	r.st.ObjectsFetched += int64(fetched)
	r.st.LastAppliedAt = now
	r.mu.Unlock()
}

func (r *Replicator) inProbe() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probe
}

func (r *Replicator) setProbe(v bool) {
	r.mu.Lock()
	r.probe = v
	r.mu.Unlock()
}

func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf(format, args...)
	}
}

// sleepCtx parks for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
