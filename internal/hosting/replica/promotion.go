// promotion.go persists the one-way follower→primary transition with the
// same crash framing as the cursor journal. The atomic rename of
// replica.promoted is promotion's durable commit point: a crash strictly
// before it boots as a follower of the old primary (the promotion simply
// never happened), a crash anywhere after it boots as a primary — the
// server's boot path checks LoadPromotion before wiring the replication
// loop. There is no torn middle state, which is what makes kill -9 during
// promotion land in exactly one of the two roles.
package replica

import (
	"encoding/json"
	"time"
)

// promotedHeader is the first line of the promotion journal; a file
// without it is not ours and is ignored rather than misread.
const promotedHeader = "gitcite-promoted v1\n"

// promotedFileName is the promotion journal's name under the replica
// state dir — next to replica.cursor, which it supersedes.
const promotedFileName = "replica.promoted"

// PromotionRecord journals a completed promotion: which primary this node
// used to follow and the feed cursor it had fully applied when it took
// over. OldPrimary lets operators audit the topology change; Cursor proves
// the promotion preserved every acknowledged write at or below it.
type PromotionRecord struct {
	OldPrimary string `json:"oldPrimary"`
	Cursor     int64  `json:"cursor"`
	PromotedAt int64  `json:"promotedAtUnix"`
}

// savePromotionFile atomically journals the promotion (tmp + fsync +
// rename + directory fsync).
func savePromotionFile(dir string, rec PromotionRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeFramedFile(dir, promotedFileName, promotedHeader, payload)
}

// LoadPromotion reports whether the state dir records a completed
// promotion — the boot-time role decision. ok is false for a missing,
// torn or CRC-failing file (boot as the configured follower); callers
// never see an error because the recovery is the same either way.
func LoadPromotion(dir string) (PromotionRecord, bool) {
	payload, ok := readFramedFile(dir, promotedFileName, promotedHeader)
	if !ok {
		return PromotionRecord{}, false
	}
	var rec PromotionRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return PromotionRecord{}, false
	}
	if rec.Cursor < 0 {
		return PromotionRecord{}, false
	}
	return rec, true
}

// nowUnix is stubbed in tests for deterministic PromotedAt stamps.
var nowUnix = func() int64 { return time.Now().Unix() }
