// Tests for promotion: the lagging refusal (in-process and over the wire
// with its stable code), the concurrent-promote race (exactly one winner),
// the kill -9 crash points (each lands in exactly one role at next boot),
// and the promotion journal's crash rules.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/workload"
)

// startReplicaServer serves rp as a read replica of the primary at
// primaryURL, with promotion wired — the full topology a promotable
// follower runs in production.
func startReplicaServer(t *testing.T, rp *hosting.Platform, primaryURL string, rep *Replicator) *httptest.Server {
	t.Helper()
	rts := httptest.NewServer(hosting.NewServer(rp,
		hosting.WithAdminToken(adminTok),
		hosting.WithReplicaMode(primaryURL, rep.Status),
		hosting.WithPromotion(rep.Promote),
	))
	t.Cleanup(rts.Close)
	return rts
}

// postPromote fires POST /api/v1/admin/promote and decodes either body.
func postPromote(t *testing.T, baseURL string) (status int, promo hosting.PromoteResponse, errResp hosting.ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/api/v1/admin/promote", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+adminTok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &promo); err != nil {
			t.Fatalf("promote 200 body %q: %v", buf.String(), err)
		}
	} else if err := json.Unmarshal(buf.Bytes(), &errResp); err != nil {
		t.Fatalf("promote %d body %q: %v", resp.StatusCode, buf.String(), err)
	}
	return resp.StatusCode, promo, errResp
}

// TestPromoteRefusesLaggingReplica pins the refusal both in-process (the
// sentinel) and over the wire (409 with the stable "replica_lagging" code):
// promoting a replica that has not applied through the primary's head would
// drop acknowledged writes, so it must never succeed.
func TestPromoteRefusesLaggingReplica(t *testing.T) {
	rep, err := New(Config{Primary: "http://p", Platform: hosting.NewPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	// A replica that has applied cursor 3 of a feed whose head is 7.
	rep.mu.Lock()
	rep.st.Epoch, rep.st.Cursor, rep.st.Head = "e1", 3, 7
	rep.mu.Unlock()
	if _, err := rep.Promote(context.Background()); !errors.Is(err, hosting.ErrNotCaughtUp) {
		t.Fatalf("Promote on lagging replica = %v, want ErrNotCaughtUp", err)
	}
	// A replica that never bootstrapped (no epoch) is maximally lagging.
	rep2, _ := New(Config{Primary: "http://p", Platform: hosting.NewPlatform()})
	if _, err := rep2.Promote(context.Background()); !errors.Is(err, hosting.ErrNotCaughtUp) {
		t.Fatalf("Promote on unbootstrapped replica = %v, want ErrNotCaughtUp", err)
	}

	// Over the wire: the refusal is a 409 with the stable code.
	rp := hosting.NewPlatform()
	rts := startReplicaServer(t, rp, "http://p", rep)
	status, _, errResp := postPromote(t, rts.URL)
	if status != http.StatusConflict || errResp.Code != hosting.CodeNotCaughtUp {
		t.Fatalf("wire refusal = %d code %q, want 409 %q", status, errResp.Code, hosting.CodeNotCaughtUp)
	}
}

// TestConcurrentPromotesExactlyOneWins races many promote requests at one
// caught-up replica: exactly one 200, everyone else a stable 409, and the
// winner's epoch is the platform's new feed epoch.
func TestConcurrentPromotesExactlyOneWins(t *testing.T) {
	pp, ts, owner := startPrimary(t)
	_ = pp
	if err := owner.CreateRepo("race", "https://x/race", ""); err != nil {
		t.Fatal(err)
	}
	cfg := workload.Default()
	cfg.Seed = 21
	cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tip := range tips {
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		if _, err := owner.Sync(local, "prime", "race", "main"); err != nil {
			t.Fatal(err)
		}
	}

	rp := hosting.NewPlatform()
	rep, _ := runReplicator(t, testConfig(ts.URL, rp))
	rts := startReplicaServer(t, rp, ts.URL, rep)
	waitBranch(t, rp, "prime", "race", "main", tips[len(tips)-1])
	waitFor(t, "replica caught up", func() bool {
		st := rep.Status()
		return st.Cursor > 0 && st.Cursor == st.Head
	})

	const racers = 8
	statuses := make([]int, racers)
	epochs := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, promo, _ := postPromote(t, rts.URL)
			statuses[i], epochs[i] = status, promo.Epoch
		}(i)
	}
	wg.Wait()

	var wins int
	var epoch string
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			wins++
			epoch = epochs[i]
		case http.StatusConflict:
		default:
			t.Errorf("racer %d got unexpected status %d", i, st)
		}
	}
	if wins != 1 {
		t.Fatalf("%d promotes won, want exactly 1 (statuses %v)", wins, statuses)
	}
	if epoch == "" {
		t.Fatal("winning promote returned an empty epoch")
	}
}

// TestKillMidPromotionLandsInExactlyOneRole simulates kill -9 at each
// promotion stage and asserts the boot-time role decision is binary: a
// crash before the journal rename boots as a follower (no promotion
// happened), a crash after it boots as a primary — never a third state.
func TestKillMidPromotionLandsInExactlyOneRole(t *testing.T) {
	for _, tc := range []struct {
		stage       string
		wantPrimary bool
	}{
		{"loop-stopped", false}, // crash before the journal: still a follower
		{"journaled", true},     // crash after the journal: already a primary
	} {
		t.Run(tc.stage, func(t *testing.T) {
			dir := t.TempDir()
			rep, err := New(Config{Primary: "http://p", Platform: hosting.NewPlatform(), StateDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			rep.mu.Lock()
			rep.st.Epoch, rep.st.Cursor, rep.st.Head = "e1", 9, 9
			rep.mu.Unlock()
			killed := errors.New("simulated kill -9")
			rep.crashPoint = func(stage string) error {
				if stage == tc.stage {
					return killed
				}
				return nil
			}
			if _, err := rep.Promote(context.Background()); !errors.Is(err, killed) {
				t.Fatalf("Promote = %v, want the simulated crash", err)
			}
			promo, ok := LoadPromotion(dir)
			if ok != tc.wantPrimary {
				t.Fatalf("crash at %s: LoadPromotion ok = %v, want %v", tc.stage, ok, tc.wantPrimary)
			}
			if tc.wantPrimary && promo.Cursor != 9 {
				t.Errorf("journaled cursor = %d, want 9", promo.Cursor)
			}
		})
	}
}

// TestPromotionJournalCrashRules pins LoadPromotion's recovery behaviour:
// round-trip, and missing/torn/CRC-corrupted files all read as "not
// promoted" — the follower role — never as a phantom promotion.
func TestPromotionJournalCrashRules(t *testing.T) {
	dir := t.TempDir()
	if _, ok := LoadPromotion(dir); ok {
		t.Error("missing promotion file loaded")
	}
	rec := PromotionRecord{OldPrimary: "http://p", Cursor: 17, PromotedAt: 123}
	if err := savePromotionFile(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadPromotion(dir)
	if !ok || got != rec {
		t.Fatalf("round-trip = %+v, %v", got, ok)
	}

	path := filepath.Join(dir, promotedFileName)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(whole) - 1; cut > 0; cut -= 5 {
		if err := os.WriteFile(path, whole[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		if got, ok := LoadPromotion(dir); ok {
			t.Fatalf("torn file (%d bytes) loaded as %+v", cut, got)
		}
	}
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-4] ^= 0x20
	if err := os.WriteFile(path, corrupt, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadPromotion(dir); ok {
		t.Error("CRC-corrupted promotion file loaded")
	}
}

// TestPromoteFlipsServerToPrimary is the end-to-end role flip: a caught-up
// replica promotes over the wire, the 307 write gate drops, a push lands
// locally under the fresh epoch, and a second promote reports "conflict" —
// the server is already a primary.
func TestPromoteFlipsServerToPrimary(t *testing.T) {
	pp, ts, owner := startPrimary(t)
	if err := owner.CreateRepo("flip", "https://x/flip", ""); err != nil {
		t.Fatal(err)
	}
	cfg := workload.Default()
	cfg.Seed = 33
	cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tip := range tips[:3] {
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		if _, err := owner.Sync(local, "prime", "flip", "main"); err != nil {
			t.Fatal(err)
		}
	}

	rp := hosting.NewPlatform()
	rep, _ := runReplicator(t, testConfig(ts.URL, rp))
	rts := startReplicaServer(t, rp, ts.URL, rep)
	waitBranch(t, rp, "prime", "flip", "main", tips[2])
	waitFor(t, "replica caught up", func() bool {
		st := rep.Status()
		return st.Cursor > 0 && st.Cursor == st.Head
	})

	status, promo, _ := postPromote(t, rts.URL)
	if status != http.StatusOK || !promo.Promoted || promo.Epoch == "" {
		t.Fatalf("promote = %d %+v", status, promo)
	}

	// The write gate dropped: a push to the promoted server lands locally
	// (no 307 back to the dead primary) using credentials replicated from
	// the old feed.
	_ = pp
	newPrimary := extension.New(rts.URL, mustToken(t, rp, "prime"))
	if err := local.VCS.Refs.Set(refs.BranchRef("main"), tips[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := newPrimary.Sync(local, "prime", "flip", "main"); err != nil {
		t.Fatalf("push to promoted server: %v", err)
	}
	repo, err := rp.Repo(context.Background(), "prime", "flip")
	if err != nil {
		t.Fatal(err)
	}
	if tip, err := repo.VCS.BranchTip("main"); err != nil || tip != tips[3] {
		t.Fatalf("promoted server tip = %v, %v, want %s", tip, err, tips[3].Short())
	}

	// Promoting a primary is a stable conflict, not a 500.
	status, _, errResp := postPromote(t, rts.URL)
	if status != http.StatusConflict || errResp.Code != hosting.CodeConflict {
		t.Fatalf("second promote = %d code %q, want 409 %q", status, errResp.Code, hosting.CodeConflict)
	}
}
