// Tests for the follower: the catch-up property (random push storms on the
// primary converge the replica to bit-identical closures), crash-resume
// from the journaled cursor, full resync after a primary restart, the
// O(delta) wire bound per replicated push, and the cursor journal's crash
// rules.
package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
	"github.com/gitcite/gitcite/internal/workload"
)

const adminTok = "replica-admin-tok"

// startPrimary serves a fresh in-memory platform with the admin token the
// replication feed requires, and returns an owner client for pushes.
func startPrimary(t *testing.T) (*hosting.Platform, *httptest.Server, *extension.Client) {
	t.Helper()
	p := hosting.NewPlatform()
	ts := httptest.NewServer(hosting.NewServer(p, hosting.WithAdminToken(adminTok)))
	t.Cleanup(ts.Close)
	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("prime")
	if err != nil {
		t.Fatal(err)
	}
	return p, ts, anon.WithToken(tok)
}

// runReplicator launches cfg's replication loop; the returned stop cancels
// it and waits for Run to return.
func runReplicator(t *testing.T, cfg Config) (*Replicator, func()) {
	t.Helper()
	rep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rep.Run(ctx)
	}()
	stop := func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return rep, stop
}

func testConfig(primary string, p *hosting.Platform) Config {
	return Config{
		Primary: primary, Token: adminTok, Platform: p,
		PollInterval: 5 * time.Millisecond, LongPollWait: time.Second,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitBranch waits until the replica's branch reaches want.
func waitBranch(t *testing.T, p *hosting.Platform, owner, name, branch string, want object.ID) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%s/%s@%s → %s", owner, name, branch, want.Short()), func() bool {
		repo, err := p.Repo(context.Background(), owner, name)
		if err != nil {
			return false
		}
		tip, err := repo.VCS.BranchTip(branch)
		return err == nil && tip == want
	})
}

func closureSet(t *testing.T, s store.Store, root object.ID) map[object.ID]bool {
	t.Helper()
	ids, err := store.ClosureIDs(s, root)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[object.ID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// assertSameClosure proves bit-identical convergence: object IDs are
// content hashes, so ID-set equality over the closure is byte equality.
func assertSameClosure(t *testing.T, primary, replica *hosting.Platform, owner, name, branch string) {
	t.Helper()
	prepo, err := primary.Repo(context.Background(), owner, name)
	if err != nil {
		t.Fatal(err)
	}
	rrepo, err := replica.Repo(context.Background(), owner, name)
	if err != nil {
		t.Fatal(err)
	}
	ptip, err := prepo.VCS.BranchTip(branch)
	if err != nil {
		t.Fatal(err)
	}
	rtip, err := rrepo.VCS.BranchTip(branch)
	if err != nil {
		t.Fatal(err)
	}
	if ptip != rtip {
		t.Fatalf("%s tips differ: primary %s, replica %s", branch, ptip.Short(), rtip.Short())
	}
	pset := closureSet(t, prepo.VCS.Objects, ptip)
	rset := closureSet(t, rrepo.VCS.Objects, rtip)
	if len(pset) != len(rset) {
		t.Fatalf("%s closures differ: primary %d objects, replica %d", branch, len(pset), len(rset))
	}
	for id := range pset {
		if !rset[id] {
			t.Fatalf("%s closure object %s missing on replica", branch, id.Short())
		}
	}
}

// TestFollowerCatchUpProperty is the acceptance property test: random push
// storms across several branches on the primary while the follower is live;
// after convergence every branch closure is bit-identical, and accounts and
// memberships replicated too.
func TestFollowerCatchUpProperty(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pp, ts, owner := startPrimary(t)
			cfg := workload.Default()
			cfg.Seed = seed
			cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
			local, tips, err := workload.BuildHistory(cfg, 13)
			if err != nil {
				t.Fatal(err)
			}
			if err := owner.CreateRepo("storm", "https://x/storm", ""); err != nil {
				t.Fatal(err)
			}

			rp := hosting.NewPlatform()
			rep, _ := runReplicator(t, testConfig(ts.URL, rp))

			// The storm: every history tip pushed to one of three branches,
			// interleaved with account/membership mutations mid-stream.
			branches := []string{"b0", "b1", "b2"}
			finals := map[string]object.ID{}
			for i, tip := range tips {
				b := branches[i%len(branches)]
				if err := local.VCS.Refs.Set(refs.BranchRef(b), tip); err != nil {
					t.Fatal(err)
				}
				if _, err := owner.Sync(local, "prime", "storm", b); err != nil {
					t.Fatal(err)
				}
				finals[b] = tip
				if i == len(tips)/2 {
					anon := extension.New(ts.URL, "")
					if _, err := anon.CreateUser(fmt.Sprintf("mid%d", seed)); err != nil {
						t.Fatal(err)
					}
					if err := owner.AddMember("prime", "storm", fmt.Sprintf("mid%d", seed)); err != nil {
						t.Fatal(err)
					}
				}
			}

			for _, b := range branches {
				waitBranch(t, rp, "prime", "storm", b, finals[b])
				assertSameClosure(t, pp, rp, "prime", "storm", b)
			}
			member := fmt.Sprintf("mid%d", seed)
			waitFor(t, "membership replication", func() bool {
				return rp.IsMember(context.Background(), member, "prime", "storm")
			})
			// Account tokens replicated: the primary's credentials
			// authenticate on the replica.
			pu, err := pp.Authenticate(context.Background(), mustToken(t, pp, member))
			if err != nil {
				t.Fatal(err)
			}
			if ru, err := rp.Authenticate(context.Background(), pu.Token); err != nil || ru.Name != member {
				t.Errorf("replica Authenticate(%s) = %v, %v", member, ru, err)
			}
			if st := rep.Status(); st.Cursor == 0 || st.Cursor != st.Head {
				t.Errorf("post-convergence status cursor=%d head=%d", st.Cursor, st.Head)
			}
		})
	}
}

// mustToken digs a user's token out of a platform through its snapshot.
func mustToken(t *testing.T, p *hosting.Platform, name string) string {
	t.Helper()
	snap, err := p.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range snap.Users {
		if u.Name == name {
			return u.Token
		}
	}
	t.Fatalf("no user %q on platform", name)
	return ""
}

// TestKillMidCatchUpResumesFromJournaledCursor crashes the follower in the
// middle of a push storm — the replication loop is cancelled and its
// platform abandoned without Close, exactly the state kill -9 leaves on
// disk — and verifies a fresh process over the same directory resumes from
// the journaled cursor, without a full resync, and converges.
func TestKillMidCatchUpResumesFromJournaledCursor(t *testing.T) {
	pp, ts, owner := startPrimary(t)
	cfg := workload.Default()
	cfg.Seed = 5
	cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.CreateRepo("crashy", "https://x/crashy", ""); err != nil {
		t.Fatal(err)
	}
	push := func(tip object.ID) {
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		if _, err := owner.Sync(local, "prime", "crashy", "main"); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	rp1, err := hosting.OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := testConfig(ts.URL, rp1)
	cfg1.StateDir = dir
	rep1, stop1 := runReplicator(t, cfg1)

	// First half of the storm; wait until at least one batch is journaled.
	for _, tip := range tips[:6] {
		push(tip)
	}
	waitFor(t, "first journaled cursor", func() bool { return rep1.Status().Cursor > 0 })

	// kill -9: cancel the loop mid-catch-up and abandon the platform
	// without closing it. Everything that matters is already fsync'd —
	// the manifest journal by the platform, the cursor by saveCursor.
	stop1()
	killedAt := rep1.Status().Cursor

	// The primary keeps moving while the replica is down.
	for _, tip := range tips[6:] {
		push(tip)
	}

	rp2, err := hosting.OpenPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rp2.Close() })
	cfg2 := testConfig(ts.URL, rp2)
	cfg2.StateDir = dir
	rep2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep2.Status().Cursor; got != killedAt || got == 0 {
		t.Fatalf("restarted replica loaded cursor %d, journaled %d", got, killedAt)
	}
	rep2, _ = runReplicator(t, cfg2)

	waitBranch(t, rp2, "prime", "crashy", "main", tips[len(tips)-1])
	assertSameClosure(t, pp, rp2, "prime", "crashy", "main")
	if st := rep2.Status(); st.FullResyncs != 0 {
		t.Errorf("resume within the retained window full-resynced %d times, want 0", st.FullResyncs)
	}
}

// TestPrimaryRestartTriggersFullResync restarts the primary mid-stream (new
// process → new feed epoch, journal compacted, cursor past the new head)
// and verifies the follower degrades to one clean full resync — not an
// error loop — and converges on the post-restart pushes.
func TestPrimaryRestartTriggersFullResync(t *testing.T) {
	pdir := t.TempDir()
	pp1, err := hosting.OpenPlatform(pdir)
	if err != nil {
		t.Fatal(err)
	}
	var handler atomic.Value
	handler.Store(http.Handler(hosting.NewServer(pp1, hosting.WithAdminToken(adminTok))))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("prime")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("flappy", "https://x/flappy", ""); err != nil {
		t.Fatal(err)
	}
	cfg := workload.Default()
	cfg.Seed = 9
	cfg.Depth, cfg.Fanout, cfg.FilesPerDir, cfg.FileBytes = 2, 2, 3, 64
	local, tips, err := workload.BuildHistory(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	push := func(tip object.ID) {
		if err := local.VCS.Refs.Set(refs.BranchRef("main"), tip); err != nil {
			t.Fatal(err)
		}
		if _, err := owner.Sync(local, "prime", "flappy", "main"); err != nil {
			t.Fatal(err)
		}
	}
	for _, tip := range tips[:5] {
		push(tip)
	}

	rp := hosting.NewPlatform()
	rcfg := testConfig(ts.URL, rp)
	rcfg.StateDir = t.TempDir()
	rep, _ := runReplicator(t, rcfg)
	waitBranch(t, rp, "prime", "flappy", "main", tips[4])
	if got := rep.Status().FullResyncs; got != 1 {
		t.Fatalf("bootstrap full resyncs = %d, want 1", got)
	}

	// Restart the primary: graceful close (manifest compacts), new process.
	if err := pp1.Close(); err != nil {
		t.Fatal(err)
	}
	pp2, err := hosting.OpenPlatform(pdir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pp2.Close() })
	handler.Store(http.Handler(hosting.NewServer(pp2, hosting.WithAdminToken(adminTok))))

	for _, tip := range tips[5:] {
		push(tip)
	}
	waitBranch(t, rp, "prime", "flappy", "main", tips[len(tips)-1])
	assertSameClosure(t, pp2, rp, "prime", "flappy", "main")
	st := rep.Status()
	if st.FullResyncs != 2 {
		t.Errorf("full resyncs after primary restart = %d, want exactly 2", st.FullResyncs)
	}
	if st.LastError != "" {
		t.Errorf("converged with lingering error %q", st.LastError)
	}
}

// buildWideRepo commits n files in a three-level tree on "main" — the same
// layout the wire-delta bound is specified against.
func buildWideRepo(t *testing.T, n int) (*gitcite.Repo, *gitcite.Worktree) {
	t.Helper()
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "r", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/d%d/s%d/f%d.txt", i%10, (i/10)%10, i)
		if err := wt.WriteFile(p, []byte(fmt.Sprintf("seed %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(1, 0)), Message: "seed"}); err != nil {
		t.Fatal(err)
	}
	return repo, wt
}

// TestReplicatedPushMovesOnlyTheDelta pins the wire bound: after the
// replica is warm, each one-file push on a 500-file repository replicates
// in at most depth+2 (+1 for citation.cite) fetched objects — asserted per
// iteration, the PR 3 delta bound carried over the replication path.
func TestReplicatedPushMovesOnlyTheDelta(t *testing.T) {
	_, ts, owner := startPrimary(t)
	local, wt := buildWideRepo(t, 500)
	if err := owner.CreateRepo("wide", "https://x/wide", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Sync(local, "prime", "wide", "main"); err != nil {
		t.Fatal(err)
	}

	rp := hosting.NewPlatform()
	rep, _ := runReplicator(t, testConfig(ts.URL, rp))
	seedTip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	waitBranch(t, rp, "prime", "wide", "main", seedTip)

	const bound = 3 + 2 + 1 // depth trees + blob + commit, + citation.cite blob
	for i := 0; i < 5; i++ {
		before := rep.Status().ObjectsFetched
		if err := wt.WriteFile("/d3/s4/f43.txt", []byte(fmt.Sprintf("edit %d", i))); err != nil {
			t.Fatal(err)
		}
		tip, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(int64(10+i), 0)), Message: "edit"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := owner.Sync(local, "prime", "wide", "main"); err != nil {
			t.Fatal(err)
		}
		waitBranch(t, rp, "prime", "wide", "main", tip)
		if delta := rep.Status().ObjectsFetched - before; delta > bound {
			t.Errorf("push %d replicated %d wire objects, want ≤ %d", i, delta, bound)
		}
	}
}

// TestCursorJournalCrashRules pins the journal's recovery behaviour: a
// clean record round-trips; missing, foreign, torn and corrupted files all
// read as "no cursor" — the full-resync path — never as a wrong cursor.
func TestCursorJournalCrashRules(t *testing.T) {
	dir := t.TempDir()
	if _, ok := loadCursorFile(dir, "http://p"); ok {
		t.Error("missing cursor file loaded")
	}
	rec := cursorRecord{Primary: "http://p", Epoch: "e1", Cursor: 42}
	if err := saveCursorFile(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := loadCursorFile(dir, "http://p")
	if !ok || got != rec {
		t.Fatalf("round-trip = %+v, %v", got, ok)
	}
	if _, ok := loadCursorFile(dir, "http://other"); ok {
		t.Error("cursor journaled against another primary loaded")
	}

	path := filepath.Join(dir, cursorFileName)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail: every strict prefix must read as no-cursor.
	for cut := len(whole) - 1; cut > 0; cut -= 7 {
		if err := os.WriteFile(path, whole[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		if got, ok := loadCursorFile(dir, "http://p"); ok {
			t.Fatalf("torn file (%d bytes) loaded as %+v", cut, got)
		}
	}
	// Flipped payload byte: CRC must reject.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-4] ^= 0x20
	if err := os.WriteFile(path, corrupt, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadCursorFile(dir, "http://p"); ok {
		t.Error("CRC-corrupted cursor file loaded")
	}
	// A re-save over the wreckage recovers.
	rec.Cursor = 43
	if err := saveCursorFile(dir, rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := loadCursorFile(dir, "http://p"); !ok || got.Cursor != 43 {
		t.Errorf("re-saved cursor = %+v, %v", got, ok)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Primary: "", Platform: hosting.NewPlatform()}); err == nil {
		t.Error("New accepted an empty primary")
	}
	if _, err := New(Config{Primary: "http://p"}); err == nil {
		t.Error("New accepted a nil platform")
	}
	rep, err := New(Config{Primary: "http://p/", Platform: hosting.NewPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Status().Primary; got != "http://p" {
		t.Errorf("primary = %q, want trailing slash trimmed", got)
	}
}
