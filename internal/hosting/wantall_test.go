// Tests for the pack-era sync additions: want-all negotiate (cold-clone
// negotiate bodies stay O(1) instead of one ID per object), chunked fetch
// requests, ordered-index abbreviated-revision resolution (no full-store
// scan), and the pack-backed hosting storage factory.
package hosting_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// negotiateRaw POSTs a negotiate body and returns the response and its raw
// byte size.
func negotiateRaw(t *testing.T, serverURL, owner, repo string, req hosting.NegotiateRequest) (hosting.NegotiateResponse, int, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/api/v1/repos/%s/%s/negotiate", serverURL, owner, repo),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var neg hosting.NegotiateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &neg); err != nil {
			t.Fatalf("negotiate body: %v", err)
		}
	}
	return neg, buf.Len(), resp.StatusCode
}

// TestNegotiateWantAllBodyBound pins the cold-clone negotiate bound: a
// 1000-file repository's plain negotiate answers with one ID per object
// (~65 KB), while want-all answers in O(1) bytes — no per-object ID list in
// the response, however large the closure.
func TestNegotiateWantAllBodyBound(t *testing.T) {
	fx := newFixture(t)
	local, _ := buildNFileRepo(t, 1000)
	if err := fx.owner.CreateRepo("big", "https://x/big", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "big", "main"); err != nil {
		t.Fatal(err)
	}
	tip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	closure := closureSet(t, local.VCS.Objects, tip)

	plain, plainBytes, status := negotiateRaw(t, fx.server.URL, "leshang", "big", hosting.NegotiateRequest{Want: "main"})
	if status != http.StatusOK {
		t.Fatalf("plain negotiate status %d", status)
	}
	if len(plain.Missing) != len(closure) {
		t.Fatalf("plain negotiate listed %d IDs, closure has %d", len(plain.Missing), len(closure))
	}

	all, allBytes, status := negotiateRaw(t, fx.server.URL, "leshang", "big", hosting.NegotiateRequest{Want: "main", Mode: hosting.NegotiateModeWantAll})
	if status != http.StatusOK {
		t.Fatalf("want-all negotiate status %d", status)
	}
	if !all.All || len(all.Missing) != 0 {
		t.Errorf("want-all response: All=%v, %d Missing IDs (want true, 0)", all.All, len(all.Missing))
	}
	if all.Count != len(closure) {
		t.Errorf("want-all Count = %d, want %d", all.Count, len(closure))
	}
	// The bound: a want-all body must not scale with the object count. 256
	// bytes comfortably holds {tip, all, count} and nothing per-object.
	if allBytes > 256 {
		t.Errorf("want-all negotiate body = %d bytes, want <= 256 (plain body was %d)", allBytes, plainBytes)
	}
	if allBytes*10 > plainBytes {
		t.Errorf("want-all body (%d B) not an order of magnitude under plain (%d B)", allBytes, plainBytes)
	}
}

func TestNegotiateRejectsUnknownMode(t *testing.T) {
	fx := newFixture(t)
	_, _, status := negotiateRaw(t, fx.server.URL, "leshang", "P1", hosting.NegotiateRequest{Want: "main", Mode: "want-some"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown negotiate mode: status %d, want 400", status)
	}
}

// TestColdCloneFetchWantAll checks the client side: a clone with no local
// state fetches through want-all + the streaming pull endpoint and ends
// bit-identical to the server.
func TestColdCloneFetchWantAll(t *testing.T) {
	fx := newFixture(t)
	local, _ := buildNFileRepo(t, 300)
	if err := fx.owner.CreateRepo("cold", "https://x/cold", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "cold", "main"); err != nil {
		t.Fatal(err)
	}
	tip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	want := closureSet(t, local.VCS.Objects, tip)

	clone, err := fx.owner.Clone("leshang", "cold", "main")
	if err != nil {
		t.Fatal(err)
	}
	got := closureSet(t, clone.VCS.Objects, tip)
	if len(got) != len(want) {
		t.Fatalf("clone closure has %d objects, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("clone closure missing %s", id.Short())
		}
	}
}

// TestFetchChunksLargeDelta gives a warm clone a delta larger than the
// client's fetch chunk size (2048) and checks the chunked fetch still
// transfers exactly the delta.
func TestFetchChunksLargeDelta(t *testing.T) {
	fx := newFixture(t)
	local, wt := buildNFileRepo(t, 10)
	if err := fx.owner.CreateRepo("wide", "https://x/wide", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "wide", "main"); err != nil {
		t.Fatal(err)
	}
	clone, err := fx.owner.Clone("leshang", "wide", "main")
	if err != nil {
		t.Fatal(err)
	}

	// One commit adding ~2500 blobs pushes the delta past one chunk.
	for i := 0; i < 2500; i++ {
		p := fmt.Sprintf("/wide/w%d/f%d.txt", i%50, i)
		if err := wt.WriteFile(p, []byte(fmt.Sprintf("wide %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tip, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("o", "o@x", time.Unix(9, 0)), Message: "wide"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "wide", "main"); err != nil {
		t.Fatal(err)
	}

	_, n, err := fx.owner.Fetch(clone, "leshang", "wide", "main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if n <= 2500 {
		t.Fatalf("chunked fetch transferred %d objects, want > 2500", n)
	}
	want := closureSet(t, local.VCS.Objects, tip)
	got := closureSet(t, clone.VCS.Objects, tip)
	if len(got) != len(want) {
		t.Fatalf("clone closure has %d objects, want %d", len(got), len(want))
	}
}

// TestColdCloneFallsBackOnLegacyServer wraps a real server with a shim
// that rejects negotiate bodies carrying the "mode" field — exactly how a
// pre-want-all server's strict body decoding reacts — and checks a cold
// clone still succeeds through the client's plain-negotiate fallback.
func TestColdCloneFallsBackOnLegacyServer(t *testing.T) {
	platform := hosting.NewPlatform()
	real := hosting.NewServer(platform)
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/negotiate") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			if bytes.Contains(body, []byte(`"mode"`)) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_, _ = w.Write([]byte(`{"code":"bad_request","error":"body: json: unknown field \"mode\""}`))
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(legacy.Close)

	anon := extension.New(legacy.URL, "")
	tok, err := anon.CreateUser("older")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("lg", "https://x/lg", ""); err != nil {
		t.Fatal(err)
	}
	local, _ := buildNFileRepo(t, 60)
	if _, err := owner.Sync(local, "older", "lg", "main"); err != nil {
		t.Fatal(err)
	}
	tip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	clone, err := owner.Clone("older", "lg", "main")
	if err != nil {
		t.Fatalf("cold clone against legacy server: %v", err)
	}
	want := closureSet(t, local.VCS.Objects, tip)
	got := closureSet(t, clone.VCS.Objects, tip)
	if len(got) != len(want) {
		t.Fatalf("fallback clone closure %d objects, want %d", len(got), len(want))
	}
}

// noScanStore forbids full-store ID enumeration while forwarding ordered
// prefix lookups — resolving an abbreviated revision through it proves the
// read path never falls back to the O(n) IDs() scan.
type noScanStore struct {
	store.Store
	t *testing.T
}

func (s *noScanStore) IDs() ([]object.ID, error) {
	s.t.Error("store.IDs() called during abbreviated-revision resolution (full-store scan)")
	return s.Store.IDs()
}

func (s *noScanStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	return store.IDsByPrefix(s.Store, prefix, limit)
}

// TestResolveRevPrefixNoFullScan resolves abbreviated revisions over HTTP
// against a store that fails the test if IDs() is ever consulted: a prefix
// hit, a 409 ambiguity and a 404 miss must all come from the ordered index.
func TestResolveRevPrefixNoFullScan(t *testing.T) {
	fx := newFixture(t)
	local, _ := buildNFileRepo(t, 200)
	if err := fx.owner.CreateRepo("abbrev", "https://x/abbrev", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.owner.Sync(local, "leshang", "abbrev", "main"); err != nil {
		t.Fatal(err)
	}
	tip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}
	// Forbid IDs() on the hosted repository's store from here on.
	hosted, err := fx.platform.Repo(context.Background(), "leshang", "abbrev")
	if err != nil {
		t.Fatal(err)
	}
	hosted.VCS.Objects = &noScanStore{Store: hosted.VCS.Objects, t: t}

	get := func(rev string) int {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/repos/leshang/abbrev/cite/%s?path=/", fx.server.URL, rev))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := get(tip.String()[:8]); status != http.StatusOK {
		t.Errorf("prefix hit: status %d, want 200", status)
	}
	if status := get("ffffffff"); status != http.StatusNotFound {
		t.Errorf("prefix miss: status %d, want 404", status)
	}
}

// TestPackBackedPlatform runs a full push → abbreviated-prefix read → edit
// → fetch round trip against a platform whose repositories persist in pack
// storage (the gitcite-server -pack configuration), then survives a
// process "restart" (fresh platform over the same directory is out of
// scope — the hosted map is in-memory — but the repack + prefix paths run
// against real pack files).
func TestPackBackedPlatform(t *testing.T) {
	dir := t.TempDir()
	p := hosting.NewPlatform(hosting.WithRepoFactory(func(meta gitcite.Meta) (*gitcite.Repo, error) {
		return gitcite.OpenPackedFileRepo(fmt.Sprintf("%s/%s/%s", dir, meta.Owner, meta.Name), meta)
	}))
	ts := httptest.NewServer(hosting.NewServer(p))
	t.Cleanup(ts.Close)
	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("packer")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("pk", "https://x/pk", ""); err != nil {
		t.Fatal(err)
	}
	local, _ := buildNFileRepo(t, 120)
	if _, err := owner.Sync(local, "packer", "pk", "main"); err != nil {
		t.Fatal(err)
	}
	tip, err := local.VCS.BranchTip("main")
	if err != nil {
		t.Fatal(err)
	}

	// Abbreviated-prefix read resolves through the pack's sorted index.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/repos/packer/pk/cite/%s?path=/", ts.URL, tip.String()[:10]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefix read against pack store: status %d", resp.StatusCode)
	}

	// Fork goes through the same pack-backed factory.
	forked, err := owner.Fork("packer", "pk", "pk2")
	if err != nil {
		t.Fatal(err)
	}
	if forked.Tips["main"] != tip.String() {
		t.Errorf("fork tip = %s, want %s", forked.Tips["main"], tip)
	}

	// A cold clone off the pack-backed repo is bit-identical.
	clone, err := owner.Clone("packer", "pk", "main")
	if err != nil {
		t.Fatal(err)
	}
	want := closureSet(t, local.VCS.Objects, tip)
	got := closureSet(t, clone.VCS.Objects, tip)
	if len(got) != len(want) {
		t.Fatalf("clone closure %d objects, want %d", len(got), len(want))
	}

	// A conflicting fork name must 409 WITHOUT touching the existing
	// repository's persistent state: the conflict check runs before the
	// storage factory opens (and ForkInto would overwrite) the directory.
	other, _ := buildNFileRepo(t, 5)
	if err := owner.CreateRepo("other", "https://x/other", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Sync(other, "packer", "other", "main"); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Fork("packer", "other", "pk"); !isAPIStatus(err, http.StatusConflict) {
		t.Fatalf("conflicting fork error = %v, want 409", err)
	}
	afterMeta, err := owner.GetRepo("packer", "pk")
	if err != nil {
		t.Fatal(err)
	}
	if afterMeta.Tips["main"] != tip.String() {
		t.Errorf("victim repo tip changed by rejected fork: %s, want %s", afterMeta.Tips["main"], tip)
	}
	reclone, err := owner.Clone("packer", "pk", "main")
	if err != nil {
		t.Fatalf("victim unreadable after rejected fork: %v", err)
	}
	if got := closureSet(t, reclone.VCS.Objects, tip); len(got) != len(want) {
		t.Errorf("victim closure changed by rejected fork: %d objects, want %d", len(got), len(want))
	}
}
