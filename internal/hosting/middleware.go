// middleware.go is the HTTP middleware chain under the v1 router: request
// logging, CORS (the paper's client is a browser extension — cross-origin by
// definition), per-token rate limiting and bearer-token auth extraction. The
// resolved user travels in the request context; handlers never touch the
// Authorization header themselves.
package hosting

import (
	"context"
	"crypto/subtle"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ServerOption configures a Server at construction time.
type ServerOption func(*Server)

// WithAllowedOrigin sets the CORS allowed origin. The default is "*" (any
// origin may read); pass the extension's origin to restrict, or the empty
// string to disable CORS handling entirely.
func WithAllowedOrigin(origin string) ServerOption {
	return func(s *Server) { s.corsOrigin = origin }
}

// WithRateLimit enables per-token rate limiting: each API token (anonymous
// callers are keyed by client IP) gets a token bucket refilled at rps
// requests per second with the given burst capacity. Exceeding it yields
// 429 with code "rate_limited". Rate limiting is off by default.
func WithRateLimit(rps float64, burst int) ServerOption {
	return func(s *Server) {
		s.limiter = newRateLimiter(rps, burst)
	}
}

// WithRequestLogger makes the server log one line per request (method, path,
// status, duration, client key). Logging is off by default.
func WithRequestLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// ctxKey namespaces context values set by the middleware chain.
type ctxKey int

const ctxKeyUser ctxKey = iota

// userFrom returns the authenticated user stored by the auth middleware, or
// nil for anonymous requests.
func userFrom(ctx context.Context) *User {
	u, _ := ctx.Value(ctxKeyUser).(*User)
	return u
}

// bearerToken extracts the Bearer token from the Authorization header.
func bearerToken(r *http.Request) string {
	if t, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
		return t
	}
	return ""
}

// withAuth resolves the bearer token once per request and stores the user in
// the context. Requests without a token proceed anonymously (public read);
// requests with an invalid token are rejected outright.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok := bearerToken(r)
		if tok == "" {
			next.ServeHTTP(w, r)
			return
		}
		if s.adminToken != "" && subtle.ConstantTimeCompare([]byte(tok), []byte(s.adminToken)) == 1 {
			// The admin token is an operator credential, not an account:
			// it resolves to no user (admin.go gates the admin routes).
			next.ServeHTTP(w, r)
			return
		}
		u, err := s.platform.Authenticate(r.Context(), tok)
		if err != nil {
			writeErr(w, err)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyUser, u)))
	})
}

// withCORS answers preflight OPTIONS requests and stamps Access-Control
// headers on everything else, per the configured allowed origin.
func (s *Server) withCORS(next http.Handler) http.Handler {
	if s.corsOrigin == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origin := r.Header.Get("Origin")
		if origin != "" && (s.corsOrigin == "*" || s.corsOrigin == origin) {
			h := w.Header()
			if s.corsOrigin == "*" {
				h.Set("Access-Control-Allow-Origin", "*")
			} else {
				h.Set("Access-Control-Allow-Origin", origin)
				h.Add("Vary", "Origin")
			}
			h.Set("Access-Control-Expose-Headers", "ETag")
		}
		if r.Method == http.MethodOptions && r.Header.Get("Access-Control-Request-Method") != "" {
			h := w.Header()
			h.Set("Access-Control-Allow-Methods", "GET, POST, PUT, DELETE, OPTIONS")
			h.Set("Access-Control-Allow-Headers", "Authorization, Content-Type, If-None-Match")
			h.Set("Access-Control-Max-Age", "600")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withRateLimit enforces the per-token budget before any handler work.
// Rejections carry Retry-After so well-behaved clients (the extension
// client honors it) wait the advised interval instead of hammering the
// backoff path. Health probes bypass the limiter: a load balancer polling
// /healthz must never be throttled into marking the node dead.
func (s *Server) withRateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		if ok, retryAfter := s.limiter.allow(clientKey(r)); !ok {
			secs := int(retryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Code:  CodeRateLimited,
				Error: "hosting: rate limit exceeded",
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withLogging records one line per completed request.
func (s *Server) withLogging(next http.Handler) http.Handler {
	if s.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.logger.Printf("%s %s -> %d (%s) key=%s",
			r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond), logKey(r))
	})
}

// logKey is clientKey redacted for logs: API tokens are credentials, so
// only a short prefix is emitted — enough to correlate a caller's requests
// without leaking the secret.
func logKey(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		if len(tok) > 10 {
			tok = tok[:10] + "…"
		}
		return "tok:" + tok
	}
	return clientKey(r)
}

// clientKey identifies a caller for rate limiting and logs: the API token
// when present, otherwise the client IP.
func clientKey(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		return tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "anon:" + host
}

// statusWriter captures the response status for the request log while
// forwarding Flush to streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// rateLimiter is a token-bucket limiter keyed by client. The bucket map is
// bounded; at capacity an arbitrary idle bucket is evicted (victims restart
// with a full burst, which only ever errs in the caller's favour).
type rateLimiter struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const rateLimiterMaxBuckets = 4096

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rps:     rps,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from key's bucket. On refusal it also reports how
// long until the bucket refills enough for one request — the Retry-After
// interval advertised to the client.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= rateLimiterMaxBuckets {
			for k := range l.buckets {
				delete(l.buckets, k)
				break
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rps
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		var wait time.Duration
		if l.rps > 0 {
			wait = time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
		}
		return false, wait
	}
	b.tokens--
	return true, 0
}
