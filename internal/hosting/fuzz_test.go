package hosting

import (
	"bytes"
	"io"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// FuzzWireNDJSON feeds arbitrary bytes to the NDJSON object-stream reader
// — the first parser every byte of a push request meets. The contract:
// the reader never panics, and everything it accepts survives a writer
// round-trip: re-emitting the accepted encodings through
// ObjectStreamWriter and re-reading them yields the same objects,
// byte-for-byte, ending in a clean EOF.
func FuzzWireNDJSON(f *testing.F) {
	var seed bytes.Buffer
	w := NewObjectStreamWriter(&seed)
	if err := w.WriteValue(PushHeader{Branch: "main"}); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteObject(object.NewBlobString("seed blob")); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteObject(object.NewBlobString("second")); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"d":"!!! not base64 !!!"}` + "\n"))
	f.Add([]byte(`{"d":"aGVsbG8="}` + "\n")) // valid base64, not an object
	f.Add([]byte(`{"d":`))                   // truncated JSON
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewObjectStreamReader(bytes.NewReader(data))
		var accepted [][]byte
		for {
			_, enc, err := r.Next()
			if err != nil {
				break // EOF or a malformed line ends the stream; both fine
			}
			accepted = append(accepted, append([]byte(nil), enc...))
		}
		if r.Count() != len(accepted) {
			t.Fatalf("reader counted %d objects, returned %d", r.Count(), len(accepted))
		}

		var out bytes.Buffer
		w := NewObjectStreamWriter(&out)
		for _, enc := range accepted {
			if err := w.WriteEncoded(enc); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2 := NewObjectStreamReader(bytes.NewReader(out.Bytes()))
		for i, enc := range accepted {
			_, enc2, err := r2.Next()
			if err != nil {
				t.Fatalf("object %d lost in round-trip: %v", i, err)
			}
			if !bytes.Equal(enc2, enc) {
				t.Fatalf("object %d changed in round-trip:\nhave %q\nwant %q", i, enc2, enc)
			}
		}
		if _, _, err := r2.Next(); err != io.EOF {
			t.Fatalf("round-tripped stream did not end cleanly: %v", err)
		}
	})
}
