// sync.go is the negotiated-sync engine behind the v1 protocol, used on both
// ends of the wire: the server runs MissingObjects to answer a negotiate, and
// the extension client runs the same function over its local store to decide
// what a push must upload. VerifyConnectedClosure is the server-side gate
// that keeps garbage pushes from landing orphan objects.
package hosting

import (
	"fmt"

	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// MissingObjects computes which objects of want's reachable closure a peer
// holding the have commits lacks. By the store closure invariant a peer that
// has a commit has its full object graph, so the walk can stop early:
//
//   - the commit walk from want prunes at every have commit it reaches, and
//   - each new commit's tree is diffed against its parents' trees, descending
//     only into subtrees whose IDs differ (identical IDs mean the peer — or
//     an earlier point of this very transfer — already has the whole subtree).
//
// Cost is therefore proportional to the delta: one new commit touching one
// file at tree depth d yields exactly d tree IDs + 1 blob ID + 1 commit ID,
// regardless of repository size. Have entries the walk never reaches are
// harmless; over-claiming is impossible, under-claiming only costs bandwidth
// (object Puts are idempotent). The returned IDs are ordered so that a
// commit's tree and blobs precede it and parents precede children.
func MissingObjects(s store.Store, want object.ID, have []object.ID) ([]object.ID, error) {
	var missing []object.ID
	err := walkMissingObjects(s, want, have, func(id object.ID) {
		missing = append(missing, id)
	})
	if err != nil {
		return nil, err
	}
	return missing, nil
}

// CountMissingObjects is MissingObjects without materialising the ID list —
// the want-all negotiate answers with a count only, so the per-object slice
// would be allocated just to measure its length.
func CountMissingObjects(s store.Store, want object.ID, have []object.ID) (int, error) {
	n := 0
	err := walkMissingObjects(s, want, have, func(object.ID) { n++ })
	if err != nil {
		return 0, err
	}
	return n, nil
}

// walkMissingObjects runs the negotiate walk, calling visit once per
// missing object in transfer order (a commit's tree and blobs precede it,
// parents precede children).
func walkMissingObjects(s store.Store, want object.ID, have []object.ID, visit func(object.ID)) error {
	haveSet := make(map[object.ID]bool, len(have))
	for _, id := range have {
		haveSet[id] = true
	}
	if haveSet[want] || want.IsZero() {
		return nil
	}

	// Phase 1: discover the new commits, parents-first (iterative DFS
	// post-order), pruning at have commits.
	type frame struct {
		id       object.ID
		expanded bool
	}
	const (
		open = 1
		done = 2
	)
	state := make(map[object.ID]int)
	commits := make(map[object.ID]*object.Commit)
	var order []object.ID
	stack := []frame{{id: want}}
	for len(stack) > 0 {
		i := len(stack) - 1
		f := stack[i]
		if f.expanded {
			stack = stack[:i]
			if state[f.id] != done {
				state[f.id] = done
				order = append(order, f.id)
			}
			continue
		}
		if state[f.id] != 0 {
			stack = stack[:i]
			continue
		}
		state[f.id] = open
		stack[i].expanded = true
		c, err := store.GetCommit(s, f.id)
		if err != nil {
			return fmt.Errorf("hosting: negotiate walk %s: %w", f.id.Short(), err)
		}
		commits[f.id] = c
		for _, p := range c.Parents {
			if p.IsZero() || haveSet[p] || state[p] != 0 {
				continue
			}
			stack = append(stack, frame{id: p})
		}
	}

	// Phase 2: per new commit, emit the tree/blob delta against its parents'
	// trees. Parents are either known to the peer (have side) or earlier in
	// `order` — in both cases their subtrees need not travel again.
	emitted := make(map[object.ID]bool)
	emit := func(id object.ID) {
		if !emitted[id] {
			emitted[id] = true
			visit(id)
		}
	}
	var diffTree func(tid object.ID, bases []object.ID) error
	diffTree = func(tid object.ID, bases []object.ID) error {
		if emitted[tid] {
			return nil
		}
		for _, b := range bases {
			if b == tid {
				return nil
			}
		}
		t, err := store.GetTree(s, tid)
		if err != nil {
			return err
		}
		emit(tid)
		baseTrees := make([]*object.Tree, 0, len(bases))
		for _, b := range bases {
			bt, err := store.GetTree(s, b)
			if err != nil {
				return err
			}
			baseTrees = append(baseTrees, bt)
		}
		for _, e := range t.Entries() {
			same := false
			var childBases []object.ID
			for _, bt := range baseTrees {
				be, ok := bt.Entry(e.Name)
				if !ok {
					continue
				}
				if be.ID == e.ID {
					same = true
					break
				}
				if e.IsDir() && be.IsDir() {
					childBases = append(childBases, be.ID)
				}
			}
			if same {
				continue
			}
			if e.IsDir() {
				if err := diffTree(e.ID, childBases); err != nil {
					return err
				}
			} else {
				emit(e.ID)
			}
		}
		return nil
	}
	for _, cid := range order {
		c := commits[cid]
		var bases []object.ID
		for _, p := range c.Parents {
			if p.IsZero() {
				continue
			}
			pc, err := store.GetCommit(s, p)
			if err != nil {
				return fmt.Errorf("hosting: negotiate base %s: %w", p.Short(), err)
			}
			bases = append(bases, pc.TreeID)
		}
		if err := diffTree(c.TreeID, bases); err != nil {
			return err
		}
		emit(cid)
	}
	return nil
}

// VerifyConnectedClosure checks — before anything is stored — that tip is a
// commit and that every object reachable from it is either in uploaded or
// already present in s. The walk descends only through uploaded objects and
// prunes at stored ones (stored closures are connected by invariant), so a
// valid push is verified in O(uploaded), and a garbage push is rejected
// without landing a single orphan object.
func VerifyConnectedClosure(s store.Store, uploaded map[object.ID]object.Object, tip object.ID) error {
	tipObj, inUpload := uploaded[tip]
	if inUpload {
		if _, ok := tipObj.(*object.Commit); !ok {
			return fmt.Errorf("%w: push tip %s is a %v, want commit", ErrBadRequest, tip.Short(), tipObj.Type())
		}
	} else if _, err := store.GetCommit(s, tip); err != nil {
		return fmt.Errorf("%w: push tip %s not among uploaded objects or store", ErrBadRequest, tip.Short())
	}

	seen := make(map[object.ID]bool, len(uploaded))
	frontier := []object.ID{tip}
	for len(frontier) > 0 {
		var next, unknown []object.ID
		for _, id := range frontier {
			if id.IsZero() || seen[id] {
				continue
			}
			seen[id] = true
			o, ok := uploaded[id]
			if !ok {
				unknown = append(unknown, id)
				continue
			}
			switch v := o.(type) {
			case *object.Commit:
				next = append(next, v.TreeID)
				next = append(next, v.Parents...)
			case *object.Tree:
				for _, e := range v.Entries() {
					next = append(next, e.ID)
				}
			}
		}
		have, err := store.HasMany(s, unknown)
		if err != nil {
			return err
		}
		for i, id := range unknown {
			if !have[i] {
				return fmt.Errorf("%w: push closure missing object %s", ErrBadRequest, id.Short())
			}
		}
		frontier = next
	}
	return nil
}

// isAncestorOver reports whether anc is reachable from desc when commits may
// live either in s or in the not-yet-stored uploaded set — the fast-forward
// check a push must pass before its objects are admitted to the store.
func isAncestorOver(s store.Store, uploaded map[object.ID]object.Object, anc, desc object.ID) (bool, error) {
	getCommit := func(id object.ID) (*object.Commit, error) {
		if o, ok := uploaded[id]; ok {
			c, ok := o.(*object.Commit)
			if !ok {
				return nil, fmt.Errorf("%w: object %s is a %v, want commit", ErrBadRequest, id.Short(), o.Type())
			}
			return c, nil
		}
		return store.GetCommit(s, id)
	}
	seen := make(map[object.ID]bool)
	stack := []object.ID{desc}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id.IsZero() || seen[id] {
			continue
		}
		if id == anc {
			return true, nil
		}
		seen[id] = true
		c, err := getCommit(id)
		if err != nil {
			return false, err
		}
		stack = append(stack, c.Parents...)
	}
	return false, nil
}
