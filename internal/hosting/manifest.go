// manifest.go implements the platform's durable state: a write-ahead,
// fsync'd, torn-tail-tolerant journal of every platform mutation — user
// accounts and their tokens, repository ownership and membership, and the
// two-phase fork protocol — persisted under the data directory so a
// restarted gitcite-server recovers every hosted repository instead of
// booting amnesiac.
//
// File layout ("manifest.log" under the platform data directory): one
// header line, then one record per line of
//
//	crc32(json) as 8 lowercase hex digits | one space | compact JSON | \n
//
// The journal is the acknowledgement log, exactly like the pack store's
// .seg segment journal: a mutation is acknowledged to the caller only
// after its record is written and fsync'd, and replay stops at the first
// line that is torn, fails its CRC, or carries an unknown operation — the
// acknowledged history ends there, and the open truncates the file back to
// it so later appends extend valid state. Forks are journaled two-phase
// (fork-begin → copy → fork-commit), so every crash order is recoverable
// at boot: a begin without its commit names an orphan directory to GC.
//
// Compaction: boot reconciliation rewrites the journal as a canonical
// snapshot (sorted, intents resolved) via tmp-file + rename + directory
// fsync, bounding replay cost by live state, not platform history.
package hosting

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// manifestHeader is the first line of every manifest file; a file that
// does not start with it is not a manifest and is never silently adopted.
const manifestHeader = "gitcite-manifest v1\n"

// manifestName is the journal's file name under the platform data dir.
const manifestName = "manifest.log"

// Manifest record operations. Unknown operations end replay (conservative:
// a newer format must not be half-understood).
const (
	opUser       = "user"        // account created: Name, Token
	opRepo       = "repo"        // repository created: Owner, Repo, URL, License
	opMember     = "member"      // write access granted: Owner, Repo, Member
	opForkBegin  = "fork-begin"  // fork intent: Owner/Repo = destination, SrcOwner/SrcRepo = source
	opForkCommit = "fork-commit" // fork copy completed: Owner, Repo
	opForkAbort  = "fork-abort"  // fork failed or was GC'd at boot: Owner, Repo
)

// manifestRecord is one journal line's payload. Field usage depends on Op;
// unused fields are omitted from the JSON.
type manifestRecord struct {
	Op       string `json:"op"`
	Name     string `json:"name,omitempty"`  // user name
	Token    string `json:"token,omitempty"` // user API token
	Owner    string `json:"owner,omitempty"` // repository owner (fork: destination owner)
	Repo     string `json:"repo,omitempty"`  // repository name (fork: destination name)
	URL      string `json:"url,omitempty"`
	License  string `json:"license,omitempty"`
	Member   string `json:"member,omitempty"`
	SrcOwner string `json:"srcOwner,omitempty"`
	SrcRepo  string `json:"srcRepo,omitempty"`
}

// manifestRepo is one live repository in replayed state.
type manifestRepo struct {
	owner   string
	name    string
	url     string
	license string
	members map[string]bool // owner included
}

// manifestState is the result of replaying a manifest: the platform's
// durable state at the acknowledged tail.
type manifestState struct {
	users   map[string]string        // name → token
	repos   map[string]*manifestRepo // "owner/name" → repo
	pending map[string]manifestRecord
	// "owner/name" → fork-begin awaiting its commit/abort
	records int // acknowledged records replayed
}

func newManifestState() *manifestState {
	return &manifestState{
		users:   map[string]string{},
		repos:   map[string]*manifestRepo{},
		pending: map[string]manifestRecord{},
	}
}

// apply folds one acknowledged record into the state. Records that no
// longer make sense (member of an unknown repo, commit of an unknown fork)
// are ignored rather than fatal: the journal is append-only, so stale
// shapes can only arise from compaction races long fixed — dropping them
// is safe and keeps replay total.
func (st *manifestState) apply(rec manifestRecord) {
	key := repoKey(rec.Owner, rec.Repo)
	switch rec.Op {
	case opUser:
		if rec.Name != "" {
			st.users[rec.Name] = rec.Token
		}
	case opRepo:
		if rec.Owner == "" || rec.Repo == "" {
			return
		}
		if _, ok := st.repos[key]; !ok {
			st.repos[key] = &manifestRepo{
				owner: rec.Owner, name: rec.Repo, url: rec.URL, license: rec.License,
				members: map[string]bool{rec.Owner: true},
			}
		}
	case opMember:
		if r, ok := st.repos[key]; ok && rec.Member != "" {
			r.members[rec.Member] = true
		}
	case opForkBegin:
		if rec.Owner == "" || rec.Repo == "" {
			return
		}
		if _, ok := st.repos[key]; !ok {
			st.pending[key] = rec
		}
	case opForkCommit:
		if begin, ok := st.pending[key]; ok {
			delete(st.pending, key)
			st.repos[key] = &manifestRepo{
				owner: begin.Owner, name: begin.Repo, url: begin.URL, license: begin.License,
				members: map[string]bool{begin.Owner: true},
			}
		}
	case opForkAbort:
		delete(st.pending, key)
	}
	st.records++
}

// parseManifest replays data, returning the acknowledged state and how
// many bytes of data it covers (the valid prefix; the caller truncates the
// file to it before appending). The header must match — a foreign or
// headerless file is an error, never an empty adoption. Past the header,
// replay is total: the first torn, CRC-failing, or unknown-op line ends
// the acknowledged history, exactly like a torn pack tail.
func parseManifest(data []byte) (*manifestState, int64, error) {
	if len(data) < len(manifestHeader) || string(data[:len(manifestHeader)]) != manifestHeader {
		return nil, 0, fmt.Errorf("hosting: not a gitcite manifest (bad header)")
	}
	st := newManifestState()
	covered := int64(len(manifestHeader))
	rest := data[len(manifestHeader):]
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: line never finished
		}
		line := rest[:nl]
		// "crc32-hex8 space json" — anything shorter is torn.
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		var crc uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		var rec manifestRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		switch rec.Op {
		case opUser, opRepo, opMember, opForkBegin, opForkCommit, opForkAbort:
		default:
			// An operation this build does not understand: stop rather
			// than misapply a half-known history.
			return st, covered, nil
		}
		st.apply(rec)
		covered += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return st, covered, nil
}

// encodeManifestLine serialises one record as its journal line.
func encodeManifestLine(rec manifestRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, 10+len(payload))
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	return append(line, '\n'), nil
}

// encodeManifest renders state as a canonical snapshot: header, users
// sorted by name, repositories sorted by key with members sorted within,
// then any pending fork intents sorted by key. Canonical means replaying
// the encoding reproduces the state bit-for-bit — the property the
// FuzzManifestReplay target pins.
func encodeManifest(st *manifestState) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(manifestHeader)
	write := func(rec manifestRecord) error {
		line, err := encodeManifestLine(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
		return nil
	}
	names := make([]string, 0, len(st.users))
	for n := range st.users {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := write(manifestRecord{Op: opUser, Name: n, Token: st.users[n]}); err != nil {
			return nil, err
		}
	}
	keys := make([]string, 0, len(st.repos))
	for k := range st.repos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := st.repos[k]
		if err := write(manifestRecord{Op: opRepo, Owner: r.owner, Repo: r.name, URL: r.url, License: r.license}); err != nil {
			return nil, err
		}
		members := make([]string, 0, len(r.members))
		for m := range r.members {
			if m != r.owner {
				members = append(members, m)
			}
		}
		sort.Strings(members)
		for _, m := range members {
			if err := write(manifestRecord{Op: opMember, Owner: r.owner, Repo: r.name, Member: m}); err != nil {
				return nil, err
			}
		}
	}
	pend := make([]string, 0, len(st.pending))
	for k := range st.pending {
		pend = append(pend, k)
	}
	sort.Strings(pend)
	for _, k := range pend {
		if err := write(st.pending[k]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// manifest is the open journal handle. Appends serialise on mu and fsync
// before returning — a record the platform acted on is always on disk.
type manifest struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records int // acknowledged records (replayed + appended)
}

// ManifestStatus is the admin-API view of the journal.
type ManifestStatus struct {
	Path    string `json:"path"`
	Records int    `json:"records"`
}

// openManifest opens (creating if needed) the journal at path and replays
// it. An existing file is truncated back to its acknowledged prefix, so a
// torn tail left by a crash can never corrupt records appended after it.
func openManifest(path string) (*manifest, *manifestState, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o600)
		if err != nil {
			return nil, nil, fmt.Errorf("hosting: create manifest: %w", err)
		}
		if _, err := f.WriteString(manifestHeader); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("hosting: create manifest: %w", err)
		}
		return &manifest{path: path, f: f}, newManifestState(), nil
	case err != nil:
		return nil, nil, fmt.Errorf("hosting: read manifest: %w", err)
	}
	st, covered, err := parseManifest(data)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("hosting: open manifest: %w", err)
	}
	if covered < int64(len(data)) {
		if err := f.Truncate(covered); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("hosting: truncate manifest torn tail: %w", err)
		}
	}
	if _, err := f.Seek(covered, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &manifest{path: path, f: f, records: st.records}, st, nil
}

// append journals one record: write the line, fsync, then — and only
// then — may the platform act on it. An append error aborts the mutation.
func (m *manifest) append(rec manifestRecord) error {
	line, err := encodeManifestLine(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return fmt.Errorf("hosting: manifest closed")
	}
	if _, err := m.f.Write(line); err != nil {
		return fmt.Errorf("hosting: manifest append: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("hosting: manifest append: %w", err)
	}
	m.records++
	return nil
}

// compact atomically replaces the journal with the canonical snapshot of
// state: tmp file, fsync, rename over, fsync the directory. Run at boot
// after reconciliation so replay cost tracks live state, not history, and
// resolved fork intents stop being replayed forever.
func (m *manifest) compact(st *manifestState) error {
	data, err := encodeManifest(st)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tmp := m.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("hosting: compact manifest: %w", err)
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hosting: compact manifest: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hosting: compact manifest: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(m.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	// Re-point the append handle at the new file.
	nf, err := os.OpenFile(m.path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("hosting: reopen compacted manifest: %w", err)
	}
	if m.f != nil {
		m.f.Close()
	}
	m.f = nf
	m.records = st.records
	return nil
}

// status reports the journal's path and acknowledged record count.
func (m *manifest) status() ManifestStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManifestStatus{Path: m.path, Records: m.records}
}

// close flushes and releases the journal handle. Appends after close fail.
func (m *manifest) close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}

// validRepoName rejects repository (and fork) names that could escape the
// platform data directory or collide with the manifest: path separators,
// traversal, dotfiles and control characters. Owner names are constrained
// at account creation.
func validRepoName(name string) bool {
	if name == "" || len(name) > 255 || strings.HasPrefix(name, ".") {
		return false
	}
	return !strings.ContainsAny(name, "/\\\n\r\x00")
}
