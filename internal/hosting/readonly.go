// readonly.go is the serving side of a read replica: WithReplicaMode turns
// every write route into a 307 redirect at the primary (preserving method
// and body — clients that follow redirects land the write where it
// belongs), while the whole read surface — citation generation, trees,
// chains, credit, negotiate/objects/pull — keeps being served from the
// replica's local object store. It also hosts the replication-feed
// handlers the primary side exposes and the status types the admin
// endpoint reports for a follower.
package hosting

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Response headers a replica stamps on every response so failover-aware
// clients can judge its freshness without an extra status round trip.
const (
	HeaderReplicaEpoch  = "X-Gitcite-Replica-Epoch"
	HeaderReplicaCursor = "X-Gitcite-Replica-Cursor"
	HeaderReplicaLag    = "X-Gitcite-Replica-Lag"
)

// replicaState is the server's follower mode, swapped atomically as one
// value: promotion flips the server to primary by clearing the pointer, so
// an in-flight request sees either full replica behavior or none of it.
type replicaState struct {
	primary string
	status  func() ReplicaStatus
}

// PromoteFunc turns this follower into a primary (wire it to
// Replicator.Promote): verify the replica is caught up, stop the
// replication loop, journal the promotion, and mint a fresh events epoch
// (returned). It must be safe to call concurrently; exactly one call wins.
type PromoteFunc func(ctx context.Context) (epoch string, err error)

// WithReplicaMode makes the server a read-only follower of the primary at
// primaryURL: write routes answer 307 with Location rewritten onto the
// primary and code "replica_read_only". status, when non-nil, is surfaced
// by GET /api/v1/admin/status (wire it to Replicator.Status) and stamped
// onto every response as the X-Gitcite-Replica-* headers.
func WithReplicaMode(primaryURL string, status func() ReplicaStatus) ServerOption {
	return func(s *Server) {
		s.replica.Store(&replicaState{
			primary: strings.TrimRight(primaryURL, "/"),
			status:  status,
		})
	}
}

// WithPromotion enables POST /api/v1/admin/promote, backed by fn.
func WithPromotion(fn PromoteFunc) ServerOption {
	return func(s *Server) { s.promote = fn }
}

// mutating wraps a write handler with the replica gate. On a primary it is
// the identity; on a replica the write never dispatches — the client is
// redirected, and the replica's state only ever changes through the
// replication loop.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rs := s.replica.Load()
		if rs == nil {
			h(w, r)
			return
		}
		w.Header().Set("Location", rs.primary+r.URL.RequestURI())
		writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
			Code:  CodeReplicaReadOnly,
			Error: "hosting: read-only replica; write to the primary at " + rs.primary,
		})
	}
}

// withReplicaHeaders stamps the replica freshness headers (epoch, applied
// cursor, lag) on every response while the server is in replica mode. It
// sits innermost in the middleware chain so the headers land before any
// handler writes.
func (s *Server) withReplicaHeaders(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rs := s.replica.Load(); rs != nil && rs.status != nil {
			st := rs.status()
			w.Header().Set(HeaderReplicaEpoch, st.Epoch)
			w.Header().Set(HeaderReplicaCursor, strconv.FormatInt(st.Cursor, 10))
			w.Header().Set(HeaderReplicaLag, strconv.FormatInt(st.Lag, 10))
		}
		next.ServeHTTP(w, r)
	})
}

// eventsMaxWait caps how long one events poll may park server-side, safely
// under common proxy/request timeouts; clients just poll again.
const eventsMaxWait = 55 * time.Second

// eventsDefaultWait is the long-poll park when the request names none.
const eventsDefaultWait = 25 * time.Second

// handleEvents serves GET /api/v1/events?since=N&wait=SECONDS&id=FOLLOWER —
// the replication feed poll. wait=0 disables parking (pure poll); a
// non-empty id registers the poll as that follower's acknowledged cursor
// for retention sizing and fleet status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: events cursor %q", ErrBadRequest, v))
			return
		}
		since = n
	}
	wait := eventsDefaultWait
	if v := q.Get("wait"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: events wait %q", ErrBadRequest, v))
			return
		}
		wait = time.Duration(n) * time.Second
		if wait > eventsMaxWait {
			wait = eventsMaxWait
		}
	}
	resp, err := s.platform.EventsFrom(r.Context(), q.Get("id"), since, wait)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot serves GET /api/v1/replica/snapshot — the full-resync
// bootstrap a follower applies before resuming the events feed from the
// snapshot's cursor.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	resp, err := s.platform.Snapshot(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReplicaRepoStatus is one repository's replication progress as the admin
// status endpoint reports it.
type ReplicaRepoStatus struct {
	// AppliedSeq is the feed sequence number of the last ref event fully
	// applied to this repository; PendingSeq the last one received. They
	// differ only while a catch-up fetch is in flight — the per-repo lag
	// is PendingSeq - AppliedSeq.
	AppliedSeq int64  `json:"appliedSeq"`
	PendingSeq int64  `json:"pendingSeq"`
	Branch     string `json:"branch,omitempty"` // branch of the last applied ref event
	Tip        string `json:"tip,omitempty"`    // its tip
	AppliedAt  int64  `json:"appliedAtUnix,omitempty"`
}

// ReplicaStatus is the follower half of the admin status response: where
// the replica is against the primary's feed. Cursor is the last journaled
// (crash-safe) cursor; Head the primary's feed head as of the last poll;
// Lag their difference.
type ReplicaStatus struct {
	Primary        string                       `json:"primary"`
	Epoch          string                       `json:"epoch,omitempty"`
	Cursor         int64                        `json:"cursor"`
	Head           int64                        `json:"head"`
	Lag            int64                        `json:"lag"`
	FullResyncs    int64                        `json:"fullResyncs"`
	ObjectsFetched int64                        `json:"objectsFetched"`
	LastAppliedAt  int64                        `json:"lastAppliedAtUnix,omitempty"`
	LastError      string                       `json:"lastError,omitempty"`
	Repos          map[string]ReplicaRepoStatus `json:"repos,omitempty"` // by "owner/name"
}
