// readonly.go is the serving side of a read replica: WithReplicaMode turns
// every write route into a 307 redirect at the primary (preserving method
// and body — clients that follow redirects land the write where it
// belongs), while the whole read surface — citation generation, trees,
// chains, credit, negotiate/objects/pull — keeps being served from the
// replica's local object store. It also hosts the replication-feed
// handlers the primary side exposes and the status types the admin
// endpoint reports for a follower.
package hosting

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WithReplicaMode makes the server a read-only follower of the primary at
// primaryURL: write routes answer 307 with Location rewritten onto the
// primary and code "replica_read_only". status, when non-nil, is surfaced
// by GET /api/v1/admin/status (wire it to Replicator.Status).
func WithReplicaMode(primaryURL string, status func() ReplicaStatus) ServerOption {
	return func(s *Server) {
		s.replicaPrimary = strings.TrimRight(primaryURL, "/")
		s.replicaStatus = status
	}
}

// mutating wraps a write handler with the replica gate. On a primary it is
// the identity; on a replica the write never dispatches — the client is
// redirected, and the replica's state only ever changes through the
// replication loop.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.replicaPrimary == "" {
			h(w, r)
			return
		}
		w.Header().Set("Location", s.replicaPrimary+r.URL.RequestURI())
		writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
			Code:  CodeReplicaReadOnly,
			Error: "hosting: read-only replica; write to the primary at " + s.replicaPrimary,
		})
	}
}

// eventsMaxWait caps how long one events poll may park server-side, safely
// under common proxy/request timeouts; clients just poll again.
const eventsMaxWait = 55 * time.Second

// eventsDefaultWait is the long-poll park when the request names none.
const eventsDefaultWait = 25 * time.Second

// handleEvents serves GET /api/v1/events?since=N&wait=SECONDS — the
// replication feed poll. wait=0 disables parking (pure poll).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: events cursor %q", ErrBadRequest, v))
			return
		}
		since = n
	}
	wait := eventsDefaultWait
	if v := q.Get("wait"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: events wait %q", ErrBadRequest, v))
			return
		}
		wait = time.Duration(n) * time.Second
		if wait > eventsMaxWait {
			wait = eventsMaxWait
		}
	}
	resp, err := s.platform.Events(r.Context(), since, wait)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot serves GET /api/v1/replica/snapshot — the full-resync
// bootstrap a follower applies before resuming the events feed from the
// snapshot's cursor.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	resp, err := s.platform.Snapshot(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReplicaRepoStatus is one repository's replication progress as the admin
// status endpoint reports it.
type ReplicaRepoStatus struct {
	// AppliedSeq is the feed sequence number of the last ref event fully
	// applied to this repository; PendingSeq the last one received. They
	// differ only while a catch-up fetch is in flight — the per-repo lag
	// is PendingSeq - AppliedSeq.
	AppliedSeq int64  `json:"appliedSeq"`
	PendingSeq int64  `json:"pendingSeq"`
	Branch     string `json:"branch,omitempty"` // branch of the last applied ref event
	Tip        string `json:"tip,omitempty"`    // its tip
	AppliedAt  int64  `json:"appliedAtUnix,omitempty"`
}

// ReplicaStatus is the follower half of the admin status response: where
// the replica is against the primary's feed. Cursor is the last journaled
// (crash-safe) cursor; Head the primary's feed head as of the last poll;
// Lag their difference.
type ReplicaStatus struct {
	Primary        string                       `json:"primary"`
	Epoch          string                       `json:"epoch,omitempty"`
	Cursor         int64                        `json:"cursor"`
	Head           int64                        `json:"head"`
	Lag            int64                        `json:"lag"`
	FullResyncs    int64                        `json:"fullResyncs"`
	ObjectsFetched int64                        `json:"objectsFetched"`
	LastAppliedAt  int64                        `json:"lastAppliedAtUnix,omitempty"`
	LastError      string                       `json:"lastError,omitempty"`
	Repos          map[string]ReplicaRepoStatus `json:"repos,omitempty"` // by "owner/name"
}
