package hosting_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/extension"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/hosting"
	"github.com/gitcite/gitcite/internal/vcs"
)

// fixture spins up a platform + HTTP server + an owner account with one
// repository containing one commit.
type fixture struct {
	platform *hosting.Platform
	server   *httptest.Server
	owner    *extension.Client // authenticated as the repo owner
	anon     *extension.Client // unauthenticated
	ownerTok string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p := hosting.NewPlatform()
	srv := hosting.NewServer(p)
	// Deterministic clock for server-side commits.
	base := time.Date(2018, 9, 4, 2, 35, 20, 0, time.UTC)
	step := 0
	srv.Now = func() time.Time {
		step++
		return base.Add(time.Duration(step) * time.Minute)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	anon := extension.New(ts.URL, "")
	tok, err := anon.CreateUser("leshang")
	if err != nil {
		t.Fatal(err)
	}
	owner := anon.WithToken(tok)
	if err := owner.CreateRepo("P1", "https://git.example/leshang/P1", "MIT"); err != nil {
		t.Fatal(err)
	}

	// Seed one commit through a local repo + push.
	local, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "leshang", Name: "P1", URL: "https://git.example/leshang/P1"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := local.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	for p, d := range map[string]string{
		"/src/main.py":          "print('hi')\n",
		"/src/util.py":          "def u(): pass\n",
		"/docs/README.md":       "# P1\n",
		"/CoreCover/rewrite.py": "rewrite\n",
	} {
		if err := wt.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.AddCite("/CoreCover", core.Citation{
		Owner: "Chen Li", RepoName: "alu01-corecover",
		URL: "https://github.com/chenlica/alu01-corecover", CommitID: "5cc951e",
		AuthorList: []string{"Chen Li"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig("leshang", "l@upenn.edu", base),
		Message: "initial",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Push(local, "leshang", "P1", "main"); err != nil {
		t.Fatal(err)
	}
	return &fixture{platform: p, server: ts, owner: owner, anon: anon, ownerTok: tok}
}

func TestAnyoneCanGenerateCitations(t *testing.T) {
	fx := newFixture(t)
	// Uncited file resolves to the root default.
	cite, from, err := fx.anon.GenCite("leshang", "P1", "main", "/src/main.py")
	if err != nil {
		t.Fatal(err)
	}
	if from != "/" || cite.Owner != "leshang" || cite.RepoName != "P1" {
		t.Errorf("GenCite = %+v from %q", cite, from)
	}
	// Root generation fills in version info (commit id + date).
	if cite.CommitID == "" || cite.CommittedDate.IsZero() {
		t.Errorf("generated citation lacks version info: %+v", cite)
	}
	// Cited directory resolves to its own citation.
	cite, from, err = fx.anon.GenCite("leshang", "P1", "main", "/CoreCover/rewrite.py")
	if err != nil {
		t.Fatal(err)
	}
	if from != "/CoreCover" || cite.Owner != "Chen Li" {
		t.Errorf("GenCite CoreCover = %+v from %q", cite, from)
	}
	// Rendered formats round-trip over HTTP.
	text, err := fx.anon.GenCiteRendered("leshang", "P1", "main", "/CoreCover", "bibtex")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "@software{") || !strings.Contains(text, "Chen Li") {
		t.Errorf("rendered = %q", text)
	}
}

func TestNonMembersCannotEditCitations(t *testing.T) {
	fx := newFixture(t)
	cite := core.Citation{Owner: "x", RepoName: "y", URL: "u", Version: "1"}

	// Anonymous: 401.
	_, err := fx.anon.AddCite("leshang", "P1", "main", "/src", cite)
	if !extension.IsPermissionDenied(err) {
		t.Errorf("anon AddCite = %v", err)
	}
	// Authenticated non-member: 403 for add/modify/delete.
	tok, err := fx.anon.CreateUser("stranger")
	if err != nil {
		t.Fatal(err)
	}
	stranger := fx.anon.WithToken(tok)
	if _, err := stranger.AddCite("leshang", "P1", "main", "/src", cite); !extension.IsPermissionDenied(err) {
		t.Errorf("stranger AddCite = %v", err)
	}
	if _, err := stranger.ModifyCite("leshang", "P1", "main", "/CoreCover", cite); !extension.IsPermissionDenied(err) {
		t.Errorf("stranger ModifyCite = %v", err)
	}
	if _, err := stranger.DelCite("leshang", "P1", "main", "/CoreCover"); !extension.IsPermissionDenied(err) {
		t.Errorf("stranger DelCite = %v", err)
	}
	// But they can still generate (Figure 2's non-member flow).
	if _, _, err := stranger.GenCite("leshang", "P1", "main", "/src"); err != nil {
		t.Errorf("stranger GenCite = %v", err)
	}
}

func TestMemberEditFlow(t *testing.T) {
	fx := newFixture(t)
	// Owner invites a member.
	tok, err := fx.anon.CreateUser("susan")
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.owner.AddMember("leshang", "P1", "susan"); err != nil {
		t.Fatal(err)
	}
	susan := fx.anon.WithToken(tok)

	// AddCite commits a new version server-side.
	cite := core.Citation{Owner: "susan", RepoName: "docs", URL: "https://x/docs", Version: "1", AuthorList: []string{"Susan B. Davidson"}}
	commit1, err := susan.AddCite("leshang", "P1", "main", "/docs", cite)
	if err != nil {
		t.Fatal(err)
	}
	if commit1 == "" {
		t.Fatal("no commit returned")
	}
	got, from, err := fx.anon.GenCite("leshang", "P1", "main", "/docs/README.md")
	if err != nil || from != "/docs" || got.Owner != "susan" {
		t.Errorf("after AddCite: %+v from %q, %v", got, from, err)
	}

	// ModifyCite.
	cite.Version = "2"
	commit2, err := susan.ModifyCite("leshang", "P1", "main", "/docs", cite)
	if err != nil {
		t.Fatal(err)
	}
	if commit2 == commit1 {
		t.Error("modify did not create a new version")
	}
	got, _, _ = fx.anon.GenCite("leshang", "P1", "main", "/docs")
	if got.Version != "2" {
		t.Errorf("after ModifyCite: %+v", got)
	}

	// DelCite.
	if _, err := susan.DelCite("leshang", "P1", "main", "/docs"); err != nil {
		t.Fatal(err)
	}
	_, from, err = fx.anon.GenCite("leshang", "P1", "main", "/docs/README.md")
	if err != nil || from != "/" {
		t.Errorf("after DelCite: from %q, %v", from, err)
	}

	// Duplicate AddCite → 409.
	if _, err := susan.AddCite("leshang", "P1", "main", "/CoreCover", cite); err == nil {
		t.Error("duplicate AddCite accepted")
	}
	// AddCite to a missing path → 400.
	if _, err := susan.AddCite("leshang", "P1", "main", "/nope", cite); err == nil || extension.IsPermissionDenied(err) {
		t.Errorf("AddCite missing path = %v", err)
	}
	// Only the owner can add members.
	if err := susan.AddMember("leshang", "P1", "susan"); !extension.IsPermissionDenied(err) {
		t.Errorf("non-owner AddMember = %v", err)
	}
}

func TestTreeListingMarksCitedNodes(t *testing.T) {
	fx := newFixture(t)
	entries, err := fx.anon.Tree("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]hosting.TreeEntryResponse{}
	for _, e := range entries {
		byPath[e.Path] = e
	}
	if _, ok := byPath["/citation.cite"]; ok {
		t.Error("tree listing leaks citation.cite")
	}
	if !byPath["/CoreCover"].Cited {
		t.Error("/CoreCover not marked cited")
	}
	if byPath["/src"].Cited {
		t.Error("/src wrongly marked cited")
	}
	if !byPath["/src"].IsDir || byPath["/src/main.py"].IsDir {
		t.Error("IsDir flags wrong")
	}
}

func TestCiteFileDownloadParses(t *testing.T) {
	fx := newFixture(t)
	data, err := fx.anon.CiteFile("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := citefile.Decode(data)
	if err != nil {
		t.Fatalf("downloaded citation.cite unparseable: %v\n%s", err, data)
	}
	if !fn.Has("/CoreCover") {
		t.Errorf("paths = %v", fn.Paths())
	}
	if !strings.Contains(string(data), `"/CoreCover/"`) {
		t.Error("directory key missing trailing slash")
	}
}

func TestForkViaAPI(t *testing.T) {
	fx := newFixture(t)
	tok, err := fx.anon.CreateUser("susan")
	if err != nil {
		t.Fatal(err)
	}
	susan := fx.anon.WithToken(tok)
	resp, err := susan.Fork("leshang", "P1", "P1-fork")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Owner != "susan" || resp.Name != "P1-fork" {
		t.Errorf("fork = %+v", resp)
	}
	// The fork serves citations identical to the origin (ForkCite).
	origCite, _, err := fx.anon.GenCite("leshang", "P1", "main", "/CoreCover")
	if err != nil {
		t.Fatal(err)
	}
	forkCite, _, err := fx.anon.GenCite("susan", "P1-fork", "main", "/CoreCover")
	if err != nil {
		t.Fatal(err)
	}
	if !forkCite.Equal(origCite) {
		t.Errorf("fork citation differs:\n%+v\n%+v", forkCite, origCite)
	}
	// Fork owner can edit their fork but still not the origin.
	c := core.Citation{Owner: "susan", RepoName: "r", URL: "u", Version: "1"}
	if _, err := susan.AddCite("susan", "P1-fork", "main", "/src", c); err != nil {
		t.Errorf("fork owner edit: %v", err)
	}
	if _, err := susan.AddCite("leshang", "P1", "main", "/src", c); !extension.IsPermissionDenied(err) {
		t.Errorf("fork owner editing origin = %v", err)
	}
	// Forking to an existing name conflicts.
	if _, err := susan.Fork("leshang", "P1", "P1-fork"); err == nil {
		t.Error("duplicate fork accepted")
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	fx := newFixture(t)
	// Clone, commit locally, push back, verify remotely.
	local, err := fx.owner.Clone("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	wt, err := local.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/new-file.txt", []byte("local work\n")); err != nil {
		t.Fatal(err)
	}
	if err := wt.AddCite("/new-file.txt", core.Citation{
		Owner: "leshang", RepoName: "addon", URL: "https://x/addon", Version: "0.1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(vcs.CommitOptions{
		Author:  vcs.Sig("leshang", "l@upenn.edu", time.Date(2018, 9, 5, 0, 0, 0, 0, time.UTC)),
		Message: "local commit",
	}); err != nil {
		t.Fatal(err)
	}
	stored, err := fx.owner.Push(local, "leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	if stored == 0 {
		t.Error("push stored nothing")
	}
	got, from, err := fx.anon.GenCite("leshang", "P1", "main", "/new-file.txt")
	if err != nil || from != "/new-file.txt" || got.RepoName != "addon" {
		t.Errorf("after push: %+v from %q, %v", got, from, err)
	}
	// Non-member push is refused.
	tok, _ := fx.anon.CreateUser("mallory")
	mallory := fx.anon.WithToken(tok)
	if _, err := mallory.Push(local, "leshang", "P1", "main"); !extension.IsPermissionDenied(err) {
		t.Errorf("non-member push = %v", err)
	}
}

func TestPushRejectsNonFastForward(t *testing.T) {
	fx := newFixture(t)
	// Two clones diverge; the second push must be refused.
	a, err := fx.owner.Clone("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.owner.Clone("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	commit := func(r *gitcite.Repo, fname string, unix int64) {
		wt, err := r.Checkout("main")
		if err != nil {
			t.Fatal(err)
		}
		if err := wt.WriteFile(fname, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("l", "l@x", time.Unix(unix, 0)), Message: fname}); err != nil {
			t.Fatal(err)
		}
	}
	commit(a, "/a.txt", 1_600_000_000)
	commit(b, "/b.txt", 1_600_000_001)
	if _, err := fx.owner.Push(a, "leshang", "P1", "main"); err != nil {
		t.Fatal(err)
	}
	_, err = fx.owner.Push(b, "leshang", "P1", "main")
	if err == nil {
		t.Fatal("divergent push accepted")
	}
	var apiErr *extension.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Errorf("divergent push error = %v", err)
	}
}

func TestPlatformErrorsMapToHTTPStatus(t *testing.T) {
	fx := newFixture(t)
	cases := []struct {
		name   string
		call   func() error
		status int
	}{
		{"missing repo", func() error { _, err := fx.anon.GetRepo("nobody", "ghost"); return err }, 404},
		{"missing branch", func() error { _, _, err := fx.anon.GenCite("leshang", "P1", "nope", "/"); return err }, 404},
		{"missing path", func() error { _, _, err := fx.anon.GenCite("leshang", "P1", "main", "/no/such"); return err }, 200},
		{"duplicate user", func() error { _, err := fx.anon.CreateUser("leshang"); return err }, 409},
	}
	for _, c := range cases {
		err := c.call()
		if c.status == 200 {
			// Resolution of a missing path still succeeds (Cite is total:
			// closest ancestor is the root). This mirrors the model.
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var apiErr *extension.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != c.status {
			t.Errorf("%s: err = %v, want status %d", c.name, err, c.status)
		}
	}
}

func TestChainEndpoint(t *testing.T) {
	fx := newFixture(t)
	resp, err := http.Get(fx.server.URL + "/api/repos/leshang/P1/chain/main?path=/CoreCover/rewrite.py")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var chain hosting.ChainResponse
	if err := json.NewDecoder(resp.Body).Decode(&chain); err != nil {
		t.Fatal(err)
	}
	// Root first, then the CoreCover entry (the whole-path semantics).
	if len(chain.Chain) != 2 || chain.Chain[0].Path != "/" || chain.Chain[1].Path != "/CoreCover" {
		t.Errorf("chain = %+v", chain.Chain)
	}
	cite, err := citefile.DecodeEntry(chain.Chain[1].Citation)
	if err != nil || cite.Owner != "Chen Li" {
		t.Errorf("chain citation = %+v, %v", cite, err)
	}
}

func TestCreditEndpoint(t *testing.T) {
	fx := newFixture(t)
	rep, err := fx.anon.Credit("leshang", "P1", "main")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFiles != 4 {
		t.Errorf("TotalFiles = %d, want 4", rep.TotalFiles)
	}
	// The CoreCover file is externally credited (Chen Li's repo).
	if rep.ExternalFiles != 1 {
		t.Errorf("ExternalFiles = %d, want 1", rep.ExternalFiles)
	}
	var chenLi *hosting.CreditAuthor
	for i := range rep.Authors {
		if rep.Authors[i].Author == "Chen Li" {
			chenLi = &rep.Authors[i]
		}
	}
	if chenLi == nil || chenLi.Files != 1 {
		t.Errorf("Chen Li credit = %+v", rep.Authors)
	}
	foundExternal := false
	for _, e := range rep.Entries {
		if e.Path == "/CoreCover" && e.External && e.Files == 1 {
			foundExternal = true
		}
	}
	if !foundExternal {
		t.Errorf("entries = %+v", rep.Entries)
	}
	// Missing repo → 404.
	_, err = fx.anon.Credit("nobody", "ghost", "main")
	var apiErr *extension.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("credit for missing repo = %v", err)
	}
}

func TestEditCiteRejectsBadBodies(t *testing.T) {
	fx := newFixture(t)
	post := func(body string) int {
		req, err := http.NewRequest("POST", fx.server.URL+"/api/repos/leshang/P1/cite", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+fx.ownerTok)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("{not json"); got < 400 || got >= 500 {
		t.Errorf("malformed JSON status = %d", got)
	}
	if got := post(`{"branch": "main", "path": "/src", "unknownField": 1}`); got < 400 || got >= 500 {
		t.Errorf("unknown field status = %d", got)
	}
	if got := post(`{"branch": "main", "path": "/src"}`); got < 400 || got >= 500 {
		t.Errorf("missing citation status = %d", got)
	}
}

// TestParallelReadEndpoints hammers every public read endpoint — GenCite,
// chain, credit, tree listing and pull — from parallel clients against one
// hosted repository; run with -race. All of them ride the shared
// resolved-citation function of the branch tip.
func TestParallelReadEndpoints(t *testing.T) {
	fx := newFixture(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0:
					cite, from, err := fx.anon.GenCite("leshang", "P1", "main", "/CoreCover/rewrite.py")
					if err != nil {
						errCh <- err
						return
					}
					if from != "/CoreCover" || cite.Owner != "Chen Li" {
						errCh <- fmt.Errorf("GenCite owner=%q from=%q", cite.Owner, from)
						return
					}
				case 1:
					chain, err := fx.anon.Chain("leshang", "P1", "main", "/CoreCover/rewrite.py")
					if err != nil {
						errCh <- err
						return
					}
					if len(chain) != 2 {
						errCh <- fmt.Errorf("chain length %d, want 2", len(chain))
						return
					}
				case 2:
					rep, err := fx.anon.Credit("leshang", "P1", "main")
					if err != nil {
						errCh <- err
						return
					}
					if rep.TotalFiles != 4 {
						errCh <- fmt.Errorf("credit totalFiles=%d, want 4", rep.TotalFiles)
						return
					}
				case 3:
					entries, err := fx.anon.Tree("leshang", "P1", "main")
					if err != nil {
						errCh <- err
						return
					}
					if len(entries) == 0 {
						errCh <- fmt.Errorf("empty tree listing")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("parallel read: %v", err)
	}
}

func TestConcurrentReadsAndEdits(t *testing.T) {
	fx := newFixture(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	// Readers generate citations while the owner edits.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := fx.anon.GenCite("leshang", "P1", "main", "/src/main.py"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			c := core.Citation{Owner: "o", RepoName: "r", URL: "u", Version: "1"}
			if _, err := fx.owner.AddCite("leshang", "P1", "main", "/src/util.py", c); err != nil {
				errCh <- err
				return
			}
			if _, err := fx.owner.DelCite("leshang", "P1", "main", "/src/util.py"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent op: %v", err)
	}
}
