// Black-box tests for the lifecycle satellites: graceful shutdown with a
// long-poll in flight (the SIGTERM regression from the issue), the
// unauthenticated /healthz and /readyz probes, and the Retry-After header
// on rate-limit refusals.
package hosting_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/hosting"
)

// TestShutdownWakesParkedLongPoll is the SIGTERM regression test: an events
// long-poll is parked when Shutdown begins; with InterruptEventWaiters
// registered on the server, the poll answers empty immediately and the
// drain completes in well under the poll's 30-second wait.
func TestShutdownWakesParkedLongPoll(t *testing.T) {
	p := hosting.NewPlatform()
	h := hosting.NewServer(p, hosting.WithAdminToken("tok"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	srv.RegisterOnShutdown(p.InterruptEventWaiters)
	go srv.Serve(ln)

	// Park a long-poll at the current head.
	type pollResult struct {
		status int
		body   hosting.EventsResponse
		err    error
	}
	done := make(chan pollResult, 1)
	go func() {
		req, _ := http.NewRequest("GET", "http://"+ln.Addr().String()+"/api/v1/events?since=0&wait=30", nil)
		req.Header.Set("Authorization", "Bearer tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var body hosting.EventsResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		done <- pollResult{status: resp.StatusCode, body: body, err: err}
	}()
	time.Sleep(100 * time.Millisecond) // let the poll reach its park

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("drain took %v with a parked long-poll, want well under 2s", d)
	}
	select {
	case res := <-done:
		if res.err != nil || res.status != http.StatusOK {
			t.Fatalf("in-flight long-poll = status %d, err %v; want a clean 200", res.status, res.err)
		}
		if len(res.body.Events) != 0 {
			t.Errorf("interrupted poll returned %d events, want empty", len(res.body.Events))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long-poll never completed after shutdown")
	}
}

// TestHealthzAlwaysAnswers pins /healthz: unauthenticated, 200, even on a
// replica — it is liveness, not readiness.
func TestHealthzAlwaysAnswers(t *testing.T) {
	p := hosting.NewPlatform()
	status := func() hosting.ReplicaStatus { return hosting.ReplicaStatus{} }
	ts := httptest.NewServer(hosting.NewServer(p, hosting.WithReplicaMode("http://primary", status)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	var body hosting.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("/healthz body = %+v, %v", body, err)
	}
}

// getReady hits /readyz and decodes the verdict.
func getReady(t *testing.T, base string) (int, hosting.ReadyResponse) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body hosting.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyzJudgesRoleAndLag pins /readyz across the states that matter to
// a load balancer: a healthy primary is ready; a caught-up replica is
// ready; a bootstrapping or lagging replica is 503 so it rotates out of
// the read pool; a closed platform is 503.
func TestReadyzJudgesRoleAndLag(t *testing.T) {
	// Healthy primary.
	ts := httptest.NewServer(hosting.NewServer(hosting.NewPlatform()))
	status, body := getReady(t, ts.URL)
	ts.Close()
	if status != http.StatusOK || !body.Ready || body.Role != "primary" {
		t.Fatalf("primary readyz = %d %+v", status, body)
	}

	// Replica states, driven through a stub status.
	st := hosting.ReplicaStatus{}
	ts = httptest.NewServer(hosting.NewServer(hosting.NewPlatform(),
		hosting.WithReplicaMode("http://primary", func() hosting.ReplicaStatus { return st }),
		hosting.WithReadinessMaxLag(1),
	))
	defer ts.Close()

	// Bootstrapping: no epoch yet.
	status, body = getReady(t, ts.URL)
	if status != http.StatusServiceUnavailable || body.Ready || body.Role != "replica" {
		t.Fatalf("bootstrapping readyz = %d %+v, want 503 replica", status, body)
	}

	// Lag over the ceiling.
	st = hosting.ReplicaStatus{Epoch: "e1", Cursor: 3, Head: 10, Lag: 7}
	status, body = getReady(t, ts.URL)
	if status != http.StatusServiceUnavailable || body.Ready || body.Lag != 7 {
		t.Fatalf("lagging readyz = %d %+v, want 503 with lag 7", status, body)
	}

	// Caught up.
	st = hosting.ReplicaStatus{Epoch: "e1", Cursor: 10, Head: 10, Lag: 0}
	status, body = getReady(t, ts.URL)
	if status != http.StatusOK || !body.Ready {
		t.Fatalf("caught-up readyz = %d %+v, want 200", status, body)
	}

	// Closed platform: not ready, regardless of role.
	p := hosting.NewPlatform()
	ts2 := httptest.NewServer(hosting.NewServer(p))
	defer ts2.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	status, body = getReady(t, ts2.URL)
	if status != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("closed-platform readyz = %d %+v, want 503", status, body)
	}
}

// TestRateLimitSendsRetryAfter pins the 429 contract: a refused request
// carries a positive integer Retry-After header (the client's backoff
// hint), and the health probes bypass the limiter entirely.
func TestRateLimitSendsRetryAfter(t *testing.T) {
	ts := httptest.NewServer(hosting.NewServer(hosting.NewPlatform(),
		hosting.WithRateLimit(1, 1)))
	defer ts.Close()

	var last *http.Response
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/api/v1/repos/o/r")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			last = resp
			break
		}
	}
	if last == nil {
		t.Fatal("burst of 5 requests against burst-1 limit never saw a 429")
	}
	ra := last.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive integer of seconds", ra)
	}

	// Probes are exempt: a throttled token must not mark the node dead.
	for i := 0; i < 10; i++ {
		for _, path := range []string{"/healthz", "/readyz"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				t.Fatalf("%s rate-limited on iteration %d", path, i)
			}
		}
	}
}
