// Package hosting simulates the project-hosting platform GitCite's browser
// extension talks to (GitHub in the paper): user accounts with API tokens,
// hosted citation-enabled repositories with member lists, a versioned REST
// API over net/http with negotiated incremental sync, fork support and
// streaming push/pull object transfer.
//
// The permission model is the one Figure 2 of the paper demonstrates:
// anyone may read and generate citations; only the owner and project
// members may add, delete or modify citations (they are the only ones
// allowed to change files, and citation.cite is a file).
package hosting

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gitcite/gitcite/internal/gitcite"
)

// Errors reported by the platform core.
var (
	ErrUnauthorized = errors.New("hosting: invalid or missing token")
	ErrForbidden    = errors.New("hosting: operation requires project membership")
	ErrNotFound     = errors.New("hosting: not found")
	ErrConflict     = errors.New("hosting: already exists")
	ErrBadRequest   = errors.New("hosting: bad request")
	// ErrAmbiguousRev reports an abbreviated commit ID that matches more
	// than one commit (surfaced as 409 with code "ambiguous_ref").
	ErrAmbiguousRev = errors.New("hosting: ambiguous commit ID prefix")
)

// User is one platform account.
type User struct {
	Name  string
	Token string
}

// hostedRepo couples a citation-enabled repository with its access control.
type hostedRepo struct {
	repo    *gitcite.Repo
	owner   string
	members map[string]bool // user names with write access (owner included)
	// editSem (capacity 1) serialises checkout→edit→commit sequences and
	// push ref updates on one repository so concurrent writers cannot lose
	// updates; a channel rather than a mutex so acquisition can honour
	// context cancellation.
	editSem chan struct{}
}

func newHostedRepo(repo *gitcite.Repo, owner string) *hostedRepo {
	return &hostedRepo{
		repo:    repo,
		owner:   owner,
		members: map[string]bool{owner: true},
		editSem: make(chan struct{}, 1),
	}
}

// Platform is the in-process hosting service. Wrap it with NewServer for
// the HTTP API. Safe for concurrent use. Every method takes a
// context.Context threaded down from the HTTP request so cancelled requests
// stop waiting (notably on per-repository edit locks).
type Platform struct {
	mu      sync.RWMutex
	users   map[string]*User // by name
	byToken map[string]*User
	repos   map[string]*hostedRepo // by "owner/name"
	// pending reserves "owner/name" keys for in-flight forks, so the
	// O(closure) history copy can run outside the platform lock without a
	// concurrent create or fork claiming the same name.
	pending map[string]bool

	// newRepo creates the backing repository for a hosted (or forked)
	// repository; defaults to in-memory storage.
	newRepo func(meta gitcite.Meta) (*gitcite.Repo, error)
}

// PlatformOption configures a Platform at construction.
type PlatformOption func(*Platform)

// WithRepoFactory makes the platform create hosted repositories through f
// instead of in memory — e.g. pack-backed persistent storage under a data
// directory (gitcite-server's -pack flag). Forks go through the same
// factory, with the fork's history copied in afterwards.
func WithRepoFactory(f func(meta gitcite.Meta) (*gitcite.Repo, error)) PlatformOption {
	return func(p *Platform) { p.newRepo = f }
}

// NewPlatform creates an empty platform.
func NewPlatform(opts ...PlatformOption) *Platform {
	p := &Platform{
		users:   map[string]*User{},
		byToken: map[string]*User{},
		repos:   map[string]*hostedRepo{},
		pending: map[string]bool{},
		newRepo: gitcite.NewMemoryRepo,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

func repoKey(owner, name string) string { return owner + "/" + name }

// CreateUser registers an account and returns its API token.
func (p *Platform) CreateUser(ctx context.Context, name string) (*User, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if name == "" || strings.ContainsAny(name, "/\n") {
		return nil, fmt.Errorf("%w: invalid user name %q", ErrBadRequest, name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[name]; ok {
		return nil, fmt.Errorf("%w: user %q", ErrConflict, name)
	}
	tok := make([]byte, 20)
	if _, err := rand.Read(tok); err != nil {
		return nil, err
	}
	u := &User{Name: name, Token: "gct_" + hex.EncodeToString(tok)}
	p.users[name] = u
	p.byToken[u.Token] = u
	return u, nil
}

// Authenticate resolves a token to its user.
func (p *Platform) Authenticate(ctx context.Context, token string) (*User, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.byToken[token]
	if !ok {
		return nil, ErrUnauthorized
	}
	return u, nil
}

// CreateRepoAs creates a citation-enabled repository owned by u.
func (p *Platform) CreateRepoAs(ctx context.Context, u *User, name, url, license string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrUnauthorized
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := repoKey(u.Name, name)
	if _, ok := p.repos[key]; ok || p.pending[key] {
		return nil, fmt.Errorf("%w: repository %q", ErrConflict, key)
	}
	repo, err := p.newRepo(gitcite.Meta{Owner: u.Name, Name: name, URL: url, License: license})
	if err != nil {
		return nil, err
	}
	p.repos[key] = newHostedRepo(repo, u.Name)
	return repo, nil
}

// CreateRepo is CreateRepoAs after token authentication.
func (p *Platform) CreateRepo(ctx context.Context, token, name, url, license string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, err
	}
	return p.CreateRepoAs(ctx, u, name, url, license)
}

// AddMemberAs grants write access; only the owner may call it.
func (p *Platform) AddMemberAs(ctx context.Context, u *User, owner, name, member string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if u == nil {
		return ErrUnauthorized
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if hr.owner != u.Name {
		return fmt.Errorf("%w: only the owner may add members", ErrForbidden)
	}
	if _, ok := p.users[member]; !ok {
		return fmt.Errorf("%w: user %q", ErrNotFound, member)
	}
	hr.members[member] = true
	return nil
}

// AddMember is AddMemberAs after token authentication.
func (p *Platform) AddMember(ctx context.Context, token, owner, name, member string) error {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return err
	}
	return p.AddMemberAs(ctx, u, owner, name, member)
}

// Repo returns the repository for read access (no authentication: public
// read, like public GitHub repositories).
func (p *Platform) Repo(ctx context.Context, owner, name string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	return hr.repo, nil
}

// AuthorizeWriteAs returns the repository if (and only if) u is a member.
func (p *Platform) AuthorizeWriteAs(ctx context.Context, u *User, owner, name string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrUnauthorized
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if !hr.members[u.Name] {
		return nil, fmt.Errorf("%w: %s is not a member of %s/%s", ErrForbidden, u.Name, owner, name)
	}
	return hr.repo, nil
}

// AuthorizeWrite is AuthorizeWriteAs after token authentication.
func (p *Platform) AuthorizeWrite(ctx context.Context, token, owner, name string) (*gitcite.Repo, *User, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, nil, err
	}
	repo, err := p.AuthorizeWriteAs(ctx, u, owner, name)
	if err != nil {
		return nil, nil, err
	}
	return repo, u, nil
}

// LockForEdit takes the repository's edit lock, returning the unlock
// function. Server-side citation edits hold it across their
// checkout→modify→commit sequence, and pushes across their
// fast-forward-check→store→ref-update sequence. Acquisition honours ctx
// cancellation, so an abandoned request stops queueing for the lock.
func (p *Platform) LockForEdit(ctx context.Context, owner, name string) (func(), error) {
	p.mu.RLock()
	hr, ok := p.repos[repoKey(owner, name)]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	select {
	case hr.editSem <- struct{}{}:
		return func() { <-hr.editSem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// IsMember reports whether the user may write to the repository.
func (p *Platform) IsMember(ctx context.Context, userName, owner, name string) bool {
	if ctx.Err() != nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	return ok && hr.members[userName]
}

// ForkRepoAs implements the platform side of ForkCite: u gets a
// full-history copy under their account (paper §3: "Our way of storing
// citations will naturally enable ForkCite through GitHub's Fork").
func (p *Platform) ForkRepoAs(ctx context.Context, u *User, owner, name, newName string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrUnauthorized
	}
	src, err := p.Repo(ctx, owner, name)
	if err != nil {
		return nil, err
	}
	if newName == "" {
		newName = name
	}
	meta := gitcite.Meta{
		Owner: u.Name, Name: newName,
		URL:     "https://git.example/" + u.Name + "/" + newName,
		License: src.Meta.License,
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	// The name-conflict check MUST precede the factory call: a persistent
	// factory (gitcite-server -pack) opens the repository's directory, so
	// creating the fork first would open — and ForkInto would overwrite —
	// an existing repository's on-disk refs before the conflict surfaced.
	// The key is reserved under the lock and the O(closure) history copy
	// runs outside it, so a large fork does not stall every other platform
	// operation; a failed fork releases the reservation (with a persistent
	// factory, partial on-disk state may remain — see ROADMAP).
	key := repoKey(u.Name, newName)
	p.mu.Lock()
	if _, ok := p.repos[key]; ok || p.pending[key] {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: repository %q", ErrConflict, key)
	}
	p.pending[key] = true
	p.mu.Unlock()

	forked, err := p.newRepo(meta)
	if err == nil {
		err = gitcite.ForkInto(forked, src)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.pending, key)
	if err != nil {
		return nil, err
	}
	p.repos[key] = newHostedRepo(forked, u.Name)
	return forked, nil
}

// ForkRepo is ForkRepoAs after token authentication.
func (p *Platform) ForkRepo(ctx context.Context, token, owner, name, newName string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, err
	}
	return p.ForkRepoAs(ctx, u, owner, name, newName)
}

// ListRepos returns "owner/name" keys in sorted order.
func (p *Platform) ListRepos(ctx context.Context) []string {
	if ctx.Err() != nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.repos))
	for k := range p.repos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
