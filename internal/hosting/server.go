// Package hosting simulates the project-hosting platform GitCite's browser
// extension talks to (GitHub in the paper): user accounts with API tokens,
// hosted citation-enabled repositories with member lists, a versioned REST
// API over net/http with negotiated incremental sync, fork support and
// streaming push/pull object transfer.
//
// The permission model is the one Figure 2 of the paper demonstrates:
// anyone may read and generate citations; only the owner and project
// members may add, delete or modify citations (they are the only ones
// allowed to change files, and citation.cite is a file).
//
// Platforms come in two durability classes. NewPlatform is in-memory:
// state lives for the process. OpenPlatform (lifecycle.go) is the hosted
// service shape: accounts, repositories, memberships and fork intents are
// journaled to a crash-safe manifest under a data directory, hosted
// repositories persist as pack-backed stores below it and are opened
// lazily behind a bounded LRU, and boot reconciles the manifest against
// the directory tree so a restart — or a kill -9 mid-fork — loses nothing
// and leaks nothing.
package hosting

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/gitcite/gitcite/internal/gitcite"
)

// Errors reported by the platform core.
var (
	ErrUnauthorized = errors.New("hosting: invalid or missing token")
	ErrForbidden    = errors.New("hosting: operation requires project membership")
	ErrNotFound     = errors.New("hosting: not found")
	ErrConflict     = errors.New("hosting: already exists")
	ErrBadRequest   = errors.New("hosting: bad request")
	// ErrAmbiguousRev reports an abbreviated commit ID that matches more
	// than one commit (surfaced as 409 with code "ambiguous_ref").
	ErrAmbiguousRev = errors.New("hosting: ambiguous commit ID prefix")
	// ErrClosed reports an operation on a platform after Close — only
	// possible when requests outlive the HTTP server's drain.
	ErrClosed = errors.New("hosting: platform closed")
	// ErrNotCaughtUp reports a promotion attempt on a replica whose applied
	// cursor has not reached the primary's head (surfaced as 409 with code
	// "replica_lagging"). Promoting a lagging replica would silently drop
	// every acknowledged write it has not yet applied.
	ErrNotCaughtUp = errors.New("hosting: replica not caught up")
)

// User is one platform account.
type User struct {
	Name  string
	Token string
}

// hostedRepo couples a citation-enabled repository with its access control.
// On a persistent platform the repository handle is open-on-demand: repo is
// nil while closed, opened lazily by Platform.pin and closed again by LRU
// eviction once idle, so file descriptors and memory stay flat however
// many repositories the platform hosts.
type hostedRepo struct {
	owner   string
	meta    gitcite.Meta
	members map[string]bool // user names with write access (owner included)
	// editSem (capacity 1) serialises checkout→edit→commit sequences and
	// push ref updates on one repository so concurrent writers cannot lose
	// updates; a channel rather than a mutex so acquisition can honour
	// context cancellation.
	editSem chan struct{}

	// mu guards the open/closed handle state below. active counts in-flight
	// pins; eviction only ever closes a handle with active == 0, so no
	// request can observe its repository closing underneath it.
	mu     sync.Mutex
	repo   *gitcite.Repo
	active int
	// used is the LRU recency tick, bumped per pin with one atomic store so
	// the hot acquire path never takes an exclusive platform lock.
	used atomic.Int64
	// repacking dedups automatic maintenance: at most one background
	// repack per repository at a time.
	repacking atomic.Bool
}

func newHostedRepo(repo *gitcite.Repo, owner string, meta gitcite.Meta) *hostedRepo {
	return &hostedRepo{
		repo:    repo,
		owner:   owner,
		meta:    meta,
		members: map[string]bool{owner: true},
		editSem: make(chan struct{}, 1),
	}
}

// Platform is the in-process hosting service. Wrap it with NewServer for
// the HTTP API. Safe for concurrent use. Every method takes a
// context.Context threaded down from the HTTP request so cancelled requests
// stop waiting (notably on per-repository edit locks).
type Platform struct {
	mu      sync.RWMutex
	users   map[string]*User // by name
	byToken map[string]*User
	repos   map[string]*hostedRepo // by "owner/name"
	// pending reserves "owner/name" keys for in-flight creates and forks,
	// so the O(closure) history copy can run outside the platform lock
	// without a concurrent create or fork claiming the same name.
	pending map[string]bool
	closed  bool

	// newRepo creates or reopens the backing repository for a hosted (or
	// forked) repository; defaults to in-memory storage. OpenPlatform
	// installs a pack-backed factory rooted at the data directory.
	newRepo    func(meta gitcite.Meta) (*gitcite.Repo, error)
	factorySet bool

	// Persistence state — zero on in-memory platforms. dir is the data
	// directory, man the open manifest journal. openLimit bounds how many
	// repository handles stay open (0 = unbounded; only enforced with a
	// data directory, where evicted repositories can be reopened).
	dir             string
	man             *manifest
	openLimit       int
	autoRepackPacks int
	autoRepackLoose int

	openCount atomic.Int64
	lruTick   atomic.Int64

	// events is the replication feed (events.go): every acknowledged
	// mutation is published to it after it takes effect, so a follower
	// polling the feed sees state changes in an order it can replay.
	events *eventLog
}

// PlatformOption configures a Platform at construction.
type PlatformOption func(*Platform)

// WithRepoFactory makes the platform create hosted repositories through f
// instead of in memory — e.g. pack-backed persistent storage under a data
// directory. Forks go through the same factory, with the fork's history
// copied in afterwards. On a persistent platform the factory is also the
// re-opener: after an LRU eviction or a restart, the same meta is handed
// back to f to open the existing repository.
func WithRepoFactory(f func(meta gitcite.Meta) (*gitcite.Repo, error)) PlatformOption {
	return func(p *Platform) { p.newRepo = f; p.factorySet = true }
}

// WithOpenRepoLimit bounds how many hosted repository handles the platform
// keeps open at once: beyond n, the least-recently-used idle repository is
// closed (its files released) and transparently reopened on next use.
// Effective only on persistent platforms (OpenPlatform) — an in-memory
// repository cannot be reopened, so the limit is ignored there. n <= 0
// means unbounded.
func WithOpenRepoLimit(n int) PlatformOption {
	return func(p *Platform) { p.openLimit = n }
}

// WithAutoRepack sets the push-piggybacked maintenance policy: after a
// successful push, if the repository's pack count has reached packs or its
// loose-object count has reached loose, a background Repack folds and
// consolidates it (concurrent — readers and writers proceed throughout).
// Zero disables the respective trigger.
func WithAutoRepack(packs, loose int) PlatformOption {
	return func(p *Platform) { p.autoRepackPacks = packs; p.autoRepackLoose = loose }
}

// NewPlatform creates an empty in-memory platform: nothing survives the
// process. Use OpenPlatform for the durable, restartable service shape.
func NewPlatform(opts ...PlatformOption) *Platform {
	p := &Platform{
		users:   map[string]*User{},
		byToken: map[string]*User{},
		repos:   map[string]*hostedRepo{},
		pending: map[string]bool{},
		newRepo: gitcite.NewMemoryRepo,
		events:  newEventLog(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

func repoKey(owner, name string) string { return owner + "/" + name }

// CreateUser registers an account and returns its API token. On a
// persistent platform the account (token included) is journaled to the
// manifest before it is acknowledged, so it survives restart.
func (p *Platform) CreateUser(ctx context.Context, name string) (*User, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if name == "" || strings.ContainsAny(name, "/\\\n\r\x00") || strings.HasPrefix(name, ".") {
		return nil, fmt.Errorf("%w: invalid user name %q", ErrBadRequest, name)
	}
	tok := make([]byte, 20)
	if _, err := rand.Read(tok); err != nil {
		return nil, err
	}
	u := &User{Name: name, Token: "gct_" + hex.EncodeToString(tok)}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if _, ok := p.users[name]; ok {
		return nil, fmt.Errorf("%w: user %q", ErrConflict, name)
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{Op: opUser, Name: u.Name, Token: u.Token}); err != nil {
			return nil, err
		}
	}
	p.users[name] = u
	p.byToken[u.Token] = u
	p.events.publish(Event{Type: EventUser, Name: u.Name, Token: u.Token})
	return u, nil
}

// UpsertUser registers an account with a caller-chosen token, or re-tokens
// an existing one — the follower side of account replication, where the
// token is the primary's and must be mirrored verbatim so the same
// credential authenticates on both. Journaled like CreateUser (opUser
// replay is last-wins, so a re-token survives restart); idempotent when the
// account already carries the token.
func (p *Platform) UpsertUser(ctx context.Context, name, token string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if name == "" || strings.ContainsAny(name, "/\\\n\r\x00") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("%w: invalid user name %q", ErrBadRequest, name)
	}
	if token == "" {
		return fmt.Errorf("%w: empty token for user %q", ErrBadRequest, name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if u, ok := p.users[name]; ok {
		if u.Token == token {
			return nil
		}
		if p.man != nil {
			if err := p.man.append(manifestRecord{Op: opUser, Name: name, Token: token}); err != nil {
				return err
			}
		}
		delete(p.byToken, u.Token)
		u.Token = token
		p.byToken[token] = u
		p.events.publish(Event{Type: EventUser, Name: name, Token: token})
		return nil
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{Op: opUser, Name: name, Token: token}); err != nil {
			return err
		}
	}
	u := &User{Name: name, Token: token}
	p.users[name] = u
	p.byToken[token] = u
	p.events.publish(Event{Type: EventUser, Name: name, Token: token})
	return nil
}

// Authenticate resolves a token to its user.
func (p *Platform) Authenticate(ctx context.Context, token string) (*User, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.byToken[token]
	if !ok {
		return nil, ErrUnauthorized
	}
	return u, nil
}

// reserveKey claims "owner/name" for an in-flight create or fork, failing
// on a live repository, a concurrent claim, or a closed platform.
func (p *Platform) reserveKey(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if _, ok := p.repos[key]; ok || p.pending[key] {
		return fmt.Errorf("%w: repository %q", ErrConflict, key)
	}
	p.pending[key] = true
	return nil
}

func (p *Platform) releaseKey(key string) {
	p.mu.Lock()
	delete(p.pending, key)
	p.mu.Unlock()
}

// CreateRepoAs creates a citation-enabled repository owned by u. On a
// persistent platform the backing directory is created first and the
// manifest record journaled second: a crash in between leaves an orphan
// directory that boot reconciliation GCs, never a half-acknowledged
// repository.
func (p *Platform) CreateRepoAs(ctx context.Context, u *User, name, url, license string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrUnauthorized
	}
	if !validRepoName(name) {
		return nil, fmt.Errorf("%w: invalid repository name %q", ErrBadRequest, name)
	}
	key := repoKey(u.Name, name)
	if err := p.reserveKey(key); err != nil {
		return nil, err
	}
	defer p.releaseKey(key)
	meta := gitcite.Meta{Owner: u.Name, Name: name, URL: url, License: license}
	repo, err := p.newRepo(meta)
	if err != nil {
		return nil, err
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{Op: opRepo, Owner: u.Name, Repo: name, URL: url, License: license}); err != nil {
			repo.Close()
			os.RemoveAll(p.repoDir(u.Name, name))
			return nil, err
		}
	}
	p.registerOpen(key, newHostedRepo(repo, u.Name, meta))
	p.events.publish(Event{Type: EventRepo, Owner: u.Name, Repo: name, URL: url, License: license})
	return repo, nil
}

// EnsureRepo registers a repository replicated from a primary: no owning
// *User is required (the owner account may replay in the same batch) and an
// existing repository is a no-op, so re-applying a snapshot or an event
// suffix converges. Journal order matches CreateRepoAs — directory first,
// manifest record second.
func (p *Platform) EnsureRepo(ctx context.Context, owner, name, url, license string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if owner == "" || !validRepoName(name) {
		return fmt.Errorf("%w: invalid repository %q/%q", ErrBadRequest, owner, name)
	}
	key := repoKey(owner, name)
	p.mu.RLock()
	_, exists := p.repos[key]
	p.mu.RUnlock()
	if exists {
		return nil
	}
	if err := p.reserveKey(key); err != nil {
		if errors.Is(err, ErrConflict) {
			// Lost a race with another create of the same key — the
			// repository exists (or is about to); idempotence says done.
			return nil
		}
		return err
	}
	defer p.releaseKey(key)
	meta := gitcite.Meta{Owner: owner, Name: name, URL: url, License: license}
	repo, err := p.newRepo(meta)
	if err != nil {
		return err
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{Op: opRepo, Owner: owner, Repo: name, URL: url, License: license}); err != nil {
			repo.Close()
			os.RemoveAll(p.repoDir(owner, name))
			return err
		}
	}
	p.registerOpen(key, newHostedRepo(repo, owner, meta))
	p.events.publish(Event{Type: EventRepo, Owner: owner, Repo: name, URL: url, License: license})
	return nil
}

// registerOpen publishes a hosted repository whose handle is already open,
// charging it against the open-repo budget.
func (p *Platform) registerOpen(key string, hr *hostedRepo) {
	hr.used.Store(p.lruTick.Add(1))
	p.mu.Lock()
	p.repos[key] = hr
	p.mu.Unlock()
	p.openCount.Add(1)
	p.enforceOpenLimit()
}

// CreateRepo is CreateRepoAs after token authentication.
func (p *Platform) CreateRepo(ctx context.Context, token, name, url, license string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, err
	}
	return p.CreateRepoAs(ctx, u, name, url, license)
}

// AddMemberAs grants write access; only the owner may call it.
func (p *Platform) AddMemberAs(ctx context.Context, u *User, owner, name, member string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if u == nil {
		return ErrUnauthorized
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if hr.owner != u.Name {
		return fmt.Errorf("%w: only the owner may add members", ErrForbidden)
	}
	if _, ok := p.users[member]; !ok {
		return fmt.Errorf("%w: user %q", ErrNotFound, member)
	}
	if p.man != nil && !hr.members[member] {
		if err := p.man.append(manifestRecord{Op: opMember, Owner: owner, Repo: name, Member: member}); err != nil {
			return err
		}
	}
	if !hr.members[member] {
		hr.members[member] = true
		p.events.publish(Event{Type: EventMember, Owner: owner, Repo: name, Member: member})
	}
	return nil
}

// EnsureMember grants write access replicated from a primary: the
// permission check already happened there, so none runs here (the method is
// not exposed over HTTP). Idempotent; the member account must exist —
// primaries always emit the user event at a lower sequence number.
func (p *Platform) EnsureMember(ctx context.Context, owner, name, member string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if hr.members[member] {
		return nil
	}
	if _, ok := p.users[member]; !ok {
		return fmt.Errorf("%w: user %q", ErrNotFound, member)
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{Op: opMember, Owner: owner, Repo: name, Member: member}); err != nil {
			return err
		}
	}
	hr.members[member] = true
	p.events.publish(Event{Type: EventMember, Owner: owner, Repo: name, Member: member})
	return nil
}

// AddMember is AddMemberAs after token authentication.
func (p *Platform) AddMember(ctx context.Context, token, owner, name, member string) error {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return err
	}
	return p.AddMemberAs(ctx, u, owner, name, member)
}

// lookup finds a hosted repository by key.
func (p *Platform) lookup(owner, name string) (*hostedRepo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	return hr, nil
}

// pin returns the repository handle, opening it through the factory if the
// LRU closed it, and counts the caller as in-flight until release is
// called. A pinned repository is never closed underneath its user.
func (p *Platform) pin(hr *hostedRepo) (*gitcite.Repo, func(), error) {
	hr.mu.Lock()
	if hr.repo == nil {
		repo, err := p.newRepo(hr.meta)
		if err != nil {
			hr.mu.Unlock()
			return nil, nil, err
		}
		hr.repo = repo
		p.openCount.Add(1)
	}
	hr.active++
	repo := hr.repo
	hr.mu.Unlock()
	hr.used.Store(p.lruTick.Add(1))
	p.enforceOpenLimit()
	return repo, func() { p.unpin(hr) }, nil
}

func (p *Platform) unpin(hr *hostedRepo) {
	hr.mu.Lock()
	hr.active--
	hr.mu.Unlock()
}

// AcquireRepo returns the repository for read access (no authentication:
// public read, like public GitHub repositories), pinned open until the
// returned release function is called. Handlers hold the pin for the whole
// request so LRU eviction can never close a repository mid-response.
func (p *Platform) AcquireRepo(ctx context.Context, owner, name string) (*gitcite.Repo, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	hr, err := p.lookup(owner, name)
	if err != nil {
		return nil, nil, err
	}
	return p.pin(hr)
}

// Repo is AcquireRepo without the pin: the repository is opened (touching
// the LRU) and returned. Convenient for in-memory platforms and tests; on
// a persistent platform with an open-repo limit, prefer AcquireRepo — an
// unpinned handle may be evicted and closed while still in use.
func (p *Platform) Repo(ctx context.Context, owner, name string) (*gitcite.Repo, error) {
	repo, release, err := p.AcquireRepo(ctx, owner, name)
	if err != nil {
		return nil, err
	}
	release()
	return repo, nil
}

// AcquireForWrite returns the repository pinned open if (and only if) u is
// a member.
func (p *Platform) AcquireForWrite(ctx context.Context, u *User, owner, name string) (*gitcite.Repo, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if u == nil {
		return nil, nil, ErrUnauthorized
	}
	p.mu.RLock()
	hr, ok := p.repos[repoKey(owner, name)]
	var member bool
	if ok {
		member = hr.members[u.Name]
	}
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	if !ok {
		return nil, nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if !member {
		return nil, nil, fmt.Errorf("%w: %s is not a member of %s/%s", ErrForbidden, u.Name, owner, name)
	}
	return p.pin(hr)
}

// AuthorizeWriteAs is AcquireForWrite without the pin (see Repo for the
// caveat on persistent platforms).
func (p *Platform) AuthorizeWriteAs(ctx context.Context, u *User, owner, name string) (*gitcite.Repo, error) {
	repo, release, err := p.AcquireForWrite(ctx, u, owner, name)
	if err != nil {
		return nil, err
	}
	release()
	return repo, nil
}

// AuthorizeWrite is AuthorizeWriteAs after token authentication.
func (p *Platform) AuthorizeWrite(ctx context.Context, token, owner, name string) (*gitcite.Repo, *User, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, nil, err
	}
	repo, err := p.AuthorizeWriteAs(ctx, u, owner, name)
	if err != nil {
		return nil, nil, err
	}
	return repo, u, nil
}

// LockForEdit takes the repository's edit lock, returning the unlock
// function. Server-side citation edits hold it across their
// checkout→modify→commit sequence, and pushes across their
// fast-forward-check→store→ref-update sequence. Acquisition honours ctx
// cancellation, so an abandoned request stops queueing for the lock.
func (p *Platform) LockForEdit(ctx context.Context, owner, name string) (func(), error) {
	hr, err := p.lookup(owner, name)
	if err != nil {
		return nil, err
	}
	select {
	case hr.editSem <- struct{}{}:
		return func() { <-hr.editSem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// IsMember reports whether the user may write to the repository.
func (p *Platform) IsMember(ctx context.Context, userName, owner, name string) bool {
	if ctx.Err() != nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	return ok && hr.members[userName]
}

// forkCrashPoint, when set (tests only), simulates a process crash at the
// named fork stage: ForkRepoAs returns immediately — skipping its abort
// and cleanup path — leaving exactly the on-disk state a kill -9 at that
// instant would. Stages: "begun" (intent journaled, nothing copied),
// "created" (destination directory exists, copy incomplete), "copied"
// (copy complete, commit record not journaled).
var forkCrashPoint func(stage string) bool

// errSimulatedCrash is what ForkRepoAs returns when a test crash point
// fires; nothing observes it in production.
var errSimulatedCrash = errors.New("hosting: simulated crash")

// ForkRepoAs implements the platform side of ForkCite: u gets a
// full-history copy under their account (paper §3: "Our way of storing
// citations will naturally enable ForkCite through GitHub's Fork").
//
// On a persistent platform the copy is journaled two-phase: a fork-begin
// record is fsync'd before any bytes move, the O(closure) copy runs, and a
// fork-commit record acknowledges it. Every crash order is therefore
// recoverable at boot: begin without commit ⇒ the destination directory
// (in whatever partial state) is GC'd and the intent aborted; commit
// journaled ⇒ the fork is live. A fork error takes the same abort path
// inline. The name is reserved under the platform lock but the copy runs
// outside it, so a large fork does not stall every other operation.
func (p *Platform) ForkRepoAs(ctx context.Context, u *User, owner, name, newName string) (*gitcite.Repo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrUnauthorized
	}
	if newName == "" {
		newName = name
	}
	if !validRepoName(newName) {
		return nil, fmt.Errorf("%w: invalid repository name %q", ErrBadRequest, newName)
	}
	srcHR, err := p.lookup(owner, name)
	if err != nil {
		return nil, err
	}
	src, releaseSrc, err := p.pin(srcHR)
	if err != nil {
		return nil, err
	}
	defer releaseSrc()
	meta := gitcite.Meta{
		Owner: u.Name, Name: newName,
		URL:     "https://git.example/" + u.Name + "/" + newName,
		License: src.Meta.License,
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	// The name-conflict check MUST precede the factory call: a persistent
	// factory opens the repository's directory, so creating the fork first
	// would open — and ForkInto would overwrite — an existing repository's
	// on-disk refs before the conflict surfaced.
	key := repoKey(u.Name, newName)
	if err := p.reserveKey(key); err != nil {
		return nil, err
	}
	if p.man != nil {
		if err := p.man.append(manifestRecord{
			Op: opForkBegin, Owner: u.Name, Repo: newName,
			URL: meta.URL, License: meta.License,
			SrcOwner: owner, SrcRepo: name,
		}); err != nil {
			p.releaseKey(key)
			return nil, err
		}
	}
	if forkCrashPoint != nil && forkCrashPoint("begun") {
		return nil, errSimulatedCrash
	}

	forked, err := p.newRepo(meta)
	if err == nil {
		if forkCrashPoint != nil && forkCrashPoint("created") {
			return nil, errSimulatedCrash
		}
		err = gitcite.ForkInto(forked, src)
	}
	if err == nil && forkCrashPoint != nil && forkCrashPoint("copied") {
		return nil, errSimulatedCrash
	}
	if err == nil && p.man != nil {
		err = p.man.append(manifestRecord{Op: opForkCommit, Owner: u.Name, Repo: newName})
	}
	if err != nil {
		// Inline abort: same recovery boot reconciliation would perform.
		if forked != nil {
			forked.Close()
		}
		if p.dir != "" {
			os.RemoveAll(p.repoDir(u.Name, newName))
		}
		if p.man != nil {
			// Best-effort: an unjournaled abort just means boot GC redoes it.
			_ = p.man.append(manifestRecord{Op: opForkAbort, Owner: u.Name, Repo: newName})
		}
		p.releaseKey(key)
		return nil, err
	}
	p.releaseKey(key)
	p.registerOpen(key, newHostedRepo(forked, u.Name, meta))
	p.events.publish(Event{Type: EventRepo, Owner: u.Name, Repo: newName, URL: meta.URL, License: meta.License})
	// A fork is born with history: publish its branch tips so followers
	// catch up through the same negotiate path an ordinary push uses.
	if branches, err := forked.VCS.Branches(); err == nil {
		for _, b := range branches {
			if tip, err := forked.VCS.BranchTip(b); err == nil {
				p.publishRef(u.Name, newName, b, tip.String())
			}
		}
	}
	return forked, nil
}

// ForkRepo is ForkRepoAs after token authentication.
func (p *Platform) ForkRepo(ctx context.Context, token, owner, name, newName string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(ctx, token)
	if err != nil {
		return nil, err
	}
	return p.ForkRepoAs(ctx, u, owner, name, newName)
}

// ListRepos returns "owner/name" keys in sorted order.
func (p *Platform) ListRepos(ctx context.Context) []string {
	if ctx.Err() != nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.repos))
	for k := range p.repos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
