// Package hosting simulates the project-hosting platform GitCite's browser
// extension talks to (GitHub in the paper): user accounts with API tokens,
// hosted citation-enabled repositories with member lists, a REST API over
// net/http, fork support and push/pull object transfer.
//
// The permission model is the one Figure 2 of the paper demonstrates:
// anyone may read and generate citations; only the owner and project
// members may add, delete or modify citations (they are the only ones
// allowed to change files, and citation.cite is a file).
package hosting

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gitcite/gitcite/internal/gitcite"
)

// Errors reported by the platform core.
var (
	ErrUnauthorized = errors.New("hosting: invalid or missing token")
	ErrForbidden    = errors.New("hosting: operation requires project membership")
	ErrNotFound     = errors.New("hosting: not found")
	ErrConflict     = errors.New("hosting: already exists")
	ErrBadRequest   = errors.New("hosting: bad request")
)

// User is one platform account.
type User struct {
	Name  string
	Token string
}

// hostedRepo couples a citation-enabled repository with its access control.
type hostedRepo struct {
	repo    *gitcite.Repo
	owner   string
	members map[string]bool // user names with write access (owner included)
	// editMu serialises server-side checkout→edit→commit sequences so
	// concurrent citation edits on one repository cannot lose updates.
	editMu sync.Mutex
}

// Platform is the in-process hosting service. Wrap it with NewServer for
// the HTTP API. Safe for concurrent use.
type Platform struct {
	mu      sync.RWMutex
	users   map[string]*User // by name
	byToken map[string]*User
	repos   map[string]*hostedRepo // by "owner/name"
}

// NewPlatform creates an empty platform.
func NewPlatform() *Platform {
	return &Platform{
		users:   map[string]*User{},
		byToken: map[string]*User{},
		repos:   map[string]*hostedRepo{},
	}
}

func repoKey(owner, name string) string { return owner + "/" + name }

// CreateUser registers an account and returns its API token.
func (p *Platform) CreateUser(name string) (*User, error) {
	if name == "" || strings.ContainsAny(name, "/\n") {
		return nil, fmt.Errorf("hosting: invalid user name %q", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[name]; ok {
		return nil, fmt.Errorf("%w: user %q", ErrConflict, name)
	}
	tok := make([]byte, 20)
	if _, err := rand.Read(tok); err != nil {
		return nil, err
	}
	u := &User{Name: name, Token: "gct_" + hex.EncodeToString(tok)}
	p.users[name] = u
	p.byToken[u.Token] = u
	return u, nil
}

// Authenticate resolves a token to its user.
func (p *Platform) Authenticate(token string) (*User, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.byToken[token]
	if !ok {
		return nil, ErrUnauthorized
	}
	return u, nil
}

// CreateRepo creates a citation-enabled repository owned by the
// authenticated user.
func (p *Platform) CreateRepo(token, name, url, license string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(token)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := repoKey(u.Name, name)
	if _, ok := p.repos[key]; ok {
		return nil, fmt.Errorf("%w: repository %q", ErrConflict, key)
	}
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: u.Name, Name: name, URL: url, License: license})
	if err != nil {
		return nil, err
	}
	p.repos[key] = &hostedRepo{
		repo:    repo,
		owner:   u.Name,
		members: map[string]bool{u.Name: true},
	}
	return repo, nil
}

// AddMember grants write access; only the owner may call it.
func (p *Platform) AddMember(token, owner, name, member string) error {
	u, err := p.Authenticate(token)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if hr.owner != u.Name {
		return fmt.Errorf("%w: only the owner may add members", ErrForbidden)
	}
	if _, ok := p.users[member]; !ok {
		return fmt.Errorf("%w: user %q", ErrNotFound, member)
	}
	hr.members[member] = true
	return nil
}

// Repo returns the repository for read access (no authentication: public
// read, like public GitHub repositories).
func (p *Platform) Repo(owner, name string) (*gitcite.Repo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	return hr.repo, nil
}

// AuthorizeWrite returns the repository if (and only if) the token belongs
// to a member.
func (p *Platform) AuthorizeWrite(token, owner, name string) (*gitcite.Repo, *User, error) {
	u, err := p.Authenticate(token)
	if err != nil {
		return nil, nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	if !ok {
		return nil, nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	if !hr.members[u.Name] {
		return nil, nil, fmt.Errorf("%w: %s is not a member of %s/%s", ErrForbidden, u.Name, owner, name)
	}
	return hr.repo, u, nil
}

// LockForEdit takes the repository's edit lock, returning the unlock
// function. Server-side citation edits hold it across their
// checkout→modify→commit sequence.
func (p *Platform) LockForEdit(owner, name string) (func(), error) {
	p.mu.RLock()
	hr, ok := p.repos[repoKey(owner, name)]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: repository %s/%s", ErrNotFound, owner, name)
	}
	hr.editMu.Lock()
	return hr.editMu.Unlock, nil
}

// IsMember reports whether the user may write to the repository.
func (p *Platform) IsMember(userName, owner, name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	hr, ok := p.repos[repoKey(owner, name)]
	return ok && hr.members[userName]
}

// ForkRepo implements the platform side of ForkCite: the authenticated user
// gets a full-history copy under their account (paper §3: "Our way of
// storing citations will naturally enable ForkCite through GitHub's Fork").
func (p *Platform) ForkRepo(token, owner, name, newName string) (*gitcite.Repo, error) {
	u, err := p.Authenticate(token)
	if err != nil {
		return nil, err
	}
	src, err := p.Repo(owner, name)
	if err != nil {
		return nil, err
	}
	if newName == "" {
		newName = name
	}
	forked, err := gitcite.Fork(src, gitcite.Meta{
		Owner: u.Name, Name: newName,
		URL:     "https://git.example/" + u.Name + "/" + newName,
		License: src.Meta.License,
	})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := repoKey(u.Name, newName)
	if _, ok := p.repos[key]; ok {
		return nil, fmt.Errorf("%w: repository %q", ErrConflict, key)
	}
	p.repos[key] = &hostedRepo{repo: forked, owner: u.Name, members: map[string]bool{u.Name: true}}
	return forked, nil
}

// ListRepos returns "owner/name" keys in sorted order.
func (p *Platform) ListRepos() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.repos))
	for k := range p.repos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
