// Internal tests for the event log's fleet-aware retention: the ring holds
// events down to the slowest live follower (bounded by the hard cap), stale
// followers stop sizing it, rotation is the promotion fence, and the drain
// interrupt wakes parked long-pollers.
package hosting

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fillLog publishes n ref events and returns the log's head.
func fillLog(l *eventLog, n int) int64 {
	var head int64
	for i := 0; i < n; i++ {
		_, head = l.publish(Event{Type: EventRef, Owner: "o", Repo: "r", Branch: "b", Tip: fmt.Sprint(i)})
	}
	return head
}

// TestEventLogRetentionExtendsToSlowFollower pins the tentpole retention
// rule: a live follower's acknowledged cursor holds the ring open past
// eventLogCap, so a briefly-slow follower drains incrementally instead of
// being forced into a full resync.
func TestEventLogRetentionExtendsToSlowFollower(t *testing.T) {
	l := newEventLog()
	fillLog(l, 100)
	// The follower acknowledges cursor 50 by polling with since=50.
	if _, _, ok := l.since(50, "slow"); !ok {
		t.Fatal("warm-up poll rejected")
	}
	head := fillLog(l, eventLogCap+200)
	// Without the ack the ring would have trimmed to head-eventLogCap; the
	// live follower's cursor must keep everything after 50 retained.
	evs, _, ok := l.since(50, "slow")
	if !ok {
		t.Fatalf("live follower at cursor 50 got Reset with head %d", head)
	}
	if len(evs) == 0 || evs[0].Seq != 51 {
		t.Fatalf("retained window starts at %d, want 51", evs[0].Seq)
	}

	// An anonymous poll at the same depth is NOT protected once it is the
	// ring, not the follower map, that decides: anonymous pollers never
	// extend retention, so after the slow follower catches up the ring
	// snaps back to the soft cap.
	if _, _, ok := l.since(head, "slow"); !ok {
		t.Fatal("caught-up poll rejected")
	}
	head = fillLog(l, eventLogCap+10)
	if _, _, ok := l.since(50, ""); ok {
		t.Fatalf("cursor 50 still retained at head %d after the slow follower caught up", head)
	}
}

// TestEventLogStaleFollowerStopsSizingRetention ages a follower past
// followerLiveWindow via the injected clock: its cursor stops holding the
// ring, and its next poll is told to resync.
func TestEventLogStaleFollowerStopsSizingRetention(t *testing.T) {
	l := newEventLog()
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	fillLog(l, 100)
	if _, _, ok := l.since(10, "dead"); !ok {
		t.Fatal("warm-up poll rejected")
	}
	// The follower goes silent for longer than the live window while the
	// primary keeps publishing.
	now = now.Add(followerLiveWindow + time.Second)
	fillLog(l, eventLogCap+100)
	if len(l.events) > eventLogCap {
		t.Fatalf("ring retains %d events for a stale follower, want ≤ %d", len(l.events), eventLogCap)
	}
	if _, _, ok := l.since(10, "dead"); ok {
		t.Fatal("stale follower's evicted cursor still served incrementally")
	}
}

// TestEventLogHardCapBoundsRetention pins the memory bound: even a live
// follower stuck at cursor 0 cannot hold more than eventLogHardCap events —
// past that it is cheaper to snapshot-resync than to grow the ring.
func TestEventLogHardCapBoundsRetention(t *testing.T) {
	l := newEventLog()
	fillLog(l, 10)
	if _, _, ok := l.since(0, "stuck"); !ok {
		t.Fatal("warm-up poll rejected")
	}
	refresh := func() { l.mu.Lock(); l.noteAckLocked("stuck", 0); l.mu.Unlock() }
	// Fill to the hard cap (held open by the stuck follower), then push a
	// chunk past it; the follower stays live but never advances.
	fillLog(l, eventLogHardCap)
	refresh()
	fillLog(l, 512)
	refresh()
	if len(l.events) > eventLogHardCap {
		t.Fatalf("ring grew to %d events, hard cap is %d", len(l.events), eventLogHardCap)
	}
	if _, _, ok := l.since(0, "stuck"); ok {
		t.Fatal("cursor 0 served incrementally past the hard cap")
	}
}

// TestEventLogAckMapBounded pins the follower-map bound: the stalest entry
// is evicted past maxTrackedFollowers, so churny IDs cannot grow it.
func TestEventLogAckMapBounded(t *testing.T) {
	l := newEventLog()
	now := time.Unix(2000, 0)
	l.now = func() time.Time { return now }
	fillLog(l, 5)
	for i := 0; i < maxTrackedFollowers+10; i++ {
		now = now.Add(time.Second)
		if _, _, ok := l.since(1, fmt.Sprintf("f%03d", i)); !ok {
			t.Fatal("poll rejected")
		}
	}
	if len(l.acks) > maxTrackedFollowers {
		t.Fatalf("ack map grew to %d, bound is %d", len(l.acks), maxTrackedFollowers)
	}
	if _, ok := l.acks["f000"]; ok {
		t.Error("stalest follower survived eviction")
	}
	if _, ok := l.acks[fmt.Sprintf("f%03d", maxTrackedFollowers+9)]; !ok {
		t.Error("freshest follower was evicted")
	}
}

// TestEventLogRotateIsTheEpochFence pins rotation: fresh epoch, head back
// to zero, ring and follower map cleared, and parked waiters woken — every
// consumer of the old feed is forced through a resync.
func TestEventLogRotateIsTheEpochFence(t *testing.T) {
	l := newEventLog()
	old := l.epoch
	fillLog(l, 20)
	if _, _, ok := l.since(5, "f"); !ok {
		t.Fatal("warm-up poll rejected")
	}
	wake := l.wait()
	fresh := l.rotate()
	if fresh == old || fresh == "" {
		t.Fatalf("rotate minted epoch %q from %q", fresh, old)
	}
	select {
	case <-wake:
	default:
		t.Error("rotate left parked waiters sleeping")
	}
	if l.head != 0 || len(l.events) != 0 || len(l.acks) != 0 {
		t.Errorf("post-rotate head=%d events=%d acks=%d, want all zero", l.head, len(l.events), len(l.acks))
	}
	// An old-epoch cursor (journaled at seq 5) is now ahead of head = Reset.
	if _, _, ok := l.since(5, "f"); ok {
		t.Error("old-epoch cursor served incrementally across the fence")
	}
}

// TestInterruptEventWaitersWakesParkedPoll pins the shutdown interrupt: a
// long-poll parked at head answers immediately once waiters are
// interrupted, and every later poll answers without parking.
func TestInterruptEventWaitersWakesParkedPoll(t *testing.T) {
	p := NewPlatform()
	epoch, seq := p.publishRef("o", "r", "b", "t0")
	if epoch == "" || seq != 1 {
		t.Fatalf("publishRef = %q, %d", epoch, seq)
	}

	done := make(chan EventsResponse, 1)
	go func() {
		resp, err := p.EventsFrom(context.Background(), "f", seq, 30*time.Second)
		if err != nil {
			t.Errorf("parked poll failed: %v", err)
		}
		done <- resp
	}()
	// Let the poll park, then interrupt.
	time.Sleep(50 * time.Millisecond)
	p.InterruptEventWaiters()
	select {
	case resp := <-done:
		if resp.Head != seq || len(resp.Events) != 0 {
			t.Errorf("interrupted poll = %+v, want empty at head %d", resp, seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interrupt left the long-poll parked")
	}

	// Interrupted is permanent: the next would-be long poll returns fast.
	start := time.Now()
	if _, err := p.EventsFrom(context.Background(), "f", seq, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("post-interrupt poll parked for %v", d)
	}
}

// TestFleetStatusReportsFollowers pins the admin fleet view: followers
// sorted by ID with per-follower lag, liveness derived from last poll age.
func TestFleetStatusReportsFollowers(t *testing.T) {
	p := NewPlatform()
	now := time.Unix(3000, 0)
	p.events.now = func() time.Time { return now }
	var seq int64
	for i := 0; i < 8; i++ {
		_, seq = p.publishRef("o", "r", "b", fmt.Sprint(i))
	}
	if _, _, ok := p.events.since(2, "b-follower"); !ok {
		t.Fatal("poll rejected")
	}
	now = now.Add(followerLiveWindow + time.Minute)
	if _, _, ok := p.events.since(seq, "a-follower"); !ok {
		t.Fatal("poll rejected")
	}

	fs := p.FleetStatus()
	if fs.Head != seq || fs.Epoch == "" {
		t.Fatalf("fleet head=%d epoch=%q, want head %d", fs.Head, fs.Epoch, seq)
	}
	if len(fs.Followers) != 2 {
		t.Fatalf("fleet has %d followers, want 2", len(fs.Followers))
	}
	a, b := fs.Followers[0], fs.Followers[1]
	if a.ID != "a-follower" || b.ID != "b-follower" {
		t.Fatalf("followers not sorted: %q, %q", a.ID, b.ID)
	}
	if !a.Live || a.Lag != 0 {
		t.Errorf("a-follower live=%v lag=%d, want live and current", a.Live, a.Lag)
	}
	if b.Live || b.Lag != seq-2 {
		t.Errorf("b-follower live=%v lag=%d, want stale with lag %d", b.Live, b.Lag, seq-2)
	}
}
