// Package retro implements the paper's second future-work item (§5):
// "since many software repositories have already been developed without
// being citation-enabled, we would like to explore ways of adding
// retroactive citations and ensuring their consistency and preservation
// through the project history."
//
// Enable rewrites a branch's history into a citation-enabled parallel
// history: every version receives a citation.cite synthesised from the
// repository metadata and a history-driven attribution analysis (which
// authors touched which subtrees). Check audits an existing branch for
// citation consistency through its history.
package retro

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gitcite/gitcite/internal/citefile"
	"github.com/gitcite/gitcite/internal/core"
	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/diff"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// Options configures Enable.
type Options struct {
	// MinAuthors is the minimum number of distinct authors a directory must
	// have (differing from its parent's author set) before it earns an
	// explicit citation. Default 1.
	MinAuthors int
	// MaxDepth bounds how deep directory citations are attached; 0 means
	// no bound.
	MaxDepth int
}

func (o Options) minAuthors() int {
	if o.MinAuthors <= 0 {
		return 1
	}
	return o.MinAuthors
}

// Report summarises what Enable did.
type Report struct {
	// Rewritten maps each original commit to its citation-enabled
	// replacement.
	Rewritten map[object.ID]object.ID
	// NewTip is the rewritten branch tip.
	NewTip object.ID
	// EntriesAdded counts the explicit citation entries synthesised across
	// all versions (root entries included).
	EntriesAdded int
}

// Enable rewrites the named branch so that every version carries a
// synthesised citation.cite. The original branch is left untouched; the
// rewritten history is installed on newBranch. Versions that already carry
// a citation file keep it verbatim.
func Enable(repo *gitcite.Repo, branch, newBranch string, opts Options) (Report, error) {
	tip, err := repo.VCS.BranchTip(branch)
	if err != nil {
		return Report{}, err
	}
	order, err := topoOrder(repo, tip)
	if err != nil {
		return Report{}, err
	}

	report := Report{Rewritten: make(map[object.ID]object.ID, len(order))}
	// Citation blobs synthesised along the rewrite are batched into one
	// store write. Nothing reads their content before the flush — the tree
	// builder and attribution walk only reference them by content-derived
	// ID — and the rewritten history is unreachable until the branch ref
	// lands below, so a crash mid-rewrite leaves garbage, never a broken
	// ref.
	var pendingBlobs []store.Encoded
	// authorsByPath accumulates, per commit, the authors attributed to each
	// directory so far in history.
	authorsAt := make(map[object.ID]map[string]map[string]bool, len(order))

	for _, id := range order {
		c, err := repo.VCS.Commit(id)
		if err != nil {
			return Report{}, err
		}

		// Attribute this commit's changes against its first parent.
		var parentTree object.ID
		var inherited map[string]map[string]bool
		if len(c.Parents) > 0 {
			p, err := repo.VCS.Commit(c.Parents[0])
			if err != nil {
				return Report{}, err
			}
			parentTree = p.TreeID
			inherited = authorsAt[c.Parents[0]]
		}
		attribution := cloneAttribution(inherited)
		// Merge in secondary parents' attributions.
		if len(c.Parents) > 1 {
			for _, p := range c.Parents[1:] {
				mergeAttribution(attribution, authorsAt[p])
			}
		}
		// Attribute to this commit's author only content that differs from
		// every parent: a merge that just combines its parents' work does
		// not create authorship, but conflict resolutions and fix-ups made
		// in the merge commit itself do.
		changed, err := changedVersusAllParents(repo, c, parentTree)
		if err != nil {
			return Report{}, err
		}
		for _, p := range changed {
			attributePath(attribution, p, c.Author.Name)
		}
		authorsAt[id] = attribution

		// Build the citation function for this version.
		newTreeID := c.TreeID
		hasCite := vcs.PathExists(repo.VCS.Objects, c.TreeID, citefile.Path)
		if !hasCite {
			fn, added, err := synthesize(repo, c, attribution, opts)
			if err != nil {
				return Report{}, err
			}
			report.EntriesAdded += added
			adapter := storedTree{repo: repo, treeID: c.TreeID}
			data, err := citefile.Encode(fn, adapter.IsDir)
			if err != nil {
				return Report{}, err
			}
			enc := object.Encode(object.NewBlob(data))
			blobID := object.HashBytes(enc)
			pendingBlobs = append(pendingBlobs, store.Encoded{ID: blobID, Enc: enc})
			newTreeID, err = vcs.InsertSubtree(repo.VCS.Objects, c.TreeID, citefile.Path,
				object.TreeEntry{Name: citefile.Filename, Mode: object.ModeFile, ID: blobID})
			if err != nil {
				return Report{}, err
			}
		}

		// Remap parents into the rewritten history.
		newParents := make([]object.ID, 0, len(c.Parents))
		for _, p := range c.Parents {
			np, ok := report.Rewritten[p]
			if !ok {
				return Report{}, fmt.Errorf("retro: parent %s not rewritten before child", p.Short())
			}
			newParents = append(newParents, np)
		}
		newID, err := repo.VCS.CommitTree(newTreeID, newParents, vcs.CommitOptions{
			Author:    c.Author,
			Committer: c.Committer,
			Message:   c.Message,
		})
		if err != nil {
			return Report{}, err
		}
		report.Rewritten[id] = newID
	}

	// Land every synthesised citation blob in one batch write BEFORE the
	// branch ref makes the rewritten history reachable.
	if err := store.PutManyEncoded(repo.VCS.Objects, pendingBlobs); err != nil {
		return Report{}, err
	}

	report.NewTip = report.Rewritten[tip]
	if err := repo.VCS.Refs.Set(refs.BranchRef(newBranch), report.NewTip); err != nil {
		return Report{}, err
	}
	return report, nil
}

// synthesize builds a citation function for one version: the default root
// citation (repo metadata, the version's author and date) plus an explicit
// entry for each directory whose attributed author set both meets the
// MinAuthors threshold and differs from its parent directory's.
func synthesize(repo *gitcite.Repo, c *object.Commit, attribution map[string]map[string]bool, opts Options) (*core.Function, int, error) {
	// The root credits every contributor attributed so far in history,
	// falling back to this version's author for an empty attribution.
	rootAuthors := sortedAuthors(attribution["/"])
	if len(rootAuthors) == 0 {
		rootAuthors = []string{c.Author.Name}
	}
	root := repo.DefaultRootCitation(rootAuthors, c.Committer.When)
	fn, err := core.NewFunction(root)
	if err != nil {
		return nil, 0, err
	}
	added := 1

	dirs := make([]string, 0, len(attribution))
	for d := range attribution {
		if d == "/" {
			continue
		}
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	adapter := storedTree{repo: repo, treeID: c.TreeID}
	for _, d := range dirs {
		if opts.MaxDepth > 0 && len(vcs.SplitPath(d)) > opts.MaxDepth {
			continue
		}
		if !adapter.Exists(d) || !adapter.IsDir(d) {
			continue // directory no longer present in this version
		}
		authors := attribution[d]
		if len(authors) < opts.minAuthors() {
			continue
		}
		parentAuthors := attribution[vcs.ParentPath(d)]
		if sameAuthorSet(authors, parentAuthors) {
			continue
		}
		cite := core.Citation{
			RepoName:      repo.Meta.Name,
			Owner:         repo.Meta.Owner,
			URL:           repo.Meta.URL,
			CommittedDate: c.Committer.When,
			AuthorList:    sortedAuthors(authors),
			Note:          "retroactive citation (history attribution)",
		}
		if err := fn.Add(adapter, d, cite); err != nil {
			return nil, 0, err
		}
		added++
	}
	return fn, added, nil
}

// changedVersusAllParents returns the file paths added or modified in c
// relative to every one of its parents (for root commits: everything in the
// tree). The citation file is never attributed.
func changedVersusAllParents(repo *gitcite.Repo, c *object.Commit, firstParentTree object.ID) ([]string, error) {
	collect := func(parentTree object.ID) (map[string]bool, error) {
		changes, err := diff.Trees(repo.VCS.Objects, parentTree, c.TreeID, diff.Options{})
		if err != nil {
			return nil, err
		}
		set := map[string]bool{}
		for _, ch := range changes {
			if ch.Path == citefile.Path || ch.Op == diff.OpDelete {
				continue
			}
			set[ch.Path] = true
		}
		return set, nil
	}
	acc, err := collect(firstParentTree)
	if err != nil {
		return nil, err
	}
	for _, pid := range c.Parents[min(1, len(c.Parents)):] {
		p, err := repo.VCS.Commit(pid)
		if err != nil {
			return nil, err
		}
		set, err := collect(p.TreeID)
		if err != nil {
			return nil, err
		}
		for path := range acc {
			if !set[path] {
				delete(acc, path)
			}
		}
	}
	out := make([]string, 0, len(acc))
	for p := range acc {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// storedTree adapts a stored tree (minus the citation file) to core.Tree.
type storedTree struct {
	repo   *gitcite.Repo
	treeID object.ID
}

func (t storedTree) Exists(path string) bool {
	if path == citefile.Path {
		return false
	}
	return vcs.PathExists(t.repo.VCS.Objects, t.treeID, path)
}

func (t storedTree) IsDir(path string) bool {
	e, err := vcs.LookupPath(t.repo.VCS.Objects, t.treeID, path)
	return err == nil && e.IsDir()
}

func attributePath(attr map[string]map[string]bool, filePath, author string) {
	for d := vcs.ParentPath(filePath); ; d = vcs.ParentPath(d) {
		set, ok := attr[d]
		if !ok {
			set = map[string]bool{}
			attr[d] = set
		}
		set[author] = true
		if d == "/" {
			return
		}
	}
}

func cloneAttribution(in map[string]map[string]bool) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(in))
	for d, set := range in {
		cp := make(map[string]bool, len(set))
		for a := range set {
			cp[a] = true
		}
		out[d] = cp
	}
	return out
}

func mergeAttribution(dst, src map[string]map[string]bool) {
	for d, set := range src {
		cur, ok := dst[d]
		if !ok {
			cur = map[string]bool{}
			dst[d] = cur
		}
		for a := range set {
			cur[a] = true
		}
	}
}

func sameAuthorSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortedAuthors(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// topoOrder returns the commits reachable from tip in parents-before-
// children order.
func topoOrder(repo *gitcite.Repo, tip object.ID) ([]object.ID, error) {
	var order []object.ID
	state := map[object.ID]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(id object.ID) error
	visit = func(id object.ID) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("retro: commit graph cycle at %s", id.Short())
		case 2:
			return nil
		}
		state[id] = 1
		c, err := repo.VCS.Commit(id)
		if err != nil {
			return err
		}
		for _, p := range c.Parents {
			if err := visit(p); err != nil {
				return err
			}
		}
		state[id] = 2
		order = append(order, id)
		return nil
	}
	if err := visit(tip); err != nil {
		return nil, err
	}
	return order, nil
}

// Issue is one problem found by Check.
type Issue struct {
	Commit  object.ID
	Path    string
	Problem string
}

// String renders the issue for reports.
func (i Issue) String() string {
	if i.Path == "" {
		return fmt.Sprintf("%s: %s", i.Commit.Short(), i.Problem)
	}
	return fmt.Sprintf("%s: %s: %s", i.Commit.Short(), i.Path, i.Problem)
}

// Check audits every version reachable from a branch tip: each must carry a
// parseable citation.cite whose function validates against the version's
// tree (root present and complete, every entry's path existing). It returns
// the issues found, sorted by commit then path; an empty slice means the
// history is citation-consistent (the "ensuring their consistency …
// through the project history" half of the future-work item).
func Check(repo *gitcite.Repo, branch string) ([]Issue, error) {
	tip, err := repo.VCS.BranchTip(branch)
	if err != nil {
		return nil, err
	}
	var issues []Issue
	err = repo.VCS.Log(tip, func(id object.ID, c *object.Commit) error {
		if !vcs.PathExists(repo.VCS.Objects, c.TreeID, citefile.Path) {
			issues = append(issues, Issue{Commit: id, Problem: "missing citation.cite"})
			return nil
		}
		data, err := vcs.ReadFile(repo.VCS.Objects, c.TreeID, citefile.Path)
		if err != nil {
			return err
		}
		fn, err := citefile.Decode(data)
		if err != nil {
			issues = append(issues, Issue{Commit: id, Problem: "unparseable citation.cite: " + err.Error()})
			return nil
		}
		adapter := storedTree{repo: repo, treeID: c.TreeID}
		for _, pc := range fn.ActiveDomain() {
			if pc.Path == "/" {
				if err := pc.Citation.ValidateRoot(); err != nil {
					issues = append(issues, Issue{Commit: id, Path: "/", Problem: err.Error()})
				}
				continue
			}
			if !adapter.Exists(pc.Path) {
				issues = append(issues, Issue{Commit: id, Path: pc.Path, Problem: "cited path missing from version tree"})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i], issues[j]
		if a.Commit != b.Commit {
			return strings.Compare(a.Commit.String(), b.Commit.String()) < 0
		}
		return a.Path < b.Path
	})
	return issues, nil
}
