package retro

import (
	"strings"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/gitcite"
	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
)

// legacyRepo builds a three-commit history with NO citation files, authored
// by two people working in different directories — the "already developed
// without being citation-enabled" case.
func legacyRepo(t *testing.T) *gitcite.Repo {
	t.Helper()
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{
		Owner: "legacy", Name: "oldproj", URL: "https://git.example/legacy/oldproj",
	})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(files map[string]string, author string, unix int64, msg string) object.ID {
		fc := map[string]vcs.FileContent{}
		for p, d := range files {
			fc[p] = vcs.File(d)
		}
		id, err := repo.VCS.CommitFiles("main", fc, vcs.CommitOptions{
			Author:  vcs.Sig(author, author+"@x", time.Unix(unix, 0)),
			Message: msg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// alice creates core; bob adds gui; alice expands core.
	commit(map[string]string{"/core/a.go": "a1", "/README.md": "r"}, "alice", 100, "core")
	commit(map[string]string{"/core/a.go": "a1", "/README.md": "r", "/gui/app.js": "ui"}, "bob", 200, "gui")
	commit(map[string]string{"/core/a.go": "a2", "/core/b.go": "b1", "/README.md": "r", "/gui/app.js": "ui"}, "alice", 300, "more core")
	return repo
}

func TestEnableSynthesisesHistory(t *testing.T) {
	repo := legacyRepo(t)
	// Sanity: original history has issues.
	issues, err := Check(repo, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 3 {
		t.Fatalf("legacy issues = %d, want 3 missing-cite issues", len(issues))
	}

	report, err := Enable(repo, "main", "main-cited", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rewritten) != 3 {
		t.Errorf("rewrote %d commits, want 3", len(report.Rewritten))
	}
	if report.EntriesAdded < 3 {
		t.Errorf("entries added = %d, want at least a root per version", report.EntriesAdded)
	}

	// The rewritten branch is fully consistent.
	issues, err = Check(repo, "main-cited")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("rewritten branch issues: %v", issues)
	}

	// Attribution: /gui is credited to bob in the final version.
	tip, err := repo.VCS.BranchTip("main-cited")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := repo.FunctionAt(tip)
	if err != nil {
		t.Fatal(err)
	}
	gui, err := fn.Get("/gui")
	if err != nil {
		t.Fatalf("no /gui citation: have %v", fn.Paths())
	}
	if len(gui.AuthorList) != 1 || gui.AuthorList[0] != "bob" {
		t.Errorf("/gui authors = %v, want [bob]", gui.AuthorList)
	}
	if !strings.Contains(gui.Note, "retroactive") {
		t.Errorf("note = %q", gui.Note)
	}
	// /core in the final version was touched only by alice; the root set is
	// {alice, bob}, so /core earns its own citation.
	coreCite, err := fn.Get("/core")
	if err != nil {
		t.Fatalf("no /core citation: have %v", fn.Paths())
	}
	if len(coreCite.AuthorList) != 1 || coreCite.AuthorList[0] != "alice" {
		t.Errorf("/core authors = %v, want [alice]", coreCite.AuthorList)
	}

	// Original branch untouched.
	origTip, _ := repo.VCS.BranchTip("main")
	if repo.IsCitationEnabled(origTip) {
		t.Error("Enable mutated the original branch")
	}
	// Rewritten history preserves messages, authors and dates.
	newTip, _ := repo.VCS.Commit(report.NewTip)
	oldTip, _ := repo.VCS.Commit(origTip)
	if newTip.Message != oldTip.Message || newTip.Author != oldTip.Author {
		t.Error("rewrite changed commit metadata")
	}
}

func TestEnablePreservesExistingCitations(t *testing.T) {
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "n", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := repo.Checkout("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteFile("/f.go", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Commit(vcs.CommitOptions{Author: vcs.Sig("a", "a@x", time.Unix(1, 0)), Message: "enabled"}); err != nil {
		t.Fatal(err)
	}
	report, err := Enable(repo, "main", "main2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.EntriesAdded != 0 {
		t.Errorf("added %d entries to an already-enabled history", report.EntriesAdded)
	}
	// Tree unchanged → same commit content except parents (none) → the
	// rewritten commit is identical, IDs preserved.
	origTip, _ := repo.VCS.BranchTip("main")
	if report.NewTip != origTip {
		t.Error("already-enabled history was not preserved bit-for-bit")
	}
}

func TestEnableHandlesMerges(t *testing.T) {
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "n", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(branch string, files map[string]string, author string, unix int64) object.ID {
		fc := map[string]vcs.FileContent{}
		for p, d := range files {
			fc[p] = vcs.File(d)
		}
		id, err := repo.VCS.CommitFiles(branch, fc, vcs.CommitOptions{
			Author: vcs.Sig(author, author+"@x", time.Unix(unix, 0)), Message: branch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	base := commit("main", map[string]string{"/a": "a"}, "alice", 1)
	if err := repo.VCS.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	m := commit("main", map[string]string{"/a": "a", "/b": "b"}, "alice", 2)
	s := commit("side", map[string]string{"/a": "a", "/c/d.go": "d"}, "bob", 3)
	// Manual merge commit.
	treeID, err := vcs.BuildTree(repo.VCS.Objects, map[string]vcs.FileContent{
		"/a": vcs.File("a"), "/b": vcs.File("b"), "/c/d.go": vcs.File("d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	mergeC, err := repo.VCS.CommitTree(treeID, []object.ID{m, s}, vcs.CommitOptions{
		Author: vcs.Sig("alice", "a@x", time.Unix(4, 0)), Message: "merge",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.VCS.Refs.Set("refs/heads/main", mergeC); err != nil {
		t.Fatal(err)
	}

	report, err := Enable(repo, "main", "cited", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rewritten) != 4 {
		t.Errorf("rewrote %d commits, want 4", len(report.Rewritten))
	}
	newTip, err := repo.VCS.Commit(report.NewTip)
	if err != nil {
		t.Fatal(err)
	}
	if !newTip.IsMerge() {
		t.Error("merge shape lost in rewrite")
	}
	// /c came from bob through the merged branch.
	fn, err := repo.FunctionAt(report.NewTip)
	if err != nil {
		t.Fatal(err)
	}
	cCite, err := fn.Get("/c")
	if err != nil {
		t.Fatalf("no /c citation: %v", fn.Paths())
	}
	if len(cCite.AuthorList) != 1 || cCite.AuthorList[0] != "bob" {
		t.Errorf("/c authors = %v", cCite.AuthorList)
	}
	if issues, _ := Check(repo, "cited"); len(issues) != 0 {
		t.Errorf("issues = %v", issues)
	}
}

func TestEnableMaxDepth(t *testing.T) {
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "n", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.VCS.CommitFiles("main", map[string]vcs.FileContent{
		"/deep/deeper/deepest/f.go": vcs.File("x"),
		"/top.go":                   vcs.File("t"),
	}, vcs.CommitOptions{Author: vcs.Sig("solo", "s@x", time.Unix(1, 0)), Message: "m"}); err != nil {
		t.Fatal(err)
	}
	report, err := Enable(repo, "main", "cited", Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := repo.FunctionAt(report.NewTip)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fn.Paths() {
		if len(vcs.SplitPath(p)) > 1 {
			t.Errorf("entry %q deeper than MaxDepth", p)
		}
	}
}

func TestCheckFindsDanglingEntries(t *testing.T) {
	// Build a version whose citation.cite references a path the tree lacks,
	// by writing the file manually through the VCS.
	repo, err := gitcite.NewMemoryRepo(gitcite.Meta{Owner: "o", Name: "n", URL: "u"})
	if err != nil {
		t.Fatal(err)
	}
	badCite := `{
	  "/": {"repoName": "n", "owner": "o", "url": "u", "version": "1"},
	  "/ghost.go": {"owner": "nobody"}
	}`
	if _, err := repo.VCS.CommitFiles("main", map[string]vcs.FileContent{
		"/real.go":       vcs.File("x"),
		"/citation.cite": vcs.File(badCite),
	}, vcs.CommitOptions{Author: vcs.Sig("a", "a@x", time.Unix(1, 0)), Message: "bad"}); err != nil {
		t.Fatal(err)
	}
	issues, err := Check(repo, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || issues[0].Path != "/ghost.go" {
		t.Errorf("issues = %v", issues)
	}
	if !strings.Contains(issues[0].String(), "/ghost.go") {
		t.Errorf("issue string = %q", issues[0].String())
	}
}
