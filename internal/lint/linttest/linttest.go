// Package linttest runs lint analyzers against GOPATH-style fixture trees
// and checks their diagnostics against `// want "regexp"` comments — a
// standard-library re-implementation of the
// golang.org/x/tools/go/analysis/analysistest workflow.
//
// Fixtures live under testdata/src/<import-path>/. Imports between fixture
// packages resolve from the same tree (so a fixture can model the real
// module's package shapes under short paths like
// "fake/internal/vcs/store"); standard-library imports resolve through the
// toolchain's export data via `go list -export`.
//
// A want comment asserts one diagnostic on its line:
//
//	s.IDs() // want `Store\.IDs\(\) scans`
//
// Both backquoted and double-quoted regexps are accepted, several per
// comment. Every diagnostic must be wanted and every want must fire.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
)

// Run loads the fixture packages at the given import paths from
// testdata/src, runs the analyzer over all of them, and compares
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &loader{
		srcDir: filepath.Join("testdata", "src"),
		fset:   token.NewFileSet(),
		info:   lint.NewTypesInfo(),
		pkgs:   map[string]*fixturePkg{},
	}
	var pkgs []*lint.Package
	for _, path := range pkgPaths {
		fp, err := ld.load(path)
		if err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, &lint.Package{
			Path:      path,
			Name:      fp.types.Name(),
			Fset:      ld.fset,
			Syntax:    fp.syntax,
			Types:     fp.types,
			TypesInfo: ld.info,
		})
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	checkWants(t, ld, pkgs, diags)
}

// checkWants matches diagnostics against want comments, reporting both
// unexpected diagnostics and unsatisfied wants.
func checkWants(t *testing.T, ld *loader, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*wantExpr{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, w := range parseWants(t, c.Text) {
						pos := ld.fset.Position(c.Pos())
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], w)
					}
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: want %q did not fire", k.file, k.line, w.re)
			}
		}
	}
}

type wantExpr struct {
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the quoted regexps of a `// want ...` comment.
func parseWants(t *testing.T, comment string) []*wantExpr {
	t.Helper()
	rest, ok := strings.CutPrefix(comment, "// want ")
	if !ok {
		return nil
	}
	var ws []*wantExpr
	for _, q := range wantQuoted.FindAllString(rest, -1) {
		expr := q[1 : len(q)-1]
		if q[0] == '"' {
			expr = strings.ReplaceAll(expr, `\"`, `"`)
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			t.Fatalf("bad want pattern %s: %v", q, err)
		}
		ws = append(ws, &wantExpr{re: re})
	}
	if len(ws) == 0 {
		t.Fatalf("want comment with no quoted pattern: %s", comment)
	}
	return ws
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	syntax []*ast.File
	types  *types.Package
}

// loader resolves fixture imports from testdata/src and everything else
// from toolchain export data.
type loader struct {
	srcDir string
	fset   *token.FileSet
	info   *types.Info
	pkgs   map[string]*fixturePkg
	std    types.Importer
}

// Import implements types.Importer over the fixture tree with a stdlib
// fallback, so fixture packages can import each other and the standard
// library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fp, err := ld.load(path); err == nil {
		return fp.types, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if ld.std == nil {
		ld.std = importer.ForCompiler(ld.fset, "gc", stdExportLookup)
	}
	return ld.std.Import(path)
}

// load parses and type-checks one fixture package (memoised). A missing
// fixture directory returns an os.IsNotExist error so Import can fall
// back to the standard library.
func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("linttest: fixture %s has no Go files", path)
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, ld.info)
	if err != nil {
		return nil, fmt.Errorf("linttest: type-check %s: %w", path, err)
	}
	fp := &fixturePkg{syntax: files, types: tpkg}
	ld.pkgs[path] = fp
	return fp, nil
}

var (
	stdExportMu    sync.Mutex
	stdExportFiles = map[string]string{}
)

// stdExportLookup locates export data for a toolchain package, shelling
// out to `go list -export -deps` once per missing root and caching the
// whole dependency cone it reports.
func stdExportLookup(path string) (io.ReadCloser, error) {
	stdExportMu.Lock()
	defer stdExportMu.Unlock()
	if file, ok := stdExportFiles[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "--", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("linttest: go list %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			stdExportFiles[p.ImportPath] = p.Export
		}
	}
	file, ok := stdExportFiles[path]
	if !ok {
		return nil, fmt.Errorf("linttest: no export data for %q", path)
	}
	return os.Open(file)
}
