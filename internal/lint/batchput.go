package lint

import (
	"go/ast"
)

// BatchPut rejects per-object store writes inside loops.
//
// The engine's write bound — at most depth+1 store writes for a one-file
// commit, one pack append and one O(batch) index segment per batch — holds
// because every multi-object producer goes through PutMany/PutManyEncoded
// (PR 2's batch API, PR 5's journaled pack appends). A `Put` in a loop
// degrades that to one lock acquisition, one fanout scan and one index
// write per object; on the pack store it also journals one segment per
// object. Collect the batch and write it once via store.PutMany /
// store.PutManyEncoded (package-level helpers fall back gracefully on
// stores without native batch support).
//
// The store package itself is exempt (its fallback helpers loop by
// design), as are `main` packages (demo binaries) and methods themselves
// named Put/PutEncoded (interface forwarding wrappers).
var BatchPut = &Analyzer{
	Name: "batchput",
	Doc:  "flag store Put/PutEncoded calls inside loops; batch through PutMany/PutManyEncoded",
	Run:  runBatchPut,
}

func runBatchPut(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), storePathSuffix) || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			obj := calleeMethod(pass.TypesInfo, call)
			if obj == nil || !declaredIn(obj, storePathSuffix) {
				return
			}
			if obj.Name() != "Put" && obj.Name() != "PutEncoded" {
				return
			}
			if !insideLoop(stack) {
				return
			}
			name := enclosingFuncName(stack)
			if name == "Put" || name == "PutEncoded" {
				return // forwarding wrapper implementing the interface
			}
			pass.Reportf(call.Pos(),
				"store %s inside a loop writes one object at a time; collect the batch and use store.PutMany/PutManyEncoded", obj.Name())
		})
	}
	return nil
}

// insideLoop reports whether the node whose ancestor stack is given sits
// in a for/range body. Function literals reset the answer: a loop that
// builds closures does not make the closure body a loop.
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
