package lint

import (
	"go/ast"
)

// storePathSuffix identifies the object-store package wherever the module
// lives; analyzers match by path suffix so the testdata fixtures can model
// the package under short import paths.
const storePathSuffix = "internal/vcs/store"

// NoIDScan rejects Store.IDs() calls outside the store package itself.
//
// IDs() enumerates every object — O(repository) work, and on the loose
// FileStore a full directory tree scan. PR 4 removed the last hot-path
// caller by giving every store an ordered index behind IDsByPrefix /
// PrefixSearcher, and the bench counters pin zero full scans per prefix
// resolve; one careless IDs() call in a resolver or handler silently
// reintroduces the O(n) behaviour. Abbreviated-ID lookups must go through
// store.IDsByPrefix, presence checks through Has/HasMany.
//
// A method that is itself named IDs may forward the call (interface
// wrappers — counting stores, instrumentation — stay legal).
var NoIDScan = &Analyzer{
	Name: "noidscan",
	Doc: "flag Store.IDs() calls outside " + storePathSuffix +
		" (prefix lookups must use IDsByPrefix/PrefixSearcher)",
	Run: runNoIDScan,
}

func runNoIDScan(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), storePathSuffix) {
		return nil
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			obj := calleeMethod(pass.TypesInfo, call)
			if obj == nil || obj.Name() != "IDs" || !declaredIn(obj, storePathSuffix) {
				return
			}
			if enclosingFuncName(stack) == "IDs" {
				return // forwarding wrapper implementing the interface
			}
			pass.Reportf(call.Pos(),
				"Store.IDs() scans every object (O(repository)); resolve prefixes via store.IDsByPrefix and presence via Has/HasMany")
		})
	}
	return nil
}
