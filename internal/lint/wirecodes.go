package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// hostingPathSuffix identifies the hosting package (see storePathSuffix).
const hostingPathSuffix = "internal/hosting"

// WireCodes enforces the stable-error-code registry both ways.
//
// API v1's error contract (PR 3) is that clients switch on the
// machine-readable `code` field, never the free-text message, so every
// code the server can emit must be one of the registered Code* constants
// in wire.go — a handler inventing "repo_not_found" inline ships an
// undocumented, unswitchable code. Symmetrically, a registered constant
// the package never uses is a dead promise: clients handle a code the
// server cannot produce. The analyzer therefore rejects (a) any constant
// code expression in an ErrorResponse Code position that is not a
// registered constant, (b) any string literal in the package that
// duplicates a registered code's value, and (c) any registered Code*
// constant with no use in the package.
var WireCodes = &Analyzer{
	Name: "wirecodes",
	Doc:  "hosting error codes must be the registered wire.go Code* constants, and every registered code must be emitted",
	Run:  runWireCodes,
}

func runWireCodes(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), hostingPathSuffix) {
		return nil
	}

	// Registry: package-level string constants named Code*.
	registered := map[types.Object]bool{} // const object → registered
	registeredVals := map[string]string{} // value → const name
	var declRanges []declRange            // spans of the registering decls
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Code") || c.Val().Kind() != constant.String {
			continue
		}
		registered[c] = true
		registeredVals[constant.StringVal(c.Val())] = name
	}
	if len(registered) == 0 {
		return nil // no registry in this package (e.g. a sub-helper package)
	}
	used := map[types.Object]bool{}

	for _, f := range pass.Files {
		// Record the registering declarations so their own literals and any
		// cross-references between them are exempt below.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, s := range gd.Specs {
				vs := s.(*ast.ValueSpec)
				for _, n := range vs.Names {
					if registered[pass.TypesInfo.Defs[n]] {
						declRanges = append(declRanges, declRange{vs.Pos(), vs.End()})
						break
					}
				}
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; registered[obj] {
					used[obj] = true
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING || inRanges(declRanges, n.Pos()) {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value != nil {
					if name, dup := registeredVals[constant.StringVal(tv.Value)]; dup {
						pass.Reportf(n.Pos(),
							"string literal duplicates registered wire code %s; use the constant", name)
					}
				}
			case *ast.CompositeLit:
				checkErrorResponseCode(pass, n, registered, registeredVals)
			}
			return true
		})
	}

	for obj := range registered {
		if !used[obj] {
			pass.Reportf(obj.Pos(),
				"wire code %s is registered but never used in %s; the server cannot emit it", obj.Name(), pass.Pkg.Name())
		}
	}
	return nil
}

type declRange struct{ pos, end token.Pos }

func inRanges(rs []declRange, p token.Pos) bool {
	for _, r := range rs {
		if r.pos <= p && p < r.end {
			return true
		}
	}
	return false
}

// checkErrorResponseCode validates the Code field of ErrorResponse
// composite literals: any compile-time-constant code must be a registered
// constant's value. (Literals that duplicate a registered value are
// reported by the package-wide literal sweep.)
func checkErrorResponseCode(pass *Pass, lit *ast.CompositeLit, registered map[types.Object]bool, registeredVals map[string]string) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isErrorResponse(tv.Type) {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Code" {
			continue
		}
		vtv, ok := pass.TypesInfo.Types[kv.Value]
		if !ok || vtv.Value == nil || vtv.Value.Kind() != constant.String {
			continue // non-constant: the value's producer is checked at its source
		}
		if _, ok := registeredVals[constant.StringVal(vtv.Value)]; !ok {
			pass.Reportf(kv.Value.Pos(),
				"error code %s is not registered in wire.go; add a Code* constant or use an existing one", vtv.Value.ExactString())
		}
	}
}

// isErrorResponse reports whether t is the hosting package's
// ErrorResponse struct.
func isErrorResponse(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ErrorResponse" && declaredIn(obj, hostingPathSuffix)
}
