// load.go loads and type-checks the packages the analyzers run against.
//
// The loader shells out to `go list -export -deps -json`, which compiles
// the transitive dependency graph and reports a build-cache export-data
// file per package. Target packages are then parsed with go/parser and
// type-checked with go/types against an export-data importer — the same
// strategy golang.org/x/tools/go/packages uses, reduced to the standard
// library. Only non-test files are analyzed: tests exercise internals
// (counting wrappers, crash injection) that legitimately break the
// invariants the analyzers enforce for production code.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matched by patterns in dir (the module
// root or any directory inside it), type-checked and ready for analysis.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package's non-test files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Name:      tpkg.Name(),
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo allocates the types.Info maps the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
