package lint_test

import (
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
	"github.com/gitcite/gitcite/internal/lint/linttest"
)

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, lint.LockDiscipline, "lockdisc/internal/vcs/store")
}
