package lint_test

import (
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
	"github.com/gitcite/gitcite/internal/lint/linttest"
)

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, lint.CtxFirst,
		"ctxfake/internal/hosting",
		"ctxmain/internal/hosting", // package main on a hosting path: exempt
	)
}
