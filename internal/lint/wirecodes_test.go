package lint_test

import (
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
	"github.com/gitcite/gitcite/internal/lint/linttest"
)

func TestWireCodes(t *testing.T) {
	linttest.Run(t, lint.WireCodes, "wirefake/internal/hosting")
}
