package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces the store's write-lock I/O contract.
//
// PR 5 made Repack a two-phase concurrent fold precisely so that no
// expensive I/O ever happens while an RWMutex write lock starves readers:
// fsync, pack-record scans, whole-file reads and preads all run outside
// the critical section (mid-repack reader p99 69.7 ms → 19.4 µs). Cheap
// bounded writes — the O(batch) pack append, the journal segment — stay
// under the lock by design, and writer-only serialisation locks
// (plain sync.Mutex, e.g. repackMu) may wrap I/O freely because no reader
// waits on them. The analyzer therefore rejects, inside a write-locked
// RWMutex region in the store package, calls to:
//
//   - (*os.File).Sync — fsync under the store lock stalls every reader
//     for a device flush
//   - (*os.File).ReadAt — preads belong under the read lock (see
//     PackStore.readPacked)
//   - os.ReadFile / os.WriteFile — whole-file I/O is repack/open work
//   - any same-package function that (transitively) performs one of the
//     above, e.g. scanPackRecords, syncPath, loadPackIndex
//
// A write-locked region is: the statements between `x.Lock()` and
// `x.Unlock()` on a sync.RWMutex, the rest of the function after
// `x.Lock()` paired with `defer x.Unlock()`, or the whole body of a
// function whose name ends in "Locked" (the package's caller-holds-lock
// convention). Goroutines launched inside a region do not inherit it.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no fsync/pread/whole-file I/O while holding an RWMutex write lock in " + storePathSuffix,
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), storePathSuffix) {
		return nil
	}
	tainted := buildIOTaint(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var spans []span
			if n := fd.Name.Name; n != "Locked" && strings.HasSuffix(n, "Locked") {
				spans = append(spans, span{fd.Body.Pos(), fd.Body.End()})
			}
			spans = append(spans, lockedSpans(pass, fd.Body, fd.Body.End())...)
			if len(spans) == 0 {
				continue
			}
			checkSpans(pass, fd, spans, tainted)
		}
	}
	return nil
}

// span is a half-open source region [pos, end) in which a write lock is
// held.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// lockedSpans finds write-locked regions in block and its nested blocks.
// funcEnd is where defer-released locks are held until.
func lockedSpans(pass *Pass, block *ast.BlockStmt, funcEnd token.Pos) []span {
	var spans []span
	stmts := block.List
scan:
	for i := 0; i < len(stmts); i++ {
		mu, ok := rwMutexCallStmt(pass, stmts[i], "Lock")
		if !ok {
			continue
		}
		for j := i + 1; j < len(stmts); j++ {
			if isDeferUnlock(pass, stmts[j], mu) {
				// Held until the function returns; everything after the
				// Lock is locked, including statements beyond this block.
				spans = append(spans, span{stmts[i].End(), funcEnd})
				break scan
			}
			if mu2, ok := rwMutexCallStmt(pass, stmts[j], "Unlock"); ok && mu2 == mu {
				spans = append(spans, span{stmts[i].End(), stmts[j].Pos()})
				i = j
				continue scan
			}
		}
		// No release in this block: conservatively locked to block end.
		spans = append(spans, span{stmts[i].End(), block.End()})
		break
	}
	// Recurse into nested blocks for locks taken there.
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				spans = append(spans, lockedSpans(pass, b, funcEnd)...)
				return false
			}
			_, isFn := n.(*ast.FuncLit)
			return !isFn // function literals scope their own locks
		})
	}
	return spans
}

// rwMutexCallStmt reports whether stmt is `expr.<method>()` on a
// sync.RWMutex (or pointer to one), returning a canonical key for the
// mutex expression.
func rwMutexCallStmt(pass *Pass, stmt ast.Stmt, method string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return rwMutexCall(pass, es.X, method)
}

func rwMutexCall(pass *Pass, expr ast.Expr, method string) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil || !isRWMutex(recv) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func isDeferUnlock(pass *Pass, stmt ast.Stmt, mu string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	got, ok := rwMutexCall(pass, ds.Call, "Unlock")
	return ok && got == mu
}

func isRWMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RWMutex" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkSpans walks a function's statements and reports forbidden I/O
// calls positioned inside any write-locked span.
func checkSpans(pass *Pass, fd *ast.FuncDecl, spans []span, tainted map[types.Object]string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a goroutine does not hold the caller's lock
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		inSpan := false
		for _, s := range spans {
			if s.contains(call.Pos()) {
				inSpan = true
				break
			}
		}
		if !inSpan {
			return true
		}
		if reason := forbiddenIO(pass, call, tainted); reason != "" {
			pass.Reportf(call.Pos(),
				"%s while holding an RWMutex write lock; move the I/O outside the critical section (see Repack's build phase)", reason)
		}
		return true
	})
}

// forbiddenIO classifies a call as write-lock-forbidden I/O, returning a
// description or "".
func forbiddenIO(pass *Pass, call *ast.CallExpr, tainted map[types.Object]string) string {
	obj := calleeMethod(pass.TypesInfo, call)
	if obj == nil {
		return ""
	}
	if r := directForbiddenIO(obj); r != "" {
		return "call to " + r
	}
	if r, ok := tainted[obj]; ok {
		return fmt.Sprintf("call to %s, which %s", obj.Name(), r)
	}
	return ""
}

// directForbiddenIO reports whether obj is one of the forbidden I/O
// primitives.
func directForbiddenIO(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	switch obj.Name() {
	case "ReadFile", "WriteFile":
		if fn.Type().(*types.Signature).Recv() == nil {
			return "os." + obj.Name()
		}
	case "Sync", "ReadAt":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return ""
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "File" {
			return "(*os.File)." + obj.Name()
		}
	}
	return ""
}

// buildIOTaint computes which package-local functions transitively perform
// forbidden I/O, so calling them under a write lock is as bad as the I/O
// itself. The fixpoint is over the package's own call graph only.
func buildIOTaint(pass *Pass) map[types.Object]string {
	// calls maps each declared function to the local functions it calls.
	calls := map[types.Object][]types.Object{}
	tainted := map[types.Object]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj := pass.TypesInfo.Defs[fd.Name]
			if fnObj == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeMethod(pass.TypesInfo, call)
				if obj == nil {
					return true
				}
				if r := directForbiddenIO(obj); r != "" {
					if _, done := tainted[fnObj]; !done {
						tainted[fnObj] = "calls " + r
					}
				} else if obj.Pkg() == pass.Pkg {
					calls[fnObj] = append(calls[fnObj], obj)
				}
				return true
			})
		}
	}
	// Propagate to fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if _, done := tainted[fn]; done {
				continue
			}
			for _, c := range callees {
				if _, bad := tainted[c]; bad {
					tainted[fn] = fmt.Sprintf("%s (via %s)", tainted[c], c.Name())
					changed = true
					break
				}
			}
		}
	}
	return tainted
}
