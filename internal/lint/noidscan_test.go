package lint_test

import (
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
	"github.com/gitcite/gitcite/internal/lint/linttest"
)

func TestNoIDScan(t *testing.T) {
	linttest.Run(t, lint.NoIDScan, "noidscan")
}
