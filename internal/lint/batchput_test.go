package lint_test

import (
	"testing"

	"github.com/gitcite/gitcite/internal/lint"
	"github.com/gitcite/gitcite/internal/lint/linttest"
)

func TestBatchPut(t *testing.T) {
	linttest.Run(t, lint.BatchPut, "batchput")
}
