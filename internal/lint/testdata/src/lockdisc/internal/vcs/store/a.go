// Package store exercises the lockdiscipline analyzer with the real
// store's locking shapes.
package store

import (
	"os"
	"sync"
)

// packStore mirrors the real PackStore's locking fields.
type packStore struct {
	mu       sync.RWMutex
	repackMu sync.Mutex
	cur      *os.File
	path     string
}

// badSync fsyncs while holding the write lock (defer-released region).
func (p *packStore) badSync(data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.cur.Write(data); err != nil {
		return err
	}
	return p.cur.Sync() // want `call to \(\*os\.File\)\.Sync while holding an RWMutex write lock`
}

// badReadInRegion preads inside an explicit Lock/Unlock region.
func (p *packStore) badReadInRegion(buf []byte, off int64) (int, error) {
	p.mu.Lock()
	n, err := p.cur.ReadAt(buf, off) // want `call to \(\*os\.File\)\.ReadAt while holding an RWMutex write lock`
	p.mu.Unlock()
	return n, err
}

// goodReadAfterUnlock snapshots under the lock and preads after release.
func (p *packStore) goodReadAfterUnlock(buf []byte, off int64) (int, error) {
	p.mu.Lock()
	f := p.cur
	p.mu.Unlock()
	return f.ReadAt(buf, off)
}

// goodReadShared preads under the read lock, like the real readPacked.
func (p *packStore) goodReadShared(buf []byte, off int64) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.ReadAt(buf, off)
}

// scanAll re-reads the whole pack — repack/open-time work.
func (p *packStore) scanAll() ([]byte, error) {
	return os.ReadFile(p.path)
}

// badTransitive reaches the forbidden I/O through a same-package helper;
// the taint propagation catches it.
func (p *packStore) badTransitive() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scanAll() // want `call to scanAll, which calls os\.ReadFile`
}

// appendLocked is called with p.mu write-held: the naming convention makes
// the whole body a locked region. The bounded WriteAt append is the
// design; the whole-file read is not.
func (p *packStore) appendLocked(data []byte, off int64) error {
	if _, err := p.cur.WriteAt(data, off); err != nil {
		return err
	}
	_, err := os.ReadFile(p.path) // want `call to os\.ReadFile while holding an RWMutex write lock`
	return err
}

// repack serialises writers with a plain Mutex; I/O under it is fine
// because no reader ever waits on repackMu.
func (p *packStore) repack() error {
	p.repackMu.Lock()
	defer p.repackMu.Unlock()
	if _, err := os.ReadFile(p.path); err != nil {
		return err
	}
	return p.cur.Sync()
}

// spawn launches background I/O from inside the critical section; the
// goroutine does not hold the caller's lock.
func (p *packStore) spawn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		_ = p.cur.Sync()
	}()
}
