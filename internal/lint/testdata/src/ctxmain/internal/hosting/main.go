// This fixture sits on a hosting-suffixed import path but is package main,
// which ctxfirst exempts: a main function is where root contexts
// legitimately come from.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	_ = ctx
	return nil
}
