// Package batchput exercises the batchput analyzer.
package batchput

import "fake/internal/vcs/store"

// importAll is the violation: one store write per object.
func importAll(s store.Store, objects [][]byte) error {
	for _, data := range objects {
		if _, err := s.Put(data); err != nil { // want `store Put inside a loop`
			return err
		}
	}
	return nil
}

// importEncoded flags the raw-encoding variant too.
func importEncoded(s store.Store, batch []store.Encoded) error {
	for _, e := range batch {
		if err := s.PutEncoded(e.ID, e.Enc); err != nil { // want `store PutEncoded inside a loop`
			return err
		}
	}
	return nil
}

// importBatched is the approved shape.
func importBatched(s store.Store, objects [][]byte) error {
	_, err := store.PutMany(s, objects)
	return err
}

// single writes outside any loop are fine.
func single(s store.Store, data []byte) (store.ID, error) {
	return s.Put(data)
}

// deferredWrites builds closures in a loop; the closure bodies are not
// loop bodies, so the Put inside them is legal.
func deferredWrites(s store.Store, objects [][]byte) []func() error {
	var fns []func() error
	for _, data := range objects {
		fns = append(fns, func() error {
			_, err := s.Put(data)
			return err
		})
	}
	return fns
}

// retryStore forwards Put with a retry loop; the wrapper exemption keeps
// interface implementations legal even when they loop.
type retryStore struct {
	inner store.Store
}

func (r *retryStore) Put(data []byte) (store.ID, error) {
	for retry := 0; ; retry++ {
		id, err := r.inner.Put(data)
		if err == nil || retry == 2 {
			return id, err
		}
	}
}

// migrate interleaves each write with a read of the previous state, so
// batching would change observable order; it documents that with the
// suppression directive.
func migrate(s store.Store, objects [][]byte) error {
	for _, data := range objects {
		//lint:ignore batchput each write must land before the next read
		if _, err := s.Put(data); err != nil {
			return err
		}
	}
	return nil
}
