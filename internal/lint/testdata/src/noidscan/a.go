// Package noidscan exercises the noidscan analyzer.
package noidscan

import "fake/internal/vcs/store"

// resolvePrefix is the violation: enumerating every object to answer a
// prefix query.
func resolvePrefix(s store.Store) ([]store.ID, error) {
	return s.IDs() // want `Store\.IDs\(\) scans every object`
}

// resolveFast is the approved path.
func resolveFast(s store.Store) ([]store.ID, error) {
	return s.IDsByPrefix("ab")
}

// checkPresence uses Has instead of scanning.
func checkPresence(s store.Store, id store.ID) (bool, error) {
	return s.Has(id)
}

// countingStore forwards IDs as part of implementing the interface; the
// wrapper exemption keeps instrumentation stores legal.
type countingStore struct {
	inner store.Store
	calls int
}

func (c *countingStore) IDs() ([]store.ID, error) {
	c.calls++
	return c.inner.IDs()
}

// verifyAll deliberately scans everything (an offline integrity pass) and
// documents why with the suppression directive.
func verifyAll(s store.Store) ([]store.ID, error) {
	//lint:ignore noidscan offline integrity check must visit every object
	return s.IDs()
}
