// Package hosting models the API error-code registry checked by the
// wirecodes analyzer.
package hosting

// Registered wire codes. Clients switch on these values, never on the
// free-text message.
const (
	CodeNotFound    = "not_found"
	CodeConflict    = "conflict"
	CodeRateLimited = "rate_limited"
	CodeOrphan      = "orphan_code" // want `wire code CodeOrphan is registered but never used in hosting`
)

// ErrorResponse is the error envelope every handler writes.
type ErrorResponse struct {
	Code  string
	Error string
}
