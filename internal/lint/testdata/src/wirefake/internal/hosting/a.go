package hosting

// codeLocal is not part of the registry: lower-case, declared outside
// wire.go's Code* namespace.
const codeLocal = "too_big"

// notFound uses the registry correctly.
func notFound() ErrorResponse {
	return ErrorResponse{Code: CodeNotFound, Error: "no such repo"}
}

// conflictResponse keeps CodeConflict emitted.
func conflictResponse() ErrorResponse {
	return ErrorResponse{Code: CodeConflict, Error: "non-fast-forward"}
}

// retryAfter keeps CodeRateLimited emitted.
func retryAfter() string {
	return CodeRateLimited
}

// badInline invents an unregistered code at the call site.
func badInline() ErrorResponse {
	return ErrorResponse{Code: "repo_gone", Error: "gone"} // want `error code "repo_gone" is not registered in wire\.go`
}

// badDuplicate spells a registered code as a raw literal.
func badDuplicate() ErrorResponse {
	return ErrorResponse{Code: "conflict", Error: "ref moved"} // want `string literal duplicates registered wire code CodeConflict`
}

// badLocal routes an unregistered code through a local constant; constant
// folding still catches it.
func badLocal() ErrorResponse {
	return ErrorResponse{Code: codeLocal, Error: "limit"} // want `error code "too_big" is not registered in wire\.go`
}
