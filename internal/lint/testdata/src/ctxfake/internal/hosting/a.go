// Package hosting exercises the ctxfirst analyzer.
package hosting

import "context"

// Server is a stand-in handler target.
type Server struct{}

// Resolve takes its context first — the approved shape.
func (s *Server) Resolve(ctx context.Context, ref string) error {
	_ = ctx
	_ = ref
	return nil
}

// Fetch buries the context behind another parameter.
func (s *Server) Fetch(repo string, ctx context.Context) error { // want `exported Fetch takes context\.Context as parameter 2`
	_ = repo
	_ = ctx
	return nil
}

// FetchAll manufactures its own root context, severing the caller's
// cancellation chain.
func FetchAll(repos []string) error {
	ctx := context.Background() // want `library code must not call context\.Background\(\)`
	for _, r := range repos {
		if err := fetchOne(ctx, r); err != nil {
			return err
		}
	}
	return nil
}

func fetchOne(ctx context.Context, repo string) error {
	_ = ctx
	_ = repo
	return nil
}

// placeholder shows TODO is no better than Background.
func placeholder() context.Context {
	return context.TODO() // want `library code must not call context\.TODO\(\)`
}

// helper is unexported; the position rule covers the exported API surface
// only.
func helper(repo string, ctx context.Context) error {
	_ = repo
	_ = ctx
	return nil
}
