// Package store models the real object store's API surface
// (github.com/gitcite/gitcite/internal/vcs/store) under a short import
// path so analyzer fixtures can exercise the type-based matching without
// depending on the module's packages.
package store

// ID is an object identifier.
type ID string

// Encoded pairs an object ID with its canonical encoding.
type Encoded struct {
	ID  ID
	Enc []byte
}

// Store mirrors the analyzer-relevant methods of the real Store interface.
type Store interface {
	Put(data []byte) (ID, error)
	PutEncoded(id ID, enc []byte) error
	Has(id ID) (bool, error)
	IDs() ([]ID, error)
	IDsByPrefix(prefix string) ([]ID, error)
}

// PutMany writes a batch of objects in one store operation. The loop is
// legal here: the store package's own fallback helpers are exempt from
// batchput by design.
func PutMany(s Store, batch [][]byte) ([]ID, error) {
	ids := make([]ID, 0, len(batch))
	for _, data := range batch {
		id, err := s.Put(data)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PutManyEncoded writes a batch of pre-encoded objects.
func PutManyEncoded(s Store, batch []Encoded) error {
	for _, e := range batch {
		if err := s.PutEncoded(e.ID, e.Enc); err != nil {
			return err
		}
	}
	return nil
}
