package lint

import (
	"go/ast"
	"go/types"
)

// ctxPackages are the library packages whose context discipline CtxFirst
// enforces: the hosted-platform core and its client. Both were rebuilt
// around context propagation in PR 3 (ctx-aware edit-lock semaphore,
// per-request cancellation end to end); a context.Background() in library
// code severs that chain and makes a handler unkillable.
var ctxPackages = []string{"internal/hosting", "internal/extension"}

// CtxFirst enforces context.Context discipline in the hosting and
// extension libraries: exported functions that take a context take it as
// the first parameter, and library code never manufactures its own root
// context with context.Background()/context.TODO() — callers own the
// context. Binaries (package main) are exempt: a main function is where
// root contexts legitimately come from.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter of exported hosting/extension functions; no context.Background/TODO in library code",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	if pass.Pkg.Name() == "main" || !inAnyPackage(pass.Pkg.Path(), ctxPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n)
			case *ast.CallExpr:
				checkRootContext(pass, n)
			}
			return true
		})
	}
	return nil
}

func inAnyPackage(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// checkCtxPosition flags exported functions whose context.Context
// parameter is not the first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.Types[field.Type].Type) && pos != 0 {
			pass.Reportf(field.Pos(),
				"exported %s takes context.Context as parameter %d; context must come first", fd.Name.Name, pos+1)
		}
		pos += n
	}
}

// checkRootContext flags context.Background() and context.TODO() calls.
func checkRootContext(pass *Pass, call *ast.CallExpr) {
	obj := calleeMethod(pass.TypesInfo, call)
	if obj == nil || !declaredIn(obj, "context") {
		return
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		pass.Reportf(call.Pos(),
			"library code must not call context.%s(); accept a context.Context from the caller", obj.Name())
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
