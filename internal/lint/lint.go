// Package lint implements gitcite's custom static analyzers: machine
// checks for the performance and API invariants the engine's optimisation
// work established (see ROADMAP "Decisions of record" and CONTRIBUTING.md).
// Counter tests catch a regression after it ships a slow path; these
// analyzers reject the code shape that creates one.
//
// The package is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic) —
// the build environment vendors no external modules, so the suite runs on
// the standard library's go/ast + go/types alone. The shapes mirror
// go/analysis deliberately: if x/tools becomes available, each Analyzer
// ports by swapping the import.
//
// Diagnostics can be suppressed per line with a staticcheck-style
// directive, either on the flagged line or the line above it:
//
//	//lint:ignore <analyzer-name> <reason>
//
// The reason is mandatory; an ignore without one does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `gitcite-lint -help`.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run function,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchPut,
		CtxFirst,
		LockDiscipline,
		NoIDScan,
		WireCodes,
	}
}

// Run executes the analyzers against each loaded package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = suppress(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by a //lint:ignore directive on the
// same line or the line immediately above.
func suppress(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// ignores maps file → line → analyzer names ignored at that line.
	ignores := map[string]map[int][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						continue // a reason is mandatory
					}
					pos := pkg.Fset.Position(c.Pos())
					m := ignores[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						ignores[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], fields[0])
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		m := ignores[d.Pos.Filename]
		if ignoredAt(m, d.Pos.Line, d.Analyzer) || ignoredAt(m, d.Pos.Line-1, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func ignoredAt(m map[int][]string, line int, analyzer string) bool {
	for _, name := range m[line] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether pkgPath ends with the path suffix, on a
// path-segment boundary ("x/internal/vcs/store" matches suffix
// "internal/vcs/store"; "x/notinternal/vcs/store" does not).
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// declaredIn reports whether obj is declared in a package whose import
// path ends with the given path suffix.
func declaredIn(obj types.Object, suffix string) bool {
	return obj != nil && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), suffix)
}

// calleeMethod resolves a call expression to the method or function object
// it invokes, or nil.
func calleeMethod(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call (pkg.Fn)
	case *ast.Ident:
		return info.Uses[fn]
	}
	return nil
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration of a node path, or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// walkStack traverses f depth-first, invoking visit with the node and the
// stack of its ancestors (outermost first, node excluded).
func walkStack(f *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
