package merge

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

func buildTree(t *testing.T, s store.Store, files map[string]string) object.ID {
	t.Helper()
	m := map[string]vcs.FileContent{}
	for p, data := range files {
		m[p] = vcs.File(data)
	}
	id, err := vcs.BuildTree(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func readAll(t *testing.T, s store.Store, tree object.ID) map[string]string {
	t.Helper()
	files, err := vcs.TreeToFileMap(s, tree)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for p, f := range files {
		out[p] = string(f.Data)
	}
	return out
}

func TestCleanMerge(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/shared": "base", "/a": "a0", "/b": "b0"})
	ours := buildTree(t, s, map[string]string{"/shared": "base", "/a": "a1", "/b": "b0"})
	theirs := buildTree(t, s, map[string]string{"/shared": "base", "/a": "a0", "/b": "b1", "/new": "n"})

	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	got := readAll(t, s, res.TreeID)
	want := map[string]string{"/shared": "base", "/a": "a1", "/b": "b1", "/new": "n"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged = %v, want %v", got, want)
	}
	if len(res.DeletedPaths) != 0 {
		t.Errorf("deleted = %v", res.DeletedPaths)
	}
}

func TestMergeDeletions(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/keep": "k", "/ourDel": "x", "/theirDel": "y", "/bothDel": "z"})
	ours := buildTree(t, s, map[string]string{"/keep": "k", "/theirDel": "y"})
	theirs := buildTree(t, s, map[string]string{"/keep": "k", "/ourDel": "x"})

	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	got := readAll(t, s, res.TreeID)
	if !reflect.DeepEqual(got, map[string]string{"/keep": "k"}) {
		t.Errorf("merged = %v", got)
	}
	wantDel := []string{"/bothDel", "/ourDel", "/theirDel"}
	if !reflect.DeepEqual(res.DeletedPaths, wantDel) {
		t.Errorf("deleted = %v, want %v", res.DeletedPaths, wantDel)
	}
}

func TestBothModifiedConflict(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/f": "base"})
	ours := buildTree(t, s, map[string]string{"/f": "ours"})
	theirs := buildTree(t, s, map[string]string{"/f": "theirs"})

	// Default (nil resolver): ours wins but the conflict is reported.
	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != ConflictBothModified {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if got := readAll(t, s, res.TreeID)["/f"]; got != "ours" {
		t.Errorf("default resolution = %q", got)
	}

	// Theirs resolver.
	res, err = Trees(s, base, ours, theirs, Options{Resolver: func(Conflict) Resolution { return ResolveTheirs }})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s, res.TreeID)["/f"]; got != "theirs" {
		t.Errorf("theirs resolution = %q", got)
	}

	// Concat resolver produces marker file.
	res, err = Trees(s, base, ours, theirs, Options{Resolver: func(Conflict) Resolution { return ResolveConcat }})
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, s, res.TreeID)["/f"]
	for _, want := range []string{"<<<<<<< ours", "ours", "=======", "theirs", ">>>>>>> theirs"} {
		if !strings.Contains(body, want) {
			t.Errorf("concat body %q missing %q", body, want)
		}
	}
}

func TestModifyDeleteConflict(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/f": "base"})
	ours := buildTree(t, s, map[string]string{"/f": "modified"})
	theirs := buildTree(t, s, map[string]string{}) // deleted

	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != ConflictModifyDelete {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	// Ours default: modified file kept.
	if got := readAll(t, s, res.TreeID)["/f"]; got != "modified" {
		t.Errorf("kept = %q", got)
	}

	// Resolve theirs: file dropped, reported deleted.
	res, err = Trees(s, base, ours, theirs, Options{Resolver: func(Conflict) Resolution { return ResolveTheirs }})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := readAll(t, s, res.TreeID)["/f"]; ok {
		t.Error("file kept after theirs-deletion resolution")
	}
	if !reflect.DeepEqual(res.DeletedPaths, []string{"/f"}) {
		t.Errorf("deleted = %v", res.DeletedPaths)
	}
}

func TestBothAddedConflict(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{})
	ours := buildTree(t, s, map[string]string{"/f": "ours-new"})
	theirs := buildTree(t, s, map[string]string{"/f": "theirs-new"})

	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != ConflictBothAdded {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if res.Conflicts[0].BaseID != object.ZeroID {
		t.Error("both-added conflict has a base ID")
	}
}

func TestBothAddedIdentical(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{})
	ours := buildTree(t, s, map[string]string{"/f": "same"})
	theirs := buildTree(t, s, map[string]string{"/f": "same"})
	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("identical adds conflicted: %+v", res.Conflicts)
	}
	if got := readAll(t, s, res.TreeID)["/f"]; got != "same" {
		t.Errorf("merged = %q", got)
	}
}

func TestMergeWithZeroBase(t *testing.T) {
	// No merge base (disjoint histories): everything not identical conflicts.
	s := store.NewMemoryStore()
	ours := buildTree(t, s, map[string]string{"/a": "a", "/common": "x"})
	theirs := buildTree(t, s, map[string]string{"/b": "b", "/common": "y"})
	res, err := Trees(s, object.ZeroID, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, s, res.TreeID)
	if got["/a"] != "a" || got["/b"] != "b" {
		t.Errorf("union missing one-sided files: %v", got)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Path != "/common" {
		t.Errorf("conflicts = %+v", res.Conflicts)
	}
}

func TestNestedDirectoryMerge(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/src/a.go": "a", "/docs/x.md": "x"})
	ours := buildTree(t, s, map[string]string{"/src/a.go": "a", "/src/b.go": "b", "/docs/x.md": "x"})
	theirs := buildTree(t, s, map[string]string{"/src/a.go": "a", "/docs/x.md": "x", "/docs/y.md": "y"})
	res, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, s, res.TreeID)
	want := map[string]string{"/src/a.go": "a", "/src/b.go": "b", "/docs/x.md": "x", "/docs/y.md": "y"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged = %v, want %v", got, want)
	}
}

func TestConflictKindString(t *testing.T) {
	for k, want := range map[ConflictKind]string{
		ConflictBothModified: "both-modified",
		ConflictModifyDelete: "modify-delete",
		ConflictBothAdded:    "both-added",
		ConflictKind(42):     "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestMergeIsSymmetricModuloSides(t *testing.T) {
	s := store.NewMemoryStore()
	base := buildTree(t, s, map[string]string{"/f": "base", "/g": "g"})
	ours := buildTree(t, s, map[string]string{"/f": "left", "/g": "g"})
	theirs := buildTree(t, s, map[string]string{"/f": "base", "/g": "g", "/h": "h"})

	r1, err := Trees(s, base, ours, theirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Trees(s, base, theirs, ours, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TreeID != r2.TreeID {
		t.Error("clean merge not symmetric")
	}
}
