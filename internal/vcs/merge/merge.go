// Package merge implements three-way tree merging over the vcs substrate:
// given a merge base and two branch tips, it produces a merged tree and a
// list of file-level conflicts. GitCite layers citation-function merging
// (MergeCite) on top of the file results computed here.
package merge

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/gitcite/gitcite/internal/vcs"
	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/store"
)

// ConflictKind classifies a file-level merge conflict.
type ConflictKind uint8

// Conflict kinds.
const (
	// ConflictBothModified: both sides changed the same file differently.
	ConflictBothModified ConflictKind = iota + 1
	// ConflictModifyDelete: one side modified a file the other deleted.
	ConflictModifyDelete
	// ConflictBothAdded: both sides added the same path with different content.
	ConflictBothAdded
)

// String names the conflict kind.
func (k ConflictKind) String() string {
	switch k {
	case ConflictBothModified:
		return "both-modified"
	case ConflictModifyDelete:
		return "modify-delete"
	case ConflictBothAdded:
		return "both-added"
	default:
		return "unknown"
	}
}

// Conflict describes one path the merge could not resolve automatically.
type Conflict struct {
	Path     string
	Kind     ConflictKind
	BaseID   object.ID // zero if absent in base
	OursID   object.ID // zero if deleted on our side
	TheirsID object.ID // zero if deleted on their side
}

// Resolution tells Trees how to settle a conflict.
type Resolution uint8

// Resolutions.
const (
	// ResolveOurs keeps our side's version (absence included).
	ResolveOurs Resolution = iota + 1
	// ResolveTheirs keeps their side's version (absence included).
	ResolveTheirs
	// ResolveConcat keeps both contents with conflict markers, like Git's
	// textual conflict output.
	ResolveConcat
)

// Options configures a merge.
type Options struct {
	// Resolver settles conflicts; nil leaves them unresolved (the merge
	// returns the conflicts and resolves those paths to our side so the
	// result is still a valid tree).
	Resolver func(Conflict) Resolution
}

// Result is the outcome of a tree merge.
type Result struct {
	TreeID object.ID
	// Conflicts are the paths that required resolution (even when a
	// resolver settled them).
	Conflicts []Conflict
	// DeletedPaths lists files present in at least one input that are
	// absent from the merged tree; MergeCite prunes citation entries for
	// these (paper §3: "delete any entries that correspond to files that
	// were deleted by the Git merge").
	DeletedPaths []string
}

// Trees merges ours and theirs against base (any of which may be the zero
// ID, meaning an empty tree) and returns the merged tree plus conflicts.
//
// Per-file rules, with base version b, ours o, theirs t:
//
//	o == t                  → take either
//	o == b (only they moved) → take t
//	t == b (only we moved)   → take o
//	otherwise                → conflict
//
// "Version" includes absence, so add/add, modify/delete and delete/delete
// cases all reduce to these rules.
func Trees(s store.Store, base, ours, theirs object.ID, opts Options) (Result, error) {
	bf, err := flatten(s, base)
	if err != nil {
		return Result{}, err
	}
	of, err := flatten(s, ours)
	if err != nil {
		return Result{}, err
	}
	tf, err := flatten(s, theirs)
	if err != nil {
		return Result{}, err
	}

	paths := map[string]bool{}
	for p := range bf {
		paths[p] = true
	}
	for p := range of {
		paths[p] = true
	}
	for p := range tf {
		paths[p] = true
	}

	merged := map[string]vcs.FileContent{}
	var conflicts []Conflict
	var deleted []string

	keep := func(p string, f vcs.TreeFile) error {
		blob, err := store.GetBlob(s, f.BlobID)
		if err != nil {
			return err
		}
		merged[p] = vcs.FileContent{Data: blob.Data(), Mode: f.Mode}
		return nil
	}

	for _, p := range vcs.SortedPaths(paths) {
		b, inB := bf[p]
		o, inO := of[p]
		t, inT := tf[p]

		same := func(x vcs.TreeFile, inX bool, y vcs.TreeFile, inY bool) bool {
			if inX != inY {
				return false
			}
			if !inX {
				return true
			}
			return x.BlobID == y.BlobID && x.Mode == y.Mode
		}

		switch {
		case same(o, inO, t, inT): // both sides agree
			if inO {
				if err := keep(p, o); err != nil {
					return Result{}, err
				}
			} else if inB {
				deleted = append(deleted, p)
			}
		case same(o, inO, b, inB): // only theirs changed
			if inT {
				if err := keep(p, t); err != nil {
					return Result{}, err
				}
			} else {
				deleted = append(deleted, p)
			}
		case same(t, inT, b, inB): // only ours changed
			if inO {
				if err := keep(p, o); err != nil {
					return Result{}, err
				}
			} else {
				deleted = append(deleted, p)
			}
		default: // true conflict
			c := Conflict{Path: p}
			if inB {
				c.BaseID = b.BlobID
			}
			if inO {
				c.OursID = o.BlobID
			}
			if inT {
				c.TheirsID = t.BlobID
			}
			switch {
			case !inO || !inT:
				c.Kind = ConflictModifyDelete
			case !inB:
				c.Kind = ConflictBothAdded
			default:
				c.Kind = ConflictBothModified
			}
			conflicts = append(conflicts, c)

			res := ResolveOurs
			if opts.Resolver != nil {
				res = opts.Resolver(c)
			}
			switch res {
			case ResolveOurs:
				if inO {
					if err := keep(p, o); err != nil {
						return Result{}, err
					}
				} else {
					deleted = append(deleted, p)
				}
			case ResolveTheirs:
				if inT {
					if err := keep(p, t); err != nil {
						return Result{}, err
					}
				} else {
					deleted = append(deleted, p)
				}
			case ResolveConcat:
				data, err := concatConflict(s, c)
				if err != nil {
					return Result{}, err
				}
				mode := object.ModeFile
				if inO {
					mode = o.Mode
				} else if inT {
					mode = t.Mode
				}
				merged[p] = vcs.FileContent{Data: data, Mode: mode}
			default:
				return Result{}, fmt.Errorf("merge: unknown resolution %d for %q", res, p)
			}
		}
	}

	treeID, err := vcs.BuildTree(s, merged)
	if err != nil {
		return Result{}, err
	}
	sort.Strings(deleted)
	return Result{TreeID: treeID, Conflicts: conflicts, DeletedPaths: deleted}, nil
}

func flatten(s store.Store, treeID object.ID) (map[string]vcs.TreeFile, error) {
	out := map[string]vcs.TreeFile{}
	if treeID.IsZero() {
		return out, nil
	}
	files, err := vcs.FlattenTree(s, treeID)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		out[f.Path] = f
	}
	return out, nil
}

func concatConflict(s store.Store, c Conflict) ([]byte, error) {
	read := func(id object.ID) ([]byte, error) {
		if id.IsZero() {
			return nil, nil
		}
		b, err := store.GetBlob(s, id)
		if err != nil {
			return nil, err
		}
		return b.Data(), nil
	}
	ours, err := read(c.OursID)
	if err != nil {
		return nil, err
	}
	theirs, err := read(c.TheirsID)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString("<<<<<<< ours\n")
	buf.Write(ours)
	if len(ours) > 0 && ours[len(ours)-1] != '\n' {
		buf.WriteByte('\n')
	}
	buf.WriteString("=======\n")
	buf.Write(theirs)
	if len(theirs) > 0 && theirs[len(theirs)-1] != '\n' {
		buf.WriteByte('\n')
	}
	buf.WriteString(">>>>>>> theirs\n")
	return buf.Bytes(), nil
}
