package vcs

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
	"github.com/gitcite/gitcite/internal/vcs/refs"
)

func sig(name string, unix int64) object.Signature {
	return object.NewSignature(name, name+"@example.org", time.Unix(unix, 0))
}

func commitOn(t *testing.T, r *Repository, branch string, files map[string]FileContent, msg string, unix int64) object.ID {
	t.Helper()
	id, err := r.CommitFiles(branch, files, CommitOptions{Author: sig("alice", unix), Message: msg})
	if err != nil {
		t.Fatalf("CommitFiles(%s, %q): %v", branch, msg, err)
	}
	return id
}

func TestCommitAndReadBack(t *testing.T) {
	r := NewMemoryRepository()
	files := map[string]FileContent{
		"/README.md":      File("# hi\n"),
		"/src/main.go":    File("package main\n"),
		"/src/util/u.go":  File("package util\n"),
		"/docs/intro.txt": File("intro\n"),
	}
	c1 := commitOn(t, r, "main", files, "initial", 100)

	c, err := r.Commit(c1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parents) != 0 {
		t.Errorf("root commit has parents: %v", c.Parents)
	}
	got, err := ReadFile(r.Objects, c.TreeID, "/src/util/u.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "package util\n" {
		t.Errorf("ReadFile = %q", got)
	}
	// Flatten lists all files sorted.
	flat, err := FlattenTree(r.Objects, c.TreeID)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, f := range flat {
		paths = append(paths, f.Path)
	}
	want := []string{"/README.md", "/docs/intro.txt", "/src/main.go", "/src/util/u.go"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("flatten = %v, want %v", paths, want)
	}
}

func TestCommitChainAndHistory(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("1")}, "one", 1)
	c2 := commitOn(t, r, "main", map[string]FileContent{"/f": File("2")}, "two", 2)
	c3 := commitOn(t, r, "main", map[string]FileContent{"/f": File("3")}, "three", 3)

	hist, err := r.History(c3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hist, []object.ID{c3, c2, c1}) {
		t.Errorf("history = %v", hist)
	}
	tip, err := r.BranchTip("main")
	if err != nil || tip != c3 {
		t.Errorf("tip = %v, %v", tip, err)
	}
	head, err := r.Head()
	if err != nil || head != c3 {
		t.Errorf("Head = %v, %v", head, err)
	}
	branch, err := r.CurrentBranch()
	if err != nil || branch != "main" {
		t.Errorf("CurrentBranch = %q, %v", branch, err)
	}
}

func TestHeadUnborn(t *testing.T) {
	r := NewMemoryRepository()
	if _, err := r.Head(); !errors.Is(err, ErrNoCommits) {
		t.Errorf("Head on empty repo = %v, want ErrNoCommits", err)
	}
}

func TestBranchingAndCheckout(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("base")}, "base", 1)
	if err := r.CreateBranch("gui", c1); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateBranch("gui", c1); err == nil {
		t.Error("duplicate branch accepted")
	}
	if err := r.CreateBranch("bad", object.NewBlobString("x").ID()); err == nil {
		t.Error("branch at non-commit accepted")
	}
	c2 := commitOn(t, r, "gui", map[string]FileContent{"/f": File("base"), "/gui/app.js": File("ui")}, "gui work", 2)

	branches, err := r.Branches()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(branches, []string{"gui", "main"}) {
		t.Errorf("branches = %v", branches)
	}
	if err := r.Checkout("gui"); err != nil {
		t.Fatal(err)
	}
	head, err := r.Head()
	if err != nil || head != c2 {
		t.Errorf("Head after checkout = %v, %v, want %v", head, err, c2)
	}
	// main unchanged
	tip, _ := r.BranchTip("main")
	if tip != c1 {
		t.Error("main moved by gui commit")
	}
}

func TestIsAncestor(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("1")}, "1", 1)
	c2 := commitOn(t, r, "main", map[string]FileContent{"/f": File("2")}, "2", 2)
	if err := r.CreateBranch("side", c1); err != nil {
		t.Fatal(err)
	}
	c3 := commitOn(t, r, "side", map[string]FileContent{"/f": File("3")}, "3", 3)

	cases := []struct {
		anc, desc object.ID
		want      bool
	}{
		{c1, c2, true},
		{c1, c3, true},
		{c2, c3, false},
		{c3, c2, false},
		{c2, c2, true},
	}
	for i, c := range cases {
		got, err := r.IsAncestor(c.anc, c.desc)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("case %d: IsAncestor = %v, want %v", i, got, c.want)
		}
	}
}

func TestMergeBaseSimpleFork(t *testing.T) {
	r := NewMemoryRepository()
	base := commitOn(t, r, "main", map[string]FileContent{"/f": File("base")}, "base", 1)
	_ = commitOn(t, r, "main", map[string]FileContent{"/f": File("main2")}, "main2", 2)
	main3 := commitOn(t, r, "main", map[string]FileContent{"/f": File("main3")}, "main3", 3)
	if err := r.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	side1 := commitOn(t, r, "side", map[string]FileContent{"/f": File("side1")}, "side1", 4)

	mb, err := r.MergeBase(main3, side1)
	if err != nil {
		t.Fatal(err)
	}
	if mb != base {
		t.Errorf("MergeBase = %s, want %s", mb.Short(), base.Short())
	}
	// Fast-forward shape: base of (ancestor, descendant) is the ancestor.
	mb, err = r.MergeBase(base, main3)
	if err != nil || mb != base {
		t.Errorf("MergeBase(anc, desc) = %s, %v", mb.Short(), err)
	}
}

func TestMergeBaseDisjoint(t *testing.T) {
	r := NewMemoryRepository()
	a := commitOn(t, r, "main", map[string]FileContent{"/f": File("a")}, "a", 1)
	b := commitOn(t, r, "other", map[string]FileContent{"/g": File("b")}, "b", 2)
	mb, err := r.MergeBase(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !mb.IsZero() {
		t.Errorf("MergeBase of disjoint histories = %s, want zero", mb.Short())
	}
}

func TestMergeBaseAfterMerge(t *testing.T) {
	r := NewMemoryRepository()
	base := commitOn(t, r, "main", map[string]FileContent{"/f": File("0")}, "base", 1)
	if err := r.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	m1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("m")}, "m", 2)
	s1 := commitOn(t, r, "side", map[string]FileContent{"/g": File("s")}, "s", 3)

	// Merge side into main.
	treeID, err := r.TreeOf(m1)
	if err != nil {
		t.Fatal(err)
	}
	mergeC, err := r.MergeCommitOnBranch("main", treeID, s1, CommitOptions{Author: sig("alice", 4), Message: "merge"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Commit(mergeC)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsMerge() || c.Parents[0] != m1 || c.Parents[1] != s1 {
		t.Errorf("merge commit parents = %v", c.Parents)
	}
	// After the merge, the merge-base of main and side is side's tip.
	mb, err := r.MergeBase(mergeC, s1)
	if err != nil || mb != s1 {
		t.Errorf("MergeBase after merge = %s, %v, want %s", mb.Short(), err, s1.Short())
	}
}

func TestLogVisitsMergedHistoryOnce(t *testing.T) {
	r := NewMemoryRepository()
	base := commitOn(t, r, "main", map[string]FileContent{"/f": File("0")}, "base", 1)
	if err := r.CreateBranch("side", base); err != nil {
		t.Fatal(err)
	}
	m1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("m")}, "m", 2)
	s1 := commitOn(t, r, "side", map[string]FileContent{"/g": File("s")}, "s", 3)
	treeID, _ := r.TreeOf(m1)
	mergeC, err := r.MergeCommitOnBranch("main", treeID, s1, CommitOptions{Author: sig("a", 4), Message: "merge"})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := r.History(mergeC)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Errorf("history visited %d commits, want 4: %v", len(hist), hist)
	}
	seen := map[object.ID]int{}
	for _, id := range hist {
		seen[id]++
	}
	if seen[base] != 1 {
		t.Errorf("base visited %d times", seen[base])
	}
}

func TestLookupAndPathExists(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{
		"/a/b/c.txt": File("deep"),
		"/top.txt":   File("top"),
	}, "c", 1)
	tree, _ := r.TreeOf(c1)

	e, err := LookupPath(r.Objects, tree, "/a/b")
	if err != nil || !e.IsDir() {
		t.Errorf("LookupPath dir = %+v, %v", e, err)
	}
	e, err = LookupPath(r.Objects, tree, "/")
	if err != nil || !e.IsDir() || e.ID != tree {
		t.Errorf("LookupPath root = %+v, %v", e, err)
	}
	if !PathExists(r.Objects, tree, "/a/b/c.txt") {
		t.Error("existing file reported missing")
	}
	if PathExists(r.Objects, tree, "/a/zzz") {
		t.Error("missing path reported present")
	}
	if _, err := LookupPath(r.Objects, tree, "/top.txt/under-file"); err == nil {
		t.Error("path through file succeeded")
	}
	if _, err := ReadFile(r.Objects, tree, "/a/b"); err == nil {
		t.Error("ReadFile on directory succeeded")
	}
}

func TestBuildTreeRejectsFileDirClash(t *testing.T) {
	r := NewMemoryRepository()
	_, err := BuildTree(r.Objects, map[string]FileContent{
		"/a":   File("file"),
		"/a/b": File("child"),
	})
	if err == nil {
		t.Error("file/dir clash accepted")
	}
}

func TestBuildTreeEmptyAndRoundTrip(t *testing.T) {
	r := NewMemoryRepository()
	empty, err := BuildTree(r.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]FileContent{
		"/x/y/z.txt": File("z"),
		"/x/w.txt":   File("w"),
		"/q.txt":     File("q"),
	}
	tree1, err := BuildTree(r.Objects, files)
	if err != nil {
		t.Fatal(err)
	}
	if tree1 == empty {
		t.Error("non-empty tree equals empty tree")
	}
	back, err := TreeToFileMap(r.Objects, tree1)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := BuildTree(r.Objects, back)
	if err != nil {
		t.Fatal(err)
	}
	if tree1 != tree2 {
		t.Error("TreeToFileMap/BuildTree did not round-trip tree ID")
	}
}

func TestInsertAndRemoveSubtree(t *testing.T) {
	r := NewMemoryRepository()
	srcTree, err := BuildTree(r.Objects, map[string]FileContent{
		"/lib/a.go": File("a"),
		"/lib/b.go": File("b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	dstTree, err := BuildTree(r.Objects, map[string]FileContent{
		"/main.go": File("main"),
	})
	if err != nil {
		t.Fatal(err)
	}
	libEntry, err := LookupPath(r.Objects, srcTree, "/lib")
	if err != nil {
		t.Fatal(err)
	}
	combined, err := InsertSubtree(r.Objects, dstTree, "/vendor/lib", libEntry)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/main.go", "/vendor/lib/a.go", "/vendor/lib/b.go"} {
		if !PathExists(r.Objects, combined, p) {
			t.Errorf("path %q missing after graft", p)
		}
	}
	pruned, err := RemovePath(r.Objects, combined, "/vendor/lib/a.go")
	if err != nil {
		t.Fatal(err)
	}
	if PathExists(r.Objects, pruned, "/vendor/lib/a.go") {
		t.Error("removed path still present")
	}
	if !PathExists(r.Objects, pruned, "/vendor/lib/b.go") {
		t.Error("sibling removed too")
	}
	// Removing the last file prunes empty dirs.
	pruned2, err := RemovePath(r.Objects, pruned, "/vendor/lib/b.go")
	if err != nil {
		t.Fatal(err)
	}
	if PathExists(r.Objects, pruned2, "/vendor") {
		t.Error("empty intermediate directory not pruned")
	}
	if _, err := RemovePath(r.Objects, pruned2, "/ghost"); err == nil {
		t.Error("removing missing path succeeded")
	}
	if _, err := RemovePath(r.Objects, pruned2, "/"); err == nil {
		t.Error("removing root succeeded")
	}
}

func TestForkPreservesHistoryAndIDs(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("1")}, "1", 1)
	c2 := commitOn(t, r, "main", map[string]FileContent{"/f": File("2")}, "2", 2)
	if err := r.CreateBranch("dev", c1); err != nil {
		t.Fatal(err)
	}

	fork, err := Fork(r)
	if err != nil {
		t.Fatal(err)
	}
	tip, err := fork.BranchTip("main")
	if err != nil || tip != c2 {
		t.Errorf("fork main tip = %v, %v", tip, err)
	}
	devTip, err := fork.BranchTip("dev")
	if err != nil || devTip != c1 {
		t.Errorf("fork dev tip = %v, %v", devTip, err)
	}
	hist, err := fork.History(c2)
	if err != nil || !reflect.DeepEqual(hist, []object.ID{c2, c1}) {
		t.Errorf("fork history = %v, %v", hist, err)
	}
	// New commits in the fork don't affect the origin.
	c3, err := fork.CommitFiles("main", map[string]FileContent{"/f": File("fork!")}, CommitOptions{Author: sig("bob", 5), Message: "fork work"})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Objects.Has(c3); ok {
		t.Error("fork commit leaked into origin store")
	}
}

func TestFileRepositoryPersists(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenFileRepository(dir + "/.gitcite")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := r1.CommitFiles("main", map[string]FileContent{"/f": File("persisted")}, CommitOptions{Author: sig("a", 1), Message: "c"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenFileRepository(dir + "/.gitcite")
	if err != nil {
		t.Fatal(err)
	}
	head, err := r2.Head()
	if err != nil || head != c1 {
		t.Errorf("reopened Head = %v, %v", head, err)
	}
	tree, err := r2.TreeOf(head)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(r2.Objects, tree, "/f")
	if err != nil || string(data) != "persisted" {
		t.Errorf("reopened ReadFile = %q, %v", data, err)
	}
}

func TestCommitTreeValidatesInputs(t *testing.T) {
	r := NewMemoryRepository()
	blobID, err := r.Objects.Put(object.NewBlobString("not a tree"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CommitTree(blobID, nil, CommitOptions{Author: sig("a", 1)}); err == nil {
		t.Error("commit of non-tree accepted")
	}
	tree, err := BuildTree(r.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CommitTree(tree, []object.ID{blobID}, CommitOptions{Author: sig("a", 1)}); err == nil {
		t.Error("commit with non-commit parent accepted")
	}
}

func TestCommitterDefaultsToAuthor(t *testing.T) {
	r := NewMemoryRepository()
	author := sig("alice", 42)
	id, err := r.CommitFiles("main", map[string]FileContent{"/f": File("x")}, CommitOptions{Author: author, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Commit(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.Committer != author {
		t.Errorf("committer = %+v, want author", c.Committer)
	}
}

func TestDetachedHead(t *testing.T) {
	r := NewMemoryRepository()
	c1 := commitOn(t, r, "main", map[string]FileContent{"/f": File("1")}, "1", 1)
	if err := r.Refs.SetHEAD(refs.HEAD{Detached: c1}); err != nil {
		t.Fatal(err)
	}
	head, err := r.Head()
	if err != nil || head != c1 {
		t.Errorf("detached Head = %v, %v", head, err)
	}
	if _, err := r.CurrentBranch(); !errors.Is(err, refs.ErrDetached) {
		t.Errorf("CurrentBranch detached = %v, want ErrDetached", err)
	}
}

func TestWalkTreePaths(t *testing.T) {
	r := NewMemoryRepository()
	tree, err := BuildTree(r.Objects, map[string]FileContent{
		"/a/one.txt": File("1"),
		"/a/two.txt": File("2"),
		"/b.txt":     File("b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	err = WalkTree(r.Objects, tree, func(p string, e object.TreeEntry) error {
		visited = append(visited, fmt.Sprintf("%s:%v", p, e.IsDir()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a:true", "/a/one.txt:false", "/a/two.txt:false", "/b.txt:false"}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("walk = %v, want %v", visited, want)
	}
}
