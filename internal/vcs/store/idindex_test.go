package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// syntheticIDs builds n deterministic pseudo-random IDs (not content
// hashes — index tests only care about ordering).
func syntheticIDs(n int, seed int64) []object.ID {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]object.ID, n)
	for i := range ids {
		rng.Read(ids[i][:])
	}
	return ids
}

// naiveByPrefix is the O(n) reference implementation prefix searches are
// checked against.
func naiveByPrefix(ids []object.ID, prefix string, limit int) []object.ID {
	prefix = strings.ToLower(prefix)
	var out []object.ID
	for _, id := range ids {
		if strings.HasPrefix(id.String(), prefix) {
			out = append(out, id)
			if limit > 0 && len(out) == limit {
				break
			}
		}
	}
	return out
}

func sortIDs(ids []object.ID) []object.ID {
	sorted := append([]object.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return idLess(sorted[i], sorted[j]) })
	return sorted
}

func idsEqual(a, b []object.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIDIndexByPrefixMatchesNaive(t *testing.T) {
	ids := syntheticIDs(500, 1)
	// A handful of colliding prefixes so multi-match ranges are exercised.
	for i := 0; i < 8; i++ {
		var id object.ID
		copy(id[:], ids[0][:])
		id[object.IDSize-1] = byte(i)
		ids = append(ids, id)
	}
	idx := NewIDIndex(ids)
	sorted := sortIDs(ids)
	if idx.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(ids))
	}

	var prefixes []string
	for _, id := range ids[:40] {
		hex := id.String()
		for _, l := range []int{1, 2, 3, 4, 7, 64} {
			prefixes = append(prefixes, hex[:l])
		}
	}
	prefixes = append(prefixes, "", "0", "f", "abc", "ffffffff")
	for _, p := range prefixes {
		if p == "" {
			if _, err := idx.ByPrefix(p, 0); !errors.Is(err, ErrBadPrefix) {
				t.Errorf("ByPrefix(%q) error = %v, want ErrBadPrefix", p, err)
			}
			continue
		}
		got, err := idx.ByPrefix(p, 0)
		if err != nil {
			t.Fatalf("ByPrefix(%q): %v", p, err)
		}
		want := naiveByPrefix(sorted, p, 0)
		if !idsEqual(got, want) {
			t.Errorf("ByPrefix(%q) = %d ids, want %d", p, len(got), len(want))
		}
		if lim, _ := idx.ByPrefix(p, 2); len(lim) != min(2, len(want)) {
			t.Errorf("ByPrefix(%q, limit 2) = %d ids, want %d", p, len(lim), min(2, len(want)))
		}
	}
	for _, bad := range []string{"xyz", "g0", strings.Repeat("a", 65), "AB CD"} {
		if _, err := idx.ByPrefix(bad, 0); !errors.Is(err, ErrBadPrefix) {
			t.Errorf("ByPrefix(%q) error = %v, want ErrBadPrefix", bad, err)
		}
	}
	// Upper-case prefixes normalise.
	up := strings.ToUpper(ids[3].String()[:6])
	got, err := idx.ByPrefix(up, 0)
	if err != nil || len(got) == 0 {
		t.Errorf("upper-case prefix: got %d ids, err %v", len(got), err)
	}
}

func TestIDIndexContains(t *testing.T) {
	ids := syntheticIDs(300, 2)
	idx := NewIDIndex(ids)
	for _, id := range ids[:50] {
		if !idx.Contains(id) {
			t.Fatalf("Contains(%s) = false for indexed id", id.Short())
		}
	}
	for _, id := range syntheticIDs(50, 3) {
		if idx.Contains(id) {
			t.Fatalf("Contains(%s) = true for foreign id", id.Short())
		}
	}
	if NewIDIndex(nil).Contains(ids[0]) {
		t.Error("empty index claims containment")
	}
}

func TestIDIndexDeduplicates(t *testing.T) {
	ids := syntheticIDs(20, 4)
	idx := NewIDIndex(append(append([]object.ID(nil), ids...), ids...))
	if idx.Len() != len(ids) {
		t.Errorf("Len = %d after duplicate input, want %d", idx.Len(), len(ids))
	}
}

// TestIDsByPrefixAcrossStores checks every store implementation (native
// PrefixSearcher or the package-level fallback) answers prefix queries
// identically to the naive scan.
func TestIDsByPrefixAcrossStores(t *testing.T) {
	for name, s := range batchStores(t) {
		t.Run(name, func(t *testing.T) {
			var ids []object.ID
			for i := 0; i < 200; i++ {
				id, err := s.Put(object.NewBlobString(fmt.Sprintf("prefix search object %d", i)))
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			sorted := sortIDs(ids)
			for _, id := range ids[:25] {
				for _, l := range []int{1, 2, 4, 8} {
					p := id.String()[:l]
					got, err := IDsByPrefix(s, p, 0)
					if err != nil {
						t.Fatalf("IDsByPrefix(%q): %v", p, err)
					}
					if want := naiveByPrefix(sorted, p, 0); !idsEqual(sortIDs(got), want) {
						t.Errorf("IDsByPrefix(%q) = %d ids, want %d", p, len(got), len(want))
					}
				}
			}
			// Absent prefix and limit behaviour.
			if got, err := IDsByPrefix(s, "ffffffffffff", 0); err != nil || len(got) != len(naiveByPrefix(sorted, "ffffffffffff", 0)) {
				t.Errorf("absent-ish prefix: got %d ids, err %v", len(got), err)
			}
			if got, err := IDsByPrefix(s, ids[0].String()[:1], 3); err != nil || len(got) > 3 {
				t.Errorf("limit: got %d ids, err %v, want <= 3", len(got), err)
			}
			if _, err := IDsByPrefix(s, "not-hex", 0); !errors.Is(err, ErrBadPrefix) {
				t.Errorf("malformed prefix error = %v, want ErrBadPrefix", err)
			}
		})
	}
}

// TestMemoryStoreIndexInvalidation checks new objects become prefix-visible
// after the lazily-built index went stale.
func TestMemoryStoreIndexInvalidation(t *testing.T) {
	s := NewMemoryStore()
	first, _ := s.Put(object.NewBlobString("first"))
	if got, _ := s.IDsByPrefix(first.String()[:8], 0); len(got) != 1 {
		t.Fatalf("warm-up lookup found %d ids", len(got))
	}
	second, _ := s.Put(object.NewBlobString("second"))
	if got, _ := s.IDsByPrefix(second.String()[:8], 0); len(got) != 1 {
		t.Errorf("post-invalidation lookup found %d ids, want 1", len(got))
	}
}

// TestPrefixSearchConcurrent hammers prefix lookups against concurrent
// writes (run with -race).
func TestPrefixSearchConcurrent(t *testing.T) {
	for _, impl := range []struct {
		name string
		s    Store
	}{
		{"memory", NewMemoryStore()},
		{"pack", newTestPackStore(t, t.TempDir())},
	} {
		t.Run(impl.name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						id, err := impl.s.Put(object.NewBlobString(fmt.Sprintf("w%d i%d", w, i)))
						if err != nil {
							t.Error(err)
							return
						}
						got, err := IDsByPrefix(impl.s, id.String()[:10], 0)
						if err != nil || len(got) == 0 {
							t.Errorf("IDsByPrefix after Put: %d ids, err %v", len(got), err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func BenchmarkIDIndexByPrefix(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := syntheticIDs(n, 9)
			idx := NewIDIndex(ids)
			prefixes := make([]string, 64)
			for i := range prefixes {
				prefixes[i] = ids[i*13%n].String()[:8]
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.ByPrefix(prefixes[i%len(prefixes)], 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
