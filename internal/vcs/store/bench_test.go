package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// benchBlobs returns n distinct blobs with their IDs.
func benchBlobs(b *testing.B, s Store, n int) []object.ID {
	b.Helper()
	ids := make([]object.ID, n)
	for i := range ids {
		id, err := s.Put(object.NewBlobString(fmt.Sprintf("bench blob %d", i)))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func BenchmarkFileStorePut(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStorePutParallel writes distinct objects from many
// goroutines; the striped fanout locks mean writers to different fanout
// dirs never serialise, and compression runs outside the lock entirely.
func BenchmarkFileStorePutParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", n))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFileStoreGet(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStoreGetParallel reads a working set from many goroutines;
// with striped read locks and decompression outside the critical section,
// readers scale with cores instead of queueing on one store mutex.
func BenchmarkFileStoreGetParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCachedStoreGetHot(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedStoreGetHotParallel is the hosting platform's steady
// state: every object cached, many concurrent readers. Sharding keeps them
// off a single LRU mutex.
func BenchmarkCachedStoreGetHotParallel(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCachedStoreOverFileParallel layers the sharded cache over the
// striped file store — the local tool's production read path.
func BenchmarkCachedStoreOverFileParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cs := NewCachedStore(fs, 1024)
	ids := benchBlobs(b, cs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- pack store ----

func newBenchPackStore(b *testing.B) *PackStore {
	b.Helper()
	ps, err := NewPackStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ps.Close() })
	return ps
}

// BenchmarkPackStorePutBatch appends one raw batch per iteration — the
// shape every commit and push takes through the batch API: one file append
// plus one index persist per batch, not per object.
func BenchmarkPackStorePutBatch(b *testing.B) {
	for _, size := range []int{1, 64} {
		b.Run(fmt.Sprintf("objs=%d", size), func(b *testing.B) {
			ps := newBenchPackStore(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]Encoded, size)
				for j := range batch {
					enc := object.Encode(object.NewBlobString(fmt.Sprintf("pack put %d/%d", i, j)))
					batch[j] = Encoded{ID: object.HashBytes(enc), Enc: enc}
				}
				if err := ps.PutManyEncoded(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPackStoreGet(b *testing.B) {
	ps := newBenchPackStore(b)
	ids := benchBlobs(b, ps, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackStoreGetParallel(b *testing.B) {
	ps := newBenchPackStore(b)
	ids := benchBlobs(b, ps, 1024)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := ps.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreColdOpen contrasts what a cold process pays to open each
// persistent layout: the pack store loads its sorted indexes (no object
// I/O); the loose layout defers the cost to later directory scans but then
// pays it per IDs()-style operation.
func BenchmarkStoreColdOpen(b *testing.B) {
	const objs = 2048
	b.Run("pack", func(b *testing.B) {
		dir := b.TempDir()
		seed, err := NewPackStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobs(b, seed, objs)
		if _, err := seed.Repack(); err != nil {
			b.Fatal(err)
		}
		seed.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps, err := NewPackStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if n, _ := ps.Len(); n != objs {
				b.Fatalf("Len = %d, want %d", n, objs)
			}
			ps.Close()
		}
	})
	b.Run("loose", func(b *testing.B) {
		dir := b.TempDir()
		seed, err := NewFileStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobs(b, seed, objs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs, err := NewFileStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if n, _ := fs.Len(); n != objs {
				b.Fatalf("Len = %d, want %d", n, objs)
			}
		}
	})
}
