package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// benchBlobs returns n distinct blobs with their IDs.
func benchBlobs(b *testing.B, s Store, n int) []object.ID {
	b.Helper()
	ids := make([]object.ID, n)
	for i := range ids {
		id, err := s.Put(object.NewBlobString(fmt.Sprintf("bench blob %d", i)))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func BenchmarkFileStorePut(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStorePutParallel writes distinct objects from many
// goroutines; the striped fanout locks mean writers to different fanout
// dirs never serialise, and compression runs outside the lock entirely.
func BenchmarkFileStorePutParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", n))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFileStoreGet(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStoreGetParallel reads a working set from many goroutines;
// with striped read locks and decompression outside the critical section,
// readers scale with cores instead of queueing on one store mutex.
func BenchmarkFileStoreGetParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCachedStoreGetHot(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedStoreGetHotParallel is the hosting platform's steady
// state: every object cached, many concurrent readers. Sharding keeps them
// off a single LRU mutex.
func BenchmarkCachedStoreGetHotParallel(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCachedStoreOverFileParallel layers the sharded cache over the
// striped file store — the local tool's production read path.
func BenchmarkCachedStoreOverFileParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cs := NewCachedStore(fs, 1024)
	ids := benchBlobs(b, cs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
