package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// benchBlobs returns n distinct blobs with their IDs.
func benchBlobs(b *testing.B, s Store, n int) []object.ID {
	b.Helper()
	ids := make([]object.ID, n)
	for i := range ids {
		id, err := s.Put(object.NewBlobString(fmt.Sprintf("bench blob %d", i)))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func BenchmarkFileStorePut(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStorePutParallel writes distinct objects from many
// goroutines; the striped fanout locks mean writers to different fanout
// dirs never serialise, and compression runs outside the lock entirely.
func BenchmarkFileStorePutParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Put(object.NewBlobString(fmt.Sprintf("put %d", n))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFileStoreGet(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStoreGetParallel reads a working set from many goroutines;
// with striped read locks and decompression outside the critical section,
// readers scale with cores instead of queueing on one store mutex.
func BenchmarkFileStoreGetParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ids := benchBlobs(b, fs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := fs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCachedStoreGetHot(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedStoreGetHotParallel is the hosting platform's steady
// state: every object cached, many concurrent readers. Sharding keeps them
// off a single LRU mutex.
func BenchmarkCachedStoreGetHotParallel(b *testing.B) {
	cs := NewCachedStore(NewMemoryStore(), 1024)
	ids := benchBlobs(b, cs, 64)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCachedStoreOverFileParallel layers the sharded cache over the
// striped file store — the local tool's production read path.
func BenchmarkCachedStoreOverFileParallel(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cs := NewCachedStore(fs, 1024)
	ids := benchBlobs(b, cs, 256)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := cs.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- pack store ----

func newBenchPackStore(b *testing.B) *PackStore {
	b.Helper()
	ps, err := NewPackStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ps.Close() })
	return ps
}

// BenchmarkPackStorePutBatch appends one raw batch per iteration — the
// shape every commit and push takes through the batch API: one file append
// plus one O(batch) journaled index segment per batch, not per object and
// not per pack byte.
func BenchmarkPackStorePutBatch(b *testing.B) {
	for _, size := range []int{1, 64} {
		b.Run(fmt.Sprintf("objs=%d", size), func(b *testing.B) {
			ps := newBenchPackStore(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]Encoded, size)
				for j := range batch {
					enc := object.Encode(object.NewBlobString(fmt.Sprintf("pack put %d/%d", i, j)))
					batch[j] = Encoded{ID: object.HashBytes(enc), Enc: enc}
				}
				if err := ps.PutManyEncoded(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPackStoreGet(b *testing.B) {
	ps := newBenchPackStore(b)
	ids := benchBlobs(b, ps, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackStoreGetParallel(b *testing.B) {
	ps := newBenchPackStore(b)
	ids := benchBlobs(b, ps, 1024)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			if _, err := ps.Get(ids[int(n)%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPackStoreReadDuringRepack measures what a reader pays while the
// store is being repacked — the regime the two-phase concurrent fold
// exists for. A background goroutine repeatedly drops loose objects into
// the store and folds them (so every Repack does real work instead of
// taking the single-pack fast path) while parallel readers Get a hot
// working set; per-read latencies are sampled and the p99 reported. Before
// PR 5 the fold held the store mutex end to end, so the p99 here was the
// duration of an entire repack; now it is a read's ordinary cost plus at
// worst the brief in-memory swap.
func BenchmarkPackStoreReadDuringRepack(b *testing.B) {
	dir := b.TempDir()
	ps, err := NewPackStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	ids := benchBlobs(b, ps, 4096)

	stop := make(chan struct{})
	repacks := make(chan int, 1)
	var folding atomic.Bool
	go func() {
		n := 0
		seq := 0
		defer func() { repacks <- n }() // unblock the drain on error too
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Feed the fold: loose objects keep each Repack off the
			// single-pack fast path and exercise the loose→pack move.
			for i := 0; i < 64; i++ {
				seq++
				if _, err := ps.loose.Put(object.NewBlobString(fmt.Sprintf("loose churn %d", seq))); err != nil {
					b.Error(err)
					return
				}
			}
			folding.Store(true)
			if _, err := ps.Repack(); err != nil {
				b.Error(err)
				return
			}
			folding.Store(false)
			n++
		}
	}()

	// Latencies are sampled only for reads issued while a Repack is in
	// flight — the population that used to queue on the store mutex for
	// the remainder of the fold.
	var mu sync.Mutex
	var samples []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var ctr int
		local := make([]time.Duration, 0, 4096)
		for pb.Next() {
			ctr++
			mid := folding.Load()
			start := time.Now()
			if _, err := ps.Get(ids[ctr%len(ids)]); err != nil {
				b.Fatal(err)
			}
			if mid {
				local = append(local, time.Since(start))
			}
		}
		mu.Lock()
		samples = append(samples, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(stop)
	n := <-repacks
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		b.ReportMetric(float64(samples[len(samples)*99/100].Nanoseconds()), "p99-mid-repack-ns")
		b.ReportMetric(float64(samples[len(samples)-1].Nanoseconds()), "max-mid-repack-ns")
	}
	b.ReportMetric(float64(n), "repacks")
}

// BenchmarkStoreColdOpen contrasts what a cold process pays to open each
// persistent layout: the pack store loads its sorted indexes (no object
// I/O); the loose layout defers the cost to later directory scans but then
// pays it per IDs()-style operation.
func BenchmarkStoreColdOpen(b *testing.B) {
	const objs = 2048
	b.Run("pack", func(b *testing.B) {
		dir := b.TempDir()
		seed, err := NewPackStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobs(b, seed, objs)
		if _, err := seed.Repack(); err != nil {
			b.Fatal(err)
		}
		seed.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps, err := NewPackStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if n, _ := ps.Len(); n != objs {
				b.Fatalf("Len = %d, want %d", n, objs)
			}
			ps.Close()
		}
	})
	b.Run("loose", func(b *testing.B) {
		dir := b.TempDir()
		seed, err := NewFileStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobs(b, seed, objs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs, err := NewFileStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if n, _ := fs.Len(); n != objs {
				b.Fatalf("Len = %d, want %d", n, objs)
			}
		}
	})
}
