package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// stores returns one of each Store implementation, fresh per call.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "objects"))
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	ps, err := NewPackStore(filepath.Join(t.TempDir(), "objects-pack"))
	if err != nil {
		t.Fatalf("NewPackStore: %v", err)
	}
	t.Cleanup(func() { ps.Close() })
	return map[string]Store{
		"memory": NewMemoryStore(),
		"file":   fs,
		"cached": NewCachedStore(NewMemoryStore(), 16),
		"pack":   ps,
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			blob := object.NewBlobString("citation data")
			id, err := s.Put(blob)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if id != blob.ID() {
				t.Errorf("Put returned %s, want %s", id, blob.ID())
			}
			got, err := s.Get(id)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got.(*object.Blob).Data(), blob.Data()) {
				t.Error("content mismatch after round trip")
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			missing := object.NewBlobString("never stored").ID()
			if _, err := s.Get(missing); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get(missing) error = %v, want ErrNotFound", err)
			}
			ok, err := s.Has(missing)
			if err != nil || ok {
				t.Errorf("Has(missing) = %v, %v", ok, err)
			}
		})
	}
}

func TestStorePutIdempotent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			blob := object.NewBlobString("dup")
			id1, err := s.Put(blob)
			if err != nil {
				t.Fatal(err)
			}
			id2, err := s.Put(object.NewBlobString("dup"))
			if err != nil {
				t.Fatal(err)
			}
			if id1 != id2 {
				t.Error("identical content produced different IDs")
			}
			n, err := s.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Errorf("Len = %d, want 1", n)
			}
		})
	}
}

func TestStoreAllObjectTypes(t *testing.T) {
	tree, err := object.NewTree([]object.TreeEntry{
		{Name: "f", Mode: object.ModeFile, ID: object.NewBlobString("x").ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	commit := &object.Commit{
		TreeID:    tree.ID(),
		Author:    object.NewSignature("a", "a@x", time.Unix(100, 0)),
		Committer: object.NewSignature("a", "a@x", time.Unix(100, 0)),
		Message:   "m",
	}
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, o := range []object.Object{object.NewBlobString("x"), tree, commit} {
				id, err := s.Put(o)
				if err != nil {
					t.Fatalf("Put(%v): %v", o.Type(), err)
				}
				got, err := s.Get(id)
				if err != nil {
					t.Fatalf("Get(%v): %v", o.Type(), err)
				}
				if got.Type() != o.Type() {
					t.Errorf("type = %v, want %v", got.Type(), o.Type())
				}
			}
			if _, err := GetBlob(s, object.NewBlobString("x").ID()); err != nil {
				t.Errorf("GetBlob: %v", err)
			}
			if _, err := GetTree(s, tree.ID()); err != nil {
				t.Errorf("GetTree: %v", err)
			}
			if _, err := GetCommit(s, commit.ID()); err != nil {
				t.Errorf("GetCommit: %v", err)
			}
			// typed getters reject wrong kinds
			if _, err := GetCommit(s, tree.ID()); err == nil {
				t.Error("GetCommit(tree) succeeded")
			}
			if _, err := GetTree(s, commit.ID()); err == nil {
				t.Error("GetTree(commit) succeeded")
			}
			if _, err := GetBlob(s, tree.ID()); err == nil {
				t.Error("GetBlob(tree) succeeded")
			}
		})
	}
}

func TestStoreIDsAndLen(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			want := map[object.ID]bool{}
			for i := 0; i < 20; i++ {
				b := object.NewBlobString(fmt.Sprintf("obj-%d", i))
				id, err := s.Put(b)
				if err != nil {
					t.Fatal(err)
				}
				want[id] = true
			}
			ids, err := s.IDs()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(want) {
				t.Fatalf("IDs len = %d, want %d", len(ids), len(want))
			}
			for _, id := range ids {
				if !want[id] {
					t.Errorf("unexpected id %s", id.Short())
				}
			}
			n, err := s.Len()
			if err != nil || n != len(want) {
				t.Errorf("Len = %d, %v; want %d", n, err, len(want))
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs1.Put(object.NewBlobString("durable"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-open the same directory with a fresh store value.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get(id)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if string(got.(*object.Blob).Data()) != "durable" {
		t.Error("content mismatch after reopen")
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Put(object.NewBlobString("to be corrupted"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id.String()[:2], id.String()[2:])
	if err := os.WriteFile(path, []byte("junk, not zlib"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(id); err == nil {
		t.Error("Get of corrupted object succeeded")
	}
}

func TestFileStoreHashVerification(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fs.Put(object.NewBlobString("aaa"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Put(object.NewBlobString("bbb"))
	if err != nil {
		t.Fatal(err)
	}
	// Swap b's file into a's path: content no longer matches the ID.
	aPath := filepath.Join(dir, a.String()[:2], a.String()[2:])
	bPath := filepath.Join(dir, b.String()[:2], b.String()[2:])
	data, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(a); err == nil {
		t.Error("hash-mismatched object accepted")
	}
}

func TestCachedStoreHitsAndEviction(t *testing.T) {
	backend := NewMemoryStore()
	cs := NewCachedStore(backend, 2)
	var ids []object.ID
	for i := 0; i < 3; i++ {
		id, err := cs.Put(object.NewBlobString(fmt.Sprintf("c%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Capacity 2: oldest (ids[0]) evicted, newest two cached.
	if _, err := cs.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	hits, misses := cs.Stats()
	if hits != 2 || misses != 0 {
		t.Errorf("after cached gets: hits=%d misses=%d, want 2/0", hits, misses)
	}
	if _, err := cs.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	_, misses = cs.Stats()
	if misses != 1 {
		t.Errorf("evicted get misses=%d, want 1", misses)
	}
}

func TestCachedStoreZeroCapacityPassThrough(t *testing.T) {
	cs := NewCachedStore(NewMemoryStore(), 0)
	id, err := cs.Put(object.NewBlobString("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(id); err != nil {
		t.Fatal(err)
	}
	hits, _ := cs.Stats()
	if hits != 0 {
		t.Errorf("pass-through cache recorded %d hits", hits)
	}
}

func TestCopyAndCopyAll(t *testing.T) {
	src := NewMemoryStore()
	dst := NewMemoryStore()
	id, err := src.Put(object.NewBlobString("move me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Copy(dst, src, id); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if ok, _ := dst.Has(id); !ok {
		t.Error("Copy did not transfer object")
	}
	if err := Copy(dst, src, object.NewBlobString("ghost").ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("Copy(missing) = %v, want ErrNotFound", err)
	}

	for i := 0; i < 5; i++ {
		if _, err := src.Put(object.NewBlobString(fmt.Sprintf("bulk%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := CopyAll(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("CopyAll examined %d, want 6", n)
	}
	dn, _ := dst.Len()
	if dn != 6 {
		t.Errorf("dst Len = %d, want 6", dn)
	}
}

func TestCopyClosure(t *testing.T) {
	src := NewMemoryStore()
	blob := object.NewBlobString("file content")
	blobID, _ := src.Put(blob)
	tree, err := object.NewTree([]object.TreeEntry{{Name: "f", Mode: object.ModeFile, ID: blobID}})
	if err != nil {
		t.Fatal(err)
	}
	treeID, _ := src.Put(tree)
	base := &object.Commit{
		TreeID:    treeID,
		Author:    object.NewSignature("a", "a@x", time.Unix(1, 0)),
		Committer: object.NewSignature("a", "a@x", time.Unix(1, 0)),
		Message:   "base",
	}
	baseID, _ := src.Put(base)
	tip := &object.Commit{
		TreeID:    treeID,
		Parents:   []object.ID{baseID},
		Author:    object.NewSignature("a", "a@x", time.Unix(2, 0)),
		Committer: object.NewSignature("a", "a@x", time.Unix(2, 0)),
		Message:   "tip",
	}
	tipID, _ := src.Put(tip)
	// An unreachable object must not be copied.
	if _, err := src.Put(object.NewBlobString("unreachable")); err != nil {
		t.Fatal(err)
	}

	dst := NewMemoryStore()
	n, err := CopyClosure(dst, src, tipID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // tip, base, tree, blob
		t.Errorf("copied %d objects, want 4", n)
	}
	for _, id := range []object.ID{tipID, baseID, treeID, blobID} {
		if ok, _ := dst.Has(id); !ok {
			t.Errorf("closure missing %s", id.Short())
		}
	}
	// Second copy is incremental: nothing new.
	n, err = CopyClosure(dst, src, tipID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-copy transferred %d objects, want 0", n)
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errCh := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						b := object.NewBlobString(fmt.Sprintf("g%d-i%d", g, i%5))
						id, err := s.Put(b)
						if err != nil {
							errCh <- err
							return
						}
						if _, err := s.Get(id); err != nil {
							errCh <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Errorf("concurrent op: %v", err)
			}
		})
	}
}

// quick-check property: for random payloads, Put/Get round-trips bytes on
// both the memory and file stores and both agree on the ID.
func TestQuickStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "objects"))
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemoryStore()
	f := func(data []byte) bool {
		b := object.NewBlob(data)
		id1, err1 := ms.Put(b)
		id2, err2 := fs.Put(b)
		if err1 != nil || err2 != nil || id1 != id2 {
			return false
		}
		g1, err1 := ms.Get(id1)
		g2, err2 := fs.Get(id2)
		if err1 != nil || err2 != nil {
			return false
		}
		return bytes.Equal(g1.(*object.Blob).Data(), data) &&
			bytes.Equal(g2.(*object.Blob).Data(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
