// packseg.go implements the incremental half of the pack index format: a
// sidecar segment journal (`pack-NNNNNN.seg`) that records, per append
// batch, just that batch's index entries. The base `.idx` is a sorted
// snapshot covering a prefix of the pack; the journal extends it forward,
// one O(batch) segment per batch, so an append writes index bytes
// proportional to the batch — never to the pack. Segments are merged into
// the base index lazily, when the pack is next opened or when appends roll
// to a fresh pack, and the journal is deleted once merged.
//
// Journal layout: an 8-byte magic, then segments of
//
//	count u32 | start u64 | end u64 | count × (id[32] | off u64 | clen u32) | crc32 u32
//
// where [start, end) is the pack byte range the batch covered and the CRC
// (IEEE, over everything from count up to the last entry) guards against
// torn or reordered writes. The journal is the acknowledgement log: a pack
// record whose segment never landed was never acknowledged to the writer,
// so replay stops — mirroring the pack's own torn-tail rule — at the first
// segment that is torn, fails its CRC, does not continue contiguously from
// the bytes already covered, or claims pack bytes that do not exist (the
// "segment landed, pack bytes did not" crash order; without fsync the two
// files may persist in either order). Segments wholly below the base
// index's coverage are skipped: they were already merged by an open that
// crashed before deleting the journal.
package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"strings"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

const (
	packSegMagic = "GCSG\x00\x00\x00\x01"
	// segEntrySize matches the base index's entry encoding.
	segEntrySize = object.IDSize + 8 + 4
	// segHeaderSize is count u32 | start u64 | end u64.
	segHeaderSize = 4 + 8 + 8
	// segTrailerSize is the crc32 over header+entries.
	segTrailerSize = 4
)

func segPathFor(packPath string) string {
	return strings.TrimSuffix(packPath, ".pack") + ".seg"
}

// encodeSegment serialises one batch's entries as a journal segment
// covering pack bytes [start, end).
func encodeSegment(entries []packEntry, start, end int64) []byte {
	buf := make([]byte, 0, segHeaderSize+len(entries)*segEntrySize+segTrailerSize)
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(entries)))
	buf = append(buf, u32[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(start))
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(end))
	buf = append(buf, u64[:]...)
	for _, e := range entries {
		buf = append(buf, e.id[:]...)
		binary.BigEndian.PutUint64(u64[:], uint64(e.off))
		buf = append(buf, u64[:]...)
		binary.BigEndian.PutUint32(u32[:], e.clen)
		buf = append(buf, u32[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf))
	return append(buf, u32[:]...)
}

// loadSegments replays the journal at path against a base index covering
// baseCovered bytes of a packSize-byte pack, returning the entries of every
// acknowledged batch beyond the base together with the extended coverage.
// Replay never fails: anything invalid — a torn or CRC-failing segment, a
// coverage gap, a segment claiming bytes the pack does not have — ends the
// acknowledged history right there, exactly like a torn pack tail. A
// missing or unreadable journal contributes nothing.
func loadSegments(path string, baseCovered, packSize int64) ([]packEntry, int64) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < len(packSegMagic) || string(data[:len(packSegMagic)]) != packSegMagic {
		return nil, baseCovered
	}
	data = data[len(packSegMagic):]
	var entries []packEntry
	covered := baseCovered
	for len(data) >= segHeaderSize+segTrailerSize {
		count := int(binary.BigEndian.Uint32(data))
		// Bound count by what could possibly fit BEFORE multiplying, so a
		// garbage count field cannot overflow the length arithmetic on
		// 32-bit platforms — it must read as a torn tail, never a panic.
		if count <= 0 || count > (len(data)-segHeaderSize-segTrailerSize)/segEntrySize {
			break // torn tail (or garbage count)
		}
		segLen := segHeaderSize + count*segEntrySize + segTrailerSize
		body, crc := data[:segLen-segTrailerSize], binary.BigEndian.Uint32(data[segLen-segTrailerSize:])
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		start := int64(binary.BigEndian.Uint64(body[4:]))
		end := int64(binary.BigEndian.Uint64(body[12:]))
		if end <= start {
			break
		}
		if end <= baseCovered {
			// Already merged into the base index by an earlier open that
			// crashed before deleting the journal; skip, keep replaying.
			data = data[segLen:]
			continue
		}
		if start != covered || end > packSize {
			// A gap (this segment's batch was never fully acknowledged
			// relative to what precedes it) or a claim on pack bytes that
			// never landed: the acknowledged history ends here.
			break
		}
		seg := make([]packEntry, 0, count)
		for i := 0; i < count; i++ {
			var e packEntry
			ent := body[segHeaderSize+i*segEntrySize:]
			copy(e.id[:], ent[:object.IDSize])
			e.off = int64(binary.BigEndian.Uint64(ent[object.IDSize:]))
			e.clen = binary.BigEndian.Uint32(ent[object.IDSize+8:])
			if e.off < start+packRecHeader || e.off+int64(e.clen) > end {
				seg = nil
				break
			}
			seg = append(seg, e)
		}
		if seg == nil {
			break // an entry points outside its batch's range: corrupt segment
		}
		entries = append(entries, seg...)
		covered = end
		data = data[segLen:]
	}
	return entries, covered
}
