package store

import (
	"sync"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// MemoryStore is an in-memory Store. The zero value is not usable; call
// NewMemoryStore. It is safe for concurrent use.
//
// Prefix lookups go through a lazily-built ordered IDIndex: the first
// IDsByPrefix after a mutation sorts the key set once, and every later
// lookup is O(log n). The generation counter invalidates the index exactly
// when a new object actually lands (idempotent re-Puts keep it warm).
type MemoryStore struct {
	mu      sync.RWMutex
	objects map[object.ID][]byte

	gen  uint64 // bumped on every insert of a new object
	lazy lazyIDIndex
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{objects: make(map[object.ID][]byte)}
}

// Put implements Store.
func (s *MemoryStore) Put(o object.Object) (object.ID, error) {
	enc := object.Encode(o)
	id := object.HashBytes(enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; !ok {
		s.objects[id] = enc
		s.gen++
	}
	return id, nil
}

// Get implements Store.
func (s *MemoryStore) Get(id object.ID) (object.Object, error) {
	s.mu.RLock()
	enc, ok := s.objects[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return object.Decode(enc)
}

// PutMany implements BatchStore: the whole batch is encoded and hashed
// outside the lock, then inserted under a single lock acquisition.
func (s *MemoryStore) PutMany(objs []object.Object) ([]object.ID, error) {
	ids := make([]object.ID, len(objs))
	encs := make([][]byte, len(objs))
	for i, o := range objs {
		encs[i] = object.Encode(o)
		ids[i] = object.HashBytes(encs[i])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		if _, ok := s.objects[id]; !ok {
			s.objects[id] = encs[i]
			s.gen++
		}
	}
	return ids, nil
}

// PutManyEncoded implements RawBatchStore: already-canonical encodings go
// straight into the map under one lock acquisition, with no re-encode or
// re-hash.
func (s *MemoryStore) PutManyEncoded(batch []Encoded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range batch {
		if _, ok := s.objects[e.ID]; !ok {
			s.objects[e.ID] = e.Enc
			s.gen++
		}
	}
	return nil
}

// HasMany implements BatchStore under a single lock acquisition.
func (s *MemoryStore) HasMany(ids []object.ID) ([]bool, error) {
	have := make([]bool, len(ids))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, id := range ids {
		_, have[i] = s.objects[id]
	}
	return have, nil
}

// Has implements Store.
func (s *MemoryStore) Has(id object.ID) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[id]
	return ok, nil
}

// IDs implements Store.
func (s *MemoryStore) IDs() ([]object.ID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]object.ID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	return ids, nil
}

// Len implements Store.
func (s *MemoryStore) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects), nil
}

// IDsByPrefix implements PrefixSearcher over a lazily-built sorted index.
func (s *MemoryStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	idx := s.lazy.get(&s.mu, func() uint64 { return s.gen }, func() []object.ID {
		ids := make([]object.ID, 0, len(s.objects))
		for id := range s.objects {
			ids = append(ids, id)
		}
		return ids
	})
	return idx.ByPrefix(prefix, limit)
}
