package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

func testTime() time.Time { return time.Unix(1536030000, 0) }

// plainStore strips the batch methods off a Store so the package-level
// fallback paths get exercised.
type plainStore struct{ s Store }

func (p plainStore) Put(o object.Object) (object.ID, error)  { return p.s.Put(o) }
func (p plainStore) Get(id object.ID) (object.Object, error) { return p.s.Get(id) }
func (p plainStore) Has(id object.ID) (bool, error)          { return p.s.Has(id) }
func (p plainStore) IDs() ([]object.ID, error)               { return p.s.IDs() }
func (p plainStore) Len() (int, error)                       { return p.s.Len() }

func batchStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPackStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return map[string]Store{
		"memory":   NewMemoryStore(),
		"file":     fs,
		"cached":   NewCachedStore(NewMemoryStore(), 64),
		"pack":     ps,
		"fallback": plainStore{s: NewMemoryStore()},
	}
}

func TestPutManyHasMany(t *testing.T) {
	for name, s := range batchStores(t) {
		t.Run(name, func(t *testing.T) {
			// 20 objects forces the file store's directory-scan paths; a
			// duplicate inside the batch must be tolerated.
			objs := make([]object.Object, 0, 21)
			for i := 0; i < 20; i++ {
				objs = append(objs, object.NewBlob([]byte(fmt.Sprintf("blob %d", i))))
			}
			objs = append(objs, object.NewBlob([]byte("blob 0")))
			ids, err := PutMany(s, objs)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(objs) {
				t.Fatalf("PutMany returned %d IDs for %d objects", len(ids), len(objs))
			}
			for i, o := range objs {
				if want := object.Hash(o); ids[i] != want {
					t.Errorf("ids[%d] = %s, want %s", i, ids[i].Short(), want.Short())
				}
				got, err := s.Get(ids[i])
				if err != nil {
					t.Fatalf("Get(%s): %v", ids[i].Short(), err)
				}
				if object.Hash(got) != ids[i] {
					t.Errorf("object %d round-trips to a different hash", i)
				}
			}
			if n, err := s.Len(); err != nil || n != 20 {
				t.Errorf("Len = %d, %v; want 20 (duplicate stored once)", n, err)
			}

			absent := object.HashBytes([]byte("never stored"))
			query := append(append([]object.ID(nil), ids[:5]...), absent, ids[7])
			have, err := HasMany(s, query)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if !have[i] {
					t.Errorf("HasMany missed stored object %d", i)
				}
			}
			if have[5] {
				t.Error("HasMany reported an absent object present")
			}
			if !have[6] {
				t.Error("HasMany missed stored object 7")
			}
		})
	}
}

func TestPutManyEncoded(t *testing.T) {
	for name, s := range batchStores(t) {
		t.Run(name, func(t *testing.T) {
			batch := make([]Encoded, 0, 10)
			var ids []object.ID
			for i := 0; i < 10; i++ {
				enc := object.Encode(object.NewBlob([]byte(fmt.Sprintf("raw %d", i))))
				id := object.HashBytes(enc)
				batch = append(batch, Encoded{ID: id, Enc: enc})
				ids = append(ids, id)
			}
			if err := PutManyEncoded(s, batch); err != nil {
				t.Fatal(err)
			}
			for i, id := range ids {
				o, err := s.Get(id)
				if err != nil {
					t.Fatalf("Get(%s): %v", id.Short(), err)
				}
				b, ok := o.(*object.Blob)
				if !ok || string(b.Data()) != fmt.Sprintf("raw %d", i) {
					t.Errorf("object %d decoded wrong: %#v", i, o)
				}
			}
			if n, err := s.Len(); err != nil || n != 10 {
				t.Errorf("Len = %d, %v; want 10", n, err)
			}
		})
	}
}

func TestPutManyConcurrent(t *testing.T) {
	for name, s := range batchStores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			// Overlapping batches from many goroutines: every store must
			// end up with exactly the union.
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					objs := make([]object.Object, 0, 30)
					for i := 0; i < 30; i++ {
						objs = append(objs, object.NewBlob([]byte(fmt.Sprintf("shared %d", (g+i)%25))))
					}
					if _, err := PutMany(s, objs); err != nil {
						t.Error(err)
					}
				}(g)
			}
			wg.Wait()
			if n, err := s.Len(); err != nil || n != 25 {
				t.Errorf("Len = %d, %v; want 25", n, err)
			}
		})
	}
}

func TestCopyClosureBatchedIncremental(t *testing.T) {
	src := NewMemoryStore()
	// Two commits: c2 -> c1, sharing one subtree so pruning matters.
	blobA := object.NewBlob([]byte("a"))
	blobB := object.NewBlob([]byte("b"))
	idA, _ := src.Put(blobA)
	idB, _ := src.Put(blobB)
	shared, err := object.NewTree([]object.TreeEntry{{Name: "a.txt", Mode: object.ModeFile, ID: idA}})
	if err != nil {
		t.Fatal(err)
	}
	sharedID, _ := src.Put(shared)
	root1, err := object.NewTree([]object.TreeEntry{{Name: "lib", Mode: object.ModeDir, ID: sharedID}})
	if err != nil {
		t.Fatal(err)
	}
	root1ID, _ := src.Put(root1)
	c1 := &object.Commit{TreeID: root1ID, Author: object.NewSignature("a", "a@x", testTime()), Committer: object.NewSignature("a", "a@x", testTime()), Message: "one"}
	c1ID, _ := src.Put(c1)
	root2, err := object.NewTree([]object.TreeEntry{
		{Name: "lib", Mode: object.ModeDir, ID: sharedID},
		{Name: "b.txt", Mode: object.ModeFile, ID: idB},
	})
	if err != nil {
		t.Fatal(err)
	}
	root2ID, _ := src.Put(root2)
	c2 := &object.Commit{TreeID: root2ID, Parents: []object.ID{c1ID}, Author: object.NewSignature("a", "a@x", testTime()), Committer: object.NewSignature("a", "a@x", testTime()), Message: "two"}
	c2ID, _ := src.Put(c2)

	dst := NewMemoryStore()
	n, err := CopyClosure(dst, src, c1ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // c1, root1, shared, blobA
		t.Errorf("first copy moved %d objects, want 4", n)
	}
	n, err = CopyClosure(dst, src, c2ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // c2, root2, blobB; shared subtree pruned
		t.Errorf("incremental copy moved %d objects, want 3", n)
	}
	n, err = CopyClosure(dst, src, c2ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("repeat copy moved %d objects, want 0", n)
	}
	for _, id := range []object.ID{c1ID, c2ID, root1ID, root2ID, sharedID, idA, idB} {
		if ok, _ := dst.Has(id); !ok {
			t.Errorf("dst missing %s after closure copy", id.Short())
		}
	}
}
