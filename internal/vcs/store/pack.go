// pack.go implements pack-based object storage: instead of one loose file
// per object, objects are appended to a small number of pack files as
// zlib-compressed, length-prefixed records, with a sorted fan-out ID index
// (IDIndex) persisted alongside each pack. Cold opens load the indexes, not
// the objects; lookups are an O(1) map hit backed by one pread; abbreviated
// IDs resolve through the ordered index in O(log n).
//
// On-disk layout (sharing the root of a loose FileStore, like Git):
//
//	root/ab/cdef…        loose objects (legacy; read fallback, Repack input)
//	root/pack/pack-000001.pack
//	root/pack/pack-000001.idx
//	root/pack/pack-000001.seg   (current pack only: per-batch index segments)
//
// Pack file: an 8-byte magic header followed by records of
// `id[32] | clen uint32 BE | clen bytes of zlib(canonical encoding)`.
// Records are append-only and never rewritten. Index file: magic, the pack
// byte-size it covers, entry count, a 256-way fanout table and the sorted
// `id[32] | offset uint64 | clen uint32` entries. The index is written in
// two tiers: the sorted base `.idx` (a snapshot covering a prefix of the
// pack) and the append-only `.seg` segment journal (one O(batch) segment
// per append batch — see packseg.go), merged into the base lazily when the
// pack is opened or rolls, so a mutation batch never rewrites index state
// proportional to the pack. A missing or corrupt index is recovered from
// the journal, or failing that by scanning the pack's records; an index
// covering only a prefix of the pack is valid (the tail is dead bytes from
// a torn append whose write was never acknowledged); later writes go to a
// fresh pack, so partial bytes are never extended.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

const (
	packDirName  = "pack"
	packMagic    = "GCPK\x00\x00\x00\x01"
	packIdxMagic = "GCIX\x00\x00\x00\x01"
	// packRecHeader is the fixed per-record overhead: the object ID plus the
	// big-endian uint32 length of the compressed payload.
	packRecHeader = object.IDSize + 4
	// packRollEntries caps how many objects the current pack accepts before
	// appends roll over to a fresh pack. Rolling bounds pack file sizes and
	// the cost of the one base-index merge a finished pack pays; Repack
	// consolidates the rolled packs later.
	packRollEntries = 8192
)

// packRef locates one object inside one pack.
type packRef struct {
	pack *packFile
	off  int64 // offset of the compressed payload
	clen uint32
}

// packEntry is one object of one pack, as persisted in the .idx file.
type packEntry struct {
	id   object.ID
	off  int64
	clen uint32
}

// packFile is one on-disk pack: a read handle plus the byte size its loaded
// entries cover.
type packFile struct {
	path string
	f    *os.File
	size int64 // bytes covered by complete records (header included)
}

// PackStore stores objects in append-only pack files with sorted indexes,
// reading through to a loose FileStore at the same root for objects that
// predate packing. It implements Store, BatchStore, RawBatchStore and
// PrefixSearcher and is safe for concurrent use: reads share an RLock and
// one pread; writes serialise on the mutex, appending to the store's
// current pack and journaling the batch's index entries. Repack runs
// concurrently with both — see Repack.
type PackStore struct {
	root  string
	loose *FileStore

	mu    sync.RWMutex
	packs []*packFile
	refs  map[object.ID]packRef
	// cur is the pack this store instance appends to (created on first
	// write; packs from earlier opens are never extended, so a torn tail
	// left by a crash can simply be ignored). curSeg is its open segment
	// journal and curSegSize the journal bytes acknowledged so far.
	cur        *packFile
	curEntries []packEntry
	curSeg     *os.File
	curSegSize int64

	gen  uint64 // bumped per newly packed object; invalidates the index
	lazy lazyIDIndex

	// repackMu serialises whole-store maintenance (Repack, Close) without
	// blocking readers or appenders, which only take mu.
	repackMu sync.Mutex
	// idxBytes counts index bytes persisted (segments and base-index
	// writes; file magic headers excluded) — observability for the
	// O(batch) append bound and its CI counter.
	idxBytes atomic.Int64

	// looseN caches the loose-object census so repack policies can consult
	// it per push without a directory scan: counted once on first demand
	// (this store never writes loose objects itself) and zeroed when
	// Repack folds the loose tier in.
	looseOnce sync.Once
	looseN    atomic.Int64
}

// PackStats is a point-in-time census of a pack store, for repack policies
// and the hosting admin API.
type PackStats struct {
	Packs         int // pack files currently open (current append target included)
	PackedObjects int // objects reachable through pack indexes
	LooseObjects  int // legacy loose objects not yet folded in (see LooseCount)
}

// Stats reports the store's current shape. The loose census comes from
// LooseCount's cache, so steady-state calls never touch the directory tree.
func (s *PackStore) Stats() PackStats {
	loose := s.LooseCount()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return PackStats{Packs: len(s.packs), PackedObjects: len(s.refs), LooseObjects: loose}
}

// LooseCount reports how many loose objects the store reads through to.
// The directory scan runs once, on first call; the count only ever moves
// to zero afterwards (PackStore appends exclusively to packs, and Repack
// folds the loose tier away), so the cached value stays truthful without
// rescanning per call.
func (s *PackStore) LooseCount() int {
	s.looseOnce.Do(func() {
		if n, err := s.loose.Len(); err == nil {
			s.looseN.Store(int64(n))
		}
	})
	return int(s.looseN.Load())
}

// repackBuildHook, when set (tests only), is called during Repack's
// unlocked build phase, after the consolidated pack is complete but before
// the swap lock is taken.
var repackBuildHook func()

// NewPackStore opens (creating if necessary) a pack store rooted at dir.
// Loose objects already under dir remain readable; Repack folds them into
// a pack.
func NewPackStore(dir string) (*PackStore, error) {
	loose, err := NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, packDirName), 0o755); err != nil {
		return nil, fmt.Errorf("store: create pack dir: %w", err)
	}
	s := &PackStore{root: dir, loose: loose, refs: make(map[object.ID]packRef)}
	if err := s.loadPacks(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Root returns the directory the store persists into.
func (s *PackStore) Root() string { return s.root }

// IdxBytesWritten reports the cumulative index bytes this store instance
// has persisted: one O(batch) journal segment per append batch, plus the
// base-index snapshots written when a pack rolls, is opened with an
// unmerged journal, or is repacked. The delta across one append batch is
// the batch's index cost — independent of pack size (asserted in tests and
// pinned by the idx_bytes_per_64_object_append_batch CI counter).
func (s *PackStore) IdxBytesWritten() int64 { return s.idxBytes.Load() }

// Close releases the pack file handles. The store must not be used after.
func (s *PackStore) Close() error {
	s.repackMu.Lock()
	defer s.repackMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, p := range s.packs {
		if err := p.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.curSeg != nil {
		if err := s.curSeg.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.packs = nil
	s.cur = nil
	s.curSeg = nil
	return first
}

// loadPacks opens every pack under root/pack, loading (or rebuilding) its
// index.
func (s *PackStore) loadPacks() error {
	dir := filepath.Join(s.root, packDirName)
	names, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range names {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "pack-") || !strings.HasSuffix(e.Name(), ".pack") {
			continue
		}
		if err := s.openPack(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// openPack opens one pack file, loads its persisted index — the sorted
// base .idx extended by any journaled segments, which are merged into the
// base here ("lazily, on open") and the journal deleted — and registers
// its entries. A missing base index is an empty one (the pack's creator
// crashed before its first merge; the journal alone carries the
// acknowledged history). A corrupt base index, or a missing one with no
// usable journal, is recovered by scanning the pack's records.
func (s *PackStore) openPack(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open pack: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() < int64(len(packMagic)) {
		// A crash between creating a pack file and its header landing can
		// leave a sub-magic (typically empty) file. No record can have
		// landed in it, so skip it like a torn record tail — a hard error
		// here would make the whole store unopenable. (A full-length but
		// wrong magic still errors below: that is corruption, not a torn
		// creation.)
		f.Close()
		return nil
	}
	p := &packFile{path: path, f: f}
	segPath := segPathFor(path)
	entries, covered, idxErr := loadPackIndex(idxPathFor(path), st.Size())
	if idxErr != nil {
		entries, covered = nil, int64(len(packMagic))
	}
	segEntries, segCovered := loadSegments(segPath, covered, st.Size())
	entries = append(entries, segEntries...)
	covered = segCovered
	if idxErr != nil && len(segEntries) == 0 {
		// No base index and no journal to replay: recover by scanning the
		// pack itself. The scan stops at the first record that does not
		// fit the file — a crash-torn tail, or a mid-pack corrupt length
		// field — and the rebuilt index covers the readable prefix.
		// Nothing is truncated: an index covering a prefix of the pack is
		// valid (see loadPackIndex), the dead bytes are unreachable but
		// preserved for salvage, and loaded packs never receive appends.
		entries, covered, err = scanPackRecords(f, st.Size())
		if err != nil {
			f.Close()
			return fmt.Errorf("store: pack %s unreadable: %w", filepath.Base(path), err)
		}
	}
	if idxErr != nil || len(segEntries) > 0 {
		if _, werr := s.writeIndex(idxPathFor(path), entries, covered); werr != nil {
			f.Close()
			return werr
		}
	}
	// The journal (if any) is merged into the base index now; remove it.
	// Crashing between the index write above and this removal is fine: the
	// next open skips segments the base already covers.
	os.Remove(segPath)
	p.size = covered
	s.packs = append(s.packs, p)
	for _, e := range entries {
		if _, dup := s.refs[e.id]; !dup {
			s.refs[e.id] = packRef{pack: p, off: e.off, clen: e.clen}
			s.gen++
		}
	}
	return nil
}

func idxPathFor(packPath string) string {
	return strings.TrimSuffix(packPath, ".pack") + ".idx"
}

// scanPackRecords walks a pack file's records sequentially, returning the
// entries of every complete record and the byte size they cover. A torn
// final record (crash mid-append) is ignored.
func scanPackRecords(f *os.File, size int64) ([]packEntry, int64, error) {
	hdr := make([]byte, len(packMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != packMagic {
		return nil, 0, fmt.Errorf("bad pack magic")
	}
	var entries []packEntry
	off := int64(len(packMagic))
	rec := make([]byte, packRecHeader)
	for off+packRecHeader <= size {
		if _, err := f.ReadAt(rec, off); err != nil {
			return nil, 0, err
		}
		var id object.ID
		copy(id[:], rec[:object.IDSize])
		clen := binary.BigEndian.Uint32(rec[object.IDSize:])
		if off+packRecHeader+int64(clen) > size {
			break // torn tail: the payload never finished landing
		}
		entries = append(entries, packEntry{id: id, off: off + packRecHeader, clen: clen})
		off += packRecHeader + int64(clen)
	}
	return entries, off, nil
}

// loadPackIndex reads a persisted .idx, validating it against the pack's
// current byte size. An index covering MORE bytes than exist is corrupt.
// An index covering FEWER is accepted: the tail beyond covered is either
// batches journaled in the pack's .seg file but not yet merged, or dead
// bytes — a crash-torn append whose Put was never acknowledged, or garbage
// a recovery scan already skipped — and loaded packs never receive further
// appends, so a dead gap cannot grow.
func loadPackIndex(path string, packSize int64) ([]packEntry, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	const fixed = 8 + 8 + 4 + 256*4
	if len(data) < len(packIdxMagic)+fixed-8 || string(data[:len(packIdxMagic)]) != packIdxMagic {
		return nil, 0, fmt.Errorf("store: bad pack index %s", filepath.Base(path))
	}
	b := data[len(packIdxMagic):]
	covered := int64(binary.BigEndian.Uint64(b))
	count := binary.BigEndian.Uint32(b[8:])
	if covered > packSize {
		return nil, 0, fmt.Errorf("store: pack index %s covers %d bytes, pack has %d", filepath.Base(path), covered, packSize)
	}
	b = b[8+4+256*4:] // fanout is redundant with the sorted entries; skip
	const entSize = object.IDSize + 8 + 4
	if len(b) != int(count)*entSize {
		return nil, 0, fmt.Errorf("store: pack index %s truncated", filepath.Base(path))
	}
	entries := make([]packEntry, count)
	for i := range entries {
		e := b[i*entSize:]
		copy(entries[i].id[:], e[:object.IDSize])
		entries[i].off = int64(binary.BigEndian.Uint64(e[object.IDSize:]))
		entries[i].clen = binary.BigEndian.Uint32(e[object.IDSize+8:])
		if entries[i].off+int64(entries[i].clen) > covered {
			return nil, 0, fmt.Errorf("store: pack index %s entry out of range", filepath.Base(path))
		}
	}
	return entries, covered, nil
}

// writeIndex persists a base index via writePackIndex, keeping the store's
// index-byte accounting.
func (s *PackStore) writeIndex(path string, entries []packEntry, covered int64) (int, error) {
	n, err := writePackIndex(path, entries, covered)
	if err == nil {
		s.idxBytes.Add(int64(n))
	}
	return n, err
}

// writePackIndex persists the sorted fanout index next to its pack with
// write-then-rename, so readers never observe a partial index. It returns
// the number of index bytes written.
func writePackIndex(path string, entries []packEntry, covered int64) (int, error) {
	sorted := append([]packEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return idLess(sorted[i].id, sorted[j].id) })
	var buf bytes.Buffer
	buf.WriteString(packIdxMagic)
	var u64 [8]byte
	var u32 [4]byte
	binary.BigEndian.PutUint64(u64[:], uint64(covered))
	buf.Write(u64[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(sorted)))
	buf.Write(u32[:])
	var fanout [256]uint32
	for _, e := range sorted {
		fanout[e.id[0]]++
	}
	var cum uint32
	for b := 0; b < 256; b++ {
		cum += fanout[b]
		binary.BigEndian.PutUint32(u32[:], cum)
		buf.Write(u32[:])
	}
	for _, e := range sorted {
		buf.Write(e.id[:])
		binary.BigEndian.PutUint64(u64[:], uint64(e.off))
		buf.Write(u64[:])
		binary.BigEndian.PutUint32(u32[:], e.clen)
		buf.Write(u32[:])
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-idx-*")
	if err != nil {
		return 0, fmt.Errorf("store: pack index temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: write pack index: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: rename pack index: %w", err)
	}
	return buf.Len(), nil
}

// syncPath fsyncs a file or directory by path.
func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync %s: %w", filepath.Base(path), err)
	}
	return nil
}

// nextPackPath picks the first unused pack number under root/pack. Caller
// holds the write lock.
func (s *PackStore) nextPackPath() (string, error) {
	dir := filepath.Join(s.root, packDirName)
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("pack-%06d.pack", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}

// createPack starts a new writable pack file. Caller holds the write lock.
// Any stale .idx left at this pack number by old crash debris (an orphan
// index outlives its pack when a crash lands between the two deletions) is
// removed first: the base index is only ever rewritten at roll/open now,
// so a stale base would otherwise be accepted on the next open and make
// journal replay — this pack's only index until then — break on the
// coverage gap, silently discarding acknowledged objects.
func createPack(path string) (*packFile, error) {
	if err := os.Remove(idxPathFor(path)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: clear stale pack index: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create pack: %w", err)
	}
	if _, err := f.Write([]byte(packMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: write pack header: %w", err)
	}
	return &packFile{path: path, f: f, size: int64(len(packMagic))}, nil
}

// createSegJournal starts the segment journal for a new current pack. A
// stale journal left at this path by old crash debris is truncated away.
func createSegJournal(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create pack journal: %w", err)
	}
	if _, err := f.WriteAt([]byte(packSegMagic), 0); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: write pack journal header: %w", err)
	}
	return f, nil
}

// rollCurLocked finishes the current pack: its journal is merged into a
// final sorted base index and deleted, and the pack stops accepting
// appends (it keeps serving reads through its registered entries). Caller
// holds the write lock.
func (s *PackStore) rollCurLocked() error {
	if _, err := s.writeIndex(idxPathFor(s.cur.path), s.curEntries, s.cur.size); err != nil {
		return err
	}
	s.curSeg.Close()
	os.Remove(segPathFor(s.cur.path))
	s.cur, s.curEntries, s.curSeg, s.curSegSize = nil, nil, nil, 0
	return nil
}

// appendLocked appends pre-compressed records for objects the store lacks
// and journals the batch's index entries as one O(batch) segment — the
// base index is only rewritten when the pack rolls or is next opened, so
// per-batch index I/O never grows with the pack. Caller holds the write
// lock and has already filtered out present IDs (a racing duplicate is
// still re-checked here).
func (s *PackStore) appendLocked(ids []object.ID, compressed [][]byte) error {
	if s.cur != nil && len(s.curEntries) >= packRollEntries {
		// Roll over: merge the full pack's journal into its final index;
		// only new appends move to a fresh pack.
		if err := s.rollCurLocked(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		path, err := s.nextPackPath()
		if err != nil {
			return err
		}
		p, err := createPack(path)
		if err != nil {
			return err
		}
		seg, err := createSegJournal(segPathFor(path))
		if err != nil {
			p.f.Close()
			os.Remove(path)
			return err
		}
		s.cur = p
		s.curSeg = seg
		s.curSegSize = int64(len(packSegMagic))
		s.packs = append(s.packs, p)
	}
	var buf bytes.Buffer
	start := s.cur.size
	newEntries := s.curEntries
	var lenb [4]byte
	for i, id := range ids {
		if _, dup := s.refs[id]; dup {
			continue
		}
		off := start + int64(buf.Len())
		buf.Write(id[:])
		binary.BigEndian.PutUint32(lenb[:], uint32(len(compressed[i])))
		buf.Write(lenb[:])
		buf.Write(compressed[i])
		newEntries = append(newEntries, packEntry{id: id, off: off + packRecHeader, clen: uint32(len(compressed[i]))})
	}
	if buf.Len() == 0 {
		return nil
	}
	if _, err := s.cur.f.WriteAt(buf.Bytes(), start); err != nil {
		return fmt.Errorf("store: pack append: %w", err)
	}
	// Journal the batch BEFORE registering anything in memory: the segment
	// is the acknowledgement, so if its write fails the batch reports
	// failure with no state change — a retry re-appends at the same pack
	// and journal offsets over the orphaned bytes (replay treats bytes
	// past the last valid segment as a torn tail). Registering first would
	// let a retried Put dedupe against entries whose acknowledgement never
	// landed.
	segBytes := encodeSegment(newEntries[len(s.curEntries):], start, start+int64(buf.Len()))
	if _, err := s.curSeg.WriteAt(segBytes, s.curSegSize); err != nil {
		return fmt.Errorf("store: pack journal append: %w", err)
	}
	s.idxBytes.Add(int64(len(segBytes)))
	s.curSegSize += int64(len(segBytes))
	s.cur.size = start + int64(buf.Len())
	for _, e := range newEntries[len(s.curEntries):] {
		s.refs[e.id] = packRef{pack: s.cur, off: e.off, clen: e.clen}
		s.gen++
	}
	s.curEntries = newEntries
	return nil
}

// Put implements Store.
func (s *PackStore) Put(o object.Object) (object.ID, error) {
	enc := object.Encode(o)
	id := object.HashBytes(enc)
	if err := s.PutManyEncoded([]Encoded{{ID: id, Enc: enc}}); err != nil {
		return object.ZeroID, err
	}
	return id, nil
}

// PutMany implements BatchStore: the batch is encoded and hashed up front,
// compressed outside the lock, and appended to the current pack as one
// write with one O(batch) index segment.
func (s *PackStore) PutMany(objs []object.Object) ([]object.ID, error) {
	ids := make([]object.ID, len(objs))
	batch := make([]Encoded, len(objs))
	for i, o := range objs {
		batch[i].Enc = object.Encode(o)
		batch[i].ID = object.HashBytes(batch[i].Enc)
		ids[i] = batch[i].ID
	}
	if err := s.PutManyEncoded(batch); err != nil {
		return nil, err
	}
	return ids, nil
}

// PutManyEncoded implements RawBatchStore: canonical encodings are
// compressed with the pooled compressors and land in the pack with no
// re-encode/re-hash, one file write and one journaled index segment per
// batch.
func (s *PackStore) PutManyEncoded(batch []Encoded) error {
	// Filter already-present objects under the read lock, then compress
	// outside any lock; the write lock re-checks for racing duplicates.
	missing := batch[:0:0]
	s.mu.RLock()
	for _, e := range batch {
		if _, ok := s.refs[e.ID]; !ok {
			missing = append(missing, e)
		}
	}
	s.mu.RUnlock()
	if len(missing) == 0 {
		return nil
	}
	// Drop batch-internal duplicates and objects already stored loose (one
	// batched presence query), so nothing lands in a pack twice.
	uniq := missing[:0:0]
	seen := make(map[object.ID]bool, len(missing))
	for _, e := range missing {
		if !seen[e.ID] {
			seen[e.ID] = true
			uniq = append(uniq, e)
		}
	}
	candidateIDs := make([]object.ID, len(uniq))
	for i, e := range uniq {
		candidateIDs[i] = e.ID
	}
	looseHave, err := s.loose.HasMany(candidateIDs)
	if err != nil {
		return err
	}
	ids := make([]object.ID, 0, len(uniq))
	compressed := make([][]byte, 0, len(uniq))
	var bufs []*bytes.Buffer
	defer func() {
		for _, b := range bufs {
			compressBufPool.Put(b)
		}
	}()
	for i, e := range uniq {
		if looseHave[i] {
			continue
		}
		buf, err := compress(e.Enc)
		if err != nil {
			return err
		}
		bufs = append(bufs, buf)
		ids = append(ids, e.ID)
		compressed = append(compressed, buf.Bytes())
	}
	if len(ids) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(ids, compressed)
}

// packReadBufPool recycles the pread scratch buffers packed Gets stage
// compressed payloads in, so a hot read loop stops allocating one
// payload-sized buffer per object (the decompressors themselves are the
// same pooled zlib readers FileStore uses).
var packReadBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// putPackReadBuf returns a pread buffer to the pool unless an unusually
// large object grew it past the retention cap.
func putPackReadBuf(bufp *[]byte) {
	if cap(*bufp) <= 4<<20 {
		packReadBufPool.Put(bufp)
	}
}

// readPacked fetches one packed object's compressed payload into *bufp
// (growing it if needed), returning a slice aliasing that buffer. The
// pread happens under the read lock so a concurrent Repack cannot close
// the owning pack file mid-read (Repack holds the write lock for its
// swap); decompression and verification run outside. found=false means the
// ID is not packed.
func (s *PackStore) readPacked(id object.ID, bufp *[]byte) (compressed []byte, found bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.refs[id]
	if !ok {
		return nil, false, nil
	}
	buf := *bufp
	if int(ref.clen) > cap(buf) {
		buf = make([]byte, ref.clen)
		*bufp = buf
	}
	buf = buf[:ref.clen]
	if _, err := ref.pack.f.ReadAt(buf, ref.off); err != nil {
		return nil, true, fmt.Errorf("store: pack read %s: %w", id.Short(), err)
	}
	return buf, true, nil
}

// Get implements Store: one map hit and one pread (into a pooled scratch
// buffer) from the owning pack, with decompression and hash verification
// outside the lock; loose objects read through the FileStore fallback. A
// loose miss re-checks the packs once — a concurrent Repack may have
// folded the object between the two lookups, and that move is the only way
// a stored object relocates.
func (s *PackStore) Get(id object.ID) (object.Object, error) {
	bufp := packReadBufPool.Get().(*[]byte)
	defer putPackReadBuf(bufp)
	compressed, found, err := s.readPacked(id, bufp)
	if err != nil {
		return nil, err
	}
	if !found {
		o, err := s.loose.Get(id)
		if !errors.Is(err, ErrNotFound) {
			return o, err
		}
		if compressed, found, err = s.readPacked(id, bufp); err != nil {
			return nil, err
		}
		if !found {
			return nil, ErrNotFound
		}
	}
	enc, err := decompress(compressed)
	if err != nil {
		return nil, fmt.Errorf("store: packed object %s corrupt: %w", id.Short(), err)
	}
	if object.HashBytes(enc) != id {
		return nil, fmt.Errorf("store: packed object %s fails hash verification", id.Short())
	}
	return object.Decode(enc)
}

// Has implements Store. Like Get, a loose miss re-checks the packs so a
// concurrent Repack's loose→pack move cannot produce a false negative.
func (s *PackStore) Has(id object.ID) (bool, error) {
	s.mu.RLock()
	_, ok := s.refs[id]
	s.mu.RUnlock()
	if ok {
		return true, nil
	}
	ok, err := s.loose.Has(id)
	if err != nil || ok {
		return ok, err
	}
	s.mu.RLock()
	_, ok = s.refs[id]
	s.mu.RUnlock()
	return ok, nil
}

// HasMany implements BatchStore: packed IDs answer from the in-memory map
// under one lock acquisition; only the residue consults the loose store.
func (s *PackStore) HasMany(ids []object.ID) ([]bool, error) {
	have := make([]bool, len(ids))
	var missIdx []int
	s.mu.RLock()
	for i, id := range ids {
		if _, ok := s.refs[id]; ok {
			have[i] = true
		} else {
			missIdx = append(missIdx, i)
		}
	}
	s.mu.RUnlock()
	if len(missIdx) == 0 {
		return have, nil
	}
	missIDs := make([]object.ID, len(missIdx))
	for j, i := range missIdx {
		missIDs[j] = ids[i]
	}
	looseHave, err := s.loose.HasMany(missIDs)
	if err != nil {
		return nil, err
	}
	// Re-check the packs for loose misses under one lock: a concurrent
	// Repack may have folded them between the two passes.
	s.mu.RLock()
	for j, i := range missIdx {
		have[i] = looseHave[j]
		if !have[i] {
			_, have[i] = s.refs[ids[i]]
		}
	}
	s.mu.RUnlock()
	return have, nil
}

// IDs implements Store: packed IDs plus any loose objects not yet folded
// into a pack.
func (s *PackStore) IDs() ([]object.ID, error) {
	looseIDs, err := s.loose.IDs()
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]object.ID, 0, len(s.refs)+len(looseIDs))
	for id := range s.refs {
		ids = append(ids, id)
	}
	for _, id := range looseIDs {
		if _, packed := s.refs[id]; !packed {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Len implements Store.
func (s *PackStore) Len() (int, error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// IDsByPrefix implements PrefixSearcher: packed IDs answer from a
// lazily-built IDIndex in O(log n); loose stragglers come from the fanout
// directory named by the prefix. The loose store is queried BEFORE the
// pack index is captured: a concurrent Repack moves objects loose→pack
// (deleting loose files after its swap registers them as packed), so this
// order guarantees an object is visible on at least one side — the reverse
// order could miss it on both.
func (s *PackStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	loose, err := s.loose.IDsByPrefix(prefix, limit)
	if err != nil {
		return nil, err
	}
	idx := s.lazy.get(&s.mu, func() uint64 { return s.gen }, func() []object.ID {
		ids := make([]object.ID, 0, len(s.refs))
		for id := range s.refs {
			ids = append(ids, id)
		}
		return ids
	})
	out, err := idx.ByPrefix(prefix, limit)
	if err != nil {
		return nil, err
	}
	for _, id := range loose {
		if !idx.Contains(id) {
			out = append(out, id)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Repack folds every loose object into pack storage and consolidates all
// existing packs into a single new pack, deleting the old packs and the
// loose object files it absorbed. Loose objects are moved byte-for-byte —
// a loose file's zlib stream IS the record payload, so nothing is
// recompressed — and packed records are copied verbatim. It returns how
// many loose objects were folded in.
//
// Repack is a two-phase concurrent fold and does NOT block the store for
// its duration. Phase one takes the store lock only long enough to freeze
// the append target (the current pack rolls, so concurrent writers append
// to fresh packs the fold ignores) and snapshot the pack list; the
// consolidated pack and its index are then built entirely outside the
// lock, with readers serving from the old packs and loose files and
// writers appending throughout. Phase two re-takes the lock for a brief
// in-memory swap — the new pack, its index and the directory are fsync'd
// first, so the swap is crash-safe — and the replaced files are deleted
// after the lock is released. When the store already holds exactly one
// pack and no loose objects the fold would be byte-identical, so Repack
// returns without writing anything.
func (s *PackStore) Repack() (int, error) {
	s.repackMu.Lock()
	defer s.repackMu.Unlock()

	looseIDs, err := s.loose.IDs()
	if err != nil {
		return 0, err
	}

	// Phase one: freeze and snapshot, briefly under the store lock.
	s.mu.Lock()
	var fold []object.ID
	for _, id := range looseIDs {
		if _, packed := s.refs[id]; !packed {
			fold = append(fold, id)
		}
	}
	if len(fold) == 0 && len(s.packs) <= 1 {
		// Fast path: one pack (or none) and nothing loose — the fold
		// would rewrite byte-identical output, so don't.
		s.mu.Unlock()
		return 0, nil
	}
	// Freeze the append target: the current pack (and its journal) stops
	// receiving appends, so the snapshot covers a fixed byte range of
	// every pack and concurrent writers land in fresh packs the fold
	// leaves alone. The journal is merged implicitly — the fold reads the
	// in-memory sizes — and its file is deleted with the pack after the
	// swap.
	frozenSeg := s.curSeg
	s.cur, s.curEntries, s.curSeg, s.curSegSize = nil, nil, nil, 0
	snapshot := append([]*packFile(nil), s.packs...)
	refsLen := len(s.refs) // sizing hint, captured under the lock
	s.mu.Unlock()
	if frozenSeg != nil {
		frozenSeg.Close()
	}

	// Build phase: construct the consolidated pack with no lock held.
	// Readers pread the snapshot packs concurrently (ReadAt is safe) and
	// nothing deletes them before the swap; Repack itself is serialised by
	// repackMu.
	np, err := s.allocatePack()
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int, error) {
		np.f.Close()
		// Index first: an orphan .idx without its pack would poison a
		// later pack that reuses the number (see createPack).
		os.Remove(idxPathFor(np.path))
		os.Remove(np.path)
		return 0, err
	}
	newRefs := make(map[object.ID]packRef, refsLen+len(fold))
	var entries []packEntry
	var scratch []byte
	appendRecord := func(id object.ID, compressed []byte) error {
		var hdr [packRecHeader]byte
		copy(hdr[:], id[:])
		binary.BigEndian.PutUint32(hdr[object.IDSize:], uint32(len(compressed)))
		rec := append(append(scratch[:0], hdr[:]...), compressed...)
		scratch = rec[:0]
		if _, err := np.f.WriteAt(rec, np.size); err != nil {
			return fmt.Errorf("store: repack append: %w", err)
		}
		e := packEntry{id: id, off: np.size + packRecHeader, clen: uint32(len(compressed))}
		np.size += packRecHeader + int64(len(compressed))
		entries = append(entries, e)
		newRefs[id] = packRef{pack: np, off: e.off, clen: e.clen}
		return nil
	}
	// Copy every packed record (each snapshot pack read sequentially in
	// record order, first occurrence of an ID winning — the same priority
	// the in-memory refs gave them), then fold the loose objects.
	var payload []byte
	for _, p := range snapshot {
		ents, _, err := scanPackRecords(p.f, p.size)
		if err != nil {
			return fail(err)
		}
		for _, e := range ents {
			if _, dup := newRefs[e.id]; dup {
				continue // shadowed duplicate from an older open; drop it
			}
			if int(e.clen) > cap(payload) {
				payload = make([]byte, e.clen)
			}
			payload = payload[:e.clen]
			if _, err := p.f.ReadAt(payload, e.off); err != nil {
				return fail(err)
			}
			if err := appendRecord(e.id, payload); err != nil {
				return fail(err)
			}
		}
	}
	folded := 0
	for _, id := range fold {
		compressed, err := os.ReadFile(s.loose.pathFor(id))
		if err != nil {
			return fail(fmt.Errorf("store: repack loose %s: %w", id.Short(), err))
		}
		if _, dup := newRefs[id]; dup {
			continue
		}
		if err := appendRecord(id, compressed); err != nil {
			return fail(err)
		}
		folded++
	}
	if _, err := s.writeIndex(idxPathFor(np.path), entries, np.size); err != nil {
		return fail(err)
	}
	// The old packs and loose files are about to become the ONLY casualties
	// of this operation — fsync the new pack, its index and the directory
	// before any deletion, or a power loss could take both copies.
	// (Ordinary appends skip fsync, like the loose store: a crash there
	// loses only the newest writes, never the sole copy of anything.)
	if err := np.f.Sync(); err != nil {
		return fail(fmt.Errorf("store: sync repacked pack: %w", err))
	}
	if err := syncPath(idxPathFor(np.path)); err != nil {
		return fail(err)
	}
	if err := syncPath(filepath.Dir(np.path)); err != nil {
		return fail(err)
	}
	if repackBuildHook != nil {
		repackBuildHook()
	}

	// Phase two: the new pack is durable; swap it in under the lock. Only
	// in-memory pointers move here — no I/O happens until the lock is
	// released.
	inSnapshot := make(map[*packFile]bool, len(snapshot))
	for _, p := range snapshot {
		inSnapshot[p] = true
	}
	s.mu.Lock()
	survivors := []*packFile{np}
	for _, p := range s.packs {
		if !inSnapshot[p] {
			survivors = append(survivors, p) // appended to during the build
		}
	}
	s.packs = survivors
	for id, ref := range newRefs {
		s.refs[id] = ref
	}
	s.gen++
	s.mu.Unlock()

	// Delete what the swap replaced. No reader can still be using these:
	// preads hold the read lock for the map lookup and the read together,
	// and the refs no longer point here.
	for _, p := range snapshot {
		p.f.Close()
		// Index and journal before the pack: a crash part-way through
		// must not leave an orphan .idx that a later pack reusing this
		// number would mistake for its base (see createPack, which also
		// clears such debris defensively).
		os.Remove(idxPathFor(p.path))
		os.Remove(segPathFor(p.path))
		os.Remove(p.path)
	}
	for _, id := range fold {
		os.Remove(s.loose.pathFor(id))
	}
	// Prune fanout directories the fold emptied (non-empty ones refuse).
	seenFan := map[string]bool{}
	for _, id := range fold {
		fan := id.String()[:2]
		if !seenFan[fan] {
			seenFan[fan] = true
			os.Remove(filepath.Join(s.root, fan))
		}
	}
	s.looseN.Store(0) // the fold absorbed every loose object
	return folded, nil
}

// allocatePack picks the next unused pack number and creates the file. It
// takes the store lock itself (unlike the -Locked methods, whose callers
// hold it), so the pick-and-create cannot race a concurrent appender doing
// the same. Used by Repack's build phase, which otherwise holds no lock;
// the new pack is not registered in s.packs until the swap.
func (s *PackStore) allocatePack() (*packFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path, err := s.nextPackPath()
	if err != nil {
		return nil, err
	}
	return createPack(path)
}

// PackCount reports how many pack files the store currently holds (loose
// objects excluded) — observability for repack policies and tests.
func (s *PackStore) PackCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.packs)
}

var _ interface {
	Store
	BatchStore
	RawBatchStore
	PrefixSearcher
	io.Closer
} = (*PackStore)(nil)
