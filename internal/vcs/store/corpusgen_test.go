package store

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// writeFuzzSeed writes one committed seed-corpus entry in the `go test fuzz v1`
// file format. go test replays testdata/fuzz entries on every run, so the
// committed corpus doubles as a crash-order regression suite.
func writeFuzzSeed(t *testing.T, fuzzName, name string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateFuzzCorpus regenerates the committed seed corpora. It is
// env-gated so a normal test run never rewrites checked-in files:
//
//	GEN_FUZZ_CORPUS=1 go test -run TestGenerateFuzzCorpus ./internal/vcs/store/
//
// The entries mirror the crash orders pack_test.go constructs by hand.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set GEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}

	whole := fuzzPackBytes([]byte("alpha"), []byte("beta-longer-payload"))
	writeFuzzSeed(t, "FuzzPackRecordScan", "complete-pack", whole)
	writeFuzzSeed(t, "FuzzPackRecordScan", "torn-payload", whole[:len(whole)-7])
	writeFuzzSeed(t, "FuzzPackRecordScan", "torn-header", whole[:len(packMagic)+20])
	writeFuzzSeed(t, "FuzzPackRecordScan", "bad-magic", []byte("NOTAPACK"))
	writeFuzzSeed(t, "FuzzPackRecordScan", "empty-pack", []byte(packMagic))
	// A record whose length field claims bytes that never landed: the scan
	// must treat it as the torn tail, not read past the file.
	huge := fuzzPackBytes([]byte("ok"))
	huge = append(huge, fuzzPackBytes([]byte("claimed-but-truncated"))[len(packMagic):]...)
	writeFuzzSeed(t, "FuzzPackRecordScan", "len-overclaims", huge[:len(huge)-10])

	const baseCovered = int64(8)
	const packSize = int64(4096)
	seg1 := encodeSegment(fuzzSegEntries(2, baseCovered, 200), baseCovered, 200)
	seg2 := encodeSegment(fuzzSegEntries(1, 200, 300), 200, 300)
	valid := append(append([]byte(packSegMagic), seg1...), seg2...)
	writeFuzzSeed(t, "FuzzSegmentReplay", "two-batches", valid)
	writeFuzzSeed(t, "FuzzSegmentReplay", "torn-tail", valid[:len(valid)-5])
	crcFail := append([]byte{}, valid...)
	crcFail[len(crcFail)-1] ^= 0xFF
	writeFuzzSeed(t, "FuzzSegmentReplay", "crc-fail", crcFail)
	// The second batch's segment landed but the first's never did: replay
	// must stop at the gap rather than acknowledge batch two.
	writeFuzzSeed(t, "FuzzSegmentReplay", "coverage-gap", append([]byte(packSegMagic), seg2...))
	// "Segment landed, pack bytes did not": the segment claims coverage
	// beyond the pack's real size.
	tooFar := encodeSegment(fuzzSegEntries(1, baseCovered, packSize+100), baseCovered, packSize+100)
	writeFuzzSeed(t, "FuzzSegmentReplay", "seg-landed-pack-missing", append([]byte(packSegMagic), tooFar...))
	// A segment wholly below base coverage: already merged by a crashed
	// open; replay must skip it and keep going.
	merged := encodeSegment(fuzzSegEntries(1, 0, baseCovered), 0, baseCovered)
	writeFuzzSeed(t, "FuzzSegmentReplay", "already-merged", append(append([]byte(packSegMagic), merged...), seg1...))
	// An entry pointing outside its batch's byte range: corrupt segment.
	bad := fuzzSegEntries(1, baseCovered, 200)
	bad[0].off = 1 // below start+packRecHeader
	writeFuzzSeed(t, "FuzzSegmentReplay", "entry-out-of-range",
		append([]byte(packSegMagic), encodeSegment(bad, baseCovered, 200)...))
	writeFuzzSeed(t, "FuzzSegmentReplay", "bad-magic", []byte("NOTAJRNL"))
}
