package store

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// FileStore persists objects as zlib-compressed loose files under a root
// directory, fanned out by the first two hex characters of the ID
// (root/ab/cdef....), the layout used by the local executable tool's
// ".gitcite/objects" directory. It is safe for concurrent use within a
// single process.
//
// Locking is striped per fanout directory (one RWMutex per first ID byte),
// so readers and writers touching different fanout dirs never contend; and
// zlib compression/decompression happens outside the critical section, so
// the locks are held only around the filesystem operations themselves.
// Compressors, decompressors and their buffers are pooled (sync.Pool):
// zlib writer setup is ~1.3 KB of allocation per stream, which commit
// batches would otherwise pay per object.
type FileStore struct {
	root  string
	locks [256]sync.RWMutex
}

// NewFileStore opens (creating if necessary) a file store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the directory the store persists into.
func (s *FileStore) Root() string { return s.root }

func (s *FileStore) pathFor(id object.ID) string {
	hexid := id.String()
	return filepath.Join(s.root, hexid[:2], hexid[2:])
}

// stripe returns the lock covering the object's fanout directory.
func (s *FileStore) stripe(id object.ID) *sync.RWMutex { return &s.locks[id[0]] }

var (
	// zlibWriterPool recycles compressors across Puts; Reset re-targets a
	// writer at a new destination buffer without reallocating its state.
	zlibWriterPool = sync.Pool{New: func() any { return zlib.NewWriter(io.Discard) }}
	// compressBufPool recycles the destination buffers the compressed
	// stream is staged in before the locked filesystem write.
	compressBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	// zlibReaderPool recycles decompressors across Gets. zlib readers
	// returned by zlib.NewReader always implement zlib.Resetter.
	zlibReaderPool sync.Pool
)

type zlibReader interface {
	io.ReadCloser
	zlib.Resetter
}

// compress zlib-compresses enc into a pooled buffer. The caller must
// return the buffer via compressBufPool.Put when done with its bytes.
func compress(enc []byte) (*bytes.Buffer, error) {
	buf := compressBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	zw := zlibWriterPool.Get().(*zlib.Writer)
	zw.Reset(buf)
	_, err := zw.Write(enc)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	zlibWriterPool.Put(zw)
	if err != nil {
		compressBufPool.Put(buf)
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	return buf, nil
}

// decompress inflates a compressed object payload using a pooled reader.
func decompress(compressed []byte) ([]byte, error) {
	br := bytes.NewReader(compressed)
	zr, ok := zlibReaderPool.Get().(zlibReader)
	if ok {
		if err := zr.Reset(br, nil); err != nil {
			return nil, err
		}
	} else {
		rc, err := zlib.NewReader(br)
		if err != nil {
			return nil, err
		}
		zr = rc.(zlibReader)
	}
	enc, err := io.ReadAll(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	zlibReaderPool.Put(zr)
	if err != nil {
		return nil, err
	}
	return enc, nil
}

// writeObjectLocked writes one compressed object into its fanout dir with
// write-then-rename so readers never observe a partial object. The caller
// holds the stripe's write lock and has created the fanout dir.
func writeObjectLocked(dir, path string, compressed []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-obj-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(compressed); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	// Renaming over an object a concurrent writer landed first is harmless:
	// content-addressing guarantees identical bytes.
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// Put implements Store.
func (s *FileStore) Put(o object.Object) (object.ID, error) {
	enc := object.Encode(o)
	id := object.HashBytes(enc)
	path := s.pathFor(id)

	mu := s.stripe(id)
	mu.RLock()
	_, statErr := os.Stat(path)
	mu.RUnlock()
	if statErr == nil {
		return id, nil // content-addressed: already present means identical
	}

	// Compress outside the critical section: only the filesystem writes
	// below need the stripe lock.
	buf, err := compress(enc)
	if err != nil {
		return object.ZeroID, err
	}
	defer compressBufPool.Put(buf)

	mu.Lock()
	defer mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return id, nil // a concurrent Put won the race; identical content
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return object.ZeroID, fmt.Errorf("store: fanout dir: %w", err)
	}
	if err := writeObjectLocked(filepath.Dir(path), path, buf.Bytes()); err != nil {
		return object.ZeroID, err
	}
	return id, nil
}

// PutMany implements BatchStore. The batch is encoded and hashed up front,
// grouped by fanout directory, and each directory is handled with one
// locked scan: a single ReadDir replaces a stat per object, and only the
// objects the scan proves absent are compressed and written.
func (s *FileStore) PutMany(objs []object.Object) ([]object.ID, error) {
	ids := make([]object.ID, len(objs))
	encs := make([][]byte, len(objs))
	byFan := make(map[byte][]int)
	for i, o := range objs {
		encs[i] = object.Encode(o)
		ids[i] = object.HashBytes(encs[i])
		byFan[ids[i][0]] = append(byFan[ids[i][0]], i)
	}
	for fan, idxs := range byFan {
		if err := s.putFanoutBatch(fan, idxs, ids, encs); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// PutManyEncoded implements RawBatchStore: canonical encodings are
// compressed and written with no re-encode/re-hash, one directory scan
// and one lock acquisition per fanout dir.
func (s *FileStore) PutManyEncoded(batch []Encoded) error {
	ids := make([]object.ID, len(batch))
	encs := make([][]byte, len(batch))
	byFan := make(map[byte][]int)
	for i, e := range batch {
		ids[i] = e.ID
		encs[i] = e.Enc
		byFan[e.ID[0]] = append(byFan[e.ID[0]], i)
	}
	for fan, idxs := range byFan {
		if err := s.putFanoutBatch(fan, idxs, ids, encs); err != nil {
			return err
		}
	}
	return nil
}

// presentNames reports which of the given object file names exist in one
// fanout dir, under a single lock acquisition: individual stats for small
// queries (an incremental commit typically lands one object per fanout
// dir, and a directory scan would grow with repository size), one
// directory scan for large ones. The ReadDir form may report names beyond
// those queried; callers test membership only.
func (s *FileStore) presentNames(fan byte, names []string) (map[string]bool, error) {
	mu := &s.locks[fan]
	dir := filepath.Join(s.root, fmt.Sprintf("%02x", fan))
	if len(names) < 8 {
		present := make(map[string]bool, len(names))
		mu.RLock()
		defer mu.RUnlock()
		for _, name := range names {
			_, err := os.Stat(filepath.Join(dir, name))
			if err == nil {
				present[name] = true
			} else if !os.IsNotExist(err) {
				return nil, err
			}
		}
		return present, nil
	}
	mu.RLock()
	entries, err := os.ReadDir(dir)
	mu.RUnlock()
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		present[e.Name()] = true
	}
	return present, nil
}

// fanNames returns the in-fanout file names of the batch members idxs.
func fanNames(idxs []int, ids []object.ID) []string {
	names := make([]string, len(idxs))
	for j, i := range idxs {
		names[j] = ids[i].String()[2:]
	}
	return names
}

// putFanoutBatch stores the batch members that live in one fanout dir.
func (s *FileStore) putFanoutBatch(fan byte, idxs []int, ids []object.ID, encs [][]byte) error {
	mu := &s.locks[fan]
	dir := filepath.Join(s.root, fmt.Sprintf("%02x", fan))

	names := fanNames(idxs, ids)
	present, err := s.presentNames(fan, names)
	if err != nil {
		return fmt.Errorf("store: scan fanout dir: %w", err)
	}

	type pending struct {
		name string
		buf  *bytes.Buffer
	}
	var missing []pending
	defer func() {
		for _, p := range missing {
			compressBufPool.Put(p.buf)
		}
	}()
	for j, i := range idxs {
		name := names[j]
		if present[name] {
			continue
		}
		present[name] = true // dedupe within the batch
		buf, err := compress(encs[i])
		if err != nil {
			return err
		}
		missing = append(missing, pending{name: name, buf: buf})
	}
	if len(missing) == 0 {
		return nil
	}

	mu.Lock()
	defer mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: fanout dir: %w", err)
	}
	for _, p := range missing {
		if err := writeObjectLocked(dir, filepath.Join(dir, p.name), p.buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id object.ID) (object.Object, error) {
	mu := s.stripe(id)
	mu.RLock()
	compressed, err := os.ReadFile(s.pathFor(id))
	mu.RUnlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: open: %w", err)
	}
	// Decompress and verify outside the lock.
	enc, err := decompress(compressed)
	if err != nil {
		return nil, fmt.Errorf("store: object %s corrupt: %w", id.Short(), err)
	}
	if object.HashBytes(enc) != id {
		return nil, fmt.Errorf("store: object %s fails hash verification", id.Short())
	}
	return object.Decode(enc)
}

// Has implements Store.
func (s *FileStore) Has(id object.ID) (bool, error) {
	mu := s.stripe(id)
	mu.RLock()
	defer mu.RUnlock()
	_, err := os.Stat(s.pathFor(id))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// HasMany implements BatchStore: queries are grouped by fanout dir, each
// group answered by one presentNames pass (one lock acquisition; stats or
// a directory scan depending on group size).
func (s *FileStore) HasMany(ids []object.ID) ([]bool, error) {
	have := make([]bool, len(ids))
	byFan := make(map[byte][]int)
	for i, id := range ids {
		byFan[id[0]] = append(byFan[id[0]], i)
	}
	for fan, idxs := range byFan {
		names := fanNames(idxs, ids)
		present, err := s.presentNames(fan, names)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			have[i] = present[names[j]]
		}
	}
	return have, nil
}

// IDs implements Store.
func (s *FileStore) IDs() ([]object.ID, error) {
	// No locks needed: writes land via atomic rename, so a directory scan
	// only ever sees complete objects (in-flight temp files are skipped).
	var ids []object.ID
	fanouts, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	for _, fan := range fanouts {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		ids, err = s.appendFanoutIDs(ids, fan.Name())
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// appendFanoutIDs appends every object ID stored in one fanout dir.
func (s *FileStore) appendFanoutIDs(ids []object.ID, fan string) ([]object.ID, error) {
	files, err := os.ReadDir(filepath.Join(s.root, fan))
	if err != nil {
		if os.IsNotExist(err) {
			return ids, nil
		}
		return nil, err
	}
	for _, f := range files {
		if strings.HasPrefix(f.Name(), ".tmp-") {
			continue
		}
		id, err := object.ParseID(fan + f.Name())
		if err != nil {
			continue // foreign file; ignore
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// IDsByPrefix implements PrefixSearcher. The fanout layout IS the ordered
// index: a prefix of two or more hex characters names exactly one fanout
// directory, so the scan reads one directory instead of the whole store
// (a one-character prefix reads its 16 candidate directories).
func (s *FileStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	if _, _, err := prefixBounds(prefix); err != nil {
		return nil, err
	}
	prefix = strings.ToLower(prefix)
	fans := []string{prefix[:min(2, len(prefix))]}
	if len(prefix) == 1 {
		fans = fans[:0]
		for _, c := range "0123456789abcdef" {
			fans = append(fans, prefix+string(c))
		}
	}
	var out []object.ID
	for _, fan := range fans {
		ids, err := s.appendFanoutIDs(nil, fan)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if !strings.HasPrefix(id.String(), prefix) {
				continue
			}
			out = append(out, id)
			if limit > 0 && len(out) == limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// Len implements Store.
func (s *FileStore) Len() (int, error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}
