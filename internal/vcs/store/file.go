package store

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// FileStore persists objects as zlib-compressed loose files under a root
// directory, fanned out by the first two hex characters of the ID
// (root/ab/cdef....), the layout used by the local executable tool's
// ".gitcite/objects" directory. It is safe for concurrent use within a
// single process.
//
// Locking is striped per fanout directory (one RWMutex per first ID byte),
// so readers and writers touching different fanout dirs never contend; and
// zlib compression/decompression happens outside the critical section, so
// the locks are held only around the filesystem operations themselves.
type FileStore struct {
	root  string
	locks [256]sync.RWMutex
}

// NewFileStore opens (creating if necessary) a file store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the directory the store persists into.
func (s *FileStore) Root() string { return s.root }

func (s *FileStore) pathFor(id object.ID) string {
	hexid := id.String()
	return filepath.Join(s.root, hexid[:2], hexid[2:])
}

// stripe returns the lock covering the object's fanout directory.
func (s *FileStore) stripe(id object.ID) *sync.RWMutex { return &s.locks[id[0]] }

// Put implements Store.
func (s *FileStore) Put(o object.Object) (object.ID, error) {
	enc := object.Encode(o)
	id := object.HashBytes(enc)
	path := s.pathFor(id)

	mu := s.stripe(id)
	mu.RLock()
	_, statErr := os.Stat(path)
	mu.RUnlock()
	if statErr == nil {
		return id, nil // content-addressed: already present means identical
	}

	// Compress outside the critical section: only the filesystem writes
	// below need the stripe lock.
	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(enc); err != nil {
		return object.ZeroID, fmt.Errorf("store: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return object.ZeroID, fmt.Errorf("store: compress close: %w", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return id, nil // a concurrent Put won the race; identical content
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return object.ZeroID, fmt.Errorf("store: fanout dir: %w", err)
	}

	// Write-then-rename so readers never observe a partial object.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-obj-*")
	if err != nil {
		return object.ZeroID, fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return object.ZeroID, fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return object.ZeroID, fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return object.ZeroID, fmt.Errorf("store: rename: %w", err)
	}
	return id, nil
}

// Get implements Store.
func (s *FileStore) Get(id object.ID) (object.Object, error) {
	mu := s.stripe(id)
	mu.RLock()
	compressed, err := os.ReadFile(s.pathFor(id))
	mu.RUnlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: open: %w", err)
	}
	// Decompress and verify outside the lock.
	zr, err := zlib.NewReader(bytes.NewReader(compressed))
	if err != nil {
		return nil, fmt.Errorf("store: object %s corrupt: %w", id.Short(), err)
	}
	defer zr.Close()
	enc, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("store: decompress %s: %w", id.Short(), err)
	}
	if object.HashBytes(enc) != id {
		return nil, fmt.Errorf("store: object %s fails hash verification", id.Short())
	}
	return object.Decode(enc)
}

// Has implements Store.
func (s *FileStore) Has(id object.ID) (bool, error) {
	mu := s.stripe(id)
	mu.RLock()
	defer mu.RUnlock()
	_, err := os.Stat(s.pathFor(id))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// IDs implements Store.
func (s *FileStore) IDs() ([]object.ID, error) {
	// No locks needed: writes land via atomic rename, so a directory scan
	// only ever sees complete objects (in-flight temp files are skipped).
	var ids []object.ID
	fanouts, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	for _, fan := range fanouts {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, fan.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), ".tmp-") {
				continue
			}
			id, err := object.ParseID(fan.Name() + f.Name())
			if err != nil {
				continue // foreign file; ignore
			}
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Len implements Store.
func (s *FileStore) Len() (int, error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}
