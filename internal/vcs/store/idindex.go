// idindex.go is the ordered ID index shared by the stores: a sorted array
// of object IDs with a 256-way fanout table, answering exact and hex-prefix
// lookups in O(log n). PackStore persists one per pack file as the sorted
// base .idx — extended incrementally by the per-batch segment journal
// (packseg.go) and re-snapshotted only when a pack is opened or rolls, so
// persisting index state costs O(batch) per mutation; MemoryStore builds
// one lazily over its key set; the abbreviated-revision resolvers in
// internal/hosting and cmd/gitcite query it through the PrefixSearcher
// interface instead of scanning Store.IDs() per lookup.
package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// IDIndex is an immutable sorted index over a set of object IDs. The fanout
// table narrows every search to the IDs sharing the query's first byte
// before binary-searching, exactly like Git's pack index: fanout[b] is the
// number of IDs whose first byte is <= b, so bucket b spans
// ids[fanout[b-1]:fanout[b]].
type IDIndex struct {
	ids    []object.ID
	fanout [256]uint32
}

// NewIDIndex builds an index over the given IDs. The input is copied,
// sorted and deduplicated; the caller keeps ownership of its slice.
func NewIDIndex(ids []object.ID) *IDIndex {
	sorted := append([]object.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return idLess(sorted[i], sorted[j]) })
	// Deduplicate in place (content addressing makes duplicates common when
	// merging indexes from several sources).
	uniq := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			uniq = append(uniq, id)
		}
	}
	return newIDIndexSorted(uniq)
}

// newIDIndexSorted wraps an already-sorted, deduplicated slice without
// copying. The index takes ownership of ids.
func newIDIndexSorted(ids []object.ID) *IDIndex {
	x := &IDIndex{ids: ids}
	b := 0
	for i, id := range ids {
		for b < int(id[0]) {
			x.fanout[b] = uint32(i)
			b++
		}
	}
	for ; b < 256; b++ {
		x.fanout[b] = uint32(len(ids))
	}
	return x
}

func idLess(a, b object.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Len returns the number of indexed IDs.
func (x *IDIndex) Len() int { return len(x.ids) }

// IDs returns the indexed IDs in sorted order. The caller must not mutate
// the returned slice.
func (x *IDIndex) IDs() []object.ID { return x.ids }

// bucket returns the sorted sub-slice of IDs sharing the first byte b,
// together with its starting position.
func (x *IDIndex) bucket(b byte) ([]object.ID, int) {
	lo := 0
	if b > 0 {
		lo = int(x.fanout[b-1])
	}
	return x.ids[lo:x.fanout[b]], lo
}

// Contains reports whether id is indexed, in O(log n) over the id's fanout
// bucket.
func (x *IDIndex) Contains(id object.ID) bool {
	bucket, _ := x.bucket(id[0])
	i := sort.Search(len(bucket), func(i int) bool { return !idLess(bucket[i], id) })
	return i < len(bucket) && bucket[i] == id
}

// ErrBadPrefix reports a malformed hex ID prefix passed to a prefix search.
var ErrBadPrefix = errors.New("store: malformed id prefix")

// prefixBounds converts a hex ID prefix into the inclusive [lo, hi] ID range
// it covers: lo pads the prefix with zero nibbles, hi with 0xf nibbles. An
// odd-length prefix covers the half-open nibble.
func prefixBounds(prefix string) (lo, hi object.ID, err error) {
	prefix = strings.ToLower(prefix)
	if prefix == "" || len(prefix) > object.IDSize*2 {
		return lo, hi, fmt.Errorf("%w: %q", ErrBadPrefix, prefix)
	}
	const zeros = "0000000000000000000000000000000000000000000000000000000000000000"
	const fs = "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
	pad := object.IDSize*2 - len(prefix)
	lob, err := hex.DecodeString(prefix + zeros[:pad])
	if err != nil {
		return lo, hi, fmt.Errorf("%w: %q", ErrBadPrefix, prefix)
	}
	hib, _ := hex.DecodeString(prefix + fs[:pad])
	copy(lo[:], lob)
	copy(hi[:], hib)
	return lo, hi, nil
}

// ByPrefix returns the indexed IDs whose hex form begins with prefix, in
// sorted order, stopping after limit matches (limit <= 0 returns all). The
// search is O(log n) + O(matches): the fanout table and a binary search
// locate the first candidate, and matches are contiguous from there.
func (x *IDIndex) ByPrefix(prefix string, limit int) ([]object.ID, error) {
	lo, hi, err := prefixBounds(prefix)
	if err != nil {
		return nil, err
	}
	search := x.ids
	if lo[0] == hi[0] {
		// The whole range shares a first byte: search only its bucket.
		search, _ = x.bucket(lo[0])
	}
	i := sort.Search(len(search), func(i int) bool { return !idLess(search[i], lo) })
	var out []object.ID
	for ; i < len(search) && !idLess(hi, search[i]); i++ {
		out = append(out, search[i])
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out, nil
}

// lazyIDIndex is the build-on-demand IDIndex over a mutating key set that
// MemoryStore and PackStore share: the first lookup after a mutation sorts
// the keys once, later lookups reuse the immutable index, and a bumped
// generation counter invalidates it. The embedding store owns the mutex
// guarding both this struct and the key set.
type lazyIDIndex struct {
	idx   *IDIndex
	gen   uint64
	valid bool
}

// get returns an index current at gen(), rebuilding from collect() when
// stale. gen and collect are called with mu held (read or write). The
// returned index is immutable: a concurrent mutation only makes it stale
// for the next call, never inconsistent.
func (l *lazyIDIndex) get(mu *sync.RWMutex, gen func() uint64, collect func() []object.ID) *IDIndex {
	mu.RLock()
	idx, fresh := l.idx, l.valid && l.gen == gen()
	mu.RUnlock()
	if fresh {
		return idx
	}
	mu.Lock()
	defer mu.Unlock()
	if !l.valid || l.gen != gen() {
		l.idx = NewIDIndex(collect())
		l.gen = gen()
		l.valid = true
	}
	return l.idx
}

// PrefixSearcher is the optional ordered-index extension of Store. Stores
// that implement it answer hex-prefix ID queries without enumerating every
// stored object — O(log n) per lookup instead of the O(n) IDs() scan the
// package-level IDsByPrefix helper falls back to.
type PrefixSearcher interface {
	// IDsByPrefix returns up to limit stored object IDs whose lower-case
	// hex form begins with prefix (limit <= 0 returns all), in unspecified
	// order. A malformed prefix reports ErrBadPrefix.
	IDsByPrefix(prefix string, limit int) ([]object.ID, error)
}

// IDsByPrefix answers a hex-prefix ID query through the store's ordered
// index when it has one, and by a full IDs() scan otherwise.
func IDsByPrefix(s Store, prefix string, limit int) ([]object.ID, error) {
	if ps, ok := s.(PrefixSearcher); ok {
		return ps.IDsByPrefix(prefix, limit)
	}
	lo, hi, err := prefixBounds(prefix)
	if err != nil {
		return nil, err
	}
	ids, err := s.IDs()
	if err != nil {
		return nil, err
	}
	var out []object.ID
	for _, id := range ids {
		if idLess(id, lo) || idLess(hi, id) {
			continue
		}
		out = append(out, id)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out, nil
}
