package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// cacheShardCount is the number of independent LRU shards. Objects map to
// shards by the first byte of their ID (a uniform content hash), so
// parallel Gets of distinct objects contend on a shard mutex only 1/16th
// of the time.
const cacheShardCount = 16

// CachedStore is a read-through LRU cache over another Store. Because
// objects are immutable, cached entries can never go stale; eviction is
// purely a memory-bound concern. It is safe for concurrent use.
//
// The cache is sharded: each shard has its own mutex, LRU list and index,
// so parallel reads do not serialise on a single lock. Concurrent misses
// for the same object are deduplicated singleflight-style — one caller
// fetches from the backend while the rest wait for its result — so a hot
// object being requested by N readers costs one backend read, not N.
type CachedStore struct {
	backend     Store
	capPerShard int
	shards      []cacheShard

	hits, misses atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are cacheEntry
	index    map[object.ID]*list.Element
	inflight map[object.ID]*fetchCall
}

type cacheEntry struct {
	id  object.ID
	obj object.Object
}

// fetchCall is one in-flight backend fetch that concurrent misses for the
// same object wait on.
type fetchCall struct {
	done chan struct{}
	obj  object.Object
	err  error
}

// NewCachedStore wraps backend with a cache of at most capacity objects.
// A capacity of 0 or less disables caching (pass-through). Caches smaller
// than cacheShardCount² objects keep a single shard, preserving exact
// global LRU order; larger caches shard, making the capacity approximate
// (it is rounded up to a multiple of the shard count).
func NewCachedStore(backend Store, capacity int) *CachedStore {
	n := 1
	if capacity >= cacheShardCount*cacheShardCount {
		n = cacheShardCount
	}
	s := &CachedStore{backend: backend, shards: make([]cacheShard, n)}
	if capacity > 0 {
		s.capPerShard = (capacity + n - 1) / n
	}
	for i := range s.shards {
		s.shards[i].lru = list.New()
		s.shards[i].index = make(map[object.ID]*list.Element)
		s.shards[i].inflight = make(map[object.ID]*fetchCall)
	}
	return s
}

func (s *CachedStore) shard(id object.ID) *cacheShard {
	return &s.shards[int(id[0])%len(s.shards)]
}

// Close releases the backend's resources when it holds any (pack file
// handles, say). The cached objects themselves need no teardown; the store
// must not be used after Close. Part of the close chain gitcite.Repo →
// vcs.Repository → store that lets a hosting platform bound its open
// repositories.
func (s *CachedStore) Close() error {
	if c, ok := s.backend.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Backend returns the store the cache reads through — callers that need a
// backend-specific operation (PackStore.Repack, FileStore.Root) unwrap
// through it.
func (s *CachedStore) Backend() Store { return s.backend }

// Stats returns the cumulative hit and miss counts. Every Get or Has that
// is answered from the cache counts as a hit; every one that has to
// consult the backend (including singleflight waiters that piggyback on
// another caller's fetch) counts as a miss.
func (s *CachedStore) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Put implements Store, populating the cache on write.
func (s *CachedStore) Put(o object.Object) (object.ID, error) {
	id, err := s.backend.Put(o)
	if err != nil {
		return id, err
	}
	s.insert(id, o)
	return id, nil
}

// Get implements Store.
func (s *CachedStore) Get(id object.ID) (object.Object, error) {
	sh := s.shard(id)
	sh.mu.Lock()
	if el, ok := sh.index[id]; ok {
		sh.lru.MoveToFront(el)
		o := el.Value.(cacheEntry).obj
		sh.mu.Unlock()
		s.hits.Add(1)
		return o, nil
	}
	s.misses.Add(1)
	if call, ok := sh.inflight[id]; ok {
		// Another caller is already fetching this object; wait for it.
		sh.mu.Unlock()
		<-call.done
		return call.obj, call.err
	}
	call := &fetchCall{done: make(chan struct{})}
	sh.inflight[id] = call
	sh.mu.Unlock()

	call.obj, call.err = s.backend.Get(id)
	if call.err == nil {
		s.insert(id, call.obj)
	}
	sh.mu.Lock()
	delete(sh.inflight, id)
	sh.mu.Unlock()
	close(call.done)
	return call.obj, call.err
}

func (s *CachedStore) insert(id object.ID, o object.Object) {
	if s.capPerShard <= 0 {
		return
	}
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.index[id]; ok {
		sh.lru.MoveToFront(el)
		return
	}
	sh.index[id] = sh.lru.PushFront(cacheEntry{id: id, obj: o})
	for sh.lru.Len() > s.capPerShard {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.index, oldest.Value.(cacheEntry).id)
	}
}

// PutMany implements BatchStore: the batch goes to the backend's batch
// path, then populates the cache.
func (s *CachedStore) PutMany(objs []object.Object) ([]object.ID, error) {
	ids, err := PutMany(s.backend, objs)
	if err != nil {
		return nil, err
	}
	for i, o := range objs {
		s.insert(ids[i], o)
	}
	return ids, nil
}

// PutManyEncoded implements RawBatchStore by forwarding to the backend's
// raw path. The cache is not populated (there are no decoded objects to
// hold); entries fill on first read as usual.
func (s *CachedStore) PutManyEncoded(batch []Encoded) error {
	return PutManyEncoded(s.backend, batch)
}

// HasMany implements BatchStore: cache hits are answered locally — one
// lock acquisition per shard, not per ID — and only the residue is
// forwarded to the backend as one batch.
func (s *CachedStore) HasMany(ids []object.ID) ([]bool, error) {
	have := make([]bool, len(ids))
	var missIdx []int
	byShard := make(map[*cacheShard][]int)
	for i, id := range ids {
		sh := s.shard(id)
		byShard[sh] = append(byShard[sh], i)
	}
	hits := 0
	for sh, idxs := range byShard {
		sh.mu.Lock()
		for _, i := range idxs {
			if _, ok := sh.index[ids[i]]; ok {
				have[i] = true
				hits++
			} else {
				missIdx = append(missIdx, i)
			}
		}
		sh.mu.Unlock()
	}
	s.hits.Add(uint64(hits))
	s.misses.Add(uint64(len(missIdx)))
	if len(missIdx) == 0 {
		return have, nil
	}
	missIDs := make([]object.ID, len(missIdx))
	for j, i := range missIdx {
		missIDs[j] = ids[i]
	}
	backendHave, err := HasMany(s.backend, missIDs)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		have[i] = backendHave[j]
	}
	return have, nil
}

// Has implements Store. A cache hit answers immediately (and counts toward
// Stats); otherwise the backend is consulted.
func (s *CachedStore) Has(id object.ID) (bool, error) {
	sh := s.shard(id)
	sh.mu.Lock()
	_, ok := sh.index[id]
	sh.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return true, nil
	}
	s.misses.Add(1)
	return s.backend.Has(id)
}

// IDs implements Store.
func (s *CachedStore) IDs() ([]object.ID, error) { return s.backend.IDs() }

// IDsByPrefix implements PrefixSearcher by delegating to the backend's
// ordered index (or the package-level fallback when it has none).
func (s *CachedStore) IDsByPrefix(prefix string, limit int) ([]object.ID, error) {
	return IDsByPrefix(s.backend, prefix, limit)
}

// Len implements Store.
func (s *CachedStore) Len() (int, error) { return s.backend.Len() }
