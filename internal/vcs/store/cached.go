package store

import (
	"container/list"
	"sync"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// CachedStore is a read-through LRU cache over another Store. Because
// objects are immutable, cached entries can never go stale; eviction is
// purely a memory-bound concern. It is safe for concurrent use.
type CachedStore struct {
	backend Store
	cap     int

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are cacheEntry
	index map[object.ID]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	id  object.ID
	obj object.Object
}

// NewCachedStore wraps backend with a cache of at most capacity objects.
// A capacity of 0 or less disables caching (pass-through).
func NewCachedStore(backend Store, capacity int) *CachedStore {
	return &CachedStore{
		backend: backend,
		cap:     capacity,
		lru:     list.New(),
		index:   make(map[object.ID]*list.Element),
	}
}

// Stats returns the cumulative hit and miss counts.
func (s *CachedStore) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Put implements Store, populating the cache on write.
func (s *CachedStore) Put(o object.Object) (object.ID, error) {
	id, err := s.backend.Put(o)
	if err != nil {
		return id, err
	}
	s.insert(id, o)
	return id, nil
}

// Get implements Store.
func (s *CachedStore) Get(id object.ID) (object.Object, error) {
	s.mu.Lock()
	if el, ok := s.index[id]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		o := el.Value.(cacheEntry).obj
		s.mu.Unlock()
		return o, nil
	}
	s.misses++
	s.mu.Unlock()

	o, err := s.backend.Get(id)
	if err != nil {
		return nil, err
	}
	s.insert(id, o)
	return o, nil
}

func (s *CachedStore) insert(id object.ID, o object.Object) {
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[id]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.index[id] = s.lru.PushFront(cacheEntry{id: id, obj: o})
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.index, oldest.Value.(cacheEntry).id)
	}
}

// Has implements Store.
func (s *CachedStore) Has(id object.ID) (bool, error) {
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	if ok {
		return true, nil
	}
	return s.backend.Has(id)
}

// IDs implements Store.
func (s *CachedStore) IDs() ([]object.ID, error) { return s.backend.IDs() }

// Len implements Store.
func (s *CachedStore) Len() (int, error) { return s.backend.Len() }
