package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// randomHistory writes a deterministic pseudo-random commit history
// (blobs → nested trees → a commit chain) into s and returns the tip.
// Everything is a pure function of seed.
func randomHistory(t *testing.T, s Store, seed int64) object.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var parent object.ID
	var tip object.ID
	nCommits := 5 + rng.Intn(6)
	for c := 0; c < nCommits; c++ {
		// A two-level tree with a random number of files per directory.
		var rootEntries []object.TreeEntry
		nDirs := 1 + rng.Intn(3)
		for d := 0; d < nDirs; d++ {
			var sub []object.TreeEntry
			nFiles := 1 + rng.Intn(4)
			for f := 0; f < nFiles; f++ {
				data := fmt.Sprintf("seed=%d commit=%d dir=%d file=%d pad=%d", seed, c, d, f, rng.Intn(3))
				id, err := s.Put(object.NewBlob([]byte(data)))
				if err != nil {
					t.Fatal(err)
				}
				sub = append(sub, object.TreeEntry{Name: fmt.Sprintf("f%d.txt", f), Mode: object.ModeFile, ID: id})
			}
			subTree, err := object.NewTree(sub)
			if err != nil {
				t.Fatal(err)
			}
			subID, err := s.Put(subTree)
			if err != nil {
				t.Fatal(err)
			}
			rootEntries = append(rootEntries, object.TreeEntry{Name: fmt.Sprintf("d%d", d), Mode: object.ModeDir, ID: subID})
		}
		root, err := object.NewTree(rootEntries)
		if err != nil {
			t.Fatal(err)
		}
		rootID, err := s.Put(root)
		if err != nil {
			t.Fatal(err)
		}
		commit := &object.Commit{
			TreeID:    rootID,
			Author:    object.NewSignature("p", "p@x", time.Unix(int64(c)+1, 0)),
			Committer: object.NewSignature("p", "p@x", time.Unix(int64(c)+1, 0)),
			Message:   fmt.Sprintf("commit %d", c),
		}
		if !parent.IsZero() {
			commit.Parents = []object.ID{parent}
		}
		cid, err := s.Put(commit)
		if err != nil {
			t.Fatal(err)
		}
		parent, tip = cid, cid
	}
	return tip
}

// closureFingerprint walks the closure of tip and hashes every canonical
// encoding in sorted-ID order — equal fingerprints mean the two stores hold
// bit-identical object closures.
func closureFingerprint(t *testing.T, s Store, tip object.ID) [32]byte {
	t.Helper()
	encs := map[object.ID][]byte{}
	err := WalkClosure(s, func(id object.ID, o object.Object) error {
		enc := object.Encode(o)
		if object.HashBytes(enc) != id {
			t.Fatalf("object %s re-encodes to a different hash", id.Short())
		}
		encs[id] = enc
		return nil
	}, tip)
	if err != nil {
		t.Fatalf("closure walk: %v", err)
	}
	ids := make([]object.ID, 0, len(encs))
	for id := range encs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return idLess(ids[i], ids[j]) })
	h := sha256.New()
	for _, id := range ids {
		h.Write(id[:])
		h.Write(encs[id])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func newTestPackStore(t *testing.T, dir string) *PackStore {
	t.Helper()
	ps, err := NewPackStore(dir)
	if err != nil {
		t.Fatalf("NewPackStore: %v", err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

// TestClosureBitIdenticalAcrossStores is the cross-backend property suite:
// the same random history transferred into Memory, File and Pack stores —
// and through a Repack and a cold reopen of the pack — always yields
// bit-identical object closures.
func TestClosureBitIdenticalAcrossStores(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mem := NewMemoryStore()
			tip := randomHistory(t, mem, seed)
			want := closureFingerprint(t, mem, tip)

			fileDir := filepath.Join(t.TempDir(), "objects")
			fs, err := NewFileStore(fileDir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := CopyClosure(fs, mem, tip); err != nil {
				t.Fatal(err)
			}
			if got := closureFingerprint(t, fs, tip); got != want {
				t.Error("FileStore closure differs from MemoryStore")
			}

			packDir := filepath.Join(t.TempDir(), "objects")
			ps := newTestPackStore(t, packDir)
			if _, err := CopyClosure(ps, mem, tip); err != nil {
				t.Fatal(err)
			}
			if got := closureFingerprint(t, ps, tip); got != want {
				t.Error("PackStore closure differs from MemoryStore")
			}

			if _, err := ps.Repack(); err != nil {
				t.Fatalf("Repack: %v", err)
			}
			if got := closureFingerprint(t, ps, tip); got != want {
				t.Error("PackStore closure differs after Repack")
			}
			if ps.PackCount() != 1 {
				t.Errorf("PackCount after Repack = %d, want 1", ps.PackCount())
			}

			if err := ps.Close(); err != nil {
				t.Fatal(err)
			}
			reopened := newTestPackStore(t, packDir)
			if got := closureFingerprint(t, reopened, tip); got != want {
				t.Error("PackStore closure differs after reopen")
			}

			// Incremental-index crash orders: each simulated crash leaves a
			// store that recovers to the bit-identical closure, never
			// acknowledges the torn-off batch, and keeps accepting writes.
			for _, order := range []string{"torn-segment-tail", "segment-present-base-idx-stale", "segment-written-pack-bytes-missing"} {
				t.Run(order, func(t *testing.T) {
					dir := filepath.Join(t.TempDir(), "objects")
					ps := newTestPackStore(t, dir)
					if _, err := CopyClosure(ps, mem, tip); err != nil {
						t.Fatal(err)
					}
					// One junk batch outside the closure, so a crash that
					// tears it off cannot touch closure bit-identity.
					junk := make([]Encoded, 5)
					junkIDs := make([]object.ID, len(junk))
					for i := range junk {
						enc := object.Encode(object.NewBlobString(fmt.Sprintf("junk seed=%d i=%d", seed, i)))
						junk[i] = Encoded{ID: object.HashBytes(enc), Enc: enc}
						junkIDs[i] = junk[i].ID
					}
					packPath := ps.cur.path
					sizeBefore := ps.cur.size
					segSizeBefore := ps.curSegSize
					entriesBefore := append([]packEntry(nil), ps.curEntries...)
					if err := ps.PutManyEncoded(junk); err != nil {
						t.Fatal(err)
					}
					if err := ps.Close(); err != nil {
						t.Fatal(err)
					}

					wantJunk := false
					switch order {
					case "torn-segment-tail":
						// The junk batch's segment never finished landing:
						// chop it mid-entry. The batch was never
						// acknowledged, so recovery drops it.
						if err := os.Truncate(segPathFor(packPath), segSizeBefore+segHeaderSize+3); err != nil {
							t.Fatal(err)
						}
					case "segment-present-base-idx-stale":
						// A base index merged up to the pre-junk prefix (as
						// a roll or an interrupted open-merge would leave
						// it), with the junk batch only in the journal:
						// replay must skip the merged range and apply the
						// tail.
						if _, err := writePackIndex(idxPathFor(packPath), entriesBefore, sizeBefore); err != nil {
							t.Fatal(err)
						}
						wantJunk = true
					case "segment-written-pack-bytes-missing":
						// Without fsync the journal can persist before the
						// pack bytes; after the crash the segment claims
						// records the pack never got. Replay must refuse it.
						if err := os.Truncate(packPath, sizeBefore); err != nil {
							t.Fatal(err)
						}
					}

					survivor := newTestPackStore(t, dir)
					if got := closureFingerprint(t, survivor, tip); got != want {
						t.Errorf("closure differs after %s recovery", order)
					}
					for _, id := range junkIDs {
						if ok, _ := survivor.Has(id); ok != wantJunk {
							t.Errorf("junk object present=%v after %s, want %v", ok, order, wantJunk)
						}
					}
					if segs, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.seg")); len(segs) != 0 {
						t.Errorf("%d journals remain after recovery, want 0 (merged)", len(segs))
					}
					if _, err := survivor.Put(object.NewBlobString("write after " + order)); err != nil {
						t.Errorf("Put after %s: %v", order, err)
					}
					// The recovered state must itself survive another cold
					// open bit-identically.
					if err := survivor.Close(); err != nil {
						t.Fatal(err)
					}
					again := newTestPackStore(t, dir)
					if got := closureFingerprint(t, again, tip); got != want {
						t.Errorf("closure differs on second open after %s", order)
					}
				})
			}
		})
	}
}

// TestPackStoreAppendIdxBytesPerBatch pins the incremental-index bound the
// PR 5 tentpole exists for: one append batch persists exactly one O(batch)
// journal segment, independent of how many objects the pack already holds.
func TestPackStoreAppendIdxBytesPerBatch(t *testing.T) {
	const batchSize = 64
	wantDelta := int64(segHeaderSize + batchSize*segEntrySize + segTrailerSize)
	for _, preload := range []int{0, 1000, 8000} {
		dir := filepath.Join(t.TempDir(), "objects")
		ps := newTestPackStore(t, dir)
		for start := 0; start < preload; start += 500 {
			n := min(500, preload-start)
			batch := make([]Encoded, n)
			for j := 0; j < n; j++ {
				enc := object.Encode(object.NewBlobString(fmt.Sprintf("pre %d", start+j)))
				batch[j] = Encoded{ID: object.HashBytes(enc), Enc: enc}
			}
			if err := ps.PutManyEncoded(batch); err != nil {
				t.Fatal(err)
			}
		}
		before := ps.IdxBytesWritten()
		batch := make([]Encoded, batchSize)
		for j := range batch {
			enc := object.Encode(object.NewBlobString(fmt.Sprintf("probe %d", j)))
			batch[j] = Encoded{ID: object.HashBytes(enc), Enc: enc}
		}
		if err := ps.PutManyEncoded(batch); err != nil {
			t.Fatal(err)
		}
		delta := ps.IdxBytesWritten() - before
		if delta != wantDelta {
			t.Errorf("preload=%d: %d idx bytes for a %d-object batch, want %d (O(batch), not O(pack))",
				preload, delta, batchSize, wantDelta)
		}
	}
}

// TestRepackBuildPhaseHoldsNoLock proves the two-phase Repack keeps the
// store lock free while it builds the consolidated pack: with the build
// phase suspended via the test hook, reads, prefix searches and writes all
// complete. Were the lock held for the fold (the pre-PR-5 behaviour),
// every probe below would block until the watchdog fails the test.
func TestRepackBuildPhaseHoldsNoLock(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	loose, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	looseTip := randomHistory(t, loose, 41)
	looseCount, _ := loose.Len()
	ps := newTestPackStore(t, dir)
	packedTip := randomHistory(t, ps, 43)

	entered := make(chan struct{})
	release := make(chan struct{})
	repackBuildHook = func() {
		close(entered)
		<-release
	}
	defer func() { repackBuildHook = nil }()

	type result struct {
		folded int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		folded, err := ps.Repack()
		done <- result{folded, err}
	}()
	<-entered

	probes := make(chan error, 1)
	var probedID object.ID
	go func() {
		probes <- func() error {
			if _, err := ps.Get(looseTip); err != nil {
				return fmt.Errorf("Get(loose) during build: %w", err)
			}
			if _, err := ps.Get(packedTip); err != nil {
				return fmt.Errorf("Get(packed) during build: %w", err)
			}
			if ok, err := ps.Has(packedTip); err != nil || !ok {
				return fmt.Errorf("Has during build = %v, %v", ok, err)
			}
			if ids, err := ps.IDsByPrefix(packedTip.String()[:8], 0); err != nil || len(ids) == 0 {
				return fmt.Errorf("IDsByPrefix during build = %d ids, %v", len(ids), err)
			}
			enc := object.Encode(object.NewBlobString("written mid-repack"))
			probedID = object.HashBytes(enc)
			if err := ps.PutManyEncoded([]Encoded{{ID: probedID, Enc: enc}}); err != nil {
				return fmt.Errorf("PutManyEncoded during build: %w", err)
			}
			return nil
		}()
	}()
	select {
	case err := <-probes:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("store access blocked during Repack's build phase: the lock is not free")
	}
	close(release)

	res := <-done
	if res.err != nil {
		t.Fatalf("Repack: %v", res.err)
	}
	if res.folded != looseCount {
		t.Errorf("Repack folded %d, want %d", res.folded, looseCount)
	}
	// Everything — both closures and the object written mid-build — must
	// survive the swap; the mid-build write lives in a survivor pack.
	for _, tip := range []object.ID{looseTip, packedTip} {
		if _, err := ps.Get(tip); err != nil {
			t.Errorf("Get(%s) after repack: %v", tip.Short(), err)
		}
	}
	if ok, _ := ps.Has(probedID); !ok {
		t.Error("object written during the build phase lost by the swap")
	}
	if got := ps.PackCount(); got != 2 {
		t.Errorf("PackCount after repack = %d, want 2 (consolidated pack + mid-build survivor)", got)
	}
}

// TestPackStoreIgnoresOrphanStaleIdx plants crash debris — an orphan .idx
// whose pack no longer exists — at the number the next pack will take. The
// new pack must not adopt it as its base index: with per-batch journaling,
// a stale base would break replay on the coverage gap and silently discard
// every acknowledged object (createPack clears such debris).
func TestPackStoreIgnoresOrphanStaleIdx(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	if err := os.MkdirAll(filepath.Join(dir, packDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	// A well-formed index claiming one bogus record, with no pack on disk.
	var ghost object.ID
	ghost[0] = 0x42
	orphan := []packEntry{{id: ghost, off: int64(len(packMagic)) + packRecHeader, clen: 7}}
	orphanPath := filepath.Join(dir, packDirName, "pack-000001.idx")
	if _, err := writePackIndex(orphanPath, orphan, int64(len(packMagic))+packRecHeader+7); err != nil {
		t.Fatal(err)
	}

	ps := newTestPackStore(t, dir)
	tip := randomHistory(t, ps, 53)
	want := closureFingerprint(t, ps, tip)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := newTestPackStore(t, dir)
	if got := closureFingerprint(t, reopened, tip); got != want {
		t.Error("closure differs after reopening a pack created over an orphan stale idx")
	}
	if ok, _ := reopened.Has(ghost); ok {
		t.Error("ghost entry from the orphan idx reported present")
	}
}

// TestRepackFastPathRewritesNothing: a store already consolidated to one
// pack with nothing loose must return from Repack without touching disk.
func TestRepackFastPathRewritesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	loose, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tip := randomHistory(t, loose, 47)
	want := closureFingerprint(t, loose, tip)
	ps := newTestPackStore(t, dir)
	if _, err := ps.Repack(); err != nil {
		t.Fatal(err)
	}
	if ps.PackCount() != 1 {
		t.Fatalf("PackCount after consolidating repack = %d, want 1", ps.PackCount())
	}
	packs, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.pack"))
	if len(packs) != 1 {
		t.Fatalf("%d pack files on disk, want 1", len(packs))
	}
	statBefore, err := os.Stat(packs[0])
	if err != nil {
		t.Fatal(err)
	}
	idxBefore := ps.IdxBytesWritten()

	folded, err := ps.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 {
		t.Errorf("fast-path Repack folded %d, want 0", folded)
	}
	if got := ps.IdxBytesWritten(); got != idxBefore {
		t.Errorf("fast-path Repack wrote %d index bytes, want 0", got-idxBefore)
	}
	statAfter, err := os.Stat(packs[0])
	if err != nil {
		t.Fatal(err)
	}
	if statAfter.Size() != statBefore.Size() || !statAfter.ModTime().Equal(statBefore.ModTime()) {
		t.Error("fast-path Repack rewrote the only pack")
	}
	if again, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.pack")); len(again) != 1 {
		t.Errorf("%d pack files after fast-path Repack, want 1", len(again))
	}
	if got := closureFingerprint(t, ps, tip); got != want {
		t.Error("closure differs after fast-path Repack")
	}
}

func TestPackStoreReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	tip := randomHistory(t, ps, 7)
	want := closureFingerprint(t, ps, tip)
	n, err := ps.Len()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	again := newTestPackStore(t, dir)
	if got := closureFingerprint(t, again, tip); got != want {
		t.Error("closure changed across reopen")
	}
	if n2, _ := again.Len(); n2 != n {
		t.Errorf("Len after reopen = %d, want %d", n2, n)
	}
	// New writes after a reopen land in a fresh pack and coexist with the
	// old one.
	extra, err := again.Put(object.NewBlobString("post-reopen object"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := again.Has(extra); !ok {
		t.Error("object written after reopen not found")
	}
}

// TestPackStoreIndexRebuild deletes and corrupts the persisted .idx and
// checks the store recovers it from the pack records.
func TestPackStoreIndexRebuild(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	tip := randomHistory(t, ps, 11)
	want := closureFingerprint(t, ps, tip)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	// A first reopen merges the segment journal into the base index and
	// deletes the journal, so the pack records are now the only other copy
	// of the index's information.
	merged := newTestPackStore(t, dir)
	if err := merged.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.seg")); len(segs) != 0 {
		t.Fatalf("%d journals remain after the merging reopen, want 0", len(segs))
	}

	idxs, err := filepath.Glob(filepath.Join(dir, packDirName, "*.idx"))
	if err != nil || len(idxs) == 0 {
		t.Fatalf("no idx files found (err=%v)", err)
	}
	for _, p := range idxs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt := newTestPackStore(t, dir)
	if got := closureFingerprint(t, rebuilt, tip); got != want {
		t.Error("closure differs after idx rebuild")
	}
	if err := rebuilt.Close(); err != nil {
		t.Fatal(err)
	}
	// The rebuild must have re-persisted the index.
	idxs, _ = filepath.Glob(filepath.Join(dir, packDirName, "*.idx"))
	if len(idxs) == 0 {
		t.Fatal("rebuild did not re-persist the idx")
	}

	// Corrupt (truncate) an idx: the open must fall back to the pack scan.
	if err := os.WriteFile(idxs[0], []byte(packIdxMagic+"garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered := newTestPackStore(t, dir)
	if got := closureFingerprint(t, recovered, tip); got != want {
		t.Error("closure differs after corrupt-idx recovery")
	}
}

// TestPackStoreTornTailIgnored simulates a crash mid-append: trailing
// garbage after the last complete record must be ignored on open, stored
// objects stay readable, and later writes go to a fresh pack.
func TestPackStoreTornTailIgnored(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	tip := randomHistory(t, ps, 13)
	want := closureFingerprint(t, ps, tip)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	packs, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.pack"))
	if len(packs) == 0 {
		t.Fatal("no pack files")
	}
	// A torn record: a full ID, a length claiming more bytes than follow.
	var torn []byte
	var fakeID object.ID
	fakeID[0] = 0xab
	torn = append(torn, fakeID[:]...)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], 1<<20)
	torn = append(torn, lenb[:]...)
	torn = append(torn, []byte("partial payload")...)
	f, err := os.OpenFile(packs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The persisted idx covers only a prefix of the file now; that prefix
	// is authoritative and the torn bytes are dead.
	survivor := newTestPackStore(t, dir)
	if got := closureFingerprint(t, survivor, tip); got != want {
		t.Error("closure differs after torn-tail recovery")
	}
	if ok, _ := survivor.Has(fakeID); ok {
		t.Error("torn record's ID reported present")
	}
	if _, err := survivor.Put(object.NewBlobString("after torn tail")); err != nil {
		t.Fatalf("Put after torn tail: %v", err)
	}
	if survivor.PackCount() < 2 {
		t.Errorf("PackCount = %d; writes after a torn tail must start a fresh pack", survivor.PackCount())
	}
	if err := survivor.Close(); err != nil {
		t.Fatal(err)
	}
	// The prefix-covering idx must load cleanly (no rescan-forever), and
	// the pack keeps its bytes — recovery never truncates, so a mid-pack
	// corruption can not take later records with it.
	st, err := os.Stat(packs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPackIndex(idxPathFor(packs[0]), st.Size()); err != nil {
		t.Errorf("prefix-covering idx judged unusable: %v", err)
	}
	// The same store also reopens through the idx-load path with the torn
	// bytes still in place.
	again := newTestPackStore(t, dir)
	if got := closureFingerprint(t, again, tip); got != want {
		t.Error("closure differs on second open after torn tail")
	}
}

// TestPackStoreRollsOverLargePacks checks the current pack stops accepting
// appends at packRollEntries and later batches open a fresh pack — the
// bound that keeps per-batch index rewrites from growing with total store
// size — while everything stays readable and Repack still consolidates.
func TestPackStoreRollsOverLargePacks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	// Rollover triggers at the first batch that begins at or past the
	// threshold, so overshoot by a couple of batches.
	total := packRollEntries + 1100
	var ids []object.ID
	for start := 0; start < total; start += 500 {
		n := min(500, total-start)
		batch := make([]Encoded, n)
		for j := 0; j < n; j++ {
			enc := object.Encode(object.NewBlobString(fmt.Sprintf("roll %d", start+j)))
			batch[j] = Encoded{ID: object.HashBytes(enc), Enc: enc}
			ids = append(ids, batch[j].ID)
		}
		if err := ps.PutManyEncoded(batch); err != nil {
			t.Fatal(err)
		}
	}
	if ps.PackCount() < 2 {
		t.Errorf("PackCount = %d after %d objects, want >= 2 (rollover at %d)", ps.PackCount(), total, packRollEntries)
	}
	for _, i := range []int{0, packRollEntries - 1, packRollEntries, total - 1} {
		if ok, _ := ps.Has(ids[i]); !ok {
			t.Errorf("object %d missing after rollover", i)
		}
	}
	if n, _ := ps.Len(); n != total {
		t.Errorf("Len = %d, want %d", n, total)
	}
	if _, err := ps.Repack(); err != nil {
		t.Fatal(err)
	}
	if ps.PackCount() != 1 {
		t.Errorf("PackCount after Repack = %d, want 1", ps.PackCount())
	}
	if n, _ := ps.Len(); n != total {
		t.Errorf("Len after Repack = %d, want %d", n, total)
	}
}

// TestRepackFoldsLooseObjects opens a PackStore over an existing loose
// FileStore layout and checks Repack absorbs every loose object
// byte-for-byte and removes the loose files.
func TestRepackFoldsLooseObjects(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	loose, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tip := randomHistory(t, loose, 17)
	looseCount, _ := loose.Len()
	want := closureFingerprint(t, loose, tip)

	ps := newTestPackStore(t, dir)
	// Loose objects are readable through the pack store before any repack.
	if got := closureFingerprint(t, ps, tip); got != want {
		t.Fatal("loose closure not readable through PackStore")
	}
	// Mix in some already-packed objects.
	packedBlob, err := ps.Put(object.NewBlobString("already packed"))
	if err != nil {
		t.Fatal(err)
	}

	folded, err := ps.Repack()
	if err != nil {
		t.Fatalf("Repack: %v", err)
	}
	if folded != looseCount {
		t.Errorf("Repack folded %d loose objects, want %d", folded, looseCount)
	}
	if got := closureFingerprint(t, ps, tip); got != want {
		t.Error("closure differs after folding loose objects")
	}
	if ok, _ := ps.Has(packedBlob); !ok {
		t.Error("previously packed object lost by Repack")
	}
	if ids, _ := loose.IDs(); len(ids) != 0 {
		t.Errorf("%d loose objects remain after Repack, want 0", len(ids))
	}
	if ps.PackCount() != 1 {
		t.Errorf("PackCount = %d, want 1", ps.PackCount())
	}
	// Emptied fanout directories are pruned.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) == 2 {
			t.Errorf("fanout dir %s not pruned after Repack", e.Name())
		}
	}

	// A second Repack with nothing loose and one pack is a no-op.
	folded, err = ps.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 {
		t.Errorf("second Repack folded %d, want 0", folded)
	}
}

// TestPackStoreConcurrentReadersDuringRepack hammers Get/Has/HasMany from
// several goroutines while Repack folds loose objects and consolidates
// packs (run with -race): readers must never see a transient miss or a
// closed pack file while objects relocate.
func TestPackStoreConcurrentReadersDuringRepack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	loose, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	looseTip := randomHistory(t, loose, 29)
	looseIDs, err := ClosureIDs(loose, looseTip)
	if err != nil {
		t.Fatal(err)
	}
	ps := newTestPackStore(t, dir)
	packedTip := randomHistory(t, ps, 31)
	packedIDs, err := ClosureIDs(ps, packedTip)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]object.ID(nil), looseIDs...), packedIDs...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := all[(w*31+i)%len(all)]
				if _, err := ps.Get(id); err != nil {
					t.Errorf("Get(%s) during repack: %v", id.Short(), err)
					return
				}
				if ok, err := ps.Has(id); err != nil || !ok {
					t.Errorf("Has(%s) during repack = %v, %v", id.Short(), ok, err)
					return
				}
				if have, err := ps.HasMany(all[:8]); err != nil {
					t.Errorf("HasMany during repack: %v", err)
					return
				} else {
					for j, ok := range have {
						if !ok {
							t.Errorf("HasMany missed %s during repack", all[j].Short())
							return
						}
					}
				}
				if got, err := ps.IDsByPrefix(id.String()[:16], 0); err != nil || len(got) == 0 {
					t.Errorf("IDsByPrefix(%s) during repack = %d ids, %v", id.Short(), len(got), err)
					return
				}
			}
		}(w)
	}
	if _, err := ps.Repack(); err != nil {
		t.Errorf("Repack: %v", err)
	}
	close(stop)
	wg.Wait()
}

// TestPackStoreToleratesTornPackHeader simulates a crash between pack
// creation and the header landing: an empty (or sub-magic) pack file must
// be skipped on open, not brick the store, while a full-length wrong magic
// still reports corruption.
func TestPackStoreToleratesTornPackHeader(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	tip := randomHistory(t, ps, 37)
	want := closureFingerprint(t, ps, tip)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	packDir := filepath.Join(dir, packDirName)
	if err := os.WriteFile(filepath.Join(packDir, "pack-000090.pack"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(packDir, "pack-000091.pack"), []byte("GCP"), 0o644); err != nil {
		t.Fatal(err)
	}
	survivor := newTestPackStore(t, dir)
	if got := closureFingerprint(t, survivor, tip); got != want {
		t.Error("closure differs after ignoring torn pack headers")
	}
	if _, err := survivor.Put(object.NewBlobString("after torn header")); err != nil {
		t.Fatalf("Put after torn header: %v", err)
	}
	if err := survivor.Close(); err != nil {
		t.Fatal(err)
	}
	// A full-length bogus magic is corruption, not a torn creation.
	if err := os.WriteFile(filepath.Join(packDir, "pack-000092.pack"), []byte("XXXXXXXXgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if bad, err := NewPackStore(dir); err == nil {
		bad.Close()
		t.Error("open succeeded over a pack with corrupt magic")
	}
}

// TestPackStoreRejectsCorruptRecord flips a payload byte and checks Get
// reports the hash-verification failure instead of returning garbage.
func TestPackStoreRejectsCorruptRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	ps := newTestPackStore(t, dir)
	id, err := ps.Put(object.NewBlobString("to be corrupted in place"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	packs, _ := filepath.Glob(filepath.Join(dir, packDirName, "*.pack"))
	data, err := os.ReadFile(packs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt the final payload byte
	if err := os.WriteFile(packs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	corrupted := newTestPackStore(t, dir)
	if _, err := corrupted.Get(id); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("Get of corrupted record: err = %v, want corruption report", err)
	}
}
