// Package store provides content-addressed object storage for the vcs
// substrate. A Store persists canonical object encodings keyed by their ID;
// because IDs are content hashes, Put is idempotent and objects are
// immutable once stored.
//
// Three implementations are provided: MemoryStore (tests, hosting platform,
// benchmarks), FileStore (the on-disk layout used by the local tool, with
// zlib-compressed loose objects), and CachedStore (an LRU read-through cache
// layered over any Store).
package store

import (
	"errors"
	"fmt"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// ErrNotFound reports a lookup for an object the store does not hold.
var ErrNotFound = errors.New("store: object not found")

// Store is a content-addressed object database.
//
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores an object and returns its ID. Storing an object that is
	// already present is a cheap no-op.
	Put(o object.Object) (object.ID, error)
	// Get retrieves an object by ID, returning ErrNotFound if absent.
	Get(id object.ID) (object.Object, error)
	// Has reports whether the store holds the object.
	Has(id object.ID) (bool, error)
	// IDs returns the IDs of every stored object, in unspecified order.
	IDs() ([]object.ID, error)
	// Len returns the number of stored objects.
	Len() (int, error)
}

// GetBlob retrieves an object and asserts it is a blob.
func GetBlob(s Store, id object.ID) (*object.Blob, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	b, ok := o.(*object.Blob)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want blob", id.Short(), o.Type())
	}
	return b, nil
}

// GetTree retrieves an object and asserts it is a tree.
func GetTree(s Store, id object.ID) (*object.Tree, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	t, ok := o.(*object.Tree)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want tree", id.Short(), o.Type())
	}
	return t, nil
}

// GetCommit retrieves an object and asserts it is a commit.
func GetCommit(s Store, id object.ID) (*object.Commit, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	c, ok := o.(*object.Commit)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want commit", id.Short(), o.Type())
	}
	return c, nil
}

// Copy transfers the object with the given ID from src to dst. It returns
// ErrNotFound if src lacks the object.
func Copy(dst, src Store, id object.ID) error {
	o, err := src.Get(id)
	if err != nil {
		return err
	}
	_, err = dst.Put(o)
	return err
}

// CopyAll transfers every object in src into dst and reports how many
// objects were examined.
func CopyAll(dst, src Store) (int, error) {
	ids, err := src.IDs()
	if err != nil {
		return 0, err
	}
	for _, id := range ids {
		if err := Copy(dst, src, id); err != nil {
			return 0, err
		}
	}
	return len(ids), nil
}

// WalkClosure visits the full object graph reachable from the given roots
// (commits pull in parents and trees; trees pull in entries), calling
// visit once per object. Unlike CopyClosure it moves nothing — read
// handlers use it to serialise a closure straight out of a live store,
// each object fetched exactly once, without staging a second copy.
func WalkClosure(src Store, visit func(object.ID, object.Object) error, roots ...object.ID) error {
	seen := make(map[object.ID]bool)
	stack := append([]object.ID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id.IsZero() || seen[id] {
			continue
		}
		seen[id] = true
		o, err := src.Get(id)
		if err != nil {
			return fmt.Errorf("store: closure walk %s: %w", id.Short(), err)
		}
		if err := visit(id, o); err != nil {
			return err
		}
		switch v := o.(type) {
		case *object.Commit:
			stack = append(stack, v.TreeID)
			stack = append(stack, v.Parents...)
		case *object.Tree:
			for _, e := range v.Entries() {
				stack = append(stack, e.ID)
			}
		}
	}
	return nil
}

// ClosureIDs returns every ID reachable from the given roots, via
// WalkClosure.
func ClosureIDs(src Store, roots ...object.ID) ([]object.ID, error) {
	var out []object.ID
	err := WalkClosure(src, func(id object.ID, _ object.Object) error {
		out = append(out, id)
		return nil
	}, roots...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CopyClosure copies the full object graph reachable from the given roots
// (commits pull in parents and trees; trees pull in entries) from src to
// dst. Objects already present in dst prune the walk, which makes pushes and
// fetches incremental. It returns the number of objects copied.
func CopyClosure(dst, src Store, roots ...object.ID) (int, error) {
	copied := 0
	seen := make(map[object.ID]bool)
	stack := append([]object.ID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id.IsZero() || seen[id] {
			continue
		}
		seen[id] = true
		if ok, err := dst.Has(id); err != nil {
			return copied, err
		} else if ok {
			continue
		}
		o, err := src.Get(id)
		if err != nil {
			return copied, fmt.Errorf("store: closure copy %s: %w", id.Short(), err)
		}
		if _, err := dst.Put(o); err != nil {
			return copied, err
		}
		copied++
		switch v := o.(type) {
		case *object.Commit:
			stack = append(stack, v.TreeID)
			stack = append(stack, v.Parents...)
		case *object.Tree:
			for _, e := range v.Entries() {
				stack = append(stack, e.ID)
			}
		}
	}
	return copied, nil
}
