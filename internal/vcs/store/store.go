// Package store provides content-addressed object storage for the vcs
// substrate. A Store persists canonical object encodings keyed by their ID;
// because IDs are content hashes, Put is idempotent and objects are
// immutable once stored.
//
// Three implementations are provided: MemoryStore (tests, hosting platform,
// benchmarks), FileStore (the on-disk layout used by the local tool, with
// zlib-compressed loose objects), and CachedStore (an LRU read-through cache
// layered over any Store).
package store

import (
	"errors"
	"fmt"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// ErrNotFound reports a lookup for an object the store does not hold.
var ErrNotFound = errors.New("store: object not found")

// Store is a content-addressed object database.
//
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores an object and returns its ID. Storing an object that is
	// already present is a cheap no-op.
	Put(o object.Object) (object.ID, error)
	// Get retrieves an object by ID, returning ErrNotFound if absent.
	Get(id object.ID) (object.Object, error)
	// Has reports whether the store holds the object.
	Has(id object.ID) (bool, error)
	// IDs returns the IDs of every stored object, in unspecified order.
	IDs() ([]object.ID, error)
	// Len returns the number of stored objects.
	Len() (int, error)
}

// BatchStore is the optional batch extension of Store. Stores that
// implement it amortise synchronisation and filesystem traffic over many
// objects at once — one lock acquisition per shard or fanout directory
// instead of one per object. Callers should go through the package-level
// PutMany/HasMany helpers, which fall back to per-object calls on stores
// without native batch support.
type BatchStore interface {
	// PutMany stores every object, returning their IDs in input order.
	// Like Put, storing objects already present is a cheap no-op.
	PutMany(objs []object.Object) ([]object.ID, error)
	// HasMany reports, for each ID in input order, whether the store
	// holds the object.
	HasMany(ids []object.ID) ([]bool, error)
}

// PutMany stores a batch of objects through the store's native batch path
// when it has one, and object-by-object otherwise. IDs are returned in
// input order.
func PutMany(s Store, objs []object.Object) ([]object.ID, error) {
	if bs, ok := s.(BatchStore); ok {
		return bs.PutMany(objs)
	}
	ids := make([]object.ID, len(objs))
	for i, o := range objs {
		id, err := s.Put(o)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// Encoded is an object already in canonical form: its encoding plus the
// ID derived from it. Producers that had to encode and hash anyway (the
// tree builder derives child IDs during construction) hand these to
// PutManyEncoded so stores do not encode and hash a second time.
type Encoded struct {
	ID  object.ID
	Enc []byte
}

// RawBatchStore is an optional interface for stores that ingest canonical
// encodings directly, skipping the re-encode/re-hash a Put of the decoded
// object would pay. The store takes ownership of the Enc slices.
//
// Trust contract: each ID MUST equal object.HashBytes(Enc) and Enc must
// not be mutated afterwards. Stores index the bytes under the given ID
// without re-verifying (re-hashing on ingest would erase the saving this
// interface exists for), so a violating producer corrupts the
// content-addressed store — memory-backed stores silently, file-backed
// ones detected at Get time by hash verification.
type RawBatchStore interface {
	PutManyEncoded(batch []Encoded) error
}

// PutManyEncoded stores pre-encoded objects through the store's raw batch
// path when it has one; otherwise each encoding is decoded and stored via
// Put.
func PutManyEncoded(s Store, batch []Encoded) error {
	if rs, ok := s.(RawBatchStore); ok {
		return rs.PutManyEncoded(batch)
	}
	for _, e := range batch {
		o, err := object.Decode(e.Enc)
		if err != nil {
			return err
		}
		if _, err := s.Put(o); err != nil {
			return err
		}
	}
	return nil
}

// HasMany answers a batch of presence queries through the store's native
// batch path when it has one, and one-by-one otherwise. Results are in
// input order.
func HasMany(s Store, ids []object.ID) ([]bool, error) {
	if bs, ok := s.(BatchStore); ok {
		return bs.HasMany(ids)
	}
	have := make([]bool, len(ids))
	for i, id := range ids {
		ok, err := s.Has(id)
		if err != nil {
			return nil, err
		}
		have[i] = ok
	}
	return have, nil
}

// GetBlob retrieves an object and asserts it is a blob.
func GetBlob(s Store, id object.ID) (*object.Blob, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	b, ok := o.(*object.Blob)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want blob", id.Short(), o.Type())
	}
	return b, nil
}

// GetTree retrieves an object and asserts it is a tree.
func GetTree(s Store, id object.ID) (*object.Tree, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	t, ok := o.(*object.Tree)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want tree", id.Short(), o.Type())
	}
	return t, nil
}

// GetCommit retrieves an object and asserts it is a commit.
func GetCommit(s Store, id object.ID) (*object.Commit, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	c, ok := o.(*object.Commit)
	if !ok {
		return nil, fmt.Errorf("store: object %s is a %v, want commit", id.Short(), o.Type())
	}
	return c, nil
}

// Copy transfers the object with the given ID from src to dst. It returns
// ErrNotFound if src lacks the object.
func Copy(dst, src Store, id object.ID) error {
	o, err := src.Get(id)
	if err != nil {
		return err
	}
	_, err = dst.Put(o)
	return err
}

// CopyAll transfers every object in src into dst and reports how many
// objects were examined.
func CopyAll(dst, src Store) (int, error) {
	ids, err := src.IDs()
	if err != nil {
		return 0, err
	}
	for _, id := range ids {
		if err := Copy(dst, src, id); err != nil {
			return 0, err
		}
	}
	return len(ids), nil
}

// WalkClosure visits the full object graph reachable from the given roots
// (commits pull in parents and trees; trees pull in entries), calling
// visit once per object. Unlike CopyClosure it moves nothing — read
// handlers use it to serialise a closure straight out of a live store,
// each object fetched exactly once, without staging a second copy.
func WalkClosure(src Store, visit func(object.ID, object.Object) error, roots ...object.ID) error {
	seen := make(map[object.ID]bool)
	stack := append([]object.ID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id.IsZero() || seen[id] {
			continue
		}
		seen[id] = true
		o, err := src.Get(id)
		if err != nil {
			return fmt.Errorf("store: closure walk %s: %w", id.Short(), err)
		}
		if err := visit(id, o); err != nil {
			return err
		}
		switch v := o.(type) {
		case *object.Commit:
			stack = append(stack, v.TreeID)
			stack = append(stack, v.Parents...)
		case *object.Tree:
			for _, e := range v.Entries() {
				stack = append(stack, e.ID)
			}
		}
	}
	return nil
}

// ClosureIDs returns every ID reachable from the given roots, via
// WalkClosure.
func ClosureIDs(src Store, roots ...object.ID) ([]object.ID, error) {
	var out []object.ID
	err := WalkClosure(src, func(id object.ID, _ object.Object) error {
		out = append(out, id)
		return nil
	}, roots...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CopyClosure copies the full object graph reachable from the given roots
// (commits pull in parents and trees; trees pull in entries) from src to
// dst. Objects already present in dst prune the walk, which makes pushes and
// fetches incremental. It returns the number of objects copied.
//
// The walk proceeds frontier by frontier through the batch API: each round
// asks dst for the whole frontier at once (HasMany) and stores every
// missing object at once (PutMany), so closure transfer does not pay a
// lock-acquiring Has/Put round trip per object.
func CopyClosure(dst, src Store, roots ...object.ID) (int, error) {
	copied := 0
	seen := make(map[object.ID]bool)
	var frontier []object.ID
	push := func(ids ...object.ID) {
		for _, id := range ids {
			if !id.IsZero() && !seen[id] {
				seen[id] = true
				frontier = append(frontier, id)
			}
		}
	}
	push(roots...)
	for len(frontier) > 0 {
		batch := frontier
		frontier = nil
		have, err := HasMany(dst, batch)
		if err != nil {
			return copied, err
		}
		objs := make([]object.Object, 0, len(batch))
		for i, id := range batch {
			if have[i] {
				continue // dst already holds it: prune the walk here
			}
			o, err := src.Get(id)
			if err != nil {
				return copied, fmt.Errorf("store: closure copy %s: %w", id.Short(), err)
			}
			objs = append(objs, o)
		}
		if _, err := PutMany(dst, objs); err != nil {
			return copied, err
		}
		copied += len(objs)
		for _, o := range objs {
			switch v := o.(type) {
			case *object.Commit:
				push(v.TreeID)
				push(v.Parents...)
			case *object.Tree:
				for _, e := range v.Entries() {
					push(e.ID)
				}
			}
		}
	}
	return copied, nil
}
