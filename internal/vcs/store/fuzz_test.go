package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// The recovery fuzzers target the two crash-recovery parsers: the pack
// record scan and the segment-journal replay. Both read bytes that a crash
// may have left in any torn or half-landed state, so their contract is the
// torn-tail rule from pack.go: never panic, never error on garbage beyond
// the acknowledged history — just stop — and never return an entry that
// points outside the bytes the parser claims are covered. The seed corpus
// (testdata/fuzz) pins the crash orders pack_test.go constructs by hand:
// torn record tails, CRC-failing segments, coverage gaps, and segments
// claiming pack bytes that never landed.

// fuzzPackBytes builds a pack image: magic, then one record per payload.
func fuzzPackBytes(payloads ...[]byte) []byte {
	data := []byte(packMagic)
	for _, p := range payloads {
		id := object.HashBytes(p)
		data = append(data, id[:]...)
		var u32 [4]byte
		binary.BigEndian.PutUint32(u32[:], uint32(len(p)))
		data = append(data, u32[:]...)
		data = append(data, p...)
	}
	return data
}

func FuzzPackRecordScan(f *testing.F) {
	whole := fuzzPackBytes([]byte("alpha"), []byte("beta-longer-payload"))
	f.Add(whole)
	f.Add(whole[:len(whole)-7])      // torn tail: payload half-landed
	f.Add(whole[:len(packMagic)+20]) // torn tail: header half-landed
	f.Add([]byte("NOTAPACK"))        // bad magic
	f.Add([]byte(packMagic))         // empty pack
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "pack-000000.pack")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		entries, covered, err := scanPackRecords(fh, int64(len(data)))
		if err != nil {
			return // bad magic / read error: rejected outright, no entries
		}
		if covered < int64(len(packMagic)) || covered > int64(len(data)) {
			t.Fatalf("covered %d outside [%d, %d]", covered, len(packMagic), len(data))
		}
		// Complete records tile the covered range exactly, in order.
		off := int64(len(packMagic))
		for i, e := range entries {
			if e.off != off+packRecHeader {
				t.Fatalf("entry %d at offset %d, want %d", i, e.off, off+packRecHeader)
			}
			off = e.off + int64(e.clen)
		}
		if off != covered {
			t.Fatalf("records end at %d but scan claims %d covered", off, covered)
		}
	})
}

// fuzzSegEntries builds n in-range entries for a segment covering
// [start, end).
func fuzzSegEntries(n int, start, end int64) []packEntry {
	entries := make([]packEntry, n)
	span := (end - start - packRecHeader) / int64(n)
	for i := range entries {
		off := start + packRecHeader + int64(i)*span
		entries[i] = packEntry{
			id:   object.HashBytes([]byte{byte(i)}),
			off:  off,
			clen: uint32(span - packRecHeader),
		}
	}
	return entries
}

func FuzzSegmentReplay(f *testing.F) {
	const baseCovered = int64(8) // == len(packMagic)
	const packSize = int64(4096)
	seg1 := encodeSegment(fuzzSegEntries(2, baseCovered, 200), baseCovered, 200)
	seg2 := encodeSegment(fuzzSegEntries(1, 200, 300), 200, 300)
	valid := append(append([]byte(packSegMagic), seg1...), seg2...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail: last segment half-landed
	crcFail := append([]byte{}, valid...)
	crcFail[len(crcFail)-1] ^= 0xFF // CRC failure on the last segment
	f.Add(crcFail)
	// Coverage gap: the second batch's segment landed but the first's
	// never did.
	f.Add(append([]byte(packSegMagic), seg2...))
	// Segment claiming pack bytes that never landed (end > packSize).
	tooFar := encodeSegment(fuzzSegEntries(1, baseCovered, packSize+100), baseCovered, packSize+100)
	f.Add(append([]byte(packSegMagic), tooFar...))
	f.Add([]byte("NOTAJRNL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "pack-000000.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		entries, covered := loadSegments(path, baseCovered, packSize)
		if covered < baseCovered || covered > packSize {
			t.Fatalf("covered %d outside [%d, %d]", covered, baseCovered, packSize)
		}
		if covered == baseCovered && len(entries) != 0 {
			t.Fatalf("%d entries but no coverage beyond the base", len(entries))
		}
		for i, e := range entries {
			if e.off <= baseCovered || e.off+int64(e.clen) > covered {
				t.Fatalf("entry %d spans [%d, %d) outside acknowledged (%d, %d]",
					i, e.off, e.off+int64(e.clen), baseCovered, covered)
			}
		}
	})
}
