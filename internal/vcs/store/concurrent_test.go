package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gitcite/gitcite/internal/vcs/object"
)

// countingStore wraps a Store and counts backend Gets; an optional delay
// widens the miss window so singleflight races are actually exercised.
type countingStore struct {
	Store
	gets  atomic.Int64
	delay time.Duration
}

func (c *countingStore) Get(id object.ID) (object.Object, error) {
	c.gets.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.Store.Get(id)
}

func TestCachedStoreHasStats(t *testing.T) {
	backend := NewMemoryStore()
	cs := NewCachedStore(backend, 8)
	id, err := cs.Put(object.NewBlobString("stats"))
	if err != nil {
		t.Fatal(err)
	}
	// Cached: Has must answer from the cache and count a hit.
	ok, err := cs.Has(id)
	if err != nil || !ok {
		t.Fatalf("Has cached = %v, %v", ok, err)
	}
	hits, misses := cs.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("after cached Has: hits=%d misses=%d, want 1/0", hits, misses)
	}
	// Uncached (present only in the backend): Has counts a miss.
	other, err := backend.Put(object.NewBlobString("backend only"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err = cs.Has(other)
	if err != nil || !ok {
		t.Fatalf("Has backend = %v, %v", ok, err)
	}
	// Absent everywhere: also a miss.
	ghost := object.Hash(object.NewBlobString("ghost"))
	if ok, err := cs.Has(ghost); err != nil || ok {
		t.Fatalf("Has ghost = %v, %v", ok, err)
	}
	hits, misses = cs.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("final stats: hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestCachedStoreSingleflight launches many concurrent Gets for one
// uncached object; the backend must be consulted exactly once.
func TestCachedStoreSingleflight(t *testing.T) {
	backend := NewMemoryStore()
	id, err := backend.Put(object.NewBlobString("hot object"))
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingStore{Store: backend, delay: 20 * time.Millisecond}
	cs := NewCachedStore(counting, 8)

	const n = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			o, err := cs.Get(id)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if o.Type() != object.TypeBlob {
				t.Errorf("Get returned %v", o.Type())
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := counting.gets.Load(); got != 1 {
		t.Errorf("backend consulted %d times for one hot object, want 1", got)
	}
	// The object is cached now; further Gets stay off the backend.
	if _, err := cs.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := counting.gets.Load(); got != 1 {
		t.Errorf("cached Get hit the backend (%d fetches)", got)
	}
}

// TestCachedStoreSingleflightError checks that waiters observe the
// leader's error and that a failed fetch is not cached.
func TestCachedStoreSingleflightError(t *testing.T) {
	backend := NewMemoryStore()
	counting := &countingStore{Store: backend, delay: 10 * time.Millisecond}
	cs := NewCachedStore(counting, 8)
	ghost := object.Hash(object.NewBlobString("missing"))

	const n = 8
	var wg sync.WaitGroup
	var errs atomic.Int64
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := cs.Get(ghost); err != nil {
				errs.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if errs.Load() != n {
		t.Errorf("%d/%d concurrent Gets reported the miss", errs.Load(), n)
	}
	// A later Get retries the backend (errors are not cached).
	before := counting.gets.Load()
	if _, err := cs.Get(ghost); err == nil {
		t.Error("ghost Get succeeded")
	}
	if counting.gets.Load() == before {
		t.Error("failed fetch was cached; backend not retried")
	}
}

// TestFileStoreConcurrent drives parallel Put/Get/Has across the striped
// locks; run with -race.
func TestFileStoreConcurrent(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const objects = 50
	var wg sync.WaitGroup
	ids := make([][]object.ID, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < objects; i++ {
				id, err := fs.Put(object.NewBlobString(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				ids[w] = append(ids[w], id)
				// Read back own writes while other stripes churn.
				if _, err := fs.Get(id); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok, err := fs.Has(id); err != nil || !ok {
					t.Errorf("Has = %v, %v", ok, err)
					return
				}
			}
		}(w)
	}
	// Concurrent duplicate Puts of identical content must all succeed.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < objects; i++ {
				if _, err := fs.Put(object.NewBlobString("shared content")); err != nil {
					t.Errorf("dup Put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	n, err := fs.Len()
	if err != nil {
		t.Fatal(err)
	}
	if want := writers*objects + 1; n != want {
		t.Errorf("Len = %d, want %d", n, want)
	}
}

// TestCachedStoreConcurrent drives parallel Put/Get/Has through the
// sharded cache over a live backend; run with -race.
func TestCachedStoreConcurrent(t *testing.T) {
	cs := NewCachedStore(NewMemoryStore(), 64)
	var seed []object.ID
	for i := 0; i < 32; i++ {
		id, err := cs.Put(object.NewBlobString(fmt.Sprintf("seed %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		seed = append(seed, id)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := seed[(w+i)%len(seed)]
				if _, err := cs.Get(id); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok, err := cs.Has(id); err != nil || !ok {
					t.Errorf("Has = %v, %v", ok, err)
					return
				}
				if i%50 == 0 {
					if _, err := cs.Put(object.NewBlobString(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := cs.Stats()
	if hits == 0 {
		t.Errorf("no cache hits recorded (hits=%d misses=%d)", hits, misses)
	}
}
