package object

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func writeFuzzSeed(t *testing.T, fuzzName, name string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateFuzzCorpus regenerates the committed seed corpora for the
// decode fuzzers. Env-gated; see the store package's generator for usage.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set GEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}

	writeFuzzSeed(t, "FuzzDecodeCommit", "canonical-merge", fuzzSeedCommit().encode(nil))
	writeFuzzSeed(t, "FuzzDecodeCommit", "no-parents", (&Commit{
		TreeID:    HashBytes([]byte("root")),
		Author:    NewSignature("a", "a@b", time.Unix(0, 0)),
		Committer: NewSignature("a", "a@b", time.Unix(0, 0)),
	}).encode(nil))
	writeFuzzSeed(t, "FuzzDecodeCommit", "noncanonical-whitespace",
		[]byte("tree "+HashBytes([]byte("t")).String()+"\n"+
			"author  spaced name   <x@y>  7  \n"+
			"committer z <z@w> 9\n\nmsg"))
	writeFuzzSeed(t, "FuzzDecodeCommit", "bad-tree-id", []byte("tree zzzz\n"))
	writeFuzzSeed(t, "FuzzDecodeCommit", "header-order", []byte("parent before tree\n"))

	tr, err := NewTree([]TreeEntry{
		{Name: "README.md", Mode: ModeFile, ID: HashBytes([]byte("readme"))},
		{Name: "src", Mode: ModeDir, ID: HashBytes([]byte("src"))},
		{Name: "tool", Mode: ModeExecutable, ID: HashBytes([]byte("tool"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzDecodeTree", "canonical", tr.encode(nil))
	writeFuzzSeed(t, "FuzzDecodeTree", "empty", nil)
	writeFuzzSeed(t, "FuzzDecodeTree", "truncated-id", []byte("100644 name\x00short"))
	writeFuzzSeed(t, "FuzzDecodeTree", "bad-mode",
		[]byte("777777 evil\x00"+string(make([]byte, IDSize))))
	// Entries out of name order: canonicalisation must not accept-and-drift.
	one := tr.encode(nil)
	two, err := NewTree([]TreeEntry{
		{Name: "zz", Mode: ModeFile, ID: HashBytes([]byte("zz"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzDecodeTree", "unsorted", append(two.encode(nil), one...))
}
