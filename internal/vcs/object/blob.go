package object

// Blob holds the raw bytes of a single file version. Blobs carry no name or
// mode: those live in the referencing tree entry, so identical content is
// stored once no matter how many paths point at it.
type Blob struct {
	data []byte
}

// NewBlob creates a blob over a private copy of data.
func NewBlob(data []byte) *Blob {
	cp := make([]byte, len(data))
	copy(cp, data)
	return &Blob{data: cp}
}

// NewBlobString creates a blob from a string.
func NewBlobString(s string) *Blob { return &Blob{data: []byte(s)} }

// Type reports TypeBlob.
func (b *Blob) Type() Type { return TypeBlob }

// Data returns the blob's contents. The returned slice must not be modified.
func (b *Blob) Data() []byte { return b.data }

// Len returns the content length in bytes.
func (b *Blob) Len() int { return len(b.data) }

// ID returns the blob's content-derived identifier.
func (b *Blob) ID() ID { return Hash(b) }

func (b *Blob) encode(dst []byte) []byte { return append(dst, b.data...) }

func decodeBlob(payload []byte) (*Blob, error) {
	return NewBlob(payload), nil
}
